type instrument =
  | Counter of Instrument.counter
  | Timer of Instrument.timer
  | Histogram of Instrument.histogram

type t = {
  lock : Mutex.t;
      (** guards [instruments]: instrument *creation* is rare (first use of
          a name) but may race across domains; the instruments themselves
          are domain-safe and are updated without this lock *)
  instruments : (string, instrument) Hashtbl.t;
  tr : Trace.t;
}

exception Kind_mismatch of string

let create ?(trace_capacity = 0) () =
  {
    lock = Mutex.create ();
    instruments = Hashtbl.create 32;
    tr = Trace.create ~capacity:trace_capacity ();
  }

let global = create ~trace_capacity:256 ()

let kind_name = function
  | Counter _ -> "counter"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let get_or_create t name ~make ~cast =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.instruments name with
      | Some i -> (
          match cast i with
          | Some x -> x
          | None ->
              raise
                (Kind_mismatch
                   (Printf.sprintf "%s already registered as a %s" name
                      (kind_name i))))
      | None ->
          let i = make () in
          Hashtbl.replace t.instruments name i;
          (match cast i with Some x -> x | None -> assert false))

let counter t name =
  get_or_create t name
    ~make:(fun () -> Counter (Instrument.counter ()))
    ~cast:(function Counter c -> Some c | _ -> None)

let timer t name =
  get_or_create t name
    ~make:(fun () -> Timer (Instrument.timer ()))
    ~cast:(function Timer x -> Some x | _ -> None)

let histogram t name =
  get_or_create t name
    ~make:(fun () -> Histogram (Instrument.histogram ()))
    ~cast:(function Histogram h -> Some h | _ -> None)

let trace t = t.tr

let find t name =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.instruments name)

let names t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.instruments [])
  |> List.sort String.compare

let counter_value t name =
  match find t name with Some (Counter c) -> Instrument.value c | _ -> 0

let reset t =
  let all =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun _ i acc -> i :: acc) t.instruments [])
  in
  List.iter
    (fun i ->
      match i with
      | Counter c -> Instrument.reset_counter c
      | Timer x -> Instrument.reset_timer x
      | Histogram h -> Instrument.reset_histogram h)
    all;
  Trace.clear t.tr

(* ---- snapshots ---- *)

let finite_or_null f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Json.Null
  else Json.Float f

let instrument_json = function
  | Counter c -> Json.Int (Instrument.value c)
  | Timer x ->
      Json.Obj
        [
          ("wall_s", Json.Float (Instrument.wall x));
          ("cpu_s", Json.Float (Instrument.cpu x));
          ("intervals", Json.Int (Instrument.intervals x));
        ]
  | Histogram h ->
      Json.Obj
        [
          ("count", Json.Int (Instrument.count h));
          ("sum", Json.Float (Instrument.sum h));
          ("mean", Json.Float (Instrument.mean h));
          ("min", finite_or_null (Instrument.min_value h));
          ("max", finite_or_null (Instrument.max_value h));
          ("p50", Json.Float (Instrument.quantile h 0.5));
          ("p90", Json.Float (Instrument.quantile h 0.9));
          ("p95", Json.Float (Instrument.quantile h 0.95));
          ("p99", Json.Float (Instrument.quantile h 0.99));
        ]

let to_json t =
  let section keep =
    List.filter_map
      (fun name ->
        match find t name with
        | Some i when keep i -> Some (name, instrument_json i)
        | _ -> None)
      (names t)
  in
  Json.Obj
    [
      ("counters", Json.Obj (section (function Counter _ -> true | _ -> false)));
      ("timers", Json.Obj (section (function Timer _ -> true | _ -> false)));
      ( "histograms",
        Json.Obj (section (function Histogram _ -> true | _ -> false)) );
      ("trace", Trace.to_json t.tr);
    ]

let render t =
  let b = Buffer.create 512 in
  let width =
    List.fold_left (fun acc n -> max acc (String.length n)) 24 (names t)
  in
  let line name rest = Printf.bprintf b "  %-*s  %s\n" width name rest in
  Buffer.add_string b "metrics:\n";
  List.iter
    (fun name ->
      match find t name with
      | None -> ()
      | Some (Counter c) -> line name (string_of_int (Instrument.value c))
      | Some (Timer x) ->
          line name
            (Printf.sprintf "wall %.6fs  cpu %.6fs  (%d intervals)"
               (Instrument.wall x) (Instrument.cpu x) (Instrument.intervals x))
      | Some (Histogram h) ->
          line name
            (if Instrument.count h = 0 then "empty"
             else
               Printf.sprintf
                 "count %d  sum %.3f  mean %.3f  min %.3f  max %.3f  p50<=%.3g"
                 (Instrument.count h) (Instrument.sum h) (Instrument.mean h)
                 (Instrument.min_value h) (Instrument.max_value h)
                 (Instrument.quantile h 0.5)))
    (names t);
  if Trace.length t.tr > 0 then
    Printf.bprintf b "  trace: %d event(s) retained (%d recorded)\n"
      (Trace.length t.tr) (Trace.total t.tr);
  Buffer.contents b
