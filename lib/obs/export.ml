(* Rendering surfaces for the obs layer. Two output formats:

   - OpenMetrics text exposition, built from a neutral [family] list so
     layers above mv_obs (the per-view health ledger lives in mv_core)
     can contribute families without a dependency cycle.
   - One canonical JSON schema for registry dumps, so every subcommand
     that prints metrics emits the same document shape. *)

module I = Instrument

type labels = (string * string) list

type summary = {
  s_count : int;
  s_sum : float;
  s_quantiles : (float * float) list;  (** (q, value) *)
}

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Summary of { name : string; help : string; samples : (labels * summary) list }

(* ---- OpenMetrics text format ---- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labels_str = function
  | [] -> ""
  | ls ->
      let parts =
        List.map
          (fun (k, v) ->
            Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
          ls
      in
      "{" ^ String.concat "," parts ^ "}"

let float_str f =
  (* OpenMetrics has no null: non-finite summary stats render as NaN,
     which scrapers treat as "no data" *)
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let render_family b = function
  | Counter { name; help; samples } ->
      let name = sanitize name in
      Printf.bprintf b "# TYPE %s counter\n" name;
      if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
      List.iter
        (fun (ls, v) ->
          Printf.bprintf b "%s_total%s %s\n" name (labels_str ls) (float_str v))
        samples
  | Gauge { name; help; samples } ->
      let name = sanitize name in
      Printf.bprintf b "# TYPE %s gauge\n" name;
      if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
      List.iter
        (fun (ls, v) ->
          Printf.bprintf b "%s%s %s\n" name (labels_str ls) (float_str v))
        samples
  | Summary { name; help; samples } ->
      let name = sanitize name in
      Printf.bprintf b "# TYPE %s summary\n" name;
      if help <> "" then Printf.bprintf b "# HELP %s %s\n" name help;
      List.iter
        (fun (ls, s) ->
          List.iter
            (fun (q, v) ->
              Printf.bprintf b "%s%s %s\n" name
                (labels_str (ls @ [ ("quantile", Printf.sprintf "%g" q) ]))
                (float_str v))
            s.s_quantiles;
          Printf.bprintf b "%s_sum%s %s\n" name (labels_str ls)
            (float_str s.s_sum);
          Printf.bprintf b "%s_count%s %d\n" name (labels_str ls) s.s_count)
        samples

let render families =
  let b = Buffer.create 4096 in
  List.iter (render_family b) families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ---- families from a registry ---- *)

let families_of_registry ?(prefix = "") reg =
  List.filter_map
    (fun name ->
      let fname = prefix ^ name in
      match Registry.find reg name with
      | Some (Registry.Counter c) ->
          Some
            (Counter
               {
                 name = fname;
                 help = "";
                 samples = [ ([], float_of_int (I.value c)) ];
               })
      | Some (Registry.Timer t) ->
          Some
            (Summary
               {
                 name = fname ^ "_seconds";
                 help = "accumulated wall time";
                 samples =
                   [ ([], { s_count = I.intervals t; s_sum = I.wall t; s_quantiles = [] }) ];
               })
      | Some (Registry.Histogram h) ->
          let q p = (p, I.quantile h p) in
          Some
            (Summary
               {
                 name = fname;
                 help = "";
                 samples =
                   [
                     ( [],
                       {
                         s_count = I.count h;
                         s_sum = I.sum h;
                         s_quantiles = [ q 0.5; q 0.9; q 0.95; q 0.99 ];
                       } );
                   ];
               })
      | None -> None)
    (Registry.names reg)

(* CPU time is dropped from the summary mapping above (OpenMetrics
   summaries carry one sum); expose it as a companion counter family so
   nothing the registry tracks is unreachable from a scrape. *)
let timer_cpu_families ?(prefix = "") reg =
  List.filter_map
    (fun name ->
      match Registry.find reg name with
      | Some (Registry.Timer t) ->
          Some
            (Counter
               {
                 name = prefix ^ name ^ "_cpu_seconds";
                 help = "accumulated cpu time";
                 samples = [ ([], I.cpu t) ];
               })
      | _ -> None)
    (Registry.names reg)

(* ---- families from a timeline ---- *)

let families_of_timeline ?(prefix = "timeline.") tl =
  let ss = Timeline.samples tl in
  let nwin = List.length ss in
  let window_label i = [ ("window", string_of_int i) ] in
  let durs =
    Gauge
      {
        name = prefix ^ "window_dur_seconds";
        help = "sampling window length";
        samples = List.mapi (fun i s -> (window_label i, s.Timeline.dur)) ss;
      }
  in
  (* group per metric: one family whose samples are the windows *)
  let tbl = Hashtbl.create 32 in
  let push name sample =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl name) in
    Hashtbl.replace tbl name (sample :: prev)
  in
  List.iteri
    (fun i s ->
      List.iter
        (fun (n, d) -> push (n ^ "_window_delta") (window_label i, float_of_int d))
        s.Timeline.counters;
      List.iter
        (fun (n, w) ->
          push (n ^ "_window_count")
            (window_label i, float_of_int w.Timeline.w_count);
          push (n ^ "_window_p50") (window_label i, w.Timeline.w_p50);
          push (n ^ "_window_p99") (window_label i, w.Timeline.w_p99))
        s.Timeline.histograms)
    ss;
  let grouped =
    Hashtbl.fold
      (fun name samples acc ->
        Gauge { name = prefix ^ name; help = ""; samples = List.rev samples }
        :: acc)
      tbl []
    |> List.sort (fun a b ->
           let name = function
             | Counter { name; _ } -> name
             | Gauge { name; _ } -> name
             | Summary { name; _ } -> name
           in
           String.compare (name a) (name b))
  in
  if nwin = 0 then [] else durs :: grouped

(* ---- one canonical JSON schema for registry dumps ---- *)

let registry_json ?timeline ?extra reg =
  let base = [ ("metrics", Registry.to_json reg) ] in
  let base =
    match timeline with
    | Some tl -> base @ [ ("timeline", Timeline.to_json tl) ]
    | None -> base
  in
  let base = match extra with Some kvs -> base @ kvs | None -> base in
  Json.Obj base
