(** A named-instrument registry. Instruments are created on first use and
    identified by dotted names ([component.metric] — see DESIGN.md's
    Observability section for the naming scheme). A registry is either the
    process-wide {!global} one or a scoped instance owned by a subsystem
    (each [Mv_core.Registry] carries its own, so concurrent sweeps don't
    bleed counts into each other).

    Domain-safe: instrument creation is serialized by a registry mutex and
    each instrument is itself safe for concurrent updates (atomic counters,
    mutexed timers/histograms — see {!Instrument}), so one registry can be
    shared by all worker domains of a parallel run and snapshots taken
    while they record remain well-formed. *)

type t

exception Kind_mismatch of string
(** Raised when a name is requested as one instrument kind after having
    been created as another. *)

val create : ?trace_capacity:int -> unit -> t
(** A fresh scoped registry. [trace_capacity] bounds the event ring
    (default 0: tracing off). *)

val global : t
(** The process-wide registry (trace capacity 256). *)

val counter : t -> string -> Instrument.counter

val timer : t -> string -> Instrument.timer

val histogram : t -> string -> Instrument.histogram

val trace : t -> Trace.t

type instrument =
  | Counter of Instrument.counter
  | Timer of Instrument.timer
  | Histogram of Instrument.histogram

val find : t -> string -> instrument option

val names : t -> string list
(** Sorted. *)

val counter_value : t -> string -> int
(** 0 when the counter does not exist — convenient for reading metrics
    that are only recorded on some code paths. *)

val reset : t -> unit
(** Zero every instrument and clear the trace; instruments stay
    registered. *)

val to_json : t -> Json.t
(** Snapshot: [{"counters": ..., "timers": ..., "histograms": ...,
    "trace": [...]}]. Instruments appear in sorted name order. *)

val render : t -> string
(** Human-readable table of every instrument. *)
