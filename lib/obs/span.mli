(** Hierarchical spans: a per-query trace of the whole optimize pipeline.

    Unlike the flat event ring of {!Trace} (always-on, bounded, aggregate),
    a span collector is created for ONE traced invocation — [mvopt explain
    --trace-out] or a test — and records a tree: every span has a parent,
    a start timestamp and a duration, plus typed attributes attached as the
    traced code learns things (candidate counts, the [Reject.t] that killed
    a view, cache hit/miss). The tree exports losslessly to Chrome/Perfetto
    [trace_event] JSON ({!to_trace_event_json}) and renders as an indented
    text tree ({!render}).

    Timestamps are monotone within a collector: each recorded time is
    clamped to be no earlier than the previously recorded one, so a span
    never appears to start before its parent even if the wall clock steps.

    The pipeline threads a {!scope} [option]; [None] (the default
    everywhere) short-circuits every helper to a single pattern match, so
    untraced runs pay nothing. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Complete  (** has a duration *) | Instant  (** a point event *)

type span = {
  id : int;  (** creation order, from 1; 0 never names a span *)
  parent : int;  (** 0 = a root span *)
  name : string;
  kind : kind;
  ts : float;  (** seconds since the collector was created, monotone *)
  mutable dur : float;  (** seconds; negative while still open *)
  mutable attrs : (string * attr) list;
}

type t

val create : unit -> t

val start : t -> ?parent:int -> string -> int
(** Open a span; returns its id. *)

val add_attrs : t -> int -> (string * attr) list -> unit
(** Append attributes to an open or finished span. Unknown ids are
    ignored (a span sink never throws into the traced pipeline). *)

val finish : t -> int -> unit
(** Close a span, fixing its duration. Idempotent: finishing twice keeps
    the first duration. *)

val instant : t -> ?parent:int -> string -> (string * attr) list -> unit
(** A zero-duration point event (cache hit, pruning note). *)

val spans : t -> span list
(** All spans in creation (= id) order, open ones included. *)

(** {1 Scoped threading}

    The pipeline functions take [?spans:scope] and pass a child scope
    down; [wrap] is the only way scopes nest, so parent ids always form a
    tree. *)

type scope = { col : t; parent : int }

val root : t -> scope
(** The top-level scope of a collector (spans opened under it are
    roots). *)

val wrap :
  scope option ->
  ?attrs:(unit -> (string * attr) list) ->
  string ->
  (scope option -> 'a) ->
  'a
(** [wrap sc name f] runs [f] inside a new span under [sc]. With [None]
    it is just [f None] — no clock reads, no allocation. [attrs] is a
    thunk so disabled runs never build the list. Re-raises (closing the
    span) if [f] does. *)

val note : scope option -> string -> (unit -> (string * attr) list) -> unit
(** An instant event under the scope; no-op on [None]. *)

val annotate : scope option -> (unit -> (string * attr) list) -> unit
(** Append attributes to the scope's own span (the one [wrap] opened);
    no-op on [None] or on a root scope. *)

(** {1 Export} *)

val to_trace_event_json : ?process_name:string -> t -> Json.t
(** The Chrome/Perfetto [trace_event] document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Complete spans are
    ["ph": "X"] events with microsecond [ts]/[dur]; instants are
    ["ph": "i"]; one ["ph": "M"] metadata event names the process. Span
    ids and parent ids travel in each event's [args], so the exact tree
    survives the flat encoding. Spans still open at export time get
    [dur] 0 and an [unfinished] arg. *)

val render : t -> string
(** Indented text tree, children in creation order: name, duration in ms,
    attributes as [k=v]. *)
