let now_wall () = Unix.gettimeofday ()

let now_cpu () = Sys.time ()

(* All three instrument kinds are safe to update and read from any OCaml
   domain. Counters are single atomic ints ([Atomic.fetch_and_add] — no
   lock, no lost updates, never transiently negative). Timers and
   histograms accumulate several related fields, so they carry a tiny
   mutex: an update is one uncontended lock/unlock — nanoseconds next to
   the work being measured — and a snapshot taken mid-update sees a
   consistent record, not a half-applied one. *)

(* ---- counters ---- *)

type counter = int Atomic.t

let counter () = Atomic.make 0

let incr c = ignore (Atomic.fetch_and_add c 1)

let add c k = ignore (Atomic.fetch_and_add c k)

let value c = Atomic.get c

let reset_counter c = Atomic.set c 0

(* ---- timers ---- *)

type timer = {
  t_lock : Mutex.t;
  mutable t_wall : float;
  mutable t_cpu : float;
  mutable t_count : int;
}

let timer () =
  { t_lock = Mutex.create (); t_wall = 0.0; t_cpu = 0.0; t_count = 0 }

let record t ~wall ~cpu =
  Mutex.protect t.t_lock (fun () ->
      t.t_wall <- t.t_wall +. wall;
      t.t_cpu <- t.t_cpu +. cpu;
      t.t_count <- t.t_count + 1)

let wall t = Mutex.protect t.t_lock (fun () -> t.t_wall)

let cpu t = Mutex.protect t.t_lock (fun () -> t.t_cpu)

let intervals t = Mutex.protect t.t_lock (fun () -> t.t_count)

let reset_timer t =
  Mutex.protect t.t_lock (fun () ->
      t.t_wall <- 0.0;
      t.t_cpu <- 0.0;
      t.t_count <- 0)

(* ---- histograms ---- *)

(* Bucket [i] covers (2^(i-64-1), 2^(i-64)]: exponents from 2^-64 up to
   2^63 cover everything from sub-nanosecond timings to huge row counts. *)
let buckets = 128

let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    (* v in (2^(e-1), 2^e] up to frexp rounding *)
    max 0 (min (buckets - 1) (e + 64))

let bucket_upper i = Float.ldexp 1.0 (i - 64)

let bucket_lower i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 65)

type histogram = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let histogram () =
  {
    h_lock = Mutex.create ();
    h_count = 0;
    h_sum = 0.0;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    h_buckets = Array.make buckets 0;
  }

let observe h v =
  Mutex.protect h.h_lock (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1)

let count h = Mutex.protect h.h_lock (fun () -> h.h_count)

let sum h = Mutex.protect h.h_lock (fun () -> h.h_sum)

let mean h =
  Mutex.protect h.h_lock (fun () ->
      if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)

let min_value h = Mutex.protect h.h_lock (fun () -> h.h_min)

let max_value h = Mutex.protect h.h_lock (fun () -> h.h_max)

(* Shared quantile walk: find the bucket holding the q-quantile
   observation, then either report its upper bound (the historical coarse
   estimate) or interpolate linearly within it from the rank's position
   among the bucket's observations, clamped to the exact min/max. *)
let quantile_impl ~interpolate h q =
  Mutex.protect h.h_lock (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let rank =
          let r = int_of_float (Float.of_int h.h_count *. q) in
          max 0 (min (h.h_count - 1) r)
        in
        let rec go i seen =
          if i >= buckets then h.h_max
          else
            let c = h.h_buckets.(i) in
            let seen' = seen + c in
            if seen' > rank then
              if not interpolate then bucket_upper i
              else begin
                let lower = bucket_lower i and upper = bucket_upper i in
                let frac = float_of_int (rank - seen + 1) /. float_of_int c in
                let v = lower +. ((upper -. lower) *. frac) in
                Float.max h.h_min (Float.min h.h_max v)
              end
            else go (i + 1) seen'
        in
        go 0 0
      end)

let quantile h q = quantile_impl ~interpolate:true h q

let quantile_upper h q = quantile_impl ~interpolate:false h q

(* ---- merge: fold per-domain instruments into one ---- *)

(* Each source is read under its own lock so a merge taken while other
   domains record sees each instrument consistently; the destination is
   fresh and local, so no lock is needed on the write side. *)

let merge_timers ts =
  let m = timer () in
  List.iter
    (fun t ->
      let w, c, n =
        Mutex.protect t.t_lock (fun () -> (t.t_wall, t.t_cpu, t.t_count))
      in
      m.t_wall <- m.t_wall +. w;
      m.t_cpu <- m.t_cpu +. c;
      m.t_count <- m.t_count + n)
    ts;
  m

let merge_histograms hs =
  let m = histogram () in
  List.iter
    (fun h ->
      Mutex.protect h.h_lock (fun () ->
          m.h_count <- m.h_count + h.h_count;
          m.h_sum <- m.h_sum +. h.h_sum;
          if h.h_min < m.h_min then m.h_min <- h.h_min;
          if h.h_max > m.h_max then m.h_max <- h.h_max;
          Array.iteri
            (fun i c -> m.h_buckets.(i) <- m.h_buckets.(i) + c)
            h.h_buckets))
    hs;
  m

(* ---- histogram snapshots: immutable copies for windowed reporting ---- *)

type hsnap = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
}

let hsnap_empty =
  {
    hs_count = 0;
    hs_sum = 0.0;
    hs_min = Float.infinity;
    hs_max = Float.neg_infinity;
    hs_buckets = Array.make buckets 0;
  }

let snapshot h =
  Mutex.protect h.h_lock (fun () ->
      {
        hs_count = h.h_count;
        hs_sum = h.h_sum;
        hs_min = h.h_min;
        hs_max = h.h_max;
        hs_buckets = Array.copy h.h_buckets;
      })

(* Window = later cumulative state minus an earlier one. The exact
   min/max of just the window is unrecoverable from cumulative state, so
   they are approximated by the bounds of the first/last bucket that saw
   traffic in the window — tight to within one power-of-two bucket, which
   matches the histogram's own resolution. *)
let hsnap_diff ~prev cur =
  let bs =
    Array.init buckets (fun i -> max 0 (cur.hs_buckets.(i) - prev.hs_buckets.(i)))
  in
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if !lo = Float.infinity then lo := bucket_lower i;
        hi := bucket_upper i
      end)
    bs;
  {
    hs_count = max 0 (cur.hs_count - prev.hs_count);
    hs_sum = Float.max 0.0 (cur.hs_sum -. prev.hs_sum);
    hs_min = !lo;
    hs_max = !hi;
    hs_buckets = bs;
  }

let hsnap_quantile s q =
  if s.hs_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (Float.of_int s.hs_count *. q) in
      max 0 (min (s.hs_count - 1) r)
    in
    let rec go i seen =
      if i >= buckets then s.hs_max
      else
        let c = s.hs_buckets.(i) in
        let seen' = seen + c in
        if seen' > rank then begin
          let lower = bucket_lower i and upper = bucket_upper i in
          let frac = float_of_int (rank - seen + 1) /. float_of_int c in
          let v = lower +. ((upper -. lower) *. frac) in
          Float.max s.hs_min (Float.min s.hs_max v)
        end
        else go (i + 1) seen'
    in
    go 0 0
  end

let reset_histogram h =
  Mutex.protect h.h_lock (fun () ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity;
      Array.fill h.h_buckets 0 buckets 0)

(* ---- spans ---- *)

type span = { s_wall : float; s_cpu : float }

let enter () = { s_wall = now_wall (); s_cpu = now_cpu () }

let elapsed s = (now_wall () -. s.s_wall, now_cpu () -. s.s_cpu)

let exit_into t s =
  let wall, cpu = elapsed s in
  record t ~wall ~cpu

let time t f =
  let s = enter () in
  match f () with
  | v ->
      exit_into t s;
      v
  | exception e ->
      exit_into t s;
      raise e

let time_hist h f =
  let t0 = now_wall () in
  match f () with
  | v ->
      observe h (now_wall () -. t0);
      v
  | exception e ->
      observe h (now_wall () -. t0);
      raise e
