(** A minimal JSON tree with a printer and a parser — just enough for
    metric snapshots and the bench trajectory files, with no external
    dependency. Printing always re-parses to the same tree (floats that
    would render as integers get a trailing [.0]; NaN and infinities are
    rendered as [null], which JSON cannot represent). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?minify:bool -> t -> string
(** Render. Default is pretty-printed with two-space indentation. *)

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field of an object, [None] elsewhere. *)

val path : string list -> t -> t option
(** Nested {!member} lookup. *)

val equal : t -> t -> bool
(** Structural equality; object field order is significant. *)
