(** Rendering surfaces for the obs layer.

    The OpenMetrics renderer consumes a neutral {!family} list so layers
    above [mv_obs] (e.g. the per-view health ledger in [mv_core]) can
    contribute metric families without a dependency cycle, and
    {!registry_json} is the one canonical JSON schema every registry-dump
    code path shares. *)

type labels = (string * string) list

type summary = {
  s_count : int;
  s_sum : float;
  s_quantiles : (float * float) list;  (** (q, value) pairs *)
}

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Summary of {
      name : string;
      help : string;
      samples : (labels * summary) list;
    }

val render : family list -> string
(** OpenMetrics text exposition: one [# TYPE] block per family (counters
    get the [_total] suffix, summaries emit [quantile]-labelled samples
    plus [_sum]/[_count]), terminated by [# EOF]. Metric and label names
    are sanitized to the OpenMetrics charset; non-finite values render as
    [NaN]/[+Inf]/[-Inf]. *)

val families_of_registry : ?prefix:string -> Registry.t -> family list
(** Counters map to counter families, histograms to summaries with
    p50/p90/p95/p99, timers to a [_seconds] summary (wall time, interval
    count, no quantiles). *)

val timer_cpu_families : ?prefix:string -> Registry.t -> family list
(** Companion [_cpu_seconds] counter per timer — CPU time has no slot in
    the summary mapping above. *)

val families_of_timeline : ?prefix:string -> Timeline.t -> family list
(** Each retained window becomes a [window]-labelled gauge sample:
    [<counter>_window_delta], [<histogram>_window_count/_p50/_p99], plus
    a shared [window_dur_seconds] family. Empty when no samples. *)

val registry_json :
  ?timeline:Timeline.t -> ?extra:(string * Json.t) list -> Registry.t -> Json.t
(** The canonical dump schema: [{"metrics": <Registry.to_json>}], plus a
    ["timeline"] section when given one, plus any [extra] top-level
    sections (e.g. a health ledger). *)
