(** The three instrument kinds plus lightweight spans.

    Counters are monotone event counts, timers accumulate both wall-clock
    and CPU time (the paper reports elapsed optimization time; [Sys.time]
    alone silently under-reports any I/O or scheduling), and histograms
    keep streaming moments plus power-of-two buckets for cheap
    percentile estimates. None of them allocate on the update path.

    All instruments are domain-safe: counters are atomic ints (lock-free,
    no lost updates), timers and histograms serialize their multi-field
    updates and reads through a per-instrument mutex, so a snapshot taken
    while other domains record is internally consistent and never sees
    negative or half-applied values. *)

type counter

val counter : unit -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val reset_counter : counter -> unit

type timer

val timer : unit -> timer

val record : timer -> wall:float -> cpu:float -> unit
(** Accumulate one measured interval (seconds). *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall and CPU duration. Re-raises, still
    recording the time spent, if the thunk does. *)

val wall : timer -> float

val cpu : timer -> float

val intervals : timer -> int
(** Number of recorded intervals. *)

val reset_timer : timer -> unit

type histogram

val histogram : unit -> histogram

val observe : histogram -> float -> unit

val count : histogram -> int

val sum : histogram -> float

val mean : histogram -> float
(** 0 when empty. *)

val min_value : histogram -> float
(** +inf when empty (serialized as null). *)

val max_value : histogram -> float
(** -inf when empty (serialized as null). *)

val quantile : histogram -> float -> float
(** Estimate of the q-quantile observation: locate the power-of-two
    bucket holding it, then interpolate linearly within the bucket from
    the rank's position among the bucket's observations, clamped to the
    exact observed min/max. 0 when empty. Still bucket-limited — a
    reporting estimate, not exact statistics — but far tighter than the
    bucket upper bound for mid-bucket ranks. *)

val quantile_upper : histogram -> float -> float
(** The historical coarse estimate: the upper bound of the power-of-two
    bucket holding the q-quantile observation; 0 when empty. Kept for
    tests and for callers that want a guaranteed overestimate. *)

val reset_histogram : histogram -> unit

val time_hist : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration (seconds) as one
    histogram sample. Re-raises, still recording, if the thunk does. *)

(** Spans: grab both clocks on entry, hand the interval to a timer on
    exit. *)

type span

val enter : unit -> span

val elapsed : span -> float * float
(** (wall, cpu) seconds since {!enter}. *)

val exit_into : timer -> span -> unit

val now_wall : unit -> float

val now_cpu : unit -> float
