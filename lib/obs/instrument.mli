(** The three instrument kinds plus lightweight spans.

    Counters are monotone event counts, timers accumulate both wall-clock
    and CPU time (the paper reports elapsed optimization time; [Sys.time]
    alone silently under-reports any I/O or scheduling), and histograms
    keep streaming moments plus power-of-two buckets for cheap
    percentile estimates. None of them allocate on the update path.

    All instruments are domain-safe: counters are atomic ints (lock-free,
    no lost updates), timers and histograms serialize their multi-field
    updates and reads through a per-instrument mutex, so a snapshot taken
    while other domains record is internally consistent and never sees
    negative or half-applied values. *)

type counter

val counter : unit -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val reset_counter : counter -> unit

type timer

val timer : unit -> timer

val record : timer -> wall:float -> cpu:float -> unit
(** Accumulate one measured interval (seconds). *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall and CPU duration. Re-raises, still
    recording the time spent, if the thunk does. *)

val wall : timer -> float

val cpu : timer -> float

val intervals : timer -> int
(** Number of recorded intervals. *)

val reset_timer : timer -> unit

type histogram

val histogram : unit -> histogram

val observe : histogram -> float -> unit

val count : histogram -> int

val sum : histogram -> float

val mean : histogram -> float
(** 0 when empty. *)

val min_value : histogram -> float
(** +inf when empty (serialized as null). *)

val max_value : histogram -> float
(** -inf when empty (serialized as null). *)

val quantile : histogram -> float -> float
(** Estimate of the q-quantile observation: locate the power-of-two
    bucket holding it, then interpolate linearly within the bucket from
    the rank's position among the bucket's observations, clamped to the
    exact observed min/max. 0 when empty. Still bucket-limited — a
    reporting estimate, not exact statistics — but far tighter than the
    bucket upper bound for mid-bucket ranks. *)

val quantile_upper : histogram -> float -> float
(** The historical coarse estimate: the upper bound of the power-of-two
    bucket holding the q-quantile observation; 0 when empty. Kept for
    tests and for callers that want a guaranteed overestimate. *)

val reset_histogram : histogram -> unit

(** {2 Bucket geometry}

    Histograms bucket by power of two: bucket [i] covers
    [(2^(i-64-1), 2^(i-64)]], with bucket 0 absorbing everything [<= 0].
    Exposed so merge/windowing tests can reason about resolution. *)

val buckets : int
(** Number of buckets (128). *)

val bucket_of : float -> int

val bucket_lower : int -> float
(** Lower bound of bucket [i]; 0 for bucket 0. *)

val bucket_upper : int -> float

(** {2 Merging}

    Fold several per-domain instruments into one fresh aggregate. Each
    source is read under its own lock, so merging while other domains
    record sees every source internally consistent. Merging is exactly
    equivalent to having observed the union of the sources' samples on
    one instrument, except that a histogram quantile of the merge may
    differ from the union's by at most the one-bucket resolution. *)

val merge_timers : timer list -> timer

val merge_histograms : histogram list -> histogram

(** {2 Histogram snapshots}

    Immutable copies of a histogram's cumulative state, cheap to diff:
    the timeline sampler snapshots each tick and reports per-window
    (delta) quantiles instead of cumulative ones. *)

type hsnap = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_buckets : int array;
}

val hsnap_empty : hsnap

val snapshot : histogram -> hsnap

val hsnap_diff : prev:hsnap -> hsnap -> hsnap
(** The window between two cumulative snapshots of the same histogram.
    Counts and sums subtract (clamped at zero); the window min/max are
    approximated by the bounds of the first/last bucket with traffic in
    the window — exact min/max of only the window is unrecoverable from
    cumulative state. *)

val hsnap_quantile : hsnap -> float -> float
(** Interpolated quantile of a snapshot, clamped to its min/max; same
    estimator as {!quantile}. 0 when empty. *)

val time_hist : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration (seconds) as one
    histogram sample. Re-raises, still recording, if the thunk does. *)

(** Spans: grab both clocks on entry, hand the interval to a timer on
    exit. *)

type span

val enter : unit -> span

val elapsed : span -> float * float
(** (wall, cpu) seconds since {!enter}. *)

val exit_into : timer -> span -> unit

val now_wall : unit -> float

val now_cpu : unit -> float
