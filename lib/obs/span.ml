type attr = Str of string | Int of int | Float of float | Bool of bool

type kind = Complete | Instant

type span = {
  id : int;
  parent : int;
  name : string;
  kind : kind;
  ts : float;
  mutable dur : float;
  mutable attrs : (string * attr) list;
}

type t = {
  lock : Mutex.t;
  created : float;
  mutable last_ts : float;
      (** monotone clamp: the largest timestamp handed out so far *)
  mutable next : int;
  tbl : (int, span) Hashtbl.t;
  mutable rev : span list;  (** newest first *)
}

let create () =
  {
    lock = Mutex.create ();
    created = Unix.gettimeofday ();
    last_ts = 0.0;
    next = 1;
    tbl = Hashtbl.create 64;
    rev = [];
  }

(* Call under the lock. *)
let now t =
  let n = Unix.gettimeofday () -. t.created in
  let n = if n > t.last_ts then n else t.last_ts in
  t.last_ts <- n;
  n

let add t ?(parent = 0) name kind dur =
  Mutex.protect t.lock (fun () ->
      let id = t.next in
      t.next <- id + 1;
      let s = { id; parent; name; kind; ts = now t; dur; attrs = [] } in
      Hashtbl.replace t.tbl id s;
      t.rev <- s :: t.rev;
      s)

let start t ?parent name = (add t ?parent name Complete (-1.0)).id

let add_attrs t id kvs =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some s -> s.attrs <- s.attrs @ kvs
      | None -> ())

let finish t id =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some s when s.dur < 0.0 -> s.dur <- now t -. s.ts
      | _ -> ())

let instant t ?parent name kvs =
  let s = add t ?parent name Instant 0.0 in
  if kvs <> [] then Mutex.protect t.lock (fun () -> s.attrs <- kvs)

let spans t = Mutex.protect t.lock (fun () -> List.rev t.rev)

(* ---- scoped threading ---- *)

type scope = { col : t; parent : int }

let root col = { col; parent = 0 }

let wrap sc ?attrs name f =
  match sc with
  | None -> f None
  | Some { col; parent } -> (
      let id = start col ~parent name in
      (match attrs with None -> () | Some g -> add_attrs col id (g ()));
      let sub = Some { col; parent = id } in
      match f sub with
      | v ->
          finish col id;
          v
      | exception e ->
          finish col id;
          raise e)

let note sc name g =
  match sc with
  | None -> ()
  | Some { col; parent } -> instant col ~parent name (g ())

let annotate sc g =
  match sc with
  | None -> ()
  | Some { col; parent } -> if parent <> 0 then add_attrs col parent (g ())

(* ---- export ---- *)

let attr_json = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let to_trace_event_json ?(process_name = "mvopt") t =
  let micro x = Json.Float (x *. 1e6) in
  let ev (s : span) =
    let open_span = s.kind = Complete && s.dur < 0.0 in
    Json.Obj
      ([
         ("name", Json.String s.name);
         ("cat", Json.String "mv");
         ( "ph",
           Json.String (match s.kind with Complete -> "X" | Instant -> "i") );
         ("ts", micro s.ts);
       ]
      @ (match s.kind with
        | Complete -> [ ("dur", micro (if open_span then 0.0 else s.dur)) ]
        | Instant -> [ ("s", Json.String "t") ])
      @ [
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj
              (("span_id", Json.Int s.id)
              :: ("parent_id", Json.Int s.parent)
              :: (if open_span then [ ("unfinished", Json.Bool true) ] else [])
              @ List.map (fun (k, v) -> (k, attr_json v)) s.attrs) );
        ])
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta :: List.map ev (spans t)));
      ("displayTimeUnit", Json.String "ms");
    ]

let attr_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let render t =
  let all = spans t in
  let children p = List.filter (fun (s : span) -> s.parent = p) all in
  let b = Buffer.create 512 in
  let rec pr depth (s : span) =
    Buffer.add_string b (String.make (2 * depth) ' ');
    Buffer.add_string b s.name;
    (match s.kind with
    | Instant -> Buffer.add_string b " !"
    | Complete ->
        if s.dur >= 0.0 then
          Buffer.add_string b (Printf.sprintf " %.3fms" (s.dur *. 1e3))
        else Buffer.add_string b " (open)");
    if s.attrs <> [] then begin
      Buffer.add_string b "  {";
      Buffer.add_string b
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ attr_string v) s.attrs));
      Buffer.add_string b "}"
    end;
    Buffer.add_char b '\n';
    List.iter (pr (depth + 1)) (children s.id)
  in
  Printf.bprintf b "trace: %d span(s)\n" (List.length all);
  List.iter (pr 1) (children 0);
  Buffer.contents b
