(** A bounded ring buffer of structured events, for rule tracing: each
    view-matching invocation (or any other traced step) appends one event
    and old events fall off the end, so tracing can stay on in long sweeps
    without growing memory. Capacity 0 disables recording entirely. *)

type event = {
  seq : int;  (** global order of the event since the last [clear] *)
  name : string;
  fields : (string * Json.t) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 0 — recording disabled, matching
    {!Registry.create}'s [trace_capacity] default, so tracing is always an
    explicit opt-in. Pass a positive capacity to record. *)

val capacity : t -> int

val enabled : t -> bool

val record : t -> string -> (string * Json.t) list -> unit

val length : t -> int
(** Events currently retained. Safe to call from any domain while others
    record (reads under the ring's mutex; constant-time 0 when capacity
    is 0). *)

val total : t -> int
(** Events recorded since the last [clear], including dropped ones. Same
    domain-safety as {!length}. *)

val events : t -> event list
(** Oldest first. *)

val to_json : t -> Json.t

val clear : t -> unit
