(* A time dimension for the cumulative registry: periodic snapshots of
   every instrument, differenced into per-window samples and kept in a
   fixed-capacity ring. The sampler never touches the instruments'
   update paths beyond the same reads any reporter takes, so its
   overhead is one registry walk per period. *)

module I = Instrument

type hwindow = {
  w_count : int;
  w_sum : float;
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
}

type sample = {
  ts : float;  (** wall clock at the end of the window *)
  dur : float;  (** window length in seconds *)
  counters : (string * int) list;  (** per-window deltas, sorted by name *)
  histograms : (string * hwindow) list;
      (** per-window stats from cumulative bucket diffs, sorted by name *)
}

type t = {
  lock : Mutex.t;
  reg : Registry.t;
  ring : sample option array;
  mutable next : int;  (** ring write cursor *)
  mutable total : int;  (** samples ever taken *)
  prev_counters : (string, int) Hashtbl.t;
  prev_hists : (string, I.hsnap) Hashtbl.t;
  mutable prev_ts : float;
}

let create ?(capacity = 120) reg =
  let capacity = max 1 capacity in
  {
    lock = Mutex.create ();
    reg;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    prev_counters = Hashtbl.create 32;
    prev_hists = Hashtbl.create 16;
    prev_ts = I.now_wall ();
  }

let hwindow_of_diff d =
  {
    w_count = d.I.hs_count;
    w_sum = d.I.hs_sum;
    w_p50 = I.hsnap_quantile d 0.5;
    w_p90 = I.hsnap_quantile d 0.9;
    w_p99 = I.hsnap_quantile d 0.99;
  }

let tick t =
  Mutex.protect t.lock (fun () ->
      let now = I.now_wall () in
      let counters = ref [] and hists = ref [] in
      List.iter
        (fun name ->
          match Registry.find t.reg name with
          | Some (Registry.Counter c) ->
              let v = I.value c in
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt t.prev_counters name)
              in
              Hashtbl.replace t.prev_counters name v;
              counters := (name, v - prev) :: !counters
          | Some (Registry.Histogram h) ->
              let snap = I.snapshot h in
              let prev =
                Option.value ~default:I.hsnap_empty
                  (Hashtbl.find_opt t.prev_hists name)
              in
              Hashtbl.replace t.prev_hists name snap;
              hists := (name, hwindow_of_diff (I.hsnap_diff ~prev snap)) :: !hists
          | _ -> ())
        (Registry.names t.reg);
      let s =
        {
          ts = now;
          dur = now -. t.prev_ts;
          counters = List.rev !counters;
          histograms = List.rev !hists;
        }
      in
      t.prev_ts <- now;
      t.ring.(t.next) <- Some s;
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.total <- t.total + 1)

let samples t =
  Mutex.protect t.lock (fun () ->
      let n = Array.length t.ring in
      let out = ref [] in
      for k = 1 to n do
        (* walk backwards from the newest slot, collecting oldest-first *)
        match t.ring.((t.next - k + (2 * n)) mod n) with
        | Some s -> out := s :: !out
        | None -> ()
      done;
      !out)

let total t = Mutex.protect t.lock (fun () -> t.total)

let capacity t = Array.length t.ring

(* ---- sampler domain ---- *)

type sampler = { stop : bool Atomic.t; dom : unit Domain.t; tl : t }

let start ?(period = 0.05) t =
  let stop = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Unix.sleepf period;
          if not (Atomic.get stop) then tick t
        done)
  in
  { stop; dom; tl = t }

let stop s =
  Atomic.set s.stop true;
  Domain.join s.dom;
  (* one final tick so the tail of the run is never lost *)
  tick s.tl

(* ---- export ---- *)

let sample_json s =
  Json.Obj
    [
      ("ts", Json.Float s.ts);
      ("dur_s", Json.Float s.dur);
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (n, w) ->
               ( n,
                 Json.Obj
                   [
                     ("count", Json.Int w.w_count);
                     ("sum", Json.Float w.w_sum);
                     ("p50", Json.Float w.w_p50);
                     ("p90", Json.Float w.w_p90);
                     ("p99", Json.Float w.w_p99);
                   ] ))
             s.histograms) );
    ]

let to_json t =
  let ss = samples t in
  Json.Obj
    [
      ("capacity", Json.Int (capacity t));
      ("windows", Json.Int (total t));
      ("retained", Json.Int (List.length ss));
      ("samples", Json.List (List.map sample_json ss));
    ]
