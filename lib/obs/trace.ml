type event = { seq : int; name : string; fields : (string * Json.t) list }

type t = {
  cap : int;
  lock : Mutex.t;
  ring : event option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 0) () =
  {
    cap = capacity;
    lock = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    next = 0;
  }

let capacity t = t.cap

let enabled t = t.cap > 0

let record t name fields =
  if t.cap > 0 then
    Mutex.protect t.lock (fun () ->
        t.ring.(t.next mod t.cap) <- Some { seq = t.next; name; fields };
        t.next <- t.next + 1)

(* [next] is mutated under the lock, so cross-domain readers must take it
   too: an unsynchronized read of a plain mutable field is a data race
   under OCaml 5 (it happens to stay well-defined, but the value could be
   torn against a concurrent [clear]'s ring wipe). Capacity 0 never
   records, so the disabled-by-default trace costs nothing even when
   every optimization also feeds the always-on phase histograms. *)
let length t = if t.cap = 0 then 0 else Mutex.protect t.lock (fun () -> min t.next t.cap)

let total t = if t.cap = 0 then 0 else Mutex.protect t.lock (fun () -> t.next)

let events t =
  if t.cap = 0 then []
  else
    Mutex.protect t.lock (fun () ->
        let n = min t.next t.cap in
        List.init n (fun i ->
            Option.get (t.ring.((t.next - n + i) mod t.cap))))

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           (("seq", Json.Int e.seq) :: ("event", Json.String e.name)
           :: e.fields))
       (events t))

let clear t =
  Mutex.protect t.lock (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next <- 0)
