type event = { seq : int; name : string; fields : (string * Json.t) list }

type t = {
  cap : int;
  lock : Mutex.t;
  ring : event option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 0) () =
  {
    cap = capacity;
    lock = Mutex.create ();
    ring = Array.make (max 1 capacity) None;
    next = 0;
  }

let capacity t = t.cap

let enabled t = t.cap > 0

let record t name fields =
  if t.cap > 0 then
    Mutex.protect t.lock (fun () ->
        t.ring.(t.next mod t.cap) <- Some { seq = t.next; name; fields };
        t.next <- t.next + 1)

let length t = min t.next t.cap

let total t = t.next

let events t =
  if t.cap = 0 then []
  else
    Mutex.protect t.lock (fun () ->
        let n = min t.next t.cap in
        List.init n (fun i ->
            Option.get (t.ring.((t.next - n + i) mod t.cap))))

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           (("seq", Json.Int e.seq) :: ("event", Json.String e.name)
           :: e.fields))
       (events t))

let clear t =
  Mutex.protect t.lock (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next <- 0)
