(** A time-series view over a {!Registry}: a fixed-capacity ring of
    periodic samples, each holding per-window counter deltas and
    interpolated histogram quantiles computed from cumulative
    bucket-array diffs (see {!Instrument.hsnap_diff}).

    Sampling is driven either manually ({!tick}) or by a dedicated
    domain ({!start}/{!stop}) so serving and maintenance loops get a
    timeline without instrumenting their hot paths. All state is behind
    one mutex; ticks from the sampler domain and a final tick from
    {!stop} never race. *)

type t

type hwindow = {
  w_count : int;
  w_sum : float;
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
}

type sample = {
  ts : float;  (** wall clock at the end of the window *)
  dur : float;  (** window length in seconds *)
  counters : (string * int) list;  (** per-window deltas, registry order *)
  histograms : (string * hwindow) list;
}

val create : ?capacity:int -> Registry.t -> t
(** Ring of at most [capacity] samples (default 120); older samples are
    overwritten. *)

val tick : t -> unit
(** Take one sample now: every counter's delta and every histogram's
    windowed stats since the previous tick (or since {!create}). *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val total : t -> int
(** Samples ever taken, including overwritten ones. *)

val capacity : t -> int

type sampler

val start : ?period:float -> t -> sampler
(** Spawn a dedicated domain ticking every [period] seconds
    (default 0.05). *)

val stop : sampler -> unit
(** Stop and join the sampler domain, then take one final tick so the
    tail window is captured. *)

val sample_json : sample -> Json.t

val to_json : t -> Json.t
(** [{"capacity": _, "windows": _, "retained": _, "samples": [...]}]. *)
