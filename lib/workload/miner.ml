(** Candidate mining for the view advisor (ROADMAP item 1): enumerate the
    SPJG subexpressions the optimizer's memo would invoke the
    view-matching rule on ({!Mv_opt.Optimizer.enumerate_blocks}) and turn
    each into an indexable view definition. Every candidate is built from
    a concrete workload query, so by construction it matches at least that
    query — no dead candidates (asserted by test/test_advisor.ml). *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Block = Mv_opt.Block

type candidate = { name : string; spjg : Spjg.t; sources : int list }

(* A conjunct spanning two tables is a join predicate; everything else is
   a local (selection) predicate the view can either bake in (exact
   slice) or leave out (general slice). *)
let is_join_pred p =
  let tbls =
    List.sort_uniq compare (List.map (fun c -> c.Col.tbl) (Pred.columns p))
  in
  List.length tbls > 1

(* Every column the query touches on [tables] — outputs, grouping,
   predicate and crossing join columns — so a slice outputting them can
   serve the query (and likely its siblings) however the rest of the plan
   is shaped. *)
let touched_cols (q : Spjg.t) tables =
  Col.Set.elements
    (Col.Set.filter
       (fun c -> List.mem c.Col.tbl tables)
       (Spjg.referenced_columns q))

(* SPJ slices of a multi-table block: the exact slice keeps the query's
   local predicates, the general one only the join predicates (serving
   sibling queries with different constants at the price of a wider
   view). *)
let spj_slices (q : Spjg.t) (block : Spjg.t) : Spjg.t list =
  let tables = block.Spjg.tables in
  let out = Block.out_of_cols (touched_cols q tables) in
  if out = [] then []
  else
    let joins = List.filter is_join_pred block.Spjg.where in
    let mk where =
      match Spjg.make ~tables ~where ~group_by:None ~out with
      | spjg -> Some spjg
      | exception Spjg.Invalid _ -> None
    in
    List.filter_map mk [ block.Spjg.where; joins ]

(* Aggregation candidates of an aggregate query: the perfect aggregate
   (the query's own grouping and predicates) and a general one grouped
   additionally by the local-predicate columns with those predicates
   dropped, so the matcher can re-apply them and regroup. Both carry the
   count_big the indexability rule requires and a SUM per aggregate
   argument (AVG decomposes into SUM + the count). *)
let agg_candidates (q : Spjg.t) : Spjg.t list =
  match q.Spjg.group_by with
  | None -> []
  | Some gs ->
      let sums =
        List.filter_map
          (fun (o : Spjg.out_item) ->
            match o.Spjg.def with
            | Spjg.Aggregate (Spjg.Sum e) -> Some (o.Spjg.name, e)
            | Spjg.Aggregate (Spjg.Avg e) -> Some ("sum_" ^ o.Spjg.name, e)
            | _ -> None)
          q.Spjg.out
      in
      let scalar_of i g =
        match g with
        | Expr.Col c -> Spjg.scalar c.Col.col (Expr.Col c)
        | e -> Spjg.scalar (Printf.sprintf "g%d" i) e
      in
      let mk ~where ~group_by =
        let out =
          List.mapi scalar_of group_by
          @ List.map (fun (n, e) -> Spjg.aggregate n (Spjg.Sum e)) sums
          @ [ Spjg.aggregate "cnt" Spjg.Count_star ]
        in
        match
          Spjg.make ~tables:q.Spjg.tables ~where ~group_by:(Some group_by)
            ~out
        with
        | spjg -> Some spjg
        | exception Spjg.Invalid _ -> None
      in
      let joins, locals = List.partition is_join_pred q.Spjg.where in
      let extra =
        List.concat_map (fun p -> Pred.columns p) locals
        |> List.sort_uniq Col.compare
        |> List.map (fun c -> Expr.Col c)
        |> List.filter (fun e -> not (List.exists (Expr.equal e) gs))
      in
      List.filter_map Fun.id
        [ mk ~where:q.Spjg.where ~group_by:gs;
          mk ~where:joins ~group_by:(gs @ extra) ]

let mine (queries : Spjg.t list) : candidate list =
  let seen = Hashtbl.create 256 in
  let order = ref [] (* SQL keys, reversed first-appearance order *) in
  let record qi spjg =
    let key = Spjg.to_sql spjg in
    match Hashtbl.find_opt seen key with
    | Some (s, sources) ->
        if not (List.mem qi !sources) then sources := qi :: !sources;
        ignore s
    | None ->
        Hashtbl.replace seen key (spjg, ref [ qi ]);
        order := key :: !order
  in
  List.iteri
    (fun qi q ->
      List.iter
        (fun block ->
          if block.Spjg.group_by <> None then
            List.iter (record qi) (agg_candidates q)
          else if List.length block.Spjg.tables >= 2 then
            List.iter (record qi) (spj_slices q block))
        (Mv_opt.Optimizer.enumerate_blocks q))
    queries;
  List.rev !order
  |> List.mapi (fun i key ->
         let spjg, sources = Hashtbl.find seen key in
         {
           name = Printf.sprintf "cand%04d" i;
           spjg;
           sources = List.sort compare !sources;
         })

let definitions cands = List.map (fun c -> (c.name, c.spjg)) cands
