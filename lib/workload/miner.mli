(** Candidate mining for the view advisor: shared SPJG subexpressions and
    grouped-aggregate candidates, enumerated from a workload's queries
    through the optimizer's own block enumeration so every candidate can
    actually be matched. *)

module Spjg = Mv_relalg.Spjg

type candidate = {
  name : string;  (** ["cand%04d"], first-appearance order *)
  spjg : Spjg.t;
  sources : int list;  (** indices of the workload queries that seeded it *)
}

val mine : Spjg.t list -> candidate list
(** Deduplicated (by SQL rendering) candidate definitions, deterministic
    for a fixed query list: per multi-table connected block, an exact
    slice (local predicates baked in) and a general slice (join
    predicates only); per aggregate query, the perfect aggregate and a
    generalized regroupable one. Every candidate derives from a concrete
    query, so each matches at least one workload query. *)

val definitions : candidate list -> (string * Spjg.t) list
(** Name/definition pairs in mining order, as {!Mv_opt.Advisor.advise}
    expects. *)
