(** Deterministic TPC-H-style data generator.

    Cardinalities follow the TPC-H ratios, scaled down by the [scale]
    parameter (scale 1 is a few hundred rows — enough to exercise every
    code path while keeping tests fast). All foreign keys are valid by
    construction; comments embed searchable substrings so LIKE predicates
    select non-trivial subsets. *)

open Mv_base
module Prng = Mv_util.Prng

let date_lo = Option.get (Date.of_string "1992-01-01")
let date_hi = Option.get (Date.of_string "1998-12-31")

let words =
  [|
    "steel"; "copper"; "brass"; "linen"; "silk"; "ivory"; "amber"; "azure";
    "coral"; "olive"; "plum"; "wheat"; "snow"; "mint"; "rose"; "navy";
  |]

let word rng = words.(Prng.int rng (Array.length words))

let comment rng =
  Printf.sprintf "%s %s %s" (word rng) (word rng) (word rng)

let segments = [| "BUILDING"; "AUTOMOBILE"; "MACHINERY"; "HOUSEHOLD"; "FURNITURE" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let shipmodes = [| "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB"; "REG AIR" |]
let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let containers = [| "SM CASE"; "LG BOX"; "MED BAG"; "JUMBO JAR"; "WRAP PACK" |]
let types_ = [| "ECONOMY ANODIZED"; "STANDARD POLISHED"; "PROMO BURNISHED"; "SMALL PLATED" |]
let nations_ =
  [|
    "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA"; "FRANCE";
    "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN"; "JORDAN";
    "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA"; "ROMANIA";
    "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM"; "UNITED STATES";
  |]
let regions_ = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

type counts = {
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

let counts_of_scale scale =
  {
    suppliers = max 5 (10 * scale);
    parts = max 10 (40 * scale);
    customers = 30 * scale;
    orders = 90 * scale;
  }

let i x = Value.Int x
let s x = Value.Str x
let d x = Value.Date x

let generate ?(seed = 42) ?(scale = 1) () : Mv_engine.Database.t =
  let rng = Prng.create seed in
  let db = Mv_engine.Database.create Schema.schema in
  let c = counts_of_scale scale in
  (* region *)
  Array.iteri
    (fun k name ->
      Mv_engine.Database.insert db "region" [| i k; s name; s (comment rng) |])
    regions_;
  (* nation *)
  Array.iteri
    (fun k name ->
      Mv_engine.Database.insert db "nation"
        [| i k; s name; i (Prng.int rng (Array.length regions_)); s (comment rng) |])
    nations_;
  (* supplier *)
  for k = 1 to c.suppliers do
    Mv_engine.Database.insert db "supplier"
      [|
        i k;
        s (Printf.sprintf "Supplier#%04d" k);
        s (comment rng);
        i (Prng.int rng (Array.length nations_));
        s (Printf.sprintf "27-%03d-%04d" (Prng.int rng 1000) (Prng.int rng 10000));
        i (Prng.int_range rng (-99999) 999999);
        s (comment rng);
      |]
  done;
  (* customer *)
  for k = 1 to c.customers do
    Mv_engine.Database.insert db "customer"
      [|
        i k;
        s (Printf.sprintf "Customer#%06d" k);
        s (comment rng);
        i (Prng.int rng (Array.length nations_));
        s (Printf.sprintf "13-%03d-%04d" (Prng.int rng 1000) (Prng.int rng 10000));
        i (Prng.int_range rng (-99999) 999999);
        s (Prng.pick rng (Array.to_list segments));
        s (comment rng);
      |]
  done;
  (* part *)
  for k = 1 to c.parts do
    Mv_engine.Database.insert db "part"
      [|
        i k;
        s (Printf.sprintf "%s %s part" (word rng) (word rng));
        s (Printf.sprintf "Manufacturer#%d" (1 + Prng.int rng 5));
        s (Printf.sprintf "Brand#%d%d" (1 + Prng.int rng 5) (1 + Prng.int rng 5));
        s (Prng.pick rng (Array.to_list types_));
        i (1 + Prng.int rng 50);
        s (Prng.pick rng (Array.to_list containers));
        i (90000 + Prng.int rng 120000);
        s (comment rng);
      |]
  done;
  (* partsupp: 2 suppliers per part, distinct *)
  for pk = 1 to c.parts do
    let s1 = 1 + Prng.int rng c.suppliers in
    let s2 = 1 + ((s1 + Prng.int rng (c.suppliers - 1)) mod c.suppliers) in
    List.iter
      (fun sk ->
        Mv_engine.Database.insert db "partsupp"
          [|
            i pk; i sk;
            i (1 + Prng.int rng 9999);
            i (100 + Prng.int rng 99900);
            s (comment rng);
          |])
      (List.sort_uniq compare [ s1; s2 ])
  done;
  (* orders and lineitem *)
  let line_count = ref 0 in
  for ok = 1 to c.orders do
    let odate = Prng.int_range rng date_lo (date_hi - 180) in
    Mv_engine.Database.insert db "orders"
      [|
        i ok;
        i (1 + Prng.int rng c.customers);
        s (Prng.pick rng [ "O"; "F"; "P" ]);
        i (1000 + Prng.int rng 500000);
        d odate;
        s (Prng.pick rng (Array.to_list priorities));
        s (Printf.sprintf "Clerk#%05d" (Prng.int rng 1000));
        i 0;
        s (comment rng);
      |];
    let nlines = 1 + Prng.int rng 7 in
    for ln = 1 to nlines do
      incr line_count;
      let pk = 1 + Prng.int rng c.parts in
      (* pick a supplier actually supplying this part so the composite
         (l_partkey, l_suppkey) -> partsupp FK holds *)
      let ps_tbl = Mv_engine.Database.table_exn db "partsupp" in
      let candidates =
        List.filter_map
          (fun row ->
            match (row.(0), row.(1)) with
            | Value.Int p, Value.Int sk when p = pk -> Some sk
            | _ -> None)
          ps_tbl.Mv_engine.Table.rows
      in
      let sk = Prng.pick rng candidates in
      let qty = 1 + Prng.int rng 50 in
      let ship = odate + 1 + Prng.int rng 120 in
      Mv_engine.Database.insert db "lineitem"
        [|
          i ok; i pk; i sk; i ln;
          i qty;
          i (qty * (900 + Prng.int rng 1200));
          i (Prng.int rng 11);
          i (Prng.int rng 9);
          s (Prng.pick rng [ "R"; "A"; "N" ]);
          s (Prng.pick rng [ "O"; "F" ]);
          d ship;
          d (ship + Prng.int rng 30);
          d (ship + 1 + Prng.int rng 30);
          s (Prng.pick rng (Array.to_list instructs));
          s (Prng.pick rng (Array.to_list shipmodes));
          s (comment rng);
        |]
    done
  done;
  db

(* Analytic statistics matching TPC-H at scale factor [sf] without
   materializing any data — the paper's experiments run against SF 0.5 and
   note the scale factor does not affect optimization time, so benches use
   these statistics directly. *)
let synthetic_stats ?(sf = 0.5) () : Mv_catalog.Stats.t =
  let n x = int_of_float (float_of_int x *. sf) in
  let mk ~min_v ~max_v ~ndv =
    Mv_catalog.Stats.make_col ~min_v ~max_v ~ndv ()
  in
  let key_col name count =
    (name, mk ~min_v:(Value.Int 1) ~max_v:(Value.Int count) ~ndv:count)
  in
  let int_col name lo hi ndv =
    (name, mk ~min_v:(Value.Int lo) ~max_v:(Value.Int hi) ~ndv)
  in
  let date_col name =
    (name,
     mk ~min_v:(Value.Date date_lo) ~max_v:(Value.Date date_hi)
       ~ndv:(date_hi - date_lo))
  in
  let str_col name ndv =
    (name, mk ~min_v:(Value.Str "A") ~max_v:(Value.Str "z") ~ndv)
  in
  let customers = n 150_000
  and orders = n 1_500_000
  and lineitems = n 6_000_000
  and parts = n 200_000
  and suppliers = n 10_000
  and partsupps = n 800_000 in
  [
    ("region", { Mv_catalog.Stats.row_count = 5;
                 columns = [ int_col "r_regionkey" 0 4 5; str_col "r_name" 5; str_col "r_comment" 5 ] });
    ("nation", { Mv_catalog.Stats.row_count = 25;
                 columns = [ int_col "n_nationkey" 0 24 25; str_col "n_name" 25;
                             int_col "n_regionkey" 0 4 5; str_col "n_comment" 25 ] });
    ("supplier", { Mv_catalog.Stats.row_count = suppliers;
                   columns = [ key_col "s_suppkey" suppliers; str_col "s_name" suppliers;
                               str_col "s_address" suppliers; int_col "s_nationkey" 0 24 25;
                               str_col "s_phone" suppliers;
                               int_col "s_acctbal" (-99999) 999999 suppliers;
                               str_col "s_comment" suppliers ] });
    ("customer", { Mv_catalog.Stats.row_count = customers;
                   columns = [ key_col "c_custkey" customers; str_col "c_name" customers;
                               str_col "c_address" customers; int_col "c_nationkey" 0 24 25;
                               str_col "c_phone" customers;
                               int_col "c_acctbal" (-99999) 999999 customers;
                               str_col "c_mktsegment" 5; str_col "c_comment" customers ] });
    ("part", { Mv_catalog.Stats.row_count = parts;
               columns = [ key_col "p_partkey" parts; str_col "p_name" parts;
                           str_col "p_mfgr" 5; str_col "p_brand" 25; str_col "p_type" 150;
                           int_col "p_size" 1 50 50; str_col "p_container" 40;
                           int_col "p_retailprice" 90000 210000 120000;
                           str_col "p_comment" parts ] });
    ("partsupp", { Mv_catalog.Stats.row_count = partsupps;
                   columns = [ key_col "ps_partkey" parts; key_col "ps_suppkey" suppliers;
                               int_col "ps_availqty" 1 9999 9999;
                               int_col "ps_supplycost" 100 100000 99900;
                               str_col "ps_comment" partsupps ] });
    ("orders", { Mv_catalog.Stats.row_count = orders;
                 columns = [ key_col "o_orderkey" orders; key_col "o_custkey" customers;
                             str_col "o_orderstatus" 3;
                             int_col "o_totalprice" 1000 501000 orders;
                             date_col "o_orderdate"; str_col "o_orderpriority" 5;
                             str_col "o_clerk" 1000; int_col "o_shippriority" 0 0 1;
                             str_col "o_comment" orders ] });
    ("lineitem", { Mv_catalog.Stats.row_count = lineitems;
                   columns = [ key_col "l_orderkey" orders; key_col "l_partkey" parts;
                               key_col "l_suppkey" suppliers;
                               int_col "l_linenumber" 1 7 7;
                               int_col "l_quantity" 1 50 50;
                               int_col "l_extendedprice" 900 105000 60000;
                               int_col "l_discount" 0 10 11; int_col "l_tax" 0 8 9;
                               str_col "l_returnflag" 3; str_col "l_linestatus" 2;
                               date_col "l_shipdate"; date_col "l_commitdate";
                               date_col "l_receiptdate"; str_col "l_shipinstruct" 4;
                               str_col "l_shipmode" 7; str_col "l_comment" lineitems ] });
  ]
