(** A deterministic, work-stealing-free chunked scheduler over OCaml 5
    domains.

    [map_chunked ~domains n f] evaluates [f 0 .. f (n-1)] split into
    [domains] contiguous chunks, one chunk per domain, and returns the
    results in index order. The assignment of work to domains is a pure
    function of [(domains, n)] — no queues, no stealing — so a parallel run
    is reproducible and trivially comparable against the sequential one
    (same chunk boundaries every time, results reassembled in order).

    The calling domain processes chunk 0 itself; [domains - 1] fresh
    domains are spawned for the rest and joined before returning. With
    [domains = 1] (or [n = 0]) nothing is spawned and the call degenerates
    to a plain sequential map — the differential baseline.

    Exceptions raised by [f] propagate: the first failing chunk's exception
    is re-raised in the caller after all domains have been joined. *)

let chunk_bounds ~domains n =
  (* contiguous chunks, sizes differing by at most one, never empty unless
     there are fewer items than domains *)
  let d = max 1 (min domains n) in
  let base = n / d and extra = n mod d in
  List.init d (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + (if i < extra then 1 else 0) in
      (lo, hi))

let map_chunked ~domains n (f : int -> 'a) : 'a list =
  if n <= 0 then []
  else
    match chunk_bounds ~domains n with
    | [] | [ _ ] -> List.init n f
    | (lo0, hi0) :: rest ->
        let run (lo, hi) () =
          match List.init (hi - lo) (fun i -> f (lo + i)) with
          | xs -> Ok xs
          | exception e -> Error e
        in
        let spawned = List.map (fun b -> Domain.spawn (run b)) rest in
        let first = run (lo0, hi0) () in
        let results = first :: List.map Domain.join spawned in
        List.concat_map
          (function Ok xs -> xs | Error e -> raise e)
          results

let map_list ~domains (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let arr = Array.of_list xs in
  map_chunked ~domains (Array.length arr) (fun i -> f arr.(i))

(* Run one thunk per domain concurrently (caller takes the first), for
   stress tests that want maximum interleaving rather than a partition. *)
let run_each (thunks : (unit -> 'a) list) : 'a list =
  match thunks with
  | [] -> []
  | first :: rest ->
      let spawned = List.map Domain.spawn rest in
      let r0 = first () in
      r0 :: List.map Domain.join spawned
