(** The measurement harness behind section 5's experiments: optimize a
    fixed query batch against the first N of a fixed view population, under
    the four configurations (substitutes on/off x filter tree on/off), and
    collect the counters the paper reports. *)

module Spjg = Mv_relalg.Spjg

type config = { alt : bool; filter : bool }

let config_name c =
  (if c.alt then "Alt" else "NoAlt")
  ^ "&" ^ if c.filter then "Filter" else "NoFilter"

let all_configs =
  [
    { alt = true; filter = true };
    { alt = false; filter = true };
    { alt = true; filter = false };
    { alt = false; filter = false };
  ]

type level_flow = { level : string; entered : int; passed : int }

type measurement = {
  nviews : int;
  config : config;
  queries : int;
  domains : int;
      (** OCaml domains the query batch was sharded over (1 = sequential) *)
  wall_time : float;
      (** elapsed seconds for the whole query batch — what the paper's
          figures report *)
  cpu_time : float;  (** CPU seconds for the same batch *)
  rule_wall_time : float;  (** elapsed seconds inside the view-matching rule *)
  rule_cpu_time : float;
  invocations : int;
  candidates : int;
  matched : int;
  substitutes : int;
  plans_using_views : int;
  level_flow : level_flow list;
      (** candidates entering/surviving each filter-tree level, summed over
          the batch (empty in the NoFilter configurations) *)
}

type workload = {
  schema : Mv_catalog.Schema.t;
  stats : Mv_catalog.Stats.t;
  views : Mv_core.View.t list;  (** the full population, in order *)
  queries : Spjg.t list;
}

(* Build the fixed workload once; view descriptors are shared across all
   runs. *)
let make_workload ?(view_seed = 1001) ?(query_seed = 2002) ?(nviews = 1000)
    ?(nqueries = 200) () : workload =
  let schema = Mv_tpch.Schema.schema in
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let views =
    List.map
      (fun (name, spjg) ->
        let row_count = Mv_opt.Cost.estimate_view_rows stats spjg in
        Mv_core.View.create ~row_count schema ~name spjg)
      (Mv_workload.Generator.views ~seed:view_seed schema stats nviews)
  in
  let queries = Mv_workload.Generator.queries ~seed:query_seed schema stats nqueries in
  { schema; stats; views; queries }

let take n xs = List.filteri (fun i _ -> i < n) xs

(* The per-level candidate flow recorded by the registry's filter tree,
   in the navigation order of the registry's plan. *)
let level_flow_of (registry : Mv_core.Registry.t) : level_flow list =
  let obs = registry.Mv_core.Registry.obs in
  let plan =
    if registry.Mv_core.Registry.backjoins then
      Mv_core.Filter_tree.backjoin_plan
    else Mv_core.Filter_tree.default_plan
  in
  let flows =
    List.map
      (fun level ->
        let name = Mv_core.Filter_tree.level_name level in
        {
          level = name;
          entered =
            Mv_obs.Registry.counter_value obs
              ("filter_tree.level." ^ name ^ ".in");
          passed =
            Mv_obs.Registry.counter_value obs
              ("filter_tree.level." ^ name ^ ".out");
        })
      (Mv_core.Filter_tree.plan_levels plan)
  in
  let strong =
    {
      level = "strong-range";
      entered = Mv_obs.Registry.counter_value obs "filter_tree.strong_range.in";
      passed = Mv_obs.Registry.counter_value obs "filter_tree.strong_range.out";
    }
  in
  List.filter (fun f -> f.entered > 0 || f.passed > 0) (flows @ [ strong ])

(* One measurement: first [nviews] views, one configuration. With
   [domains > 1] the query batch is sharded over that many OCaml domains
   ({!Pool.map_chunked}) against ONE shared registry/filter tree: every
   query is optimized by exactly one domain, the interners are frozen after
   registry construction so query-side key building is lock-free, lattice
   searches carry per-search visit state, and the obs counters the
   measurement reads are atomic — so the counter totals and candidate sets
   are identical to the sequential run by construction (asserted by
   test/test_parallel.ml). *)
let run ?(domains = 1) (w : workload) ~nviews ~(config : config) : measurement
    =
  let registry = Mv_core.Registry.create ~use_filter:config.filter w.schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) (take nviews w.views);
  Mv_relalg.Intern.freeze ();
  let opt_config =
    { Mv_opt.Optimizer.produce_substitutes = config.alt }
  in
  let queries = Array.of_list w.queries in
  let span = Mv_obs.Instrument.enter () in
  let used =
    Pool.map_chunked ~domains (Array.length queries) (fun i ->
        let r =
          Mv_opt.Optimizer.optimize ~config:opt_config registry w.stats
            queries.(i)
        in
        r.Mv_opt.Optimizer.used_views)
  in
  let wall_time, cpu_time = Mv_obs.Instrument.elapsed span in
  let plans_using_views =
    List.fold_left (fun n u -> if u then n + 1 else n) 0 used
  in
  let s = Mv_core.Registry.stats registry in
  let rule_timer =
    Mv_obs.Registry.timer registry.Mv_core.Registry.obs "rule.time"
  in
  {
    nviews;
    config;
    queries = List.length w.queries;
    domains = max 1 domains;
    wall_time;
    cpu_time;
    rule_wall_time = Mv_obs.Instrument.wall rule_timer;
    rule_cpu_time = Mv_obs.Instrument.cpu rule_timer;
    invocations = s.Mv_core.Registry.invocations;
    candidates = s.Mv_core.Registry.candidates;
    matched = s.Mv_core.Registry.matched;
    substitutes = s.Mv_core.Registry.substitutes;
    plans_using_views;
    level_flow = level_flow_of registry;
  }

(* The full grid for the figures. A discarded warmup run first: the very
   first measurement otherwise pays one-time allocation/GC costs. *)
let sweep ?(domains = 1) (w : workload) ~nviews_list ~configs :
    measurement list =
  (match configs with
  | c :: _ -> ignore (run w ~nviews:0 ~config:c)
  | [] -> ());
  List.concat_map
    (fun nviews ->
      List.map (fun config -> run w ~domains ~nviews ~config) configs)
    nviews_list

(* Domain-scaling sweep: the same (nviews, Alt&Filter) cell measured at
   each domain count, after one discarded warmup. The per-measurement
   counters must not vary across rows — only the timings may. *)
let scaling (w : workload) ~nviews ~domains_list : measurement list =
  let config = { alt = true; filter = true } in
  ignore (run w ~nviews ~config);
  List.map (fun domains -> run w ~domains ~nviews ~config) domains_list
