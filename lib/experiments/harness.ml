(** The measurement harness behind section 5's experiments: optimize a
    fixed query batch against the first N of a fixed view population, under
    the four configurations (substitutes on/off x filter tree on/off), and
    collect the counters the paper reports. *)

module Spjg = Mv_relalg.Spjg

type config = { alt : bool; filter : bool }

let config_name c =
  (if c.alt then "Alt" else "NoAlt")
  ^ "&" ^ if c.filter then "Filter" else "NoFilter"

let all_configs =
  [
    { alt = true; filter = true };
    { alt = false; filter = true };
    { alt = true; filter = false };
    { alt = false; filter = false };
  ]

type level_flow = { level : string; entered : int; passed : int }

type phase_stats = {
  phase : string;
  calls : int;
  p50 : float;
  p90 : float;
  p99 : float;  (** interpolated quantiles of per-call wall seconds *)
}

type measurement = {
  nviews : int;
  config : config;
  queries : int;
  domains : int;
      (** OCaml domains the query batch was sharded over (1 = sequential) *)
  wall_time : float;
      (** elapsed seconds for the whole query batch — what the paper's
          figures report *)
  cpu_time : float;  (** CPU seconds for the same batch *)
  rule_wall_time : float;  (** elapsed seconds inside the view-matching rule *)
  rule_cpu_time : float;
  invocations : int;
  candidates : int;
  matched : int;
  substitutes : int;
  plans_using_views : int;
  cost_bound_prunes : int;
      (** substitute leaves abandoned by branch-and-bound cost-bound
          pruning ([opt.prune.cost_bound]), summed over the batch *)
  level_flow : level_flow list;
      (** candidates entering/surviving each filter-tree level, summed over
          the batch (empty in the NoFilter configurations) *)
  phases : phase_stats list;
      (** per-phase optimizer latency percentiles over the batch, from the
          [optimizer.phase.*] histograms *)
}

type workload = {
  schema : Mv_catalog.Schema.t;
  stats : Mv_catalog.Stats.t;
  views : Mv_core.View.t list;  (** the full population, in order *)
  queries : Spjg.t list;
}

(* Build the fixed workload once; view descriptors are shared across all
   runs. *)
let make_workload ?(view_seed = 1001) ?(query_seed = 2002) ?(nviews = 1000)
    ?(nqueries = 200) () : workload =
  let schema = Mv_tpch.Schema.schema in
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let views =
    List.map
      (fun (name, spjg) ->
        let row_count = Mv_opt.Cost.estimate_view_rows stats spjg in
        Mv_core.View.create ~row_count schema ~name spjg)
      (Mv_workload.Generator.views ~seed:view_seed schema stats nviews)
  in
  let queries = Mv_workload.Generator.queries ~seed:query_seed schema stats nqueries in
  { schema; stats; views; queries }

let take n xs = List.filteri (fun i _ -> i < n) xs

(* The per-level candidate flow recorded by the registry's filter tree,
   in the navigation order of the registry's plan. *)
let level_flow_of (registry : Mv_core.Registry.t) : level_flow list =
  let obs = registry.Mv_core.Registry.obs in
  let plan =
    if registry.Mv_core.Registry.backjoins then
      Mv_core.Filter_tree.backjoin_plan
    else Mv_core.Filter_tree.default_plan
  in
  let flows =
    List.map
      (fun level ->
        let name = Mv_core.Filter_tree.level_name level in
        {
          level = name;
          entered =
            Mv_obs.Registry.counter_value obs
              ("filter_tree.level." ^ name ^ ".in");
          passed =
            Mv_obs.Registry.counter_value obs
              ("filter_tree.level." ^ name ^ ".out");
        })
      (Mv_core.Filter_tree.plan_levels plan)
  in
  let strong =
    {
      level = "strong-range";
      entered = Mv_obs.Registry.counter_value obs "filter_tree.strong_range.in";
      passed = Mv_obs.Registry.counter_value obs "filter_tree.strong_range.out";
    }
  in
  List.filter (fun f -> f.entered > 0 || f.passed > 0) (flows @ [ strong ])

let phase_names = [ "analyze"; "match"; "cost"; "total" ]

(* The per-phase optimizer latency percentiles, read from the
   [optimizer.phase.*] histograms the optimizer feeds on every call. The
   histogram lookup is get-or-create, so a phase that never ran still
   yields a (zero) row — the JSON shape stays stable across every
   measurement cell, including nviews = 0. *)
let phases_of (registry : Mv_core.Registry.t) : phase_stats list =
  let obs = registry.Mv_core.Registry.obs in
  List.map
    (fun name ->
      let h = Mv_obs.Registry.histogram obs ("optimizer.phase." ^ name) in
      {
        phase = name;
        calls = Mv_obs.Instrument.count h;
        p50 = Mv_obs.Instrument.quantile h 0.5;
        p90 = Mv_obs.Instrument.quantile h 0.9;
        p99 = Mv_obs.Instrument.quantile h 0.99;
      })
    phase_names

(* One measurement: first [nviews] views, one configuration. With
   [domains > 1] the query batch is sharded over that many OCaml domains
   ({!Pool.map_chunked}) against ONE shared registry/filter tree: every
   query is optimized by exactly one domain, the interners are frozen after
   registry construction so query-side key building is lock-free, lattice
   searches carry per-search visit state, and the obs counters the
   measurement reads are atomic — so the counter totals and candidate sets
   are identical to the sequential run by construction (asserted by
   test/test_parallel.ml). *)
let run ?(domains = 1) (w : workload) ~nviews ~(config : config) : measurement
    =
  let registry = Mv_core.Registry.create ~use_filter:config.filter w.schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) (take nviews w.views);
  Mv_relalg.Intern.freeze ();
  let opt_config =
    { Mv_opt.Optimizer.default_config with produce_substitutes = config.alt }
  in
  let queries = Array.of_list w.queries in
  let span = Mv_obs.Instrument.enter () in
  let used =
    Pool.map_chunked ~domains (Array.length queries) (fun i ->
        let r =
          Mv_opt.Optimizer.optimize ~config:opt_config registry w.stats
            queries.(i)
        in
        r.Mv_opt.Optimizer.used_views)
  in
  let wall_time, cpu_time = Mv_obs.Instrument.elapsed span in
  let plans_using_views =
    List.fold_left (fun n u -> if u then n + 1 else n) 0 used
  in
  let s = Mv_core.Registry.stats registry in
  let rule_timer =
    Mv_obs.Registry.timer registry.Mv_core.Registry.obs "rule.time"
  in
  {
    nviews;
    config;
    queries = List.length w.queries;
    domains = max 1 domains;
    wall_time;
    cpu_time;
    rule_wall_time = Mv_obs.Instrument.wall rule_timer;
    rule_cpu_time = Mv_obs.Instrument.cpu rule_timer;
    invocations = s.Mv_core.Registry.invocations;
    candidates = s.Mv_core.Registry.candidates;
    matched = s.Mv_core.Registry.matched;
    substitutes = s.Mv_core.Registry.substitutes;
    plans_using_views;
    cost_bound_prunes =
      Mv_obs.Registry.counter_value registry.Mv_core.Registry.obs
        "opt.prune.cost_bound";
    level_flow = level_flow_of registry;
    phases = phases_of registry;
  }

(* ---- why-not aggregation ---- *)

(* Aggregate rejection provenance over a workload: every (query, view)
   pair of the batch is attributed — via {!Mv_core.Registry.explain} — to
   "matched", the exact filter-tree stage that pruned the view
   ("filter:<stage>") or the matcher's rejection label
   ("reject:<label>"), and the causes are counted. Sorted by descending
   count, ties by cause name, so the table and its JSON are deterministic. *)
let whynot (w : workload) ~nviews : (string * int) list =
  let registry = Mv_core.Registry.create w.schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) (take nviews w.views);
  Mv_relalg.Intern.freeze ();
  let counts = Hashtbl.create 32 in
  let bump cause =
    Hashtbl.replace counts cause
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts cause))
  in
  List.iter
    (fun q ->
      let qa = Mv_relalg.Analysis.analyze w.schema q in
      List.iter
        (fun (_, expl) ->
          bump
            (match expl with
            | Mv_core.Registry.Matched _ -> "matched"
            | Mv_core.Registry.Filtered stage ->
                "filter:" ^ Mv_core.Filter_tree.stage_name stage
            | Mv_core.Registry.Rejected r ->
                "reject:" ^ Mv_core.Reject.label r))
        (Mv_core.Registry.explain registry qa))
    w.queries;
  Hashtbl.fold (fun cause n acc -> (cause, n) :: acc) counts []
  |> List.sort (fun (c1, n1) (c2, n2) ->
         match compare n2 n1 with 0 -> String.compare c1 c2 | c -> c)

(* ---- the serving benchmark (dynamic registry + match/plan cache) ---- *)

type serving_measurement = {
  s_nviews : int;
  s_queries : int;
  s_passes : int;  (** timed warm passes *)
  s_domains : int;
  s_capacity : int;
  cold_wall : float;  (** seconds for the first (cache-filling) pass *)
  warm_wall : float;  (** per-pass average over the warm passes *)
  warm_speedup : float;  (** [cold_wall /. warm_wall] *)
  hit_rate : float;
      (** plan-layer hits during the warm passes / plan lookups issued *)
  match_hits : int;
  match_misses : int;
  match_evictions : int;
  match_invalidations : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  plan_invalidations : int;  (** all counters: totals over the whole run *)
  warm_identical : bool;
      (** every warm pass returned byte-identical plans to the cold pass *)
  churn_invalidations : int;
      (** cache invalidations observed after the drop and the re-add *)
  churn_consistent : bool;
      (** after each mutation the cached pass is byte-identical to an
          uncached pass against the same (mutated) registry *)
  churn_no_stale : bool;
      (** no post-drop plan references the dropped view *)
}

(* Repeated-query serving against one registry and one match/plan cache:
   a cold pass fills the cache, [passes] warm passes measure the hit path,
   then a view drop and a re-add verify the epoch protocol end to end —
   the invalidation counters move and the cached results stay byte-equal
   to uncached optimization against the same registry. *)
let serving ?(domains = 1) ?(passes = 3) ?(capacity = 1024) (w : workload)
    ~nviews : serving_measurement =
  let registry = Mv_core.Registry.create w.schema in
  let views = take nviews w.views in
  List.iter (Mv_core.Registry.add_prebuilt registry) views;
  Mv_relalg.Intern.freeze ();
  let cache = Mv_opt.Match_cache.create ~capacity registry in
  let obs = registry.Mv_core.Registry.obs in
  let cval name = Mv_obs.Registry.counter_value obs name in
  let queries = Array.of_list w.queries in
  let nq = Array.length queries in
  let pass ?cache () =
    let span = Mv_obs.Instrument.enter () in
    let plans =
      Pool.map_chunked ~domains nq (fun i ->
          let r =
            Mv_opt.Optimizer.optimize ?cache registry w.stats queries.(i)
          in
          ( Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan,
            Mv_opt.Plan.views_used r.Mv_opt.Optimizer.plan ))
    in
    let wall, _ = Mv_obs.Instrument.elapsed span in
    (wall, plans)
  in
  let cold_wall, cold_plans = pass ~cache () in
  let hits_after_cold = cval "cache.plan.hits" in
  let passes = max 1 passes in
  let warm = List.init passes (fun _ -> pass ~cache ()) in
  let warm_wall =
    List.fold_left (fun acc (wl, _) -> acc +. wl) 0.0 warm
    /. float_of_int passes
  in
  let warm_identical =
    List.for_all (fun (_, plans) -> plans = cold_plans) warm
  in
  let warm_hits = cval "cache.plan.hits" - hits_after_cold in
  let hit_rate =
    if nq = 0 then 0.0 else float_of_int warm_hits /. float_of_int (nq * passes)
  in
  (* churn: drop one view, then add it back; after each mutation the
     cached pass must agree byte-for-byte with an uncached one against
     the same registry, and the invalidation counters must move *)
  let inval () =
    cval "cache.plan.invalidations" + cval "cache.match.invalidations"
  in
  let inval_before = inval () in
  let check_churn mutate =
    mutate ();
    let _, cached = pass ~cache () in
    let _, direct = pass () in
    cached = direct
  in
  let consistent_after_drop, no_stale, consistent_after_readd =
    match views with
    | [] -> (true, true, true)
    | v :: _ ->
        let name = v.Mv_core.View.name in
        let ok_drop =
          check_churn (fun () -> Mv_core.Registry.remove_view registry name)
        in
        let no_stale =
          (* re-check the post-drop cached pass via the cache itself *)
          let _, plans = pass ~cache () in
          List.for_all (fun (_, used) -> not (List.mem name used)) plans
        in
        let ok_readd =
          check_churn (fun () -> Mv_core.Registry.add_prebuilt registry v)
        in
        (ok_drop, no_stale, ok_readd)
  in
  {
    s_nviews = nviews;
    s_queries = nq;
    s_passes = passes;
    s_domains = max 1 domains;
    s_capacity = capacity;
    cold_wall;
    warm_wall;
    warm_speedup = (if warm_wall > 0.0 then cold_wall /. warm_wall else 1.0);
    hit_rate;
    match_hits = cval "cache.match.hits";
    match_misses = cval "cache.match.misses";
    match_evictions = cval "cache.match.evictions";
    match_invalidations = cval "cache.match.invalidations";
    plan_hits = cval "cache.plan.hits";
    plan_misses = cval "cache.plan.misses";
    plan_evictions = cval "cache.plan.evictions";
    plan_invalidations = cval "cache.plan.invalidations";
    warm_identical;
    churn_invalidations = inval () - inval_before;
    churn_consistent = consistent_after_drop && consistent_after_readd;
    churn_no_stale = no_stale;
  }

(* ---- the end-to-end execution benchmark (bench --exec) ---- *)

type exec_cell = { xc_rewrite : bool; xc_adaptive : bool; xc_wall : float }

type exec_node = {
  xn_query : string;
  xn_label : string;
  xn_strategy : string;
  xn_est : float;
  xn_actual : int;
}

type exec_measurement = {
  x_scale : int;
  x_rows : int;
  x_views : int;
  x_queries : int;
  x_reps : int;
  x_cells : exec_cell list;
  x_rewrite_speedup : float;
  x_adaptive_speedup : float;
  x_plans_with_views : int;
  x_prunes : int;
  x_stats_missing : int;
  x_equivalent : bool;
  x_strategies : (string * int) list;
  x_nodes : exec_node list;
}

(* Hand-written views guaranteed to match some of the queries below: an
   o_custkey revenue rollup, a quantity-filtered SPJ slice, and a brand
   rollup. *)
let exec_views =
  [
    "create view v_rev_cust with schemabinding as select o_custkey, \
     count_big(*) as cnt, sum(l_extendedprice) as rev from dbo.lineitem, \
     dbo.orders where l_orderkey = o_orderkey group by o_custkey";
    "create view v_qtyship with schemabinding as select l_orderkey, \
     l_partkey, l_quantity, l_extendedprice from dbo.lineitem where \
     l_quantity >= 25";
    "create view v_brand_qty with schemabinding as select p_brand, \
     count_big(*) as cnt, sum(l_quantity) as sq from dbo.lineitem, \
     dbo.part where l_partkey = p_partkey group by p_brand";
  ]

(* Four queries answerable from the views (exactly or with compensation)
   plus two with no matching view, exercising the adaptive join pipeline
   on base tables. *)
let exec_queries =
  [
    ( "q_custrev",
      "select o_custkey, sum(l_extendedprice) as rev from dbo.lineitem, \
       dbo.orders where l_orderkey = o_orderkey group by o_custkey" );
    ( "q_bigcust",
      "select o_custkey, count_big(*) as cnt from dbo.lineitem, \
       dbo.orders where l_orderkey = o_orderkey and o_custkey <= 10 \
       group by o_custkey" );
    ( "q_qty",
      "select l_orderkey, l_extendedprice from dbo.lineitem where \
       l_quantity >= 30" );
    ( "q_brand",
      "select p_brand, sum(l_quantity) as sq from dbo.lineitem, dbo.part \
       where l_partkey = p_partkey group by p_brand" );
    ( "q_dims",
      "select n_name, count_big(*) as cnt from dbo.supplier, dbo.nation, \
       dbo.region where s_nationkey = n_nationkey and n_regionkey = \
       r_regionkey group by n_name" );
    ( "q_pricey",
      "select o_orderkey, p_name from dbo.lineitem, dbo.orders, dbo.part \
       where l_orderkey = o_orderkey and l_partkey = p_partkey and \
       p_size >= 40 and o_totalprice >= 400000" );
  ]

(* One scale point of the end-to-end benchmark: generate data, register
   and materialize the views, compute statistics (with histograms) from
   the actual contents, optimize the query set with and without view
   substitutes, then time plan execution in the four (rewrite x adaptive)
   cells. Every cell's result is checked bag-equal against direct legacy
   execution of the original query; plans are computed outside the timing
   loop, so the cells measure execution only. *)
let exec_bench ?(seed = 42) ?(reps = 5) ~scale () : exec_measurement =
  let schema = Mv_tpch.Schema.schema in
  let db = Mv_tpch.Datagen.generate ~seed ~scale () in
  let base_rows =
    Hashtbl.fold
      (fun name _ acc -> acc + Mv_engine.Database.row_count db name)
      db.Mv_engine.Database.tables 0
  in
  (* primary-key indexes give the adaptive executor its INLJ option *)
  List.iter
    (fun (table, cols) -> Mv_engine.Database.declare_index db ~table ~cols)
    [
      ("lineitem", [ "l_orderkey" ]);
      ("orders", [ "o_orderkey" ]);
      ("part", [ "p_partkey" ]);
      ("nation", [ "n_nationkey" ]);
      ("region", [ "r_regionkey" ]);
    ];
  let views =
    List.map
      (fun src ->
        let name, spjg = Mv_sql.Parser.parse_view schema src in
        Mv_core.View.create schema ~name spjg)
      exec_views
  in
  List.iter (fun v -> ignore (Mv_engine.Exec.materialize db v)) views;
  (* statistics AFTER materialization, so the views get histograms too *)
  let stats = Mv_engine.Database.stats db in
  let registry = Mv_core.Registry.create schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) views;
  let queries =
    List.map
      (fun (n, src) -> (n, Mv_sql.Parser.parse_query schema src))
      exec_queries
  in
  let gval = Mv_obs.Registry.counter_value Mv_obs.Registry.global in
  let missing0 = gval "cost.stats.missing" in
  let strat0 =
    List.map
      (fun k -> (k, gval ("exec.join.strategy." ^ k)))
      [ "hash"; "nlj"; "inlj" ]
  in
  let opt cfg =
    List.map (fun (_, q) -> Mv_opt.Optimizer.optimize ~config:cfg registry stats q) queries
  in
  let rw = opt Mv_opt.Optimizer.default_config in
  let nr =
    opt
      { Mv_opt.Optimizer.default_config with produce_substitutes = false }
  in
  let plans_with_views =
    List.fold_left
      (fun n (r : Mv_opt.Optimizer.result) ->
        if r.Mv_opt.Optimizer.used_views then n + 1 else n)
      0 rw
  in
  let prunes =
    Mv_obs.Registry.counter_value registry.Mv_core.Registry.obs
      "opt.prune.cost_bound"
  in
  (* reference results: the legacy executor straight off the query *)
  let direct = List.map (fun (_, q) -> Mv_engine.Exec.execute db q) queries in
  let equivalent = ref true in
  let exec ~adaptive (_, q) (r : Mv_opt.Optimizer.result) =
    if adaptive then
      Mv_opt.Plan_exec.execute ~adaptive:true ~stats db q
        r.Mv_opt.Optimizer.plan
    else Mv_opt.Plan_exec.execute ~force_hash:true db q r.Mv_opt.Optimizer.plan
  in
  let grid = [ (false, false); (false, true); (true, false); (true, true) ] in
  (* correctness first (also a discarded warmup pass per cell) *)
  List.iter
    (fun (rewrite, adaptive) ->
      List.iter2
        (fun got want ->
          if not (Mv_engine.Relation.same_bag got want) then
            equivalent := false)
        (List.map2 (exec ~adaptive) queries (if rewrite then rw else nr))
        direct)
    grid;
  (* the cells' passes are interleaved so GC and allocator drift over the
     run is shared evenly instead of biasing whichever cell runs last *)
  let acc = Array.make (List.length grid) 0.0 in
  for _ = 1 to reps do
    List.iteri
      (fun i (rewrite, adaptive) ->
        let plans = if rewrite then rw else nr in
        let span = Mv_obs.Instrument.enter () in
        List.iter2 (fun qp rp -> ignore (exec ~adaptive qp rp)) queries plans;
        let wall, _ = Mv_obs.Instrument.elapsed span in
        acc.(i) <- acc.(i) +. wall)
      grid
  done;
  let cells =
    List.mapi
      (fun i (rewrite, adaptive) ->
        { xc_rewrite = rewrite; xc_adaptive = adaptive; xc_wall = acc.(i) })
      grid
  in
  let wall ~rewrite ~adaptive =
    match
      List.find_opt
        (fun c -> c.xc_rewrite = rewrite && c.xc_adaptive = adaptive)
        cells
    with
    | Some c -> c.xc_wall
    | None -> 0.0
  in
  let ratio a b = if b > 0.0 then a /. b else 1.0 in
  (* per-node estimated-vs-actual rows, from the rewrite+adaptive arm *)
  let nodes =
    List.concat
      (List.map2
         (fun (qn, q) (r : Mv_opt.Optimizer.result) ->
           let _, reports =
             Mv_opt.Plan_exec.execute_report ~adaptive:true ~stats db q
               r.Mv_opt.Optimizer.plan
           in
           List.map
             (fun (nr : Mv_opt.Plan_exec.node_report) ->
               {
                 xn_query = qn;
                 xn_label = nr.Mv_opt.Plan_exec.nr_label;
                 xn_strategy = nr.Mv_opt.Plan_exec.nr_strategy;
                 xn_est = nr.Mv_opt.Plan_exec.nr_est;
                 xn_actual = nr.Mv_opt.Plan_exec.nr_actual;
               })
             reports)
         queries rw)
  in
  {
    x_scale = scale;
    x_rows = base_rows;
    x_views = List.length views;
    x_queries = List.length queries;
    x_reps = reps;
    x_cells = cells;
    x_rewrite_speedup =
      ratio (wall ~rewrite:false ~adaptive:true)
        (wall ~rewrite:true ~adaptive:true);
    x_adaptive_speedup =
      ratio (wall ~rewrite:true ~adaptive:false)
        (wall ~rewrite:true ~adaptive:true);
    x_plans_with_views = plans_with_views;
    x_prunes = prunes;
    x_stats_missing = gval "cost.stats.missing" - missing0;
    x_equivalent = !equivalent;
    x_strategies =
      List.map (fun (k, v0) -> (k, gval ("exec.join.strategy." ^ k) - v0)) strat0;
    x_nodes = nodes;
  }

(* ---- maintenance benchmark (bench --maintain) ------------------------ *)

type maintain_cell = {
  m_nviews : int;
  m_batch_rows : int;  (** base rows written per batch (inserts + deletes) *)
  m_batches : int;
  m_rows_written : int;  (** total base rows written over the cell *)
  m_delta_wall : float;  (** total seconds, incremental-maintenance arm *)
  m_remat_wall : float;  (** total seconds, full-rematerialization arm *)
  m_delta_p50 : float;
  m_delta_p90 : float;
  m_delta_p99 : float;  (** per-batch seconds, delta arm *)
  m_remat_p50 : float;
  m_remat_p90 : float;
  m_remat_p99 : float;  (** per-batch seconds, rematerialization arm *)
  m_speedup : float;  (** [m_remat_wall /. m_delta_wall] *)
  m_equivalent : bool;
      (** every view's delta-maintained contents ended bag-equal (floats
          within tolerance) to the rematerialized arm's *)
  m_stats_fresh : bool;
      (** [Ivm.refresh_stats] row counts match the actual contents *)
}

type maintain_measurement = {
  mm_scale : int;
  mm_base_rows : int;
  mm_pool : int;  (** generator view pool size *)
  mm_batches : int;
  mm_cells : maintain_cell list;
  mm_equivalent : bool;  (** conjunction over the cells *)
  mm_stats_fresh : bool;
  mm_timeline : Mv_obs.Json.t;
      (** {!Mv_obs.Timeline} export: per-window maintain.delta/remat
          histogram stats sampled by a dedicated domain across the grid *)
}

(* Near-equality of view contents: float columns compare within a relative
   tolerance, because incremental SUM maintenance reorders float additions
   and may drift by rounding from a from-scratch fold (DESIGN.md §12);
   everything else is exact. *)
let value_close a b =
  match (a, b) with
  | Mv_base.Value.Float x, Mv_base.Value.Float y ->
      x = y
      || abs_float (x -. y) <= 1e-9 *. (abs_float x +. abs_float y +. 1.0)
  | _ -> Mv_base.Value.order a b = 0

let bag_close rows_a rows_b =
  List.length rows_a = List.length rows_b
  && List.for_all2
       (fun (x : Mv_base.Value.t array) y ->
         Array.length x = Array.length y
         && Array.for_all2 value_close x y)
       (List.sort Mv_engine.Relation.row_order rows_a)
       (List.sort Mv_engine.Relation.row_order rows_b)

(* One (nviews, batch size) cell: materialize the first [nviews] pool
   views over two copies of the generated database, then push the same
   write batches through incremental maintenance on one copy and through
   full rematerialization of the affected views on the other, timing each
   batch in both arms. Batches duplicate randomly picked existing rows
   (foreign keys keep holding, join deltas fire) and delete randomly
   picked distinct row instances of one randomly chosen source table. *)
let maintain_cell ?obs ~seed ~batches ~db0 ~stats0 ~pool ~nviews ~batch_rows ()
    : maintain_cell =
  let views = take nviews pool in
  let dba = Mv_engine.Database.copy db0 in
  let dbb = Mv_engine.Database.copy db0 in
  List.iter (fun v -> ignore (Mv_engine.Exec.materialize dba v)) views;
  List.iter (fun v -> ignore (Mv_engine.Exec.materialize dbb v)) views;
  let ivm = Mv_engine.Ivm.create dba in
  List.iter (Mv_engine.Ivm.attach ivm) views;
  let sources =
    List.sort_uniq compare
      (List.concat_map
         (fun (v : Mv_core.View.t) ->
           Mv_util.Sset.elements v.Mv_core.View.source_tables)
         views)
  in
  let rng = Mv_util.Prng.create (seed + (7919 * nviews) + batch_rows) in
  let delta_h = Mv_obs.Instrument.histogram () in
  let remat_h = Mv_obs.Instrument.histogram () in
  let rows_written = ref 0 in
  for _ = 1 to batches do
    if sources <> [] then begin
      let tn = Mv_util.Prng.pick rng sources in
      let tbl = Mv_engine.Database.table_exn dba tn in
      let rows = tbl.Mv_engine.Table.rows in
      let n = List.length rows in
      if n > 0 then begin
        let n_ins = max 1 (batch_rows / 2) in
        let n_del = min (max 0 (batch_rows - n_ins)) (n / 2) in
        let ins =
          List.init n_ins (fun _ -> List.nth rows (Mv_util.Prng.int rng n))
        in
        let del = take n_del (Mv_util.Prng.shuffle rng rows) in
        let batch = [ (tn, { Mv_engine.Ivm.ins; del }) ] in
        rows_written := !rows_written + n_ins + n_del;
        (* observe both into the cell-local histograms (per-cell stats)
           and, when given, a shared obs registry the timeline sampler
           windows over *)
        let timed h name f =
          let t0 = Mv_obs.Instrument.now_wall () in
          f ();
          let d = Mv_obs.Instrument.now_wall () -. t0 in
          Mv_obs.Instrument.observe h d;
          match obs with
          | Some o ->
              Mv_obs.Instrument.observe (Mv_obs.Registry.histogram o name) d
          | None -> ()
        in
        (match obs with
        | Some o ->
            Mv_obs.Instrument.incr
              (Mv_obs.Registry.counter o "maintain.batches");
            Mv_obs.Instrument.add
              (Mv_obs.Registry.counter o "maintain.rows_written")
              (n_ins + n_del)
        | None -> ());
        timed delta_h "maintain.delta" (fun () ->
            Mv_engine.Ivm.apply ivm batch);
        timed remat_h "maintain.remat" (fun () ->
            List.iter (fun r -> Mv_engine.Database.insert dbb tn r) ins;
            List.iter (fun r -> Mv_engine.Database.delete dbb tn r) del;
            List.iter
              (fun (v : Mv_core.View.t) ->
                if Mv_util.Sset.mem tn v.Mv_core.View.source_tables then
                  ignore (Mv_engine.Exec.materialize dbb v))
              views)
      end
    end
  done;
  let equivalent =
    List.for_all
      (fun (v : Mv_core.View.t) ->
        bag_close
          (Mv_engine.Database.table_exn dba v.Mv_core.View.name)
            .Mv_engine.Table.rows
          (Mv_engine.Database.table_exn dbb v.Mv_core.View.name)
            .Mv_engine.Table.rows)
      views
  in
  let stats' = Mv_engine.Ivm.refresh_stats ivm stats0 in
  let stats_fresh =
    List.for_all
      (fun (v : Mv_core.View.t) ->
        match List.assoc_opt v.Mv_core.View.name stats' with
        | Some ts ->
            ts.Mv_catalog.Stats.row_count
            = Mv_engine.Database.row_count dba v.Mv_core.View.name
        | None ->
            (* untouched by every batch: no entry is required *)
            not
              (List.mem v.Mv_core.View.name
                 (Mv_engine.Ivm.dirty_views ivm)))
      views
  in
  let q h p = Mv_obs.Instrument.quantile h p in
  let delta_wall = Mv_obs.Instrument.sum delta_h in
  let remat_wall = Mv_obs.Instrument.sum remat_h in
  {
    m_nviews = nviews;
    m_batch_rows = batch_rows;
    m_batches = Mv_obs.Instrument.count delta_h;
    m_rows_written = !rows_written;
    m_delta_wall = delta_wall;
    m_remat_wall = remat_wall;
    m_delta_p50 = q delta_h 0.5;
    m_delta_p90 = q delta_h 0.9;
    m_delta_p99 = q delta_h 0.99;
    m_remat_p50 = q remat_h 0.5;
    m_remat_p90 = q remat_h 0.9;
    m_remat_p99 = q remat_h 0.99;
    m_speedup = (if delta_wall > 0.0 then remat_wall /. delta_wall else 1.0);
    m_equivalent = equivalent;
    m_stats_fresh = stats_fresh;
  }

let maintain ?(seed = 42) ?(batches = 12) ?(scale = 1) ~nviews_list
    ~batch_sizes () : maintain_measurement =
  let schema = Mv_tpch.Schema.schema in
  let db0 = Mv_tpch.Datagen.generate ~seed ~scale () in
  let base_rows =
    Hashtbl.fold
      (fun name _ acc -> acc + Mv_engine.Database.row_count db0 name)
      db0.Mv_engine.Database.tables 0
  in
  (* statistics from the actual contents drive both the view generator's
     cardinality bands and the maintained-view stats-refresh check *)
  let stats0 = Mv_engine.Database.stats db0 in
  let pool_n = List.fold_left max 1 nviews_list in
  let pool =
    List.filter_map
      (fun (name, spjg) ->
        match Mv_core.View.create schema ~name spjg with
        | v -> Some v
        | exception Mv_core.View.Rejected _ -> None)
      (Mv_workload.Generator.views ~seed:(seed + 7) schema stats0 pool_n)
  in
  (* the maintenance timeline: a scoped obs registry every cell reports
     into, windowed by a dedicated sampler domain across the whole grid *)
  let obs = Mv_obs.Registry.create () in
  let tl = Mv_obs.Timeline.create ~capacity:240 obs in
  let sampler = Mv_obs.Timeline.start ~period:0.05 tl in
  let cells =
    List.concat_map
      (fun nviews ->
        List.map
          (fun batch_rows ->
            maintain_cell ~obs ~seed ~batches ~db0 ~stats0 ~pool ~nviews
              ~batch_rows ())
          batch_sizes)
      nviews_list
  in
  Mv_obs.Timeline.stop sampler;
  {
    mm_scale = scale;
    mm_base_rows = base_rows;
    mm_pool = List.length pool;
    mm_batches = batches;
    mm_cells = cells;
    mm_equivalent = List.for_all (fun c -> c.m_equivalent) cells;
    mm_stats_fresh = List.for_all (fun c -> c.m_stats_fresh) cells;
    mm_timeline = Mv_obs.Timeline.to_json tl;
  }

(* The full grid for the figures. A discarded warmup run first: the very
   first measurement otherwise pays one-time allocation/GC costs. *)
let sweep ?(domains = 1) (w : workload) ~nviews_list ~configs :
    measurement list =
  (match configs with
  | c :: _ -> ignore (run w ~nviews:0 ~config:c)
  | [] -> ());
  List.concat_map
    (fun nviews ->
      List.map (fun config -> run w ~domains ~nviews ~config) configs)
    nviews_list

(* Domain-scaling sweep: the same (nviews, Alt&Filter) cell measured at
   each domain count, after one discarded warmup. The per-measurement
   counters must not vary across rows — only the timings may. *)
let scaling (w : workload) ~nviews ~domains_list : measurement list =
  let config = { alt = true; filter = true } in
  ignore (run w ~nviews ~config);
  List.map (fun domains -> run w ~domains ~nviews ~config) domains_list

(* ---- the view-advisor benchmark (bench --advise) ---- *)

type advise_measurement = {
  a_candidates : int;
  a_mined : int;
  a_queries : int;
  a_budget : float;
  a_used : float;
  a_picks : int;
  a_considered : int;
  a_rejected : int;
  a_cost_none : float;
  a_cost_advised : float;
  a_cost_random : float list;
  a_model_before : float;
  a_model_after : float;
  a_plans_using_views : int;
  a_p50 : float;
  a_p90 : float;
  a_p99 : float;
  a_wall : float;
  a_beats_random : bool;
  a_within_budget : bool;
}

let advise ?(seed = 0) ?(trials = 5) ?(write_fraction = 0.1)
    ?(budget_frac = 0.05) ~candidates ~nqueries () : advise_measurement =
  let span = Mv_obs.Instrument.enter () in
  (* a different query workload per candidate scale, so the scales are
     independent observations *)
  let w =
    make_workload ~nviews:0 ~query_seed:(2002 + (17 * seed) + candidates)
      ~nqueries ()
  in
  let mined = Mv_workload.Miner.mine w.queries in
  let defs = take candidates (Mv_workload.Miner.definitions mined) in
  (* the storage budget admits a fixed fraction of the whole pool, so
     selection is a real choice at every scale *)
  let size_of (name, spjg) =
    float_of_int (Mv_opt.Cost.estimate_view_rows ~name w.stats spjg)
  in
  let total_size = List.fold_left (fun acc d -> acc +. size_of d) 0.0 defs in
  let budget = budget_frac *. total_size in
  let config =
    { Mv_opt.Advisor.default_config with budget; write_fraction }
  in
  let advice =
    Mv_opt.Advisor.advise ~config w.schema w.stats ~candidates:defs
      ~queries:w.queries
  in
  (* evaluation is the real optimizer, not the advisor's model: total
     workload cost = summed best-plan cost under the registered set plus
     the same maintenance term both arms are charged *)
  let eval defs =
    let registry = Mv_core.Registry.create w.schema in
    let maint = ref 0.0 in
    List.iter
      (fun (name, spjg) ->
        let rows = Mv_opt.Cost.estimate_view_rows ~name w.stats spjg in
        match Mv_core.Registry.add_view registry ~row_count:rows ~name spjg with
        | (_ : Mv_core.View.t) ->
            maint :=
              !maint
              +. Mv_opt.Advisor.maintenance_cost config w.stats spjg ~rows
                   ~nqueries:(List.length w.queries)
        | exception Mv_core.View.Rejected _ -> ()
        | exception Mv_core.Registry.Duplicate_view _ -> ())
      defs;
    let cost =
      List.fold_left
        (fun acc q ->
          acc +. (Mv_opt.Optimizer.optimize registry w.stats q).Mv_opt.Optimizer.cost)
        0.0 w.queries
    in
    (cost +. !maint, registry)
  in
  let cost_none, _ = eval [] in
  let advised_defs =
    List.map (fun p -> (p.Mv_opt.Advisor.name, p.Mv_opt.Advisor.spjg)) advice.Mv_opt.Advisor.picks
  in
  let cost_advised, advised_registry = eval advised_defs in
  (* random-equal-budget baselines: shuffle the pool, fill to the budget *)
  let random_set t =
    let rng = Mv_util.Prng.create ((7919 * (t + 1)) + seed) in
    let shuffled = Mv_util.Prng.shuffle rng defs in
    let used = ref 0.0 in
    List.filter
      (fun d ->
        let s = size_of d in
        if !used +. s <= budget then (
          used := !used +. s;
          true)
        else false)
      shuffled
  in
  let cost_random =
    List.init trials (fun t -> fst (eval (random_set t)))
  in
  (* per-query optimize latency under the advised registry *)
  let h = Mv_obs.Instrument.histogram () in
  let plans_using_views =
    List.fold_left
      (fun n q ->
        let s = Mv_obs.Instrument.enter () in
        let r = Mv_opt.Optimizer.optimize advised_registry w.stats q in
        let wall, _ = Mv_obs.Instrument.elapsed s in
        Mv_obs.Instrument.observe h wall;
        if r.Mv_opt.Optimizer.used_views then n + 1 else n)
      0 w.queries
  in
  let wall, _ = Mv_obs.Instrument.elapsed span in
  let tol = 1e-9 *. (1.0 +. cost_none) in
  {
    a_candidates = candidates;
    a_mined = List.length mined;
    a_queries = List.length w.queries;
    a_budget = budget;
    a_used = advice.Mv_opt.Advisor.used_budget;
    a_picks = List.length advice.Mv_opt.Advisor.picks;
    a_considered = advice.Mv_opt.Advisor.considered;
    a_rejected = advice.Mv_opt.Advisor.rejected;
    a_cost_none = cost_none;
    a_cost_advised = cost_advised;
    a_cost_random = cost_random;
    a_model_before = advice.Mv_opt.Advisor.cost_before;
    a_model_after = advice.Mv_opt.Advisor.cost_after;
    a_plans_using_views = plans_using_views;
    a_p50 = Mv_obs.Instrument.quantile h 0.5;
    a_p90 = Mv_obs.Instrument.quantile h 0.9;
    a_p99 = Mv_obs.Instrument.quantile h 0.99;
    a_wall = wall;
    a_beats_random =
      List.for_all (fun c -> cost_advised <= c +. tol) cost_random;
    a_within_budget = advice.Mv_opt.Advisor.used_budget <= budget +. tol;
  }
