(** The measurement harness behind section 5's experiments: optimize a
    fixed query batch against the first N of a fixed view population under
    the four configurations, collecting the paper's counters. *)

module Spjg = Mv_relalg.Spjg

type config = { alt : bool; filter : bool }

val config_name : config -> string

val all_configs : config list

type level_flow = { level : string; entered : int; passed : int }

(** Per-phase optimizer latency percentiles over one measurement's query
    batch, from the [optimizer.phase.*] histograms (interpolated
    quantiles of per-call wall seconds). *)
type phase_stats = {
  phase : string;  (** "analyze" | "match" | "cost" | "total" *)
  calls : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

type measurement = {
  nviews : int;
  config : config;
  queries : int;
  domains : int;
      (** OCaml domains the query batch was sharded over (1 = sequential) *)
  wall_time : float;
      (** elapsed seconds for the whole query batch — the paper reports
          elapsed optimization time, so this is what the figures print *)
  cpu_time : float;  (** CPU seconds for the same batch *)
  rule_wall_time : float;
  rule_cpu_time : float;
  invocations : int;
  candidates : int;
  matched : int;
  substitutes : int;
  plans_using_views : int;
  cost_bound_prunes : int;
      (** substitute leaves abandoned by branch-and-bound cost-bound
          pruning ([opt.prune.cost_bound]), summed over the batch — plan
          choices are provably unaffected (strict [>] against the best
          complete plan) *)
  level_flow : level_flow list;
      (** per-filter-tree-level candidates in/out, summed over the batch *)
  phases : phase_stats list;
      (** one row per phase, always all four, zeros when a phase never
          ran — the JSON shape stays stable across measurement cells *)
}

val level_flow_of : Mv_core.Registry.t -> level_flow list

val phases_of : Mv_core.Registry.t -> phase_stats list

type workload = {
  schema : Mv_catalog.Schema.t;
  stats : Mv_catalog.Stats.t;
  views : Mv_core.View.t list;
  queries : Spjg.t list;
}

val make_workload :
  ?view_seed:int ->
  ?query_seed:int ->
  ?nviews:int ->
  ?nqueries:int ->
  unit ->
  workload

val take : int -> 'a list -> 'a list

val run : ?domains:int -> workload -> nviews:int -> config:config -> measurement
(** One measurement. [domains > 1] shards the query batch over that many
    OCaml domains against one shared registry ({!Pool.map_chunked});
    counter totals and candidate sets are identical to the sequential run,
    only the timings differ. Freezes the intern domains after registry
    construction. *)

val sweep :
  ?domains:int ->
  workload ->
  nviews_list:int list ->
  configs:config list ->
  measurement list
(** The full grid, with one discarded warmup run first. *)

val scaling :
  workload -> nviews:int -> domains_list:int list -> measurement list
(** The same (nviews, Alt&Filter) cell at each domain count, one warmup
    first — the rows' counters must agree, only timings may differ. *)

val whynot : workload -> nviews:int -> (string * int) list
(** Aggregate rejection provenance over the workload: every (query, view)
    pair attributed via {!Mv_core.Registry.explain} to ["matched"],
    ["filter:<stage>"] or ["reject:<label>"], counted, sorted by
    descending count (ties by name). *)

(** One serving-benchmark run: repeated-query traffic against a dynamic
    registry through the epoch-validated match/plan cache
    ({!Mv_opt.Match_cache}). Counter fields are totals over the whole run;
    the boolean fields are the correctness verdicts the acceptance gate
    reads. *)
type serving_measurement = {
  s_nviews : int;
  s_queries : int;
  s_passes : int;  (** timed warm passes *)
  s_domains : int;
  s_capacity : int;
  cold_wall : float;  (** seconds for the first (cache-filling) pass *)
  warm_wall : float;  (** per-pass average over the warm passes *)
  warm_speedup : float;  (** [cold_wall /. warm_wall] *)
  hit_rate : float;
      (** plan-layer hits during the warm passes / plan lookups issued *)
  match_hits : int;
  match_misses : int;
  match_evictions : int;
  match_invalidations : int;
  plan_hits : int;
  plan_misses : int;
  plan_evictions : int;
  plan_invalidations : int;
  warm_identical : bool;
      (** every warm pass returned byte-identical plans to the cold pass *)
  churn_invalidations : int;
      (** cache invalidations observed after the drop and the re-add *)
  churn_consistent : bool;
      (** after each mutation the cached pass is byte-identical to an
          uncached pass against the same (mutated) registry *)
  churn_no_stale : bool;
      (** no post-drop plan references the dropped view *)
}

(** One (rewrite x adaptive) timing cell of the execution benchmark:
    elapsed seconds for [x_reps] passes over the whole query set. *)
type exec_cell = { xc_rewrite : bool; xc_adaptive : bool; xc_wall : float }

(** One plan node's estimated-vs-actual row count from the
    rewrite+adaptive arm ({!Mv_opt.Plan_exec.node_report} tagged with its
    query). *)
type exec_node = {
  xn_query : string;
  xn_label : string;
  xn_strategy : string;
  xn_est : float;
  xn_actual : int;
}

(** One scale point of the end-to-end execution benchmark ([bench
    --exec]): TPC-H-style data, three hand-written views, six queries
    (four answerable from the views, two not), timed in the four
    (rewrite x adaptive) cells. *)
type exec_measurement = {
  x_scale : int;
  x_rows : int;  (** total base-table rows generated *)
  x_views : int;
  x_queries : int;
  x_reps : int;
  x_cells : exec_cell list;
  x_rewrite_speedup : float;
      (** wall(no rewrite, adaptive) / wall(rewrite, adaptive) *)
  x_adaptive_speedup : float;
      (** wall(rewrite, always-hash) / wall(rewrite, adaptive) *)
  x_plans_with_views : int;  (** of [x_queries], with substitutes on *)
  x_prunes : int;  (** [opt.prune.cost_bound] over both optimize passes *)
  x_stats_missing : int;  (** [cost.stats.missing] delta over the run *)
  x_equivalent : bool;
      (** every cell's every result was bag-equal to direct legacy
          execution of the original query *)
  x_strategies : (string * int) list;
      (** [exec.join.strategy.{hash,nlj,inlj}] deltas over the run *)
  x_nodes : exec_node list;
}

val exec_bench : ?seed:int -> ?reps:int -> scale:int -> unit -> exec_measurement
(** One scale point: generate data, materialize the views, compute
    statistics (histograms included) from the actual contents, optimize
    with and without substitutes, then time plan execution per cell
    (plans are built outside the timing loop — the cells measure
    execution only, each preceded by one discarded correctness pass). *)

(** One (view count x batch size) cell of the maintenance benchmark: the
    same random write batches pushed through incremental maintenance
    ({!Mv_engine.Ivm}) on one database copy and through full
    rematerialization of the affected views on another, per-batch wall
    seconds collected per arm. *)
type maintain_cell = {
  m_nviews : int;
  m_batch_rows : int;  (** base rows written per batch (inserts + deletes) *)
  m_batches : int;
  m_rows_written : int;  (** total base rows written over the cell *)
  m_delta_wall : float;  (** total seconds, incremental-maintenance arm *)
  m_remat_wall : float;  (** total seconds, full-rematerialization arm *)
  m_delta_p50 : float;
  m_delta_p90 : float;
  m_delta_p99 : float;  (** per-batch seconds, delta arm *)
  m_remat_p50 : float;
  m_remat_p90 : float;
  m_remat_p99 : float;  (** per-batch seconds, rematerialization arm *)
  m_speedup : float;  (** [m_remat_wall /. m_delta_wall] *)
  m_equivalent : bool;
      (** every view's delta-maintained contents ended bag-equal (float
          columns within a relative tolerance — incremental SUMs reorder
          float additions) to the rematerialized arm's *)
  m_stats_fresh : bool;
      (** [Ivm.refresh_stats] row counts match the actual contents *)
}

type maintain_measurement = {
  mm_scale : int;
  mm_base_rows : int;
  mm_pool : int;  (** generator view pool size *)
  mm_batches : int;
  mm_cells : maintain_cell list;
  mm_equivalent : bool;  (** conjunction over the cells *)
  mm_stats_fresh : bool;
  mm_timeline : Mv_obs.Json.t;
      (** {!Mv_obs.Timeline} export over the grid: every cell reports its
          per-batch [maintain.delta] / [maintain.remat] seconds into a
          shared scoped obs registry, windowed by a dedicated sampler
          domain *)
}

val bag_close :
  Mv_base.Value.t array list -> Mv_base.Value.t array list -> bool
(** Near-equality of view contents as bags: float columns compare within a
    relative tolerance (incremental SUM maintenance reorders float
    additions and may drift by rounding from a from-scratch fold —
    DESIGN.md §12); everything else is exact. *)

val maintain :
  ?seed:int ->
  ?batches:int ->
  ?scale:int ->
  nviews_list:int list ->
  batch_sizes:int list ->
  unit ->
  maintain_measurement
(** The maintenance benchmark ([bench --maintain]): generate TPC-H-style
    data, draw a generator view pool over its actual statistics, then for
    every (view count, batch size) cell feed identical random insert/delete
    batches to a delta-maintained copy and a rematerialize-on-write copy,
    timing each batch in both arms and checking the final contents agree. *)

val serving :
  ?domains:int ->
  ?passes:int ->
  ?capacity:int ->
  workload ->
  nviews:int ->
  serving_measurement
(** Cold pass, [passes] warm passes, then a drop and a re-add of the first
    view with cached-vs-uncached agreement checked after each mutation.
    [domains > 1] shards every pass over that many OCaml domains against
    the one shared cache (mutex-sharded). *)

(** One candidate-scale point of the advisor benchmark ([bench --advise]):
    mine candidates from a generated workload, select under a storage
    budget, then compare the advised set against random-equal-budget sets
    on real optimizer cost. Entirely model-driven and deterministic except
    the latency fields — the verdict booleans never depend on timing. *)
type advise_measurement = {
  a_candidates : int;  (** candidate pool size offered to the advisor *)
  a_mined : int;  (** distinct candidates mined before truncation *)
  a_queries : int;
  a_budget : float;  (** storage budget (estimated rows) *)
  a_used : float;  (** budget consumed by the picks *)
  a_picks : int;
  a_considered : int;  (** candidates accepted into the pricing pool *)
  a_rejected : int;  (** candidates the registry would not index *)
  a_cost_none : float;
      (** real total workload cost (optimizer cost + maintenance term)
          with no views registered *)
  a_cost_advised : float;  (** the same under the advised set *)
  a_cost_random : float list;  (** one per random-equal-budget trial *)
  a_model_before : float;  (** the advisor's own modeled before-cost *)
  a_model_after : float;  (** ... and modeled after-cost *)
  a_plans_using_views : int;  (** queries rewritten under the advised set *)
  a_p50 : float;
  a_p90 : float;
  a_p99 : float;  (** per-query optimize wall seconds, advised registry *)
  a_wall : float;  (** end-to-end mine+advise+evaluate seconds *)
  a_beats_random : bool;
      (** advised cost <= every random trial's (the acceptance gate) *)
  a_within_budget : bool;
}

val advise :
  ?seed:int ->
  ?trials:int ->
  ?write_fraction:float ->
  ?budget_frac:float ->
  candidates:int ->
  nqueries:int ->
  unit ->
  advise_measurement
(** One scale point: generate [nqueries] queries (a different seed per
    candidate scale), mine, keep the first [candidates] candidates, advise
    under a budget of [budget_frac] of the pool's total estimated size,
    and evaluate advised vs [trials] random-equal-budget sets with the
    real optimizer. *)
