(** High-throughput serving front end over the RCU registry snapshots
    (DESIGN.md §10): per-domain L1 result caches in front of the shared
    epoch-validated match/plan cache, single-flight dedup of identical
    in-flight optimizations, and an open-loop Poisson/fixed-rate driver
    that sustains a query stream across OCaml 5 domains while views churn.

    Every {!submit} pins one {!Mv_core.Registry.snapshot} (wait-free — a
    single [Atomic.get], no reader-side mutex) and optimizes against
    exactly that registry state; the returned (epoch, result) pair is the
    observation the linearizability suite (test/test_serve.ml) replays
    against sequential optimization at that epoch. *)

(** {1 The front} *)

type front

val front :
  ?l1_capacity:int ->
  ?capacity:int ->
  Mv_core.Registry.t ->
  Mv_catalog.Stats.t ->
  front
(** A serving front over one registry: a shared {!Mv_opt.Match_cache} of
    [capacity] (default 4096), per-domain L1 LRUs of [l1_capacity]
    (default 512) keyed by the normalized query block and valid only at
    the current snapshot epoch, and the single-flight table. Counters go
    to the registry's obs instance: [cache.l1.hits|misses] (atomic — the
    per-domain caches share them without loss),
    [serve.flight.leaders|waits], and the [serve.latency] /
    [serve.service] histograms fed by {!run}. *)

val registry : front -> Mv_core.Registry.t

val cache : front -> Mv_opt.Match_cache.t

val submit : front -> Mv_relalg.Spjg.t -> int * Mv_opt.Optimizer.result
(** Serve one query: pin the current snapshot, then try the domain-local
    L1 (hit iff stamped with the pinned epoch), then probe the shared
    plan layer, then join-or-lead the query's flight — the leader runs
    {!Mv_opt.Optimizer.optimize} with the snapshot pinned while
    concurrent identical submits wait on its condvar, so a cold herd of K
    identical queries runs the optimizer exactly once (the [rule.*]
    counters advance as for one optimization; asserted by the
    single-flight stress test). Returns the epoch the result was computed
    at — a waiter reports its leader's epoch, which can lag its own
    snapshot by an in-flight mutation and is still a valid observation at
    that epoch. *)

val submit_traced :
  front ->
  spans:Mv_obs.Span.scope ->
  Mv_relalg.Spjg.t ->
  int * Mv_opt.Optimizer.result
(** One span-recorded submission through the shared-cache path (the
    caller's L1 is bypassed so the trace always shows the lookup, and —
    cold — the pinned optimization). For the Perfetto serve-trace
    artifact; not part of the measured hot path. *)

(** {1 The open-loop driver} *)

type cfg = {
  nviews : int;
  domains : int;  (** serving domains (the churn mutator is a separate one) *)
  rate : float;
      (** target arrival rate in queries/second across all domains,
          split evenly; [0.] = closed loop (back-to-back submission) *)
  poisson : bool;  (** exponential inter-arrivals instead of fixed-rate *)
  duration : float;  (** timed-window seconds *)
  warmup : bool;  (** one sequential cache-filling pass before the clock *)
  churn_period : float;  (** seconds between mutations; [0.] = no churn *)
  churn_pool : int;  (** tail views the mutator alternately drops/re-adds *)
  l1_capacity : int;
  capacity : int;
  sample : int;  (** observations kept per domain for the replay check *)
  sample_stride : int;  (** keep every k-th observation *)
  maintain_batch : int;
      (** base rows per delta batch the mutator pushes through
          {!Mv_engine.Ivm} every churn tick, against a private database
          and private view clones (serving plans must not depend on the
          write traffic or the replay would be unsound); [0] disables
          write traffic. Staleness flips on the live registry ride along
          — invisible to the default matcher, so serving is unaffected. *)
  maintain_views : int;  (** view clones the write traffic maintains *)
  advise : int;
      (** mine up to this many candidates from the workload's queries,
          advise under the default budget and register the picks (names
          prefixed [adv_]) before the clock starts. They join the
          replayed population but not the churn pool; {!measurement}
          reports them and the ones whose ledger account never matched
          (the dead-view gate). [0] = off *)
  timeline_period : float;
      (** seconds between {!Mv_obs.Timeline} sampler ticks, taken by a
          dedicated domain over the registry's obs instance; [0.] = no
          sampler *)
  seed : int;  (** arrival-process PRNG seed (deterministic schedules) *)
}

val default_cfg : cfg
(** 1000 views, 2 domains, 200 qps Poisson for 1.5 s, churn every 120 ms
    over an 8-view pool — the [bench --serve] acceptance configuration. *)

type measurement = {
  sv_nviews : int;
  sv_domains : int;
  sv_rate : float;
  sv_poisson : bool;
  sv_wall : float;
  sv_queries : int;
  sv_qps : float;
  sv_lat_p50 : float;
  sv_lat_p90 : float;
  sv_lat_p99 : float;
      (** open-loop latency (seconds): completion minus {e scheduled}
          arrival, so falling behind the arrival schedule shows up as
          queueing delay instead of silently shrinking the numbers *)
  sv_srv_p50 : float;
  sv_srv_p90 : float;
  sv_srv_p99 : float;  (** service time: the submit call alone *)
  sv_l1_hits : int;
  sv_l1_misses : int;
  sv_flight_leaders : int;
  sv_flight_waits : int;
  sv_plan_hits : int;
  sv_plan_misses : int;
  sv_match_hits : int;
  sv_match_misses : int;  (** counter deltas over the timed window *)
  sv_mutations : int;
  sv_maint_batches : int;  (** delta batches applied during the window *)
  sv_maint_consistent : bool;
      (** every maintained view clone ended bag-equal (floats within
          tolerance) to a from-scratch recomputation; [true] when
          [maintain_batch = 0] *)
  sv_epoch_lo : int;
  sv_epoch_hi : int;
  sv_sampled : int;
  sv_consistent : bool;
      (** linearizability verdict: every sampled (epoch, query, plan)
          observation is byte-identical to sequential optimization
          against a scratch registry rebuilt at that epoch's population *)
  sv_advised : string list;  (** advised-and-registered view names *)
  sv_dead : string list;
      (** advised views whose ledger account never matched — the
          dead-view gate trips when non-empty *)
  sv_windows : (float * int * float) list;
      (** per timeline window: (length s, submissions completed, p99
          open-loop latency); empty when [timeline_period = 0.] *)
  sv_timeline : Mv_obs.Json.t;  (** {!Mv_obs.Timeline.to_json} export *)
  sv_health : Mv_obs.Json.t;  (** {!Mv_core.Health.to_json} export *)
}

val run : ?cfg:cfg -> Harness.workload -> measurement
(** Build a registry over the first [cfg.nviews] workload views, activate
    snapshot publication, optionally warm the shared cache, then run
    [cfg.domains] open-loop serving domains plus one churn-mutator domain
    for [cfg.duration] seconds and replay the sampled observations. The
    arrival schedules and the mutation sequence are deterministic given
    [cfg]; the interleaving (and so the counters and latencies) is not. *)
