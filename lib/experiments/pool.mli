(** Deterministic chunked scheduling over OCaml 5 domains: contiguous
    chunks, one per domain, no work stealing — a parallel run touches each
    item from exactly one domain and returns results in index order, so it
    is directly comparable against the sequential run. *)

val chunk_bounds : domains:int -> int -> (int * int) list
(** [chunk_bounds ~domains n] — the half-open [(lo, hi)] index ranges the
    scheduler uses, in order. Sizes differ by at most one; at most
    [min domains n] chunks. *)

val map_chunked : domains:int -> int -> (int -> 'a) -> 'a list
(** [map_chunked ~domains n f] is [[f 0; ...; f (n-1)]], evaluated with one
    domain per chunk ([domains = 1]: fully sequential, nothing spawned).
    The caller runs chunk 0; spawned domains are always joined, and the
    first chunk exception (if any) is re-raised afterwards. *)

val map_list : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunked] over the elements of a list. *)

val run_each : (unit -> 'a) list -> 'a list
(** One thunk per domain, all concurrent (the caller runs the first);
    results in input order. For stress tests wanting maximum
    interleaving. *)
