(** Formatting of the paper's figures and in-text statistics from sweep
    measurements, plus the machine-readable BENCH_*.json trajectory.
    Every printer states what the paper reported so the output reads as
    paper-vs-measured. *)

val find :
  Harness.measurement list ->
  nviews:int ->
  config:Harness.config ->
  Harness.measurement option
(** The grid cell for (nviews, config), when measured. *)

val configs_ordered : Harness.config list
(** The four configurations in the paper's column order (Alt&Filter
    first). *)

val figure2 : Harness.measurement list -> int list -> unit
(** Optimization time vs. number of views, four curves. *)

val figure3 : Harness.measurement list -> int list -> unit
(** Increase in optimization time vs. time inside the view-matching
    rule. *)

val figure4 : Harness.measurement list -> int list -> unit
(** Final plans using materialized views. *)

val stats_table : Harness.measurement list -> int list -> unit
(** The in-text statistics of section 5 (candidate fraction, pass rate,
    substitutes per invocation/query). *)

val level_table : Harness.measurement list -> int list -> unit
(** Per-filter-tree-level pruning breakdown (Alt&Filter only). *)

val level_flow_json : Harness.level_flow list -> Mv_obs.Json.t
(** The per-level candidate flow as the ["levels"] list (also used by the
    filter-tree bench for its own sections). *)

val measurement_json : Harness.measurement -> Mv_obs.Json.t

val measurements_json : Harness.measurement list -> Mv_obs.Json.t
(** The ["measurements"] section of the trajectory, one object per grid
    cell. *)

val scaling_speedup :
  Harness.measurement list -> Harness.measurement -> float
(** Wall-time speedup of a row relative to the 1-domain row of the same
    sweep (1.0 when absent or unmeasurable). *)

val scaling_table : Harness.measurement list -> unit

val scaling_json : Harness.measurement list -> Mv_obs.Json.t
(** The ["scaling"] section: measurements plus their [speedup]. *)

val serving_table : Harness.serving_measurement -> unit
(** The serving benchmark: warm-vs-cold latency, hit rate, the cache
    counters, and the churn (drop/re-add) verdicts. *)

val serving_json : Harness.serving_measurement -> Mv_obs.Json.t
(** The ["serving"] section of the trajectory. *)

val serve_table : Serve.measurement -> unit
(** The serving-throughput benchmark: qps, latency/service percentiles,
    the three cache layers, single-flight dedup, and the churn +
    linearizability-replay verdict. *)

val serve_json : Serve.measurement -> Mv_obs.Json.t
(** The ["serving_throughput"] section of the trajectory; the [latency]
    and [service] objects carry the [p50_s/p90_s/p99_s] keys
    json_check's percentile tolerance compares on. *)

val whynot_table : nviews:int -> nqueries:int -> (string * int) list -> unit
(** The aggregate why-not table from {!Harness.whynot}: one row per cause
    with its (query, view) pair count and share. *)

val whynot_json : nviews:int -> nqueries:int -> (string * int) list -> Mv_obs.Json.t
(** The ["whynot"] section of the trajectory. *)

val exec_table : Harness.exec_measurement list -> unit
(** The end-to-end execution benchmark: one timing row per scale (four
    rewrite x adaptive cells plus the two speedups), per-scale strategy
    and counter lines, and the estimated-vs-actual-rows table of the
    largest scale. *)

val exec_json : Harness.exec_measurement list -> Mv_obs.Json.t
(** The ["exec"] section of the trajectory, one object per scale. *)

val maintenance_table : Harness.maintain_measurement -> unit
(** The maintenance benchmark: per (view count, batch size) cell, total
    and per-batch p50 wall seconds of the delta arm vs the
    rematerialization arm, the speedup, and the equivalence verdicts. *)

val maintenance_json : Harness.maintain_measurement -> Mv_obs.Json.t
(** The ["maintenance"] section of the trajectory; the per-cell [delta]
    and [remat] objects carry the [p50_s/p90_s/p99_s] keys json_check's
    percentile tolerance compares on. *)

val advise_table : Harness.advise_measurement list -> unit
(** One row per candidate scale: budget use, advised vs best-random real
    workload cost, and the two acceptance verdicts. *)

val advise_json : Harness.advise_measurement list -> Mv_obs.Json.t
(** One object per candidate scale; [beats_random] and [within_budget]
    are the acceptance gate, [latency] the percentile-gated per-query
    optimize times under the advised registry. *)

val write_json : string -> Mv_obs.Json.t -> unit
(** Write one JSON document (plus trailing newline). *)
