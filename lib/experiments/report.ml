(** Formatting of the paper's figures and in-text statistics from sweep
    measurements. Every printer states what the paper reported so the
    output reads as paper-vs-measured. *)

let pr fmt = Printf.printf fmt

let find ms ~nviews ~config =
  List.find_opt
    (fun (m : Harness.measurement) ->
      m.Harness.nviews = nviews && m.Harness.config = config)
    ms

let configs_ordered =
  [
    { Harness.alt = true; filter = true };
    { Harness.alt = false; filter = true };
    { Harness.alt = true; filter = false };
    { Harness.alt = false; filter = false };
  ]

(* Figure 2: total optimization time vs number of views, four curves. *)
let figure2 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 2: optimization time vs number of views ==\n";
  pr "paper: optimization time grows linearly; with the filter tree the\n";
  pr "increase at 1000 views is ~60%%, without it ~110%%.\n\n";
  pr "(wall-clock seconds; the paper reports elapsed time)\n";
  pr "%8s" "views";
  List.iter
    (fun c -> pr " %14s" (Harness.config_name c))
    configs_ordered;
  pr "\n";
  List.iter
    (fun n ->
      pr "%8d" n;
      List.iter
        (fun c ->
          match find ms ~nviews:n ~config:c with
          | Some m -> pr " %13.3fs" m.Harness.wall_time
          | None -> pr " %14s" "-")
        configs_ordered;
      pr "\n")
    nviews_list;
  (* headline ratios *)
  let base c = find ms ~nviews:0 ~config:c in
  let last c = find ms ~nviews:(List.fold_left max 0 nviews_list) ~config:c in
  let incr c =
    match (base c, last c) with
    | Some b, Some l when b.Harness.wall_time > 0.0 ->
        Some
          ((l.Harness.wall_time -. b.Harness.wall_time)
           /. b.Harness.wall_time *. 100.0)
    | _ -> None
  in
  (match incr { Harness.alt = true; filter = true } with
  | Some pct -> pr "\nincrease with filter tree: %+.0f%% (paper: ~+60%%)\n" pct
  | None -> ());
  match incr { Harness.alt = true; filter = false } with
  | Some pct -> pr "increase without filter tree: %+.0f%% (paper: ~+110%%)\n" pct
  | None -> ()

(* Figure 3: total increase in optimization time vs time spent inside the
   view-matching rule (filter tree enabled, substitutes produced). *)
let figure3 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 3: increase in optimization time vs view-matching time ==\n";
  pr "paper: at 1000 views about half of the increase is spent inside the\n";
  pr "view-matching rule; with few views almost all of it is.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  let base = find ms ~nviews:0 ~config:cfg in
  pr "(wall-clock seconds)\n";
  pr "%8s %16s %18s\n" "views" "total increase" "view-matching time";
  List.iter
    (fun n ->
      match (find ms ~nviews:n ~config:cfg, base) with
      | Some m, Some b ->
          pr "%8d %15.3fs %17.3fs\n" n
            (m.Harness.wall_time -. b.Harness.wall_time)
            m.Harness.rule_wall_time
      | _ -> ())
    nviews_list

(* Figure 4: number of final plans using materialized views. *)
let figure4 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 4: final plans using materialized views ==\n";
  pr "paper: ~60%% of queries use a view at 200 views, ~87%% at 1000.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  pr "%8s %12s %10s\n" "views" "plans w/view" "fraction";
  List.iter
    (fun n ->
      match find ms ~nviews:n ~config:cfg with
      | Some m ->
          pr "%8d %12d %9.0f%%\n" n m.Harness.plans_using_views
            (100.0 *. float_of_int m.Harness.plans_using_views
             /. float_of_int (max 1 m.Harness.queries))
      | None -> ())
    nviews_list

(* The in-text statistics of section 5 (T1-T5 in DESIGN.md). *)
let stats_table (ms : Harness.measurement list) nviews_list =
  pr "\n== In-text statistics (section 5) ==\n";
  pr "paper: candidate set < 0.4%% of views (0.29%% @100, 0.36%% @1000);\n";
  pr "15-20%% of candidates pass full matching; substitutes/invocation\n";
  pr "0.04 @100 -> 0.59 @1000; ~17.8 invocations/query; substitutes/query\n";
  pr "0.7 @100 -> 10.5 @1000.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  pr "%8s %10s %12s %10s %12s %12s\n" "views" "cand/view" "pass-rate"
    "subs/inv" "inv/query" "subs/query";
  List.iter
    (fun n ->
      if n > 0 then
        match find ms ~nviews:n ~config:cfg with
        | Some m ->
            let fi = float_of_int in
            pr "%8d %9.2f%% %11.1f%% %10.2f %12.1f %12.2f\n" n
              (100.0 *. fi m.Harness.candidates
               /. fi (max 1 m.Harness.invocations)
               /. fi n)
              (100.0 *. fi m.Harness.matched
               /. fi (max 1 m.Harness.candidates))
              (fi m.Harness.substitutes /. fi (max 1 m.Harness.invocations))
              (fi m.Harness.invocations /. fi (max 1 m.Harness.queries))
              (fi m.Harness.substitutes /. fi (max 1 m.Harness.queries))
        | None -> ())
    nviews_list

(* The per-level pruning breakdown behind the in-text candidate fraction:
   how many candidate views entered each filter-tree level and how many
   survived it, summed over the batch (Alt&Filter configuration). *)
let level_table (ms : Harness.measurement list) nviews_list =
  pr "\n== Filter-tree pruning per level ==\n";
  pr "paper: each level is a necessary condition; the candidate set after\n";
  pr "all levels stays below 0.4%% of the view population.\n";
  let cfg = { Harness.alt = true; filter = true } in
  List.iter
    (fun n ->
      if n > 0 then
        match find ms ~nviews:n ~config:cfg with
        | Some m when m.Harness.level_flow <> [] ->
            pr "\n%d views:\n" n;
            pr "  %-28s %12s %12s %9s\n" "level" "entered" "passed" "kept";
            List.iter
              (fun (f : Harness.level_flow) ->
                pr "  %-28s %12d %12d %8.1f%%\n" f.Harness.level
                  f.Harness.entered f.Harness.passed
                  (100.0 *. float_of_int f.Harness.passed
                   /. float_of_int (max 1 f.Harness.entered)))
              m.Harness.level_flow
        | _ -> ())
    nviews_list

(* ---- machine-readable output (the BENCH_*.json trajectory) ---- *)

module J = Mv_obs.Json

let level_flow_json (fs : Harness.level_flow list) =
  J.List
    (List.map
       (fun (f : Harness.level_flow) ->
         J.Obj
           [
             ("level", J.String f.Harness.level);
             ("in", J.Int f.Harness.entered);
             ("out", J.Int f.Harness.passed);
           ])
       fs)

(* One object per phase, keyed by phase name: the percentile leaves carry
   the [_s] suffix json_check's percentile-tolerance compare keys on. *)
let phases_json (ps : Harness.phase_stats list) =
  J.Obj
    (List.map
       (fun (p : Harness.phase_stats) ->
         ( p.Harness.phase,
           J.Obj
             [
               ("calls", J.Int p.Harness.calls);
               ("p50_s", J.Float p.Harness.p50);
               ("p90_s", J.Float p.Harness.p90);
               ("p99_s", J.Float p.Harness.p99);
             ] ))
       ps)

let measurement_json (m : Harness.measurement) =
  J.Obj
    [
      ("config", J.String (Harness.config_name m.Harness.config));
      ("alt", J.Bool m.Harness.config.Harness.alt);
      ("filter", J.Bool m.Harness.config.Harness.filter);
      ("nviews", J.Int m.Harness.nviews);
      ("queries", J.Int m.Harness.queries);
      ("domains", J.Int m.Harness.domains);
      ("wall_time_s", J.Float m.Harness.wall_time);
      ("cpu_time_s", J.Float m.Harness.cpu_time);
      ("rule_wall_time_s", J.Float m.Harness.rule_wall_time);
      ("rule_cpu_time_s", J.Float m.Harness.rule_cpu_time);
      ("invocations", J.Int m.Harness.invocations);
      ("candidates", J.Int m.Harness.candidates);
      ("matched", J.Int m.Harness.matched);
      ("substitutes", J.Int m.Harness.substitutes);
      ("plans_using_views", J.Int m.Harness.plans_using_views);
      ("cost_bound_prunes", J.Int m.Harness.cost_bound_prunes);
      ("levels", level_flow_json m.Harness.level_flow);
      ("phases", phases_json m.Harness.phases);
    ]

let measurements_json (ms : Harness.measurement list) =
  J.List (List.map measurement_json ms)

(* ---- domain-scaling report (the multicore sweep) ---- *)

(* Speedup of each row relative to the 1-domain row of the same sweep
   (1.0 when absent or unmeasurable). *)
let scaling_speedup (ms : Harness.measurement list)
    (m : Harness.measurement) =
  match List.find_opt (fun (b : Harness.measurement) -> b.Harness.domains = 1) ms with
  | Some base when m.Harness.wall_time > 0.0 ->
      base.Harness.wall_time /. m.Harness.wall_time
  | _ -> 1.0

let scaling_table (ms : Harness.measurement list) =
  pr "\n== Domain scaling: one shared registry, query batch sharded ==\n";
  pr "(Alt&Filter; identical counter totals required across rows —\n";
  pr "only the timings may move. Speedup is wall(1 domain)/wall(N).)\n\n";
  pr "%8s %8s %12s %12s %10s %12s %12s\n" "domains" "views" "wall" "cpu"
    "speedup" "candidates" "substitutes";
  List.iter
    (fun (m : Harness.measurement) ->
      pr "%8d %8d %11.3fs %11.3fs %9.2fx %12d %12d\n" m.Harness.domains
        m.Harness.nviews m.Harness.wall_time m.Harness.cpu_time
        (scaling_speedup ms m) m.Harness.candidates m.Harness.substitutes)
    ms

let scaling_json (ms : Harness.measurement list) =
  J.List
    (List.map
       (fun (m : Harness.measurement) ->
         match measurement_json m with
         | J.Obj fields ->
             J.Obj (fields @ [ ("speedup", J.Float (scaling_speedup ms m)) ])
         | j -> j)
       ms)

(* ---- serving report (dynamic registry + match/plan cache) ---- *)

let serving_table (m : Harness.serving_measurement) =
  pr "\n== Serving: repeated queries through the match/plan cache ==\n";
  pr "(one registry, %d views; epoch-validated LRU, capacity %d;\n"
    m.Harness.s_nviews m.Harness.s_capacity;
  pr " a drop and a re-add between passes exercise invalidation)\n\n";
  pr "%10s %8s %8s %8s\n" "queries" "passes" "domains" "views";
  pr "%10d %8d %8d %8d\n\n" m.Harness.s_queries m.Harness.s_passes
    m.Harness.s_domains m.Harness.s_nviews;
  pr "cold pass:        %10.4fs\n" m.Harness.cold_wall;
  pr "warm pass (avg):  %10.4fs\n" m.Harness.warm_wall;
  pr "warm speedup:     %9.1fx\n" m.Harness.warm_speedup;
  pr "warm hit rate:    %9.1f%%\n" (100.0 *. m.Harness.hit_rate);
  pr "\n%-24s %10s %10s %10s %14s\n" "counter" "hits" "misses" "evictions"
    "invalidations";
  pr "%-24s %10d %10d %10d %14d\n" "cache.match" m.Harness.match_hits
    m.Harness.match_misses m.Harness.match_evictions
    m.Harness.match_invalidations;
  pr "%-24s %10d %10d %10d %14d\n" "cache.plan" m.Harness.plan_hits
    m.Harness.plan_misses m.Harness.plan_evictions
    m.Harness.plan_invalidations;
  pr "\nwarm plans byte-identical to cold: %b\n" m.Harness.warm_identical;
  pr "churn invalidations (drop + re-add): %d\n" m.Harness.churn_invalidations;
  pr "churn passes match uncached optimization: %b\n"
    m.Harness.churn_consistent;
  pr "no post-drop plan uses the dropped view: %b\n" m.Harness.churn_no_stale

let serving_json (m : Harness.serving_measurement) =
  J.Obj
    [
      ("nviews", J.Int m.Harness.s_nviews);
      ("queries", J.Int m.Harness.s_queries);
      ("passes", J.Int m.Harness.s_passes);
      ("domains", J.Int m.Harness.s_domains);
      ("capacity", J.Int m.Harness.s_capacity);
      ("cold_wall_s", J.Float m.Harness.cold_wall);
      ("warm_wall_s", J.Float m.Harness.warm_wall);
      ("warm_speedup", J.Float m.Harness.warm_speedup);
      ("hit_rate", J.Float m.Harness.hit_rate);
      ( "match",
        J.Obj
          [
            ("hits", J.Int m.Harness.match_hits);
            ("misses", J.Int m.Harness.match_misses);
            ("evictions", J.Int m.Harness.match_evictions);
            ("invalidations", J.Int m.Harness.match_invalidations);
          ] );
      ( "plan",
        J.Obj
          [
            ("hits", J.Int m.Harness.plan_hits);
            ("misses", J.Int m.Harness.plan_misses);
            ("evictions", J.Int m.Harness.plan_evictions);
            ("invalidations", J.Int m.Harness.plan_invalidations);
          ] );
      ("warm_identical", J.Bool m.Harness.warm_identical);
      ("churn_invalidations", J.Int m.Harness.churn_invalidations);
      ("churn_consistent", J.Bool m.Harness.churn_consistent);
      ("churn_no_stale", J.Bool m.Harness.churn_no_stale);
    ]

(* ---- serving-throughput report (RCU front end, open-loop driver) ---- *)

let serve_table (m : Serve.measurement) =
  pr "\n== Serving throughput: open-loop stream over RCU snapshots ==\n";
  pr "(%d views, %d serving domains + 1 churn mutator; %s arrivals at\n"
    m.Serve.sv_nviews m.Serve.sv_domains
    (if m.Serve.sv_poisson then "Poisson" else "fixed-rate");
  pr " %.0f qps target; readers pin wait-free snapshots, never a mutex)\n\n"
    m.Serve.sv_rate;
  pr "queries served:   %10d in %.3fs  =>  %.0f qps\n" m.Serve.sv_queries
    m.Serve.sv_wall m.Serve.sv_qps;
  pr "\n%-10s %12s %12s %12s\n" "" "p50" "p90" "p99";
  pr "%-10s %11.4fs %11.4fs %11.4fs\n" "latency" m.Serve.sv_lat_p50
    m.Serve.sv_lat_p90 m.Serve.sv_lat_p99;
  pr "%-10s %11.4fs %11.4fs %11.4fs\n" "service" m.Serve.sv_srv_p50
    m.Serve.sv_srv_p90 m.Serve.sv_srv_p99;
  pr "(latency counts schedule lag: completion - scheduled arrival)\n";
  pr "\n%-24s %10s %10s\n" "layer" "hits" "misses";
  pr "%-24s %10d %10d\n" "cache.l1 (per-domain)" m.Serve.sv_l1_hits
    m.Serve.sv_l1_misses;
  pr "%-24s %10d %10d\n" "cache.plan (shared)" m.Serve.sv_plan_hits
    m.Serve.sv_plan_misses;
  pr "%-24s %10d %10d\n" "cache.match (shared)" m.Serve.sv_match_hits
    m.Serve.sv_match_misses;
  pr "%-24s %10d %10d\n" "single-flight (led/waited)"
    m.Serve.sv_flight_leaders m.Serve.sv_flight_waits;
  pr "\nchurn: %d mutations, epoch %d -> %d\n" m.Serve.sv_mutations
    m.Serve.sv_epoch_lo m.Serve.sv_epoch_hi;
  if m.Serve.sv_maint_batches > 0 then
    pr "write traffic: %d delta batches, maintained == recomputed: %b\n"
      m.Serve.sv_maint_batches m.Serve.sv_maint_consistent;
  pr "sampled observations replayed sequentially: %d, consistent: %b\n"
    m.Serve.sv_sampled m.Serve.sv_consistent;
  (match m.Serve.sv_advised with
  | [] -> ()
  | advised ->
      pr "advised views registered: %d (%s)\n" (List.length advised)
        (String.concat ", " advised);
      (match m.Serve.sv_dead with
      | [] -> pr "dead-view gate: clean (every advised view matched)\n"
      | dead ->
          pr "dead-view gate: TRIPPED — never matched: %s\n"
            (String.concat ", " dead)));
  match m.Serve.sv_windows with
  | [] -> ()
  | windows ->
      pr "\ntimeline (%d windows): %10s %10s %12s\n" (List.length windows)
        "dur" "served" "p99-lat";
      List.iteri
        (fun i (dur, served, p99) ->
          pr "  window %-3d            %9.3fs %10d %11.4fs\n" i dur served p99)
        windows

let serve_json (m : Serve.measurement) =
  let pct p50 p90 p99 =
    J.Obj [ ("p50_s", J.Float p50); ("p90_s", J.Float p90);
            ("p99_s", J.Float p99) ]
  in
  J.Obj
    [
      ("nviews", J.Int m.Serve.sv_nviews);
      ("domains", J.Int m.Serve.sv_domains);
      ("rate_qps", J.Float m.Serve.sv_rate);
      ("poisson", J.Bool m.Serve.sv_poisson);
      ("duration_s", J.Float m.Serve.sv_wall);
      ("queries", J.Int m.Serve.sv_queries);
      ("qps", J.Float m.Serve.sv_qps);
      ("latency", pct m.Serve.sv_lat_p50 m.Serve.sv_lat_p90 m.Serve.sv_lat_p99);
      ("service", pct m.Serve.sv_srv_p50 m.Serve.sv_srv_p90 m.Serve.sv_srv_p99);
      ( "cache",
        J.Obj
          [
            ("l1_hits", J.Int m.Serve.sv_l1_hits);
            ("l1_misses", J.Int m.Serve.sv_l1_misses);
            ("flight_leaders", J.Int m.Serve.sv_flight_leaders);
            ("flight_waits", J.Int m.Serve.sv_flight_waits);
            ("plan_hits", J.Int m.Serve.sv_plan_hits);
            ("plan_misses", J.Int m.Serve.sv_plan_misses);
            ("match_hits", J.Int m.Serve.sv_match_hits);
            ("match_misses", J.Int m.Serve.sv_match_misses);
          ] );
      ( "churn",
        J.Obj
          [
            ("mutations", J.Int m.Serve.sv_mutations);
            ("maint_batches", J.Int m.Serve.sv_maint_batches);
            ("maint_consistent", J.Bool m.Serve.sv_maint_consistent);
            ("epoch_lo", J.Int m.Serve.sv_epoch_lo);
            ("epoch_hi", J.Int m.Serve.sv_epoch_hi);
            ("sampled", J.Int m.Serve.sv_sampled);
            ("consistent", J.Bool m.Serve.sv_consistent);
          ] );
      ("advised", J.List (List.map (fun n -> J.String n) m.Serve.sv_advised));
      ("dead", J.List (List.map (fun n -> J.String n) m.Serve.sv_dead));
      ( "windows",
        J.List
          (List.map
             (fun (dur, served, p99) ->
               J.Obj
                 [
                   ("dur_s", J.Float dur);
                   ("served", J.Int served);
                   ("latency_p99_s", J.Float p99);
                 ])
             m.Serve.sv_windows) );
      ("timeline", m.Serve.sv_timeline);
      ("health", m.Serve.sv_health);
    ]

(* ---- why-not report (aggregate rejection provenance) ---- *)

let whynot_table ~nviews ~nqueries (causes : (string * int) list) =
  pr "\n== Why-not: every (query, view) pair attributed ==\n";
  pr "(%d queries x %d views; \"filter:\" = pruned by that filter-tree\n"
    nqueries nviews;
  pr " stage, \"reject:\" = survived filtering, failed matching there)\n\n";
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 causes in
  pr "  %-36s %12s %9s\n" "cause" "pairs" "share";
  List.iter
    (fun (cause, n) ->
      pr "  %-36s %12d %8.2f%%\n" cause n
        (100.0 *. float_of_int n /. float_of_int (max 1 total)))
    causes;
  pr "  %-36s %12d\n" "total" total

let whynot_json ~nviews ~nqueries (causes : (string * int) list) =
  J.Obj
    [
      ("nviews", J.Int nviews);
      ("nqueries", J.Int nqueries);
      ( "causes",
        J.List
          (List.map
             (fun (cause, n) ->
               J.Obj [ ("cause", J.String cause); ("pairs", J.Int n) ])
             causes) );
    ]

(* ---- execution report (bench --exec: views + adaptive joins) ---- *)

let exec_table (ms : Harness.exec_measurement list) =
  pr "\n== Execution: view rewrites + adaptive joins, end to end ==\n";
  pr "(TPC-H-style data; 3 hand-written views, 6 queries — 4 answerable\n";
  pr " from a view, 2 not; every cell bag-checked against direct legacy\n";
  pr " execution; wall seconds are totals over reps x queries)\n\n";
  pr "%7s %9s %5s %12s %12s %12s %12s %9s %9s\n" "scale" "rows" "reps"
    "base/hash" "base/adapt" "views/hash" "views/adapt" "rw-spdup"
    "ad-spdup";
  List.iter
    (fun (m : Harness.exec_measurement) ->
      let wall rw ad =
        match
          List.find_opt
            (fun (c : Harness.exec_cell) ->
              c.Harness.xc_rewrite = rw && c.Harness.xc_adaptive = ad)
            m.Harness.x_cells
        with
        | Some c -> c.Harness.xc_wall
        | None -> 0.0
      in
      pr "%7d %9d %5d %11.4fs %11.4fs %11.4fs %11.4fs %8.2fx %8.2fx\n"
        m.Harness.x_scale m.Harness.x_rows m.Harness.x_reps
        (wall false false) (wall false true) (wall true false)
        (wall true true) m.Harness.x_rewrite_speedup
        m.Harness.x_adaptive_speedup)
    ms;
  List.iter
    (fun (m : Harness.exec_measurement) ->
      pr "\nscale %d: %d/%d plans use a view; strategies " m.Harness.x_scale
        m.Harness.x_plans_with_views m.Harness.x_queries;
      List.iter
        (fun (k, n) -> pr "%s=%d " k n)
        m.Harness.x_strategies;
      pr "; prunes=%d stats-missing=%d equivalent=%b\n" m.Harness.x_prunes
        m.Harness.x_stats_missing m.Harness.x_equivalent)
    ms;
  (* the estimation-error table, largest scale only (one row per node) *)
  match List.rev ms with
  | [] -> ()
  | m :: _ ->
      pr "\nEstimated vs actual rows per plan node (scale %d, views+adaptive):\n"
        m.Harness.x_scale;
      pr "  %-10s %-34s %-9s %12s %9s %8s\n" "query" "node" "strategy" "est"
        "actual" "q-err";
      List.iter
        (fun (n : Harness.exec_node) ->
          let e = n.Harness.xn_est and a = float_of_int n.Harness.xn_actual in
          let q = if e > 0.0 && a > 0.0 then Float.max (e /. a) (a /. e) else 0.0 in
          pr "  %-10s %-34s %-9s %12.1f %9d %8.2f\n" n.Harness.xn_query
            n.Harness.xn_label n.Harness.xn_strategy n.Harness.xn_est
            n.Harness.xn_actual q)
        m.Harness.x_nodes

let exec_json (ms : Harness.exec_measurement list) =
  J.List
    (List.map
       (fun (m : Harness.exec_measurement) ->
         J.Obj
           [
             ("scale", J.Int m.Harness.x_scale);
             ("rows", J.Int m.Harness.x_rows);
             ("views", J.Int m.Harness.x_views);
             ("queries", J.Int m.Harness.x_queries);
             ("reps", J.Int m.Harness.x_reps);
             ( "cells",
               J.List
                 (List.map
                    (fun (c : Harness.exec_cell) ->
                      J.Obj
                        [
                          ("rewrite", J.Bool c.Harness.xc_rewrite);
                          ("adaptive", J.Bool c.Harness.xc_adaptive);
                          ("wall_s", J.Float c.Harness.xc_wall);
                        ])
                    m.Harness.x_cells) );
             ("rewrite_speedup", J.Float m.Harness.x_rewrite_speedup);
             ("adaptive_speedup", J.Float m.Harness.x_adaptive_speedup);
             ("plans_with_views", J.Int m.Harness.x_plans_with_views);
             ("cost_bound_prunes", J.Int m.Harness.x_prunes);
             ("stats_missing", J.Int m.Harness.x_stats_missing);
             ("equivalent", J.Bool m.Harness.x_equivalent);
             ( "strategies",
               J.Obj
                 (List.map
                    (fun (k, n) -> (k, J.Int n))
                    m.Harness.x_strategies) );
             ( "nodes",
               J.List
                 (List.map
                    (fun (n : Harness.exec_node) ->
                      J.Obj
                        [
                          ("query", J.String n.Harness.xn_query);
                          ("node", J.String n.Harness.xn_label);
                          ("strategy", J.String n.Harness.xn_strategy);
                          ("est_rows", J.Float n.Harness.xn_est);
                          ("actual_rows", J.Int n.Harness.xn_actual);
                        ])
                    m.Harness.x_nodes) );
           ])
       ms)

(* ---- maintenance report (bench --maintain: IVM vs rematerialize) ---- *)

let maintenance_table (m : Harness.maintain_measurement) =
  pr "\n== Maintenance: incremental deltas vs full rematerialization ==\n";
  pr "(TPC-H-style data at scale %d, %d base rows; generator view pool of\n"
    m.Harness.mm_scale m.Harness.mm_base_rows;
  pr " %d; per cell, %d identical insert/delete batches pushed through\n"
    m.Harness.mm_pool m.Harness.mm_batches;
  pr " Ivm.apply on one database copy and through rematerialization of\n";
  pr " the affected views on another; final contents bag-checked)\n\n";
  pr "%7s %7s %8s %11s %11s %11s %11s %8s\n" "views" "batch" "written"
    "delta-total" "remat-total" "delta-p50" "remat-p50" "speedup";
  List.iter
    (fun (c : Harness.maintain_cell) ->
      pr "%7d %7d %8d %10.4fs %10.4fs %10.5fs %10.5fs %7.2fx\n"
        c.Harness.m_nviews c.Harness.m_batch_rows c.Harness.m_rows_written
        c.Harness.m_delta_wall c.Harness.m_remat_wall c.Harness.m_delta_p50
        c.Harness.m_remat_p50 c.Harness.m_speedup)
    m.Harness.mm_cells;
  pr "\nequivalent=%b stats_fresh=%b\n" m.Harness.mm_equivalent
    m.Harness.mm_stats_fresh

let maintenance_json (m : Harness.maintain_measurement) =
  let pct p50 p90 p99 =
    J.Obj
      [ ("p50_s", J.Float p50); ("p90_s", J.Float p90); ("p99_s", J.Float p99) ]
  in
  J.Obj
    [
      ("scale", J.Int m.Harness.mm_scale);
      ("base_rows", J.Int m.Harness.mm_base_rows);
      ("pool", J.Int m.Harness.mm_pool);
      ("batches", J.Int m.Harness.mm_batches);
      ( "cells",
        J.List
          (List.map
             (fun (c : Harness.maintain_cell) ->
               J.Obj
                 [
                   ("nviews", J.Int c.Harness.m_nviews);
                   ("batch_rows", J.Int c.Harness.m_batch_rows);
                   ("batches", J.Int c.Harness.m_batches);
                   ("rows_written", J.Int c.Harness.m_rows_written);
                   ("delta_wall_s", J.Float c.Harness.m_delta_wall);
                   ("remat_wall_s", J.Float c.Harness.m_remat_wall);
                   ( "delta",
                     pct c.Harness.m_delta_p50 c.Harness.m_delta_p90
                       c.Harness.m_delta_p99 );
                   ( "remat",
                     pct c.Harness.m_remat_p50 c.Harness.m_remat_p90
                       c.Harness.m_remat_p99 );
                   ("speedup", J.Float c.Harness.m_speedup);
                   ("equivalent", J.Bool c.Harness.m_equivalent);
                   ("stats_fresh", J.Bool c.Harness.m_stats_fresh);
                 ])
             m.Harness.mm_cells) );
      ("equivalent", J.Bool m.Harness.mm_equivalent);
      ("stats_fresh", J.Bool m.Harness.mm_stats_fresh);
      ("timeline", m.Harness.mm_timeline);
    ]

let advise_table (ms : Harness.advise_measurement list) =
  pr "\n== Advisor: advised vs random-equal-budget view sets ==\n";
  pr "(candidates mined from the workload's own queries; selection under\n";
  pr " a storage budget; costs are real optimizer totals over the whole\n";
  pr " query batch plus the shared maintenance term)\n\n";
  pr "%6s %6s %5s %10s %10s %12s %12s %12s %6s %6s\n" "cands" "mined" "picks"
    "budget" "used" "cost-none" "cost-advised" "best-random" "beats" "inbdg";
  List.iter
    (fun (a : Harness.advise_measurement) ->
      let best_random =
        List.fold_left Float.min infinity a.Harness.a_cost_random
      in
      pr "%6d %6d %5d %10.0f %10.0f %12.0f %12.0f %12.0f %6b %6b\n"
        a.Harness.a_candidates a.Harness.a_mined a.Harness.a_picks
        a.Harness.a_budget a.Harness.a_used a.Harness.a_cost_none
        a.Harness.a_cost_advised best_random a.Harness.a_beats_random
        a.Harness.a_within_budget)
    ms;
  pr "\n"

let advise_json (ms : Harness.advise_measurement list) =
  J.List
    (List.map
       (fun (a : Harness.advise_measurement) ->
         J.Obj
           [
             ("candidates", J.Int a.Harness.a_candidates);
             ("mined", J.Int a.Harness.a_mined);
             ("queries", J.Int a.Harness.a_queries);
             ("budget_rows", J.Float a.Harness.a_budget);
             ("used_rows", J.Float a.Harness.a_used);
             ("picks", J.Int a.Harness.a_picks);
             ("considered", J.Int a.Harness.a_considered);
             ("rejected", J.Int a.Harness.a_rejected);
             ("cost_none", J.Float a.Harness.a_cost_none);
             ("cost_advised", J.Float a.Harness.a_cost_advised);
             ( "cost_random",
               J.List
                 (List.map (fun c -> J.Float c) a.Harness.a_cost_random) );
             ( "cost_random_best",
               J.Float
                 (List.fold_left Float.min infinity a.Harness.a_cost_random)
             );
             ("model_before", J.Float a.Harness.a_model_before);
             ("model_after", J.Float a.Harness.a_model_after);
             ("plans_using_views", J.Int a.Harness.a_plans_using_views);
             ( "latency",
               J.Obj
                 [
                   ("p50_s", J.Float a.Harness.a_p50);
                   ("p90_s", J.Float a.Harness.a_p90);
                   ("p99_s", J.Float a.Harness.a_p99);
                 ] );
             ("wall_s", J.Float a.Harness.a_wall);
             ("beats_random", J.Bool a.Harness.a_beats_random);
             ("within_budget", J.Bool a.Harness.a_within_budget);
           ])
       ms)

let write_json file (j : J.t) =
  let oc = open_out file in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc
