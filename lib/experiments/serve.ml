(** The serving front end (DESIGN.md §10): an open-loop query stream over
    OCaml 5 domains against one shared registry under add/drop churn.

    Layering of one [submit], hot to cold:

    - a per-domain L1 result cache ({!Mv_util.Lru} behind [Domain.DLS] —
      unsynchronized by construction, one per domain), valid only at the
      pinned snapshot's epoch;
    - a lock-free probe of the shared plan layer
      ({!Mv_opt.Match_cache.peek_plan} — one shard mutex, no compute);
    - single-flight dedup: concurrent identical cold queries elect one
      leader that optimizes while the rest wait on a condvar, so a herd of
      K identical requests runs the optimizer exactly once;
    - the leader runs {!Mv_opt.Optimizer.optimize} with the snapshot
      pinned, so the whole optimization (every enumerated subexpression)
      sees one registry state regardless of concurrent churn.

    The registry snapshot is taken once per submit ([Registry.snapshot],
    one [Atomic.get] on the hot path — no reader-side mutex), and the
    (epoch, result) pair a submit returns is the linearizability
    observation test/test_serve.ml replays against sequential
    optimization. *)

module R = Mv_core.Registry
module MC = Mv_opt.Match_cache
module Opt = Mv_opt.Optimizer
module Plan = Mv_opt.Plan
module Spjg = Mv_relalg.Spjg
module Lru = Mv_util.Lru
module Prng = Mv_util.Prng
module I = Mv_obs.Instrument
module Obs = Mv_obs.Registry

(* ---- the front ---- *)

type l1_slot = { l1_epoch : int; l1_entry : MC.plan_entry }

type flight = {
  fl_lock : Mutex.t;
  fl_cond : Condition.t;
  mutable fl_out : (int * MC.plan_entry, exn) result option;
}

type front = {
  f_registry : R.t;
  f_stats : Mv_catalog.Stats.t;
  f_cache : MC.t;
  f_l1 : (Spjg.t, l1_slot) Lru.t Domain.DLS.key;
  f_flights : (Spjg.t, flight) Hashtbl.t;
  f_flights_lock : Mutex.t;
  (* counters are atomic ({!Mv_obs.Instrument.counter}), so per-domain L1
     hits/misses sum exactly across domains — the lost-update qcheck in
     test_serve.ml holds the totals to the submission count *)
  c_l1_hits : I.counter;
  c_l1_misses : I.counter;
  c_leaders : I.counter;
  c_waits : I.counter;
  h_latency : I.histogram;  (** open-loop: completion - scheduled arrival *)
  h_service : I.histogram;  (** submit call duration alone *)
}

let front ?(l1_capacity = 512) ?(capacity = 4096) registry stats =
  let obs = registry.R.obs in
  {
    f_registry = registry;
    f_stats = stats;
    f_cache = MC.create ~capacity registry;
    f_l1 = Domain.DLS.new_key (fun () -> Lru.create ~capacity:l1_capacity);
    f_flights = Hashtbl.create 64;
    f_flights_lock = Mutex.create ();
    c_l1_hits = Obs.counter obs "cache.l1.hits";
    c_l1_misses = Obs.counter obs "cache.l1.misses";
    c_leaders = Obs.counter obs "serve.flight.leaders";
    c_waits = Obs.counter obs "serve.flight.waits";
    h_latency = Obs.histogram obs "serve.latency";
    h_service = Obs.histogram obs "serve.service";
  }

let registry t = t.f_registry
let cache t = t.f_cache

let result_of_entry (e : MC.plan_entry) : Opt.result =
  {
    Opt.plan = e.MC.plan;
    cost = e.MC.cost;
    rows = e.MC.rows;
    used_views = e.MC.used_views;
    (* prune provenance is per-exploration and not cached *)
    pruned_views = [];
  }

(* Wait on a published flight; returns the leader's (epoch, entry). *)
let await_flight fl =
  Mutex.protect fl.fl_lock (fun () ->
      while fl.fl_out = None do
        Condition.wait fl.fl_cond fl.fl_lock
      done;
      Option.get fl.fl_out)

(* Lead one flight: optimize with the snapshot pinned, publish the outcome
   (wake every waiter), then retire the flight. The publication order
   matters twice over: the plan layer is warm BEFORE the flight leaves the
   table (a latecomer that missed the flight re-probes under the table
   lock and hits), and the flight is published before removal (a waiter
   never blocks on a retired flight). *)
let lead t snap fl q =
  I.incr t.c_leaders;
  let out =
    match
      Opt.optimize ~cache:t.f_cache ~snap t.f_registry t.f_stats q
    with
    | r ->
        Ok
          ( snap.R.snap_epoch,
            {
              MC.plan = r.Opt.plan;
              cost = r.Opt.cost;
              rows = r.Opt.rows;
              used_views = r.Opt.used_views;
            } )
    | exception e -> Error e
  in
  Mutex.protect fl.fl_lock (fun () ->
      fl.fl_out <- Some out;
      Condition.broadcast fl.fl_cond);
  Mutex.protect t.f_flights_lock (fun () -> Hashtbl.remove t.f_flights q);
  out

(* Join or create the flight for [q]. The double probe of the plan layer
   under the table lock closes the last race: a leader stores the plan
   (shard lock) strictly before retiring its flight (table lock), so a
   submitter that peeked too early and then finds no flight is guaranteed
   to hit on the re-probe — a cold herd elects exactly one leader. *)
let fly t snap q =
  let ep = snap.R.snap_epoch in
  let role =
    Mutex.protect t.f_flights_lock (fun () ->
        match Hashtbl.find_opt t.f_flights q with
        | Some fl -> `Wait fl
        | None -> (
            match MC.peek_plan ~epoch:ep t.f_cache q with
            | Some e -> `Hit e
            | None ->
                let fl =
                  {
                    fl_lock = Mutex.create ();
                    fl_cond = Condition.create ();
                    fl_out = None;
                  }
                in
                Hashtbl.add t.f_flights q fl;
                `Lead fl))
  in
  match role with
  | `Hit e -> (ep, e, false)
  | `Lead fl -> (
      match lead t snap fl q with
      | Ok (oep, e) -> (oep, e, true)
      | Error e -> raise e)
  | `Wait fl -> (
      I.incr t.c_waits;
      match await_flight fl with
      | Ok (oep, e) -> (oep, e, false)
      | Error e -> raise e)

(* Ledger attribution for a submission served WITHOUT optimizing (L1 hit,
   plan-layer hit, or a waiter handed the leader's result): the optimizer
   records the query and the chosen views itself on the cold path, so
   these are the complementary paths — one [record_query] per submission
   either way, and the served plan's views earn a cache hit. *)
let record_served t q (entry : MC.plan_entry) =
  let h = t.f_registry.R.health in
  Mv_core.Health.record_query h q;
  if entry.MC.used_views then
    List.iter
      (Mv_core.Health.record_cache_hit h)
      (Plan.views_used entry.MC.plan)

let submit t (q : Spjg.t) : int * Opt.result =
  let snap = R.snapshot t.f_registry in
  let ep = snap.R.snap_epoch in
  let l1 = Domain.DLS.get t.f_l1 in
  match Lru.find l1 q with
  | Some s when s.l1_epoch = ep ->
      I.incr t.c_l1_hits;
      record_served t q s.l1_entry;
      (ep, result_of_entry s.l1_entry)
  | _ ->
      I.incr t.c_l1_misses;
      let oep, entry =
        match MC.peek_plan ~epoch:ep t.f_cache q with
        | Some e ->
            record_served t q e;
            (ep, e)
        | None ->
            let oep, entry, led = fly t snap q in
            if not led then record_served t q entry;
            (oep, entry)
      in
      ignore (Lru.set l1 q { l1_epoch = oep; l1_entry = entry });
      (oep, result_of_entry entry)

(* One traced submission through the L1-miss path (for the Perfetto
   artifact): bypasses the caller's L1 so the spans always show the
   shared-cache lookup and, when cold, the pinned optimization. *)
let submit_traced t ~spans (q : Spjg.t) : int * Opt.result =
  let snap = R.snapshot t.f_registry in
  Mv_obs.Span.wrap (Some spans) "serve"
    ~attrs:(fun () ->
      [ ("epoch", Mv_obs.Span.Int snap.R.snap_epoch) ])
    (fun sub ->
      let r =
        Opt.optimize ~cache:t.f_cache ~snap ?spans:sub t.f_registry t.f_stats
          q
      in
      (snap.R.snap_epoch, r))

(* ---- the open-loop driver ---- *)

type cfg = {
  nviews : int;
  domains : int;
  rate : float;  (** target queries/second across all domains; 0 = closed loop *)
  poisson : bool;  (** exponential inter-arrivals instead of fixed *)
  duration : float;  (** timed-window seconds *)
  warmup : bool;  (** one sequential cache-filling pass before the clock *)
  churn_period : float;  (** seconds between add/drop mutations; 0 = none *)
  churn_pool : int;  (** how many tail views the mutator cycles *)
  l1_capacity : int;
  capacity : int;  (** shared match/plan cache capacity *)
  sample : int;  (** observations kept per domain for the replay check *)
  sample_stride : int;  (** keep every k-th observation *)
  maintain_batch : int;
      (** base rows per delta batch the mutator pushes through
          {!Mv_engine.Ivm} each churn tick; 0 = no write traffic *)
  maintain_views : int;  (** view clones the write traffic maintains *)
  advise : int;
      (** mine up to this many candidates from the workload, advise under
          the default budget and register the picks before the clock
          starts; their health accounts feed the dead-view gate. 0 = off *)
  timeline_period : float;
      (** seconds between timeline sampler ticks (dedicated domain);
          0 = sampler off *)
  seed : int;
}

let default_cfg =
  {
    nviews = 1000;
    domains = 2;
    rate = 200.0;
    poisson = true;
    duration = 1.5;
    warmup = true;
    churn_period = 0.12;
    churn_pool = 8;
    l1_capacity = 512;
    capacity = 4096;
    sample = 32;
    sample_stride = 13;
    maintain_batch = 0;
    maintain_views = 8;
    advise = 0;
    timeline_period = 0.05;
    seed = 4242;
  }

type measurement = {
  sv_nviews : int;
  sv_domains : int;
  sv_rate : float;
  sv_poisson : bool;
  sv_wall : float;  (** actual timed-window seconds *)
  sv_queries : int;  (** submissions completed inside the window *)
  sv_qps : float;
  sv_lat_p50 : float;
  sv_lat_p90 : float;
  sv_lat_p99 : float;  (** open-loop latency: completion - scheduled arrival *)
  sv_srv_p50 : float;
  sv_srv_p90 : float;
  sv_srv_p99 : float;  (** service time: the submit call alone *)
  sv_l1_hits : int;
  sv_l1_misses : int;
  sv_flight_leaders : int;
  sv_flight_waits : int;
  sv_plan_hits : int;
  sv_plan_misses : int;
  sv_match_hits : int;
  sv_match_misses : int;
  sv_mutations : int;  (** add/drop operations the mutator applied *)
  sv_maint_batches : int;  (** delta batches the mutator applied *)
  sv_maint_consistent : bool;
      (** every maintained view clone ended bag-equal (floats within
          tolerance) to a from-scratch recomputation; [true] when write
          traffic is disabled *)
  sv_epoch_lo : int;
  sv_epoch_hi : int;  (** epoch range the run covered *)
  sv_sampled : int;  (** observations replayed by the consistency check *)
  sv_consistent : bool;
      (** every sampled (epoch, query, plan) observation is byte-identical
          to sequential optimization against a scratch registry rebuilt at
          that epoch's population — the linearizability verdict *)
  sv_advised : string list;  (** advised-and-registered view names *)
  sv_dead : string list;
      (** advised views that never matched during the run (per the health
          ledger) — the dead-view gate trips when non-empty *)
  sv_windows : (float * int * float) list;
      (** per timeline window: (length s, submissions completed, p99
          open-loop latency) — empty when the sampler is off *)
  sv_timeline : Mv_obs.Json.t;  (** full timeline export *)
  sv_health : Mv_obs.Json.t;  (** health ledger export *)
}

type observation = { ob_epoch : int; ob_query : int; ob_plan : string }

let now = Unix.gettimeofday

(* ---- write traffic (the serve-under-writes stress) ----

   The mutator's delta batches run against a PRIVATE database and PRIVATE
   view clones: serving plans depend on the registry population and the
   immutable workload statistics, so maintaining the live descriptors
   concurrently would change plan costs mid-run and invalidate the
   replay. What the stress proves instead is that maintenance work and
   registry staleness flips interleaved with the serving loop leave the
   linearizability replay and the flight accounting intact, while the
   maintained contents still end bag-equal to a from-scratch
   recomputation. *)

type maint = {
  mt_db : Mv_engine.Database.t;
  mt_ivm : Mv_engine.Ivm.t;
  mt_views : Mv_core.View.t list;  (** attached clones *)
}

let maint_fixture (w : Harness.workload) views cfg =
  if cfg.maintain_batch <= 0 then None
  else begin
    let db = Mv_tpch.Datagen.generate ~seed:cfg.seed ~scale:1 () in
    let clones =
      List.filter_map
        (fun (v : Mv_core.View.t) ->
          match
            Mv_core.View.create w.Harness.schema
              ~name:(v.Mv_core.View.name ^ "__w")
              (Mv_core.View.spjg v)
          with
          | c -> Some c
          | exception Mv_core.View.Rejected _ -> None)
        (Harness.take cfg.maintain_views views)
    in
    List.iter (fun c -> ignore (Mv_engine.Exec.materialize db c)) clones;
    let ivm = Mv_engine.Ivm.create db in
    let attached =
      List.filter
        (fun c ->
          match Mv_engine.Ivm.attach ivm c with
          | () -> true
          | exception Mv_engine.Ivm.Unsupported _ -> false)
        clones
    in
    if attached = [] then None
    else Some { mt_db = db; mt_ivm = ivm; mt_views = attached }
  end

(* One random batch over a random source table of the maintained clones:
   duplicate-reinserts of existing rows (foreign keys keep holding, so
   join deltas fire) plus deletes of distinct existing instances. *)
let maint_batch prng mt nrows : Mv_engine.Ivm.batch =
  let tables =
    Mv_util.Sset.elements
      (List.fold_left
         (fun acc (v : Mv_core.View.t) ->
           Mv_util.Sset.union acc v.Mv_core.View.source_tables)
         Mv_util.Sset.empty mt.mt_views)
  in
  match tables with
  | [] -> []
  | _ -> (
      let tn = Prng.pick prng tables in
      let rows = (Mv_engine.Database.table_exn mt.mt_db tn).Mv_engine.Table.rows in
      let n = List.length rows in
      if n = 0 then []
      else
        let n_ins = max 1 (nrows / 2) in
        let ins = List.init n_ins (fun _ -> List.nth rows (Prng.int prng n)) in
        let n_del = min (max 0 (nrows - n_ins)) (n / 2) in
        let del =
          List.filteri (fun i _ -> i < n_del) (Prng.shuffle prng rows)
        in
        [ (tn, { Mv_engine.Ivm.ins; del }) ])

let maint_consistent = function
  | None -> true
  | Some mt ->
      List.for_all
        (fun (c : Mv_core.View.t) ->
          Harness.bag_close
            (Mv_engine.Database.table_exn mt.mt_db c.Mv_core.View.name)
              .Mv_engine.Table.rows
            (Mv_engine.Exec.execute mt.mt_db (Mv_core.View.spjg c))
              .Mv_engine.Relation.rows)
        mt.mt_views

(* The view population at each epoch the run can have produced, from the
   initial population and the mutator's (epoch, op) log. *)
let populations ~views ~epoch0 ops =
  let tbl = Hashtbl.create 16 in
  Hashtbl.replace tbl epoch0 views;
  let cur = ref views in
  List.iter
    (fun (ep, op) ->
      (cur :=
         match op with
         | `Drop v ->
             List.filter
               (fun (x : Mv_core.View.t) ->
                 x.Mv_core.View.name <> v.Mv_core.View.name)
               !cur
         | `Add v -> !cur @ [ v ]);
      Hashtbl.replace tbl ep !cur)
    ops;
  tbl

(* Replay one observation sequentially: a scratch registry holding exactly
   the population of the observed epoch, no cache, no snapshot — the
   plain PR-1 optimizer path. Registries are memoized per epoch. *)
let consistency_check (w : Harness.workload) ~pops ~queries observations =
  let regs = Hashtbl.create 8 in
  let registry_at ep =
    match Hashtbl.find_opt regs ep with
    | Some r -> r
    | None ->
        let r = R.create w.Harness.schema in
        List.iter (R.add_prebuilt r) (Hashtbl.find pops ep);
        Hashtbl.replace regs ep r;
        r
  in
  let plans = Hashtbl.create 64 in
  let seq_plan ep qi =
    match Hashtbl.find_opt plans (ep, qi) with
    | Some p -> p
    | None ->
        let r = Opt.optimize (registry_at ep) w.Harness.stats queries.(qi) in
        let p = Plan.to_string r.Opt.plan in
        Hashtbl.replace plans (ep, qi) p;
        p
  in
  List.for_all
    (fun ob ->
      Hashtbl.mem pops ob.ob_epoch
      && String.equal ob.ob_plan (seq_plan ob.ob_epoch ob.ob_query))
    observations

let run ?(cfg = default_cfg) (w : Harness.workload) : measurement =
  let registry = R.create w.Harness.schema in
  let base_views = Harness.take cfg.nviews w.Harness.views in
  List.iter (R.add_prebuilt registry) base_views;
  (* advised views: mined from the workload's own queries, selected under
     the default budget and registered before the clock starts. They are
     part of the replayed population but excluded from the churn pool, so
     a never-matching pick cannot hide behind a drop — the dead-view gate
     reads their ledger accounts at the end. *)
  let advised =
    if cfg.advise <= 0 then []
    else begin
      let candidates =
        List.filteri
          (fun i _ -> i < cfg.advise)
          (Mv_workload.Miner.definitions
             (Mv_workload.Miner.mine w.Harness.queries))
      in
      let advice =
        Mv_opt.Advisor.advise w.Harness.schema w.Harness.stats ~candidates
          ~queries:w.Harness.queries
      in
      List.filter_map
        (fun (p : Mv_opt.Advisor.pick) ->
          match
            R.add_view registry ~row_count:p.Mv_opt.Advisor.rows
              ~name:("adv_" ^ p.Mv_opt.Advisor.name)
              p.Mv_opt.Advisor.spjg
          with
          | v -> Some v
          | exception Mv_core.View.Rejected _ -> None
          | exception R.Duplicate_view _ -> None)
        advice.Mv_opt.Advisor.picks
    end
  in
  let views = base_views @ advised in
  Mv_relalg.Intern.freeze ();
  let t =
    front ~l1_capacity:cfg.l1_capacity ~capacity:cfg.capacity registry
      w.Harness.stats
  in
  (* activate RCU publication before the clock starts: from here on,
     readers are wait-free and every mutation republishes *)
  ignore (R.snapshot registry);
  let queries = Array.of_list w.Harness.queries in
  let nq = Array.length queries in
  if nq = 0 then invalid_arg "Serve.run: empty workload";
  if cfg.warmup then
    Array.iter (fun q -> ignore (submit t q)) queries;
  let epoch0 = R.epoch registry in
  let obs = registry.R.obs in
  let cval name = Obs.counter_value obs name in
  let counters0 =
    List.map
      (fun n -> (n, cval n))
      [
        "cache.l1.hits"; "cache.l1.misses"; "serve.flight.leaders";
        "serve.flight.waits"; "cache.plan.hits"; "cache.plan.misses";
        "cache.match.hits"; "cache.match.misses";
      ]
  in
  let mlog = ref [] (* newest first; only the mutator writes *) in
  let maint = maint_fixture w base_views cfg in
  let maint_batches = ref 0 (* only the mutator writes *) in
  (* timeline sampler: a dedicated domain snapshotting the shared obs
     registry every [timeline_period]; started after warmup so the
     windows cover exactly the measured interval *)
  let tl = Mv_obs.Timeline.create ~capacity:240 obs in
  let sampler =
    if cfg.timeline_period > 0.0 then
      Some (Mv_obs.Timeline.start ~period:cfg.timeline_period tl)
    else None
  in
  let t_start = now () in
  let t_stop = t_start +. cfg.duration in
  let mutator () =
    let pool =
      Array.of_list
        (if cfg.churn_pool <= 0 then []
         else
           List.filteri
             (fun i _ -> i >= List.length base_views - cfg.churn_pool)
             base_views)
    in
    let mprng = Prng.create (cfg.seed + 31) in
    let i = ref 0 in
    if cfg.churn_period > 0.0 && (Array.length pool > 0 || maint <> None)
    then
      while now () < t_stop do
        Unix.sleepf cfg.churn_period;
        if now () < t_stop then begin
          if Array.length pool > 0 then begin
            let v = pool.(!i / 2 mod Array.length pool) in
            let op =
              if !i mod 2 = 0 then (
                R.remove_view registry v.Mv_core.View.name;
                `Drop v)
              else (
                R.add_prebuilt registry v;
                `Add v)
            in
            mlog := (R.epoch registry, op) :: !mlog
          end;
          (match maint with
          | None -> ()
          | Some mt ->
              let batch = maint_batch mprng mt cfg.maintain_batch in
              if batch <> [] then begin
                Mv_engine.Ivm.apply mt.mt_ivm batch;
                incr maint_batches;
                (* staleness flips on the LIVE registry ride along: the
                   default matcher ignores the stale bit, so serving
                   plans — and the replay — cannot change. The epoch does
                   not move either (only add/drop republishes). *)
                let tn = fst (List.hd batch) in
                if !maint_batches mod 2 = 0 then
                  ignore (R.mark_stale registry ~tables:[ tn ])
                else List.iter (fun v -> Mv_core.View.mark_fresh v) views
              end);
          incr i
        end
      done;
    (0, [])
  in
  let worker d () =
    let prng = Prng.create (cfg.seed + (7919 * (d + 1))) in
    let inter () =
      if cfg.rate <= 0.0 then 0.0
      else
        let per = float_of_int cfg.domains /. cfg.rate in
        if cfg.poisson then -.log (1.0 -. Prng.float prng) *. per else per
    in
    let next = ref (t_start +. inter ()) in
    let count = ref 0 in
    let sampled = ref [] in
    let qi = ref d in
    while now () < t_stop do
      (if cfg.rate > 0.0 then
         let n = now () in
         if !next > n then Unix.sleepf (Float.min (!next -. n) 0.05));
      (* open loop: latency is measured from the scheduled arrival, so
         queueing delay (falling behind the schedule) counts against us *)
      let t0 = now () in
      let arrival = if cfg.rate > 0.0 then Float.min !next t0 else t0 in
      let idx = !qi mod nq in
      let ep, r = submit t queries.(idx) in
      let t1 = now () in
      I.observe t.h_latency (t1 -. arrival);
      I.observe t.h_service (t1 -. t0);
      if
        !count mod cfg.sample_stride = 0
        && List.length !sampled < cfg.sample
      then
        sampled :=
          {
            ob_epoch = ep;
            ob_query = idx;
            ob_plan = Plan.to_string r.Opt.plan;
          }
          :: !sampled;
      incr count;
      qi := !qi + cfg.domains;
      next := !next +. inter ()
    done;
    (!count, !sampled)
  in
  let results =
    Pool.run_each (mutator :: List.init (max 1 cfg.domains) worker)
  in
  let wall = now () -. t_start in
  Option.iter Mv_obs.Timeline.stop sampler;
  let total = List.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let observations = List.concat_map snd results in
  let ops = List.rev !mlog in
  let pops = populations ~views ~epoch0 ops in
  let consistent = consistency_check w ~pops ~queries observations in
  let q h p = I.quantile h p in
  let d name = cval name - List.assoc name counters0 in
  {
    sv_nviews = cfg.nviews;
    sv_domains = max 1 cfg.domains;
    sv_rate = cfg.rate;
    sv_poisson = cfg.poisson;
    sv_wall = wall;
    sv_queries = total;
    sv_qps = (if wall > 0.0 then float_of_int total /. wall else 0.0);
    sv_lat_p50 = q t.h_latency 0.5;
    sv_lat_p90 = q t.h_latency 0.9;
    sv_lat_p99 = q t.h_latency 0.99;
    sv_srv_p50 = q t.h_service 0.5;
    sv_srv_p90 = q t.h_service 0.9;
    sv_srv_p99 = q t.h_service 0.99;
    sv_l1_hits = d "cache.l1.hits";
    sv_l1_misses = d "cache.l1.misses";
    sv_flight_leaders = d "serve.flight.leaders";
    sv_flight_waits = d "serve.flight.waits";
    sv_plan_hits = d "cache.plan.hits";
    sv_plan_misses = d "cache.plan.misses";
    sv_match_hits = d "cache.match.hits";
    sv_match_misses = d "cache.match.misses";
    sv_mutations = List.length ops;
    sv_maint_batches = !maint_batches;
    sv_maint_consistent = maint_consistent maint;
    sv_epoch_lo = epoch0;
    sv_epoch_hi = R.epoch registry;
    sv_sampled = List.length observations;
    sv_consistent = consistent;
    sv_advised = List.map (fun (v : Mv_core.View.t) -> v.Mv_core.View.name) advised;
    sv_dead =
      List.filter_map
        (fun (v : Mv_core.View.t) ->
          let n = v.Mv_core.View.name in
          match Mv_core.Health.find registry.R.health n with
          | Some r when not (Mv_core.Health.dead r) -> None
          | _ -> Some n)
        advised;
    sv_windows =
      List.map
        (fun (s : Mv_obs.Timeline.sample) ->
          let hist name =
            List.assoc_opt name s.Mv_obs.Timeline.histograms
          in
          let count =
            match hist "serve.service" with
            | Some w -> w.Mv_obs.Timeline.w_count
            | None -> 0
          in
          let p99 =
            match hist "serve.latency" with
            | Some w -> w.Mv_obs.Timeline.w_p99
            | None -> 0.0
          in
          (s.Mv_obs.Timeline.dur, count, p99))
        (Mv_obs.Timeline.samples tl);
    sv_timeline = Mv_obs.Timeline.to_json tl;
    sv_health = Mv_core.Health.to_json registry.R.health;
  }
