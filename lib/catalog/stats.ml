(** Table and column statistics used by the cost model and by the workload
    generator's cardinality targeting (section 5: predicates are added until
    the estimated SPJ cardinality falls in a target band). *)

open Mv_base

type hist = {
  h_lo : Value.t;
  h_bounds : Value.t array;
  h_counts : int array;
}

type col_stats = {
  min_v : Value.t;
  max_v : Value.t;
  ndv : int;  (** number of distinct values *)
  hist : hist option;
  mcvs : (Value.t * int) list;
}

type table_stats = {
  row_count : int;
  columns : (string * col_stats) list;
}

type t = (string * table_stats) list

let empty : t = []

let default_row_count = 1000

let make_col ?hist ?(mcvs = []) ~min_v ~max_v ~ndv () =
  { min_v; max_v; ndv; hist; mcvs }

let table t name : table_stats option = List.assoc_opt name t

(* Looking up an unknown table is a cost-model blind spot worth seeing on a
   dashboard, not a silent guess: bump [cost.stats.missing] on the global
   registry each time the fallback fires. The handle is lazy so merely
   linking mv_catalog never touches the registry mutex. *)
let missing_counter =
  lazy (Mv_obs.Registry.counter Mv_obs.Registry.global "cost.stats.missing")

let row_count t name =
  match table t name with
  | Some ts -> ts.row_count
  | None ->
      Mv_obs.Instrument.incr (Lazy.force missing_counter);
      default_row_count

let col_stats t (c : Col.t) =
  match table t c.Col.tbl with
  | None -> None
  | Some ts -> List.assoc_opt c.Col.col ts.columns

(* ---- histogram construction ------------------------------------------- *)

let hist_total h = Array.fold_left ( + ) 0 h.h_counts

(* Ascending (value, multiplicity) runs of a sorted array. *)
let runs_of_sorted arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let v = arr.(i) in
      let j = ref i in
      while !j < n && Value.order arr.(!j) v = 0 do
        incr j
      done;
      go !j ((v, !j - i) :: acc)
  in
  go 0 []

let build_column ?(buckets = 16) ?(mcv_limit = 32) (values : Value.t list) :
    col_stats =
  let vs = List.filter (fun v -> not (Value.is_null v)) values in
  match vs with
  | [] -> make_col ~min_v:Value.Null ~max_v:Value.Null ~ndv:0 ()
  | _ ->
      let arr = Array.of_list vs in
      Array.sort Value.order arr;
      let n = Array.length arr in
      let runs = runs_of_sorted arr in
      let ndv = List.length runs in
      let mcvs =
        if ndv <= mcv_limit then
          (* Exhaustive: every distinct value with its exact multiplicity,
             heaviest first (ties broken by value order for determinism). *)
          List.stable_sort (fun (_, a) (_, b) -> compare b a) runs
        else []
      in
      let hist =
        if ndv <= 1 then None
        else begin
          let nb = min buckets ndv in
          let depth = (n + nb - 1) / nb in
          let bounds = ref [] and counts = ref [] in
          let acc = ref 0 in
          List.iteri
            (fun i (v, k) ->
              acc := !acc + k;
              let last = i = ndv - 1 in
              if !acc >= depth || last then begin
                bounds := v :: !bounds;
                counts := !acc :: !counts;
                acc := 0
              end)
            runs;
          Some
            {
              h_lo = arr.(0);
              h_bounds = Array.of_list (List.rev !bounds);
              h_counts = Array.of_list (List.rev !counts);
            }
        end
      in
      make_col ?hist ~mcvs ~min_v:arr.(0) ~max_v:arr.(n - 1) ~ndv ()

(* ---- selectivity ------------------------------------------------------ *)

let clamp sel = Float.max 0.0001 (Float.min 1.0 sel)

(* Position of [v] within [lo, hi] when the values interpolate (numeric or
   date); [None] for strings/bools where only ordering is known. *)
let frac_between lo hi v =
  match (Value.as_float lo, Value.as_float hi, Value.as_float v) with
  | Some l, Some h, Some x when h > l ->
      Some (Float.max 0.0 (Float.min 1.0 ((x -. l) /. (h -. l))))
  | _ -> (
      match (lo, hi, v) with
      | Value.Date l, Value.Date h, Value.Date x when h > l ->
          Some
            (Float.max 0.0
               (Float.min 1.0 (float_of_int (x - l) /. float_of_int (h - l))))
      | _ -> None)

(* Fraction of histogrammed rows with value <= v. Bucket [i] covers
   (bound[i-1], bound[i]] (bucket 0 starts at [h_lo], inclusive); within
   the bucket containing [v] we interpolate, defaulting to half the bucket
   when the domain does not interpolate. *)
let hist_frac_le h v =
  let total = float_of_int (max 1 (hist_total h)) in
  if Value.order v h.h_lo < 0 then 0.0
  else begin
    let acc = ref 0 and lo = ref h.h_lo in
    let result = ref None in
    Array.iteri
      (fun i b ->
        if !result = None then
          if Value.order b v <= 0 then begin
            acc := !acc + h.h_counts.(i);
            lo := b
          end
          else
            let f =
              match frac_between !lo b v with Some f -> f | None -> 0.5
            in
            result :=
              Some
                ((float_of_int !acc +. (f *. float_of_int h.h_counts.(i)))
                /. total))
      h.h_bounds;
    match !result with Some r -> r | None -> 1.0
  end

(* Exact fraction for [col = v] when the MCV list is exhaustive. *)
let mcv_frac cs v =
  match cs.mcvs with
  | [] -> None
  | mcvs ->
      let total =
        float_of_int (max 1 (List.fold_left (fun a (_, k) -> a + k) 0 mcvs))
      in
      let hit =
        List.find_opt (fun (m, _) -> Value.order m v = 0) mcvs
      in
      Some
        (match hit with
        | Some (_, k) -> float_of_int k /. total
        | None -> 0.0 (* exhaustive list: the value does not occur *))

(* The pre-histogram uniform-interpolation estimate, kept verbatim as the
   fallback so tables with analytic stats (no histograms) cost exactly as
   before. *)
let uniform_selectivity cs (op : Pred.cmp) (v : Value.t) =
  let default =
    match op with Pred.Eq -> 0.05 | Pred.Ne -> 0.95 | _ -> 0.33
  in
  let interp frac =
    let sel =
      match op with
      | Pred.Eq -> 1.0 /. float_of_int (max 1 cs.ndv)
      | Pred.Ne -> 1.0 -. (1.0 /. float_of_int (max 1 cs.ndv))
      | Pred.Lt | Pred.Le -> frac
      | Pred.Gt | Pred.Ge -> 1.0 -. frac
    in
    clamp sel
  in
  match frac_between cs.min_v cs.max_v v with
  | Some frac -> interp frac
  | None -> default

let range_selectivity t c (op : Pred.cmp) (v : Value.t) =
  match col_stats t c with
  | None -> (
      match op with Pred.Eq -> 0.05 | Pred.Ne -> 0.95 | _ -> 0.33)
  | Some cs -> (
      let eq_sel () =
        match mcv_frac cs v with
        | Some f -> f
        | None -> 1.0 /. float_of_int (max 1 cs.ndv)
      in
      match (op, cs.hist) with
      | (Pred.Eq | Pred.Ne), _ when cs.mcvs <> [] || cs.hist <> None ->
          let eq = eq_sel () in
          clamp (match op with Pred.Eq -> eq | _ -> 1.0 -. eq)
      | (Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge), Some h ->
          let le = hist_frac_le h v in
          let eq = eq_sel () in
          let sel =
            match op with
            | Pred.Le -> le
            | Pred.Lt -> le -. eq
            | Pred.Gt -> 1.0 -. le
            | Pred.Ge -> 1.0 -. le +. eq
            | _ -> assert false
          in
          clamp sel
      | _ -> uniform_selectivity cs op v)

let ndv t c = match col_stats t c with Some cs -> max 1 cs.ndv | None -> 100
