(** Table and column statistics for the cost model and the workload
    generator's cardinality targeting. *)

open Mv_base

type hist = {
  h_lo : Value.t;  (** inclusive lower bound of the first bucket *)
  h_bounds : Value.t array;
      (** strictly ascending inclusive upper bounds, one per bucket *)
  h_counts : int array;  (** rows per bucket; same length as [h_bounds] *)
}
(** Equi-depth histogram. Bucket [i] covers [(h_bounds.(i-1), h_bounds.(i)]]
    (bucket 0 starts at [h_lo], inclusive). A value never straddles a bucket
    boundary, so bounds are strictly increasing and every count is positive;
    counts sum to the number of non-null rows the histogram was built from. *)

type col_stats = {
  min_v : Value.t;
  max_v : Value.t;
  ndv : int;  (** number of distinct values *)
  hist : hist option;  (** equi-depth histogram, when built from data *)
  mcvs : (Value.t * int) list;
      (** most-common values with exact multiplicities. Non-empty only for
          low-NDV columns, where it is {e exhaustive}: every distinct value
          appears, so a miss means selectivity 0. Heaviest first. *)
}

type table_stats = {
  row_count : int;
  columns : (string * col_stats) list;
}

type t = (string * table_stats) list

val empty : t

val default_row_count : int
(** Row count assumed for tables with no statistics (1000). *)

val make_col :
  ?hist:hist ->
  ?mcvs:(Value.t * int) list ->
  min_v:Value.t ->
  max_v:Value.t ->
  ndv:int ->
  unit ->
  col_stats
(** Analytic column stats; histogram and MCVs default to absent, which
    keeps the uniform-interpolation selectivity path. *)

val build_column : ?buckets:int -> ?mcv_limit:int -> Value.t list -> col_stats
(** One-pass column statistics from raw values: min/max/ndv, an equi-depth
    histogram with at most [buckets] buckets (default 16; omitted for
    empty or constant columns), and an exhaustive MCV list when the column
    has at most [mcv_limit] (default 32) distinct values. Nulls are
    ignored; an all-null or empty column yields [ndv = 0] with [Null]
    bounds. *)

val table : t -> string -> table_stats option

val row_count : t -> string -> int
(** Row count of a table, or {!default_row_count} when the table has no
    statistics. The fallback is an observable event: each firing bumps the
    [cost.stats.missing] counter on [Mv_obs.Registry.global], so silent
    cost-model blind spots show up in bench/serving snapshots. *)

val col_stats : t -> Col.t -> col_stats option

val hist_total : hist -> int
(** Number of rows the histogram covers (sum of bucket counts). *)

val range_selectivity : t -> Col.t -> Pred.cmp -> Value.t -> float
(** Selectivity of [col op const]. Consults the MCV list (exact for
    equality on low-NDV columns) and the equi-depth histogram
    (bucket-sum plus within-bucket interpolation for ranges) when present,
    and falls back to the original uniform-interpolation estimate — and
    ultimately to textbook constant guesses — when statistics are absent.
    Clamped to [[0.0001, 1.0]]. *)

val ndv : t -> Col.t -> int
