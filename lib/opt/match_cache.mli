(** The serving-path match/plan cache: a bounded, mutex-sharded LRU from a
    normalized query signature to (a) the view-matching rule's candidate
    set and substitutes and (b) the optimizer's final plan, validated
    against the owning registry's epoch ({!Mv_core.Registry.epoch}).

    The signature reuses the interned keys of the analysis layer: the
    query's table set as an {!Mv_util.Bitset} over {!Mv_relalg.Intern}
    (a one-or-two-word fingerprint that also picks the shard) plus the
    normalized SPJG block itself for exact structural equality — two
    queries hit the same entry iff they normalize to the same block.

    Epoch protocol: every entry is stamped with the registry epoch read
    {e before} its value was computed. A lookup whose entry carries a
    different epoch counts as an invalidation, drops the entry, and
    recomputes — so a view add/drop invalidates affected entries lazily,
    with no global flush and no stale candidate set ever served. (An entry
    whose computation raced an add/drop is stored with the pre-mutation
    epoch and therefore dies on its next lookup.)

    Domain safety: the cache is sharded; each shard is one LRU behind one
    mutex, and lookups hold the lock only around the table operation —
    misses compute outside it (two domains racing on one key compute twice
    and the later store wins, which is harmless because both computed the
    same value at the same epoch). Counters flow through the registry's
    obs instance: [cache.match.hits|misses|evictions|invalidations] and
    the same under [cache.plan.*]. *)

type t

val create : ?shards:int -> ?capacity:int -> Mv_core.Registry.t -> t
(** [capacity] (default 1024) bounds each layer across all [shards]
    (default 8; per-shard capacity is the ceiling of their ratio).
    The cache serves exactly this registry. *)

val registry : t -> Mv_core.Registry.t

val find_substitutes :
  ?spans:Mv_obs.Span.scope ->
  ?snap:Mv_core.Registry.snapshot ->
  t ->
  Mv_relalg.Analysis.t ->
  Mv_core.Substitute.t list
(** {!Mv_core.Registry.find_substitutes} through the match layer. On a
    fresh-epoch hit the rule does not run at all (its [rule.*] counters
    do not advance — the cache counters do instead). With [spans], the
    lookup notes a [cache.match.hit]/[cache.match.miss] instant and a
    miss threads [spans] into the rule.

    With [snap], entries validate against (and are stamped with) the
    pinned snapshot's epoch, and a miss computes against the pinned
    snapshot — so the whole lookup is consistent with one registry state
    even while add/drop churns. A pin behind the live epoch only ever
    costs extra misses, never a stale serve (the entry it stores dies at
    the next live-epoch lookup, like any entry that raced a mutation). *)

val cached_candidates :
  t -> Mv_relalg.Analysis.t -> Mv_core.View.t list option
(** The candidate set stored for this query's signature, when present and
    current — no recompute, no counter movement (tests, diagnostics). *)

(** What the plan layer stores: the fields of {!Optimizer.result}, which
    lives above this module. *)
type plan_entry = {
  plan : Plan.t;
  cost : float;
  rows : float;
  used_views : bool;
}

val with_plan :
  ?spans:Mv_obs.Span.scope ->
  ?epoch:int ->
  t ->
  Mv_relalg.Spjg.t ->
  (unit -> plan_entry) ->
  plan_entry
(** Serve the query from the plan layer, or compute, store and return.
    The computation runs outside the shard lock. With [spans], the lookup
    notes a [cache.plan.hit]/[cache.plan.miss] instant. [epoch] pins the
    validation/stamping epoch to a snapshot's instead of the live
    registry's (see {!find_substitutes}). *)

val peek_plan :
  ?epoch:int -> t -> Mv_relalg.Spjg.t -> plan_entry option
(** Lookup-only probe of the plan layer ([Some] iff present and fresh at
    the validation epoch). A hit counts one [cache.plan.hits]; a miss
    counts nothing and never evicts — the caller is expected to follow up
    with {!with_plan}, which accounts the miss. For serving front ends
    that want to skip optimizer setup entirely on the warm path. *)

val stats : t -> (string * int) list
(** The eight [cache.*] counters, sorted by name. *)

val clear : t -> unit
(** Empty every shard (counters are left alone). *)
