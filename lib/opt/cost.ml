(** Cardinality and cost estimation: a deliberately textbook model
    (uniformity + independence) — the experiments measure optimizer
    behaviour, not estimation quality, and the workload generator of
    section 5 needs the same estimates to target its cardinality bands. *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats

(* Selectivity of a single conjunct. *)
let conjunct_selectivity (stats : Stats.t) (p : Pred.t) : float =
  match Mv_relalg.Classify.classify_one p with
  | `Col_eq (a, b) ->
      (* equijoin: 1/max(ndv) — also reasonable for same-table equality *)
      1.0 /. float_of_int (max (Stats.ndv stats a) (Stats.ndv stats b))
  | `Range (c, op, v) -> Stats.range_selectivity stats c op v
  | `Disj_range (c, intervals) ->
      (* sum the interval fractions, assuming disjointness after
         normalization *)
      let interval_sel (i : Mv_relalg.Interval.t) =
        let upper =
          match i.Mv_relalg.Interval.hi with
          | Mv_relalg.Interval.Unbounded -> 1.0
          | Mv_relalg.Interval.Incl v | Mv_relalg.Interval.Excl v ->
              Stats.range_selectivity stats c Pred.Le v
        in
        let below =
          match i.Mv_relalg.Interval.lo with
          | Mv_relalg.Interval.Unbounded -> 0.0
          | Mv_relalg.Interval.Incl v | Mv_relalg.Interval.Excl v ->
              Stats.range_selectivity stats c Pred.Lt v
        in
        Float.max 0.0005 (upper -. below)
      in
      Float.min 1.0
        (List.fold_left
           (fun acc i -> acc +. interval_sel i)
           0.0
           (Mv_relalg.Rset.normalize intervals))
  | `Residual p -> (
      match p with
      | Pred.Like _ -> 0.1
      | Pred.Is_null _ -> 0.02
      | Pred.Not _ -> 0.9
      | Pred.Or _ -> 0.5
      | _ -> 0.25)

(* Estimated rows of an SPJ part: product of table cardinalities times all
   conjunct selectivities. *)
let spj_rows (stats : Stats.t) ~tables ~(where : Pred.t list) : float =
  let base =
    List.fold_left
      (fun acc t -> acc *. float_of_int (max 1 (Stats.row_count stats t)))
      1.0 tables
  in
  let sel =
    List.fold_left (fun acc p -> acc *. conjunct_selectivity stats p) 1.0 where
  in
  Float.max 1.0 (base *. sel)

(* Distinct groups of a grouping list, capped by input rows. *)
let group_rows (stats : Stats.t) ~(input : float) (gexprs : Expr.t list) :
    float =
  if gexprs = [] then 1.0
  else
    let ndv_of g =
      match g with
      | Expr.Col c -> float_of_int (Stats.ndv stats c)
      | _ -> 100.0
    in
    let prod = List.fold_left (fun acc g -> acc *. ndv_of g) 1.0 gexprs in
    (* groups cannot exceed input rows; dampen the independence blowup *)
    Float.max 1.0 (Float.min prod (input /. 2.0 +. 1.0))

let block_rows (stats : Stats.t) (b : Spjg.t) : float =
  let spj = spj_rows stats ~tables:b.Spjg.tables ~where:b.Spjg.where in
  match b.Spjg.group_by with
  | None -> spj
  | Some gs -> group_rows stats ~input:spj gs

(* Estimated row count used when registering a view without materializing
   it (the benches run against statistics only). With [name], a statistics
   entry built from the view's actual contents — at materialization time or
   by [Ivm.refresh_stats] — takes precedence over the analytic model
   (ROADMAP item 4: view-level statistics). *)
let estimate_view_rows ?name stats (spjg : Spjg.t) : int =
  let measured =
    Option.bind name (fun n ->
        Option.map
          (fun (ts : Stats.table_stats) -> ts.Stats.row_count)
          (Stats.table stats n))
  in
  match measured with
  | Some n -> n
  | None -> int_of_float (block_rows stats spjg)
