(** Physical-ish plans produced by the optimizer.

    Intermediate results are bags of bindings (column -> value), keyed by
    base-table columns, so expressions of the original query evaluate
    unchanged at any level of the plan. A leaf executes an SPJG block —
    either computed from base tables or read from a materialized view via a
    substitute — and rebinds its output columns: bare-column outputs to
    their base column, aggregate outputs to synthetic "#agg" columns. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type source =
  | Computed of Spjg.t
  | Via of Mv_core.Substitute.t  (** read from a materialized view *)

type join_strategy = Hash | Nlj

let strategy_name = function Hash -> "hash" | Nlj -> "nlj"

type t =
  | Leaf of {
      source : source;
      binds : (string * Col.t) list;
          (** output name -> binding key for upper operators *)
      est_rows : float;
      est_cost : float;
    }
  | Join of {
      left : t;
      right : t;
      keys : (Col.t * Col.t) list;  (** (left col, right col) equijoin keys *)
      post : Pred.t list;  (** residual predicates applied after the join *)
      strategy : join_strategy;
          (** picked at plan time from the estimated build-side rows *)
      est_rows : float;
      est_cost : float;
    }
  | Aggregate of {
      input : t;
      group_by : Expr.t list;
      out : Spjg.out_item list;
      est_rows : float;
      est_cost : float;
    }

let est_rows = function
  | Leaf l -> l.est_rows
  | Join j -> j.est_rows
  | Aggregate a -> a.est_rows

let est_cost = function
  | Leaf l -> l.est_cost
  | Join j -> j.est_cost
  | Aggregate a -> a.est_cost

(* Does the winning plan read any materialized view? (Figure 4 reports the
   number of final plans using views.) *)
let rec uses_view = function
  | Leaf { source = Via _; _ } -> true
  | Leaf { source = Computed _; _ } -> false
  | Join { left; right; _ } -> uses_view left || uses_view right
  | Aggregate { input; _ } -> uses_view input

let rec views_used = function
  | Leaf { source = Via s; _ } -> [ s.Mv_core.Substitute.view.Mv_core.View.name ]
  | Leaf { source = Computed _; _ } -> []
  | Join { left; right; _ } -> views_used left @ views_used right
  | Aggregate { input; _ } -> views_used input

let rec pp ?(indent = 0) ppf t =
  let pad = String.make indent ' ' in
  match t with
  | Leaf { source = Computed b; est_rows; est_cost; _ } ->
      Fmt.pf ppf "%sScan[%s] (rows=%.0f cost=%.0f)@." pad
        (String.concat "," b.Spjg.tables)
        est_rows est_cost
  | Leaf { source = Via s; est_rows; est_cost; _ } ->
      Fmt.pf ppf "%sViewScan[%s] (rows=%.0f cost=%.0f)@." pad
        s.Mv_core.Substitute.view.Mv_core.View.name est_rows est_cost
  | Join { left; right; keys; strategy; est_rows; est_cost; _ } ->
      Fmt.pf ppf "%s%s on %s (rows=%.0f cost=%.0f)@.%a%a" pad
        (match strategy with Hash -> "HashJoin" | Nlj -> "NestedLoopJoin")
        (String.concat ", "
           (List.map
              (fun (a, b) -> Col.to_string a ^ "=" ^ Col.to_string b)
              keys))
        est_rows est_cost
        (fun ppf -> pp ~indent:(indent + 2) ppf)
        left
        (fun ppf -> pp ~indent:(indent + 2) ppf)
        right
  | Aggregate { input; group_by; est_rows; est_cost; _ } ->
      Fmt.pf ppf "%sGroupAggregate by [%s] (rows=%.0f cost=%.0f)@.%a" pad
        (String.concat ", " (List.map Expr.to_string group_by))
        est_rows est_cost
        (fun ppf -> pp ~indent:(indent + 2) ppf)
        input

let to_string t = Fmt.str "%a" (fun ppf -> pp ppf) t
