(** Execution of optimizer plans against an in-memory database, for
    validating that every plan the optimizer emits (with or without views)
    computes the same relation as direct execution of the query.

    Join nodes honor the strategy the optimizer recorded at plan time
    (hash or nested loop; [~force_hash:true] overrides to always-hash for
    A/B runs — the strategy never changes the result bag). Leaves execute
    through [Mv_engine.Exec], optionally in adaptive mode. Per-node
    estimated-vs-actual row counts can be collected with
    {!execute_report}. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type bindings = Value.t Col.Map.t

type node_report = {
  nr_label : string;
  nr_strategy : string;  (** "hash" | "nlj" | "scan" | "view" | "aggregate" *)
  nr_est : float;
  nr_actual : int;
}

let env_of (b : bindings) (c : Col.t) =
  match Col.Map.find_opt c b with
  | Some v -> v
  | None -> raise (Eval.Eval_error ("unbound column " ^ Col.to_string c))

(* Views used by the plan must be materialized in [db] beforehand. *)
let rec run ?(force_hash = false) ?adaptive ?stats ?record db (plan : Plan.t) :
    bindings list =
  let rerun p = run ~force_hash ?adaptive ?stats ?record db p in
  let report label strategy est actual =
    Mv_engine.Exec.observe_qerror ~est ~actual;
    match record with
    | Some f -> f { nr_label = label; nr_strategy = strategy; nr_est = est; nr_actual = actual }
    | None -> ()
  in
  match plan with
  | Plan.Leaf { source; binds; est_rows; _ } ->
      let rel =
        match source with
        | Plan.Computed b -> Mv_engine.Exec.execute ?adaptive ?stats db b
        | Plan.Via s -> Mv_engine.Exec.execute_substitute ?adaptive ?stats db s
      in
      let label, kind =
        match source with
        | Plan.Computed b ->
            ("Scan[" ^ String.concat "," b.Spjg.tables ^ "]", "scan")
        | Plan.Via s ->
            ( "ViewScan[" ^ s.Mv_core.Substitute.view.Mv_core.View.name ^ "]",
              "view" )
      in
      report label kind est_rows (List.length rel.Mv_engine.Relation.rows);
      let keys =
        List.map
          (fun name ->
            match List.assoc_opt name binds with
            | Some c -> c
            | None -> Col.make "#agg" name)
          rel.Mv_engine.Relation.cols
      in
      List.map
        (fun row ->
          List.fold_left2
            (fun acc c v -> Col.Map.add c v acc)
            Col.Map.empty keys (Array.to_list row))
        rel.Mv_engine.Relation.rows
  | Plan.Join { left; right; keys; post; strategy; est_rows; _ } ->
      let ls = rerun left and rs = rerun right in
      let merge l r = Col.Map.union (fun _ x _ -> Some x) l r in
      let repr vs = String.concat "\x01" (List.map Value.to_string vs) in
      let strategy = if force_hash then Plan.Hash else strategy in
      let joined =
        if keys = [] then
          List.concat_map (fun l -> List.map (merge l) rs) ls
        else begin
          Mv_engine.Exec.count_strategy (Plan.strategy_name strategy);
          match strategy with
          | Plan.Hash ->
              let build = Hashtbl.create 256 in
              List.iter
                (fun r ->
                  let kv = List.map (fun (_, rc) -> env_of r rc) keys in
                  if not (List.exists Value.is_null kv) then
                    Hashtbl.add build (repr kv) r)
                rs;
              List.concat_map
                (fun l ->
                  let kv = List.map (fun (lc, _) -> env_of l lc) keys in
                  if List.exists Value.is_null kv then []
                  else List.map (merge l) (Hashtbl.find_all build (repr kv)))
                ls
          | Plan.Nlj ->
              (* same key representation and NULL semantics as the hash
                 path, so the bag is identical *)
              let srcs =
                List.filter_map
                  (fun r ->
                    let kv = List.map (fun (_, rc) -> env_of r rc) keys in
                    if List.exists Value.is_null kv then None
                    else Some (repr kv, r))
                  rs
              in
              List.concat_map
                (fun l ->
                  let kv = List.map (fun (lc, _) -> env_of l lc) keys in
                  if List.exists Value.is_null kv then []
                  else
                    let k = repr kv in
                    List.filter_map
                      (fun (rk, r) ->
                        if String.equal rk k then Some (merge l r) else None)
                      srcs)
                ls
        end
      in
      let out =
        List.filter
          (fun b -> List.for_all (Eval.pred_holds (env_of b)) post)
          joined
      in
      report
        ("Join on "
        ^ String.concat ", "
            (List.map
               (fun (a, b) -> Col.to_string a ^ "=" ^ Col.to_string b)
               keys))
        (Plan.strategy_name strategy)
        est_rows (List.length out);
      out
  | Plan.Aggregate { input; group_by; out; est_rows; _ } ->
      let rows = rerun input in
      let repr vs = String.concat "\x01" (List.map Value.to_string vs) in
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun b ->
          let k = repr (List.map (fun g -> Eval.expr (env_of b) g) group_by) in
          match Hashtbl.find_opt groups k with
          | Some gr -> Hashtbl.replace groups k (b :: gr)
          | None ->
              order := k :: !order;
              Hashtbl.add groups k [ b ])
        rows;
      let keys =
        if rows = [] && group_by = [] then [ `Empty ]
        else List.rev_map (fun k -> `Group k) !order
      in
      let result =
        List.map
          (fun key ->
            let grp =
              match key with `Empty -> [] | `Group k -> Hashtbl.find groups k
            in
            let witness = match grp with b :: _ -> Some b | [] -> None in
            List.fold_left
              (fun acc (o : Spjg.out_item) ->
                let v =
                  match (o.Spjg.def, witness) with
                  | Spjg.Scalar e, Some b -> Eval.expr (env_of b) e
                  | Spjg.Scalar _, None -> Value.Null
                  | Spjg.Aggregate a, _ -> Mv_engine.Exec.eval_agg grp a
                in
                Col.Map.add (Col.make "#out" o.Spjg.name) v acc)
              Col.Map.empty out)
          keys
      in
      report "GroupAggregate" "aggregate" est_rows (List.length result);
      result

(* Materialize every view the plan reads. *)
let prepare db (plan : Plan.t) =
  let rec views = function
    | Plan.Leaf { source = Plan.Via s; _ } -> [ s.Mv_core.Substitute.view ]
    | Plan.Leaf _ -> []
    | Plan.Join { left; right; _ } -> views left @ views right
    | Plan.Aggregate { input; _ } -> views input
  in
  List.iter
    (fun v ->
      if Mv_engine.Database.table db v.Mv_core.View.name = None then
        ignore (Mv_engine.Exec.materialize db v))
    (views plan)

(* Produce the final relation with the query's output names. *)
let execute_common ?force_hash ?adaptive ?stats ?record db (query : Spjg.t)
    (plan : Plan.t) : Mv_engine.Relation.t =
  prepare db plan;
  let cols = Spjg.out_names query in
  let rows = run ?force_hash ?adaptive ?stats ?record db plan in
  let final b (o : Spjg.out_item) : Value.t =
    (* aggregation plans bind final outputs to #out; leaf-only plans bind
       computed outputs to #agg; otherwise evaluate over base columns *)
    match Col.Map.find_opt (Col.make "#out" o.Spjg.name) b with
    | Some v -> v
    | None -> (
        match Col.Map.find_opt (Col.make "#agg" o.Spjg.name) b with
        | Some v -> v
        | None -> (
            match o.Spjg.def with
            | Spjg.Scalar e -> Eval.expr (env_of b) e
            | Spjg.Aggregate _ ->
                raise (Eval.Eval_error "unbound aggregate output")))
  in
  {
    Mv_engine.Relation.cols;
    rows = List.map (fun b -> Array.of_list (List.map (final b) query.Spjg.out)) rows;
  }

let execute ?force_hash ?adaptive ?stats db query plan =
  execute_common ?force_hash ?adaptive ?stats db query plan

(* Same, collecting one report per plan node in post-order (children before
   parents) — the estimation-error table behind [mvopt explain --execute]
   and [bench --exec]. *)
let execute_report ?force_hash ?adaptive ?stats db query plan =
  let acc = ref [] in
  let rel =
    execute_common ?force_hash ?adaptive ?stats
      ~record:(fun r -> acc := r :: !acc)
      db query plan
  in
  (rel, List.rev !acc)
