(** Workload-driven view selection (ROADMAP item 1): mine-costed
    candidates in, a budgeted view set out.

    {!Selection} is the purely numeric core — greedy seeding plus
    first-improvement local search (add / drop / swap / merge moves), with
    an exhaustive search on small instances — kept free of catalog and
    registry types so test/test_advisor.ml can property-test it in
    isolation. {!advise} is the glue: it prices each candidate with the
    optimizer's own cost model ({!Optimizer.substitute_cost} over
    {!Optimizer.enumerate_blocks}), adds a maintenance term derived from
    the measured [bench --maintain] delta-vs-rematerialize crossover, and
    runs the core. *)

module Spjg = Mv_relalg.Spjg

module Selection : sig
  type candidate = {
    id : string;
    size : float;  (** storage footprint (estimated rows) *)
    maint : float;  (** workload-total maintenance cost if selected *)
    saves : (int * float) list;
        (** [(query index, cost of that query when answered via this
            candidate)]; {!instance} drops entries not strictly below the
            query's base cost and keeps the minimum per query *)
  }

  type instance

  exception Invalid of string

  val instance :
    base:float array -> budget:float -> candidate list -> instance
  (** Validating constructor. [base.(i)] is query [i]'s cost with no views
      at all; [budget] bounds the summed [size] of a selection.
      @raise Invalid on negative/NaN inputs or out-of-range save
      indices. *)

  val n_candidates : instance -> int

  val objective : instance -> int list -> float
  (** Total workload cost of a selection (candidate indices): per-query
      minimum over base and the chosen candidates' saves, plus the chosen
      candidates' maintenance. *)

  val size_of : instance -> int list -> float
  val within_budget : instance -> int list -> bool

  val greedy : instance -> int list
  (** Greedy seeding: repeatedly add the candidate with the largest
      positive net gain that still fits. Deterministic (lowest index wins
      ties); always within budget. *)

  val local_search : instance -> int list -> int list
  (** First-improvement local search from a feasible starting selection:
      add, drop, swap (1 for 1) and merge (2 for 1) moves, each accepted
      only when it strictly improves {!objective} and respects the
      budget — so the result is never worse than the start.
      @raise Invalid when the starting selection exceeds the budget. *)

  val exhaustive_limit : int
  (** Instances with at most this many candidates are solved exactly. *)

  val brute_force : instance -> int list
  (** Exact optimum by subset enumeration.
      @raise Invalid beyond {!exhaustive_limit} candidates. *)

  val select : instance -> int list
  (** {!brute_force} up to {!exhaustive_limit} candidates, otherwise
      {!local_search} from the {!greedy} seed. Deterministic. *)
end

type config = {
  budget : float;  (** storage budget in estimated rows; [infinity] = none *)
  write_fraction : float;
      (** maintenance events per workload query (write/read mix) *)
  batch_fraction : float;
      (** update batch size as a fraction of the maintained state *)
  maintain_speedup : float;
      (** measured delta-vs-rematerialize advantage at that batch size
          (EXPERIMENTS.md maintain section: 1.6-1.8x at small batches) *)
}

val default_config : config

type pick = {
  name : string;
  spjg : Spjg.t;
  rows : int;  (** estimated size charged against the budget *)
  benefit : float;  (** modeled workload query-cost reduction, standalone *)
  maint : float;  (** modeled workload-total maintenance cost *)
}

type advice = {
  picks : pick list;  (** in candidate order; within budget *)
  cost_before : float;  (** summed view-free query costs *)
  cost_after : float;
      (** modeled workload cost under the picks, maintenance included *)
  budget : float;
  used_budget : float;
  considered : int;  (** candidates accepted into the pricing pool *)
  rejected : int;  (** candidates the registry would not index *)
}

val maintenance_cost :
  config ->
  Mv_catalog.Stats.t ->
  Spjg.t ->
  rows:int ->
  nqueries:int ->
  float
(** Modeled workload-total maintenance cost of keeping one view of [rows]
    rows fresh across [nqueries] queries' worth of traffic: per event, a
    delta pass over the changed fraction at the measured
    delta-vs-rematerialize advantage, capped at a full rematerialization
    (the maintain-vs-rematerialize policy). *)

val advise :
  ?config:config ->
  ?weights:float array ->
  Mv_catalog.Schema.t ->
  Mv_catalog.Stats.t ->
  candidates:(string * Spjg.t) list ->
  queries:Spjg.t list ->
  advice
(** Price every candidate against every query (mirroring the memo's block
    enumeration so the modeled savings are ones {!Optimizer.optimize} can
    actually realize) and select under the budget. Purely model-driven and
    deterministic: no wall-clock input.

    [weights] (one per query, finite, [>= 0]) scales each query's base
    cost and savings — pass observed per-query frequencies from the
    health ledger ([Mv_core.Health.query_frequencies]) to select for an
    observed trace instead of the uniform generator workload; the
    maintenance term then scales with the trace length. [cost_before] /
    [cost_after] are weighted accordingly.
    @raise Invalid_argument on a length mismatch or bad weight. *)

val register_picks : Mv_core.Registry.t -> advice -> unit
(** Register every pick through the dynamic registry (one epoch bump
    each), with its estimated row count.
    @raise Mv_core.Registry.Duplicate_view on name collision. *)
