(** Optimizer plans. Intermediate results are bags of bindings keyed by
    base-table columns; leaves execute SPJG blocks (computed from base
    tables or read from a view via a substitute) and rebind their outputs. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type source = Computed of Spjg.t | Via of Mv_core.Substitute.t

type join_strategy = Hash | Nlj
(** Picked by the optimizer at plan time: nested loop when the estimated
    build (right) side is below {!Mv_engine.Exec.nlj_threshold} rows, hash
    join otherwise. The strategy never affects the result bag, so
    [Plan_exec] may override it (e.g. [~force_hash:true] for A/B runs). *)

val strategy_name : join_strategy -> string
(** ["hash"] or ["nlj"]. *)

type t =
  | Leaf of {
      source : source;
      binds : (string * Col.t) list;
          (** output name -> binding key for upper operators *)
      est_rows : float;
      est_cost : float;
    }
  | Join of {
      left : t;
      right : t;
      keys : (Col.t * Col.t) list;
      post : Pred.t list;
      strategy : join_strategy;
      est_rows : float;
      est_cost : float;
    }
  | Aggregate of {
      input : t;
      group_by : Expr.t list;
      out : Spjg.out_item list;
      est_rows : float;
      est_cost : float;
    }

val est_rows : t -> float

val est_cost : t -> float

val uses_view : t -> bool

val views_used : t -> string list

val pp : ?indent:int -> Format.formatter -> t -> unit

val to_string : t -> string
