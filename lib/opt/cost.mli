(** Cardinality and cost estimation: a textbook uniformity/independence
    model, shared by the optimizer and the workload generator's
    cardinality targeting. *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats

val conjunct_selectivity : Stats.t -> Pred.t -> float

val spj_rows : Stats.t -> tables:string list -> where:Pred.t list -> float

val group_rows : Stats.t -> input:float -> Expr.t list -> float

val block_rows : Stats.t -> Spjg.t -> float

val estimate_view_rows : ?name:string -> Stats.t -> Spjg.t -> int
(** Estimated row count of a view definition from base-table statistics.
    With [name], a statistics entry for the view itself (built from its
    actual contents at materialization time, or mark-and-rebuilt by
    [Mv_engine.Ivm.refresh_stats]) takes precedence over the analytic
    model. *)
