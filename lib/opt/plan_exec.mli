(** Execution of optimizer plans against an in-memory database — the test
    bridge proving every emitted plan computes the query's relation, and
    the runtime behind [bench --exec]. Join nodes honor the strategy the
    optimizer recorded (hash or nested loop); the strategy never changes
    the result bag. *)

type node_report = {
  nr_label : string;  (** e.g. ["ViewScan[v12]"], ["Join on a.x=b.y"] *)
  nr_strategy : string;
      (** ["hash"] / ["nlj"] for joins; ["scan"] / ["view"] /
          ["aggregate"] for the other nodes *)
  nr_est : float;  (** optimizer's estimated output rows *)
  nr_actual : int;  (** rows actually produced *)
}

val prepare : Mv_engine.Database.t -> Plan.t -> unit
(** Materialize every view the plan reads (idempotent). *)

val execute :
  ?force_hash:bool ->
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Mv_engine.Database.t ->
  Mv_relalg.Spjg.t ->
  Plan.t ->
  Mv_engine.Relation.t
(** Run the plan (materializing views first) and produce the final
    relation with the query's output names. [force_hash] overrides every
    join node's strategy to hash (the pre-adaptive behavior); [adaptive]
    and [stats] are forwarded to {!Mv_engine.Exec} for leaf blocks. *)

val execute_report :
  ?force_hash:bool ->
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Mv_engine.Database.t ->
  Mv_relalg.Spjg.t ->
  Plan.t ->
  Mv_engine.Relation.t * node_report list
(** Same, also collecting one estimated-vs-actual report per plan node in
    post-order (children before parents). Every report feeds the
    [exec.estimation.qerror] histogram. *)
