(** Epoch-validated, mutex-sharded LRU cache over the view-matching rule
    and the optimizer's final plans. See the interface for the protocol;
    the implementation notes here cover only what the types don't say.

    Keys pair the query's interned table bitset (fast fingerprint, shard
    selector) with the normalized SPJG block (exact structural identity:
    tables, conjuncts, outputs, grouping). Both are immutable values, so
    sharing them in a long-lived cache is safe. *)

module A = Mv_relalg.Analysis
module Spjg = Mv_relalg.Spjg
module Bitset = Mv_util.Bitset
module Lru = Mv_util.Lru
module Registry = Mv_core.Registry

type key = { fp : Bitset.t; block : Spjg.t }

let key_of_analysis (qa : A.t) = { fp = qa.A.table_key; block = qa.A.spjg }

(* Plan lookups happen before any analysis exists, so the fingerprint is
   re-interned from the table names — lock-free after the freeze, mutex
   slow path otherwise (the same growth path dynamic view adds use). *)
let key_of_spjg (block : Spjg.t) =
  {
    fp =
      List.fold_left
        (fun acc tbl -> Bitset.add acc (Mv_relalg.Intern.table tbl))
        Bitset.empty block.Spjg.tables;
    block;
  }

type match_entry = {
  m_epoch : int;
  m_candidates : Mv_core.View.t list;
  m_substitutes : Mv_core.Substitute.t list;
}

type plan_entry = {
  plan : Plan.t;
  cost : float;
  rows : float;
  used_views : bool;
}

type plan_slot = { p_epoch : int; p_entry : plan_entry }

type shard = {
  lock : Mutex.t;
  matches : (key, match_entry) Lru.t;
  plans : (key, plan_slot) Lru.t;
}

(* One counter record per layer; handles resolved once at [create]. *)
type layer_counters = {
  hits : Mv_obs.Instrument.counter;
  misses : Mv_obs.Instrument.counter;
  evictions : Mv_obs.Instrument.counter;
  invalidations : Mv_obs.Instrument.counter;
}

type t = {
  registry : Registry.t;
  shards : shard array;
  match_ctrs : layer_counters;
  plan_ctrs : layer_counters;
}

let layer_counters obs layer =
  let c suffix =
    Mv_obs.Registry.counter obs ("cache." ^ layer ^ "." ^ suffix)
  in
  {
    hits = c "hits";
    misses = c "misses";
    evictions = c "evictions";
    invalidations = c "invalidations";
  }

let create ?(shards = 8) ?(capacity = 1024) registry =
  if shards < 1 then invalid_arg "Match_cache.create: shards < 1";
  if capacity < 1 then invalid_arg "Match_cache.create: capacity < 1";
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  let obs = registry.Registry.obs in
  {
    registry;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            matches = Lru.create ~capacity:per_shard;
            plans = Lru.create ~capacity:per_shard;
          });
    match_ctrs = layer_counters obs "match";
    plan_ctrs = layer_counters obs "plan";
  }

let registry t = t.registry

let shard_for t key =
  t.shards.(Hashtbl.hash key land max_int mod Array.length t.shards)

let incr = Mv_obs.Instrument.incr

(* The shared lookup/compute/store shape of both layers. [epoch_of] reads
   the entry's stamp, [fresh] wraps a new value with the epoch observed
   BEFORE computing — an add/drop racing the computation leaves the entry
   stale-stamped, never stale-served. [layer]/[spans] only feed the span
   sink: a traced lookup notes [cache.<layer>.hit|miss] as an instant. *)
let serve t ~layer ?spans ?ep ~ctrs ~cache_of key ~epoch_of ~fresh ~compute =
  (* [ep] is the validation epoch: the caller's pinned snapshot epoch, or
     the live registry epoch. A pinned lookup during a churn window (pin
     behind live) misses/recomputes against its snapshot and stores an
     entry stamped with the pin — which the next live-epoch lookup kills,
     exactly like an entry whose computation raced a mutation. Stale
     entries are never served either way. *)
  let ep = match ep with Some e -> e | None -> Registry.epoch t.registry in
  let shard = shard_for t key in
  let cache = cache_of shard in
  let cached =
    Mutex.protect shard.lock (fun () ->
        match Lru.find cache key with
        | Some e when epoch_of e = ep -> Some e
        | Some _ ->
            incr ctrs.invalidations;
            ignore (Lru.remove cache key);
            None
        | None -> None)
  in
  match cached with
  | Some e ->
      incr ctrs.hits;
      Mv_obs.Span.note spans ("cache." ^ layer ^ ".hit") (fun () -> []);
      e
  | None ->
      incr ctrs.misses;
      Mv_obs.Span.note spans ("cache." ^ layer ^ ".miss") (fun () -> []);
      let v = compute () in
      let e = fresh ep v in
      Mutex.protect shard.lock (fun () ->
          match Lru.set cache key e with
          | Some _ -> incr ctrs.evictions
          | None -> ());
      e

let find_substitutes ?spans ?snap t (qa : A.t) =
  let e =
    serve t ~layer:"match" ?spans
      ?ep:(Option.map (fun s -> s.Registry.snap_epoch) snap)
      ~ctrs:t.match_ctrs
      ~cache_of:(fun s -> s.matches)
      (key_of_analysis qa)
      ~epoch_of:(fun e -> e.m_epoch)
      ~fresh:(fun ep (cands, subs) ->
        { m_epoch = ep; m_candidates = cands; m_substitutes = subs })
      ~compute:(fun () ->
        Registry.match_with_candidates ?spans ?snap t.registry qa)
  in
  e.m_substitutes

let cached_candidates t (qa : A.t) =
  let key = key_of_analysis qa in
  let ep = Registry.epoch t.registry in
  let shard = shard_for t key in
  Mutex.protect shard.lock (fun () ->
      match Lru.peek shard.matches key with
      | Some e when e.m_epoch = ep -> Some e.m_candidates
      | _ -> None)

let with_plan ?spans ?epoch t (block : Spjg.t) compute =
  let e =
    serve t ~layer:"plan" ?spans ?ep:epoch ~ctrs:t.plan_ctrs
      ~cache_of:(fun s -> s.plans)
      (key_of_spjg block)
      ~epoch_of:(fun s -> s.p_epoch)
      ~fresh:(fun ep entry -> { p_epoch = ep; p_entry = entry })
      ~compute
  in
  e.p_entry

(* Lookup-only plan probe for serving front ends: a fresh hit counts as a
   plan-layer hit (the optimizer will not run at all); anything else
   counts nothing — the caller goes on to [with_plan], which accounts the
   miss exactly once. Never invalidates: a mismatched entry may be
   perfectly fresh for a reader pinned at another epoch. *)
let peek_plan ?epoch t (block : Spjg.t) =
  let ep = match epoch with Some e -> e | None -> Registry.epoch t.registry in
  let key = key_of_spjg block in
  let shard = shard_for t key in
  let hit =
    Mutex.protect shard.lock (fun () ->
        match Lru.find shard.plans key with
        | Some s when s.p_epoch = ep -> Some s.p_entry
        | _ -> None)
  in
  (match hit with Some _ -> incr t.plan_ctrs.hits | None -> ());
  hit

let stats t =
  let obs = t.registry.Registry.obs in
  List.filter_map
    (fun name ->
      if String.length name >= 6 && String.sub name 0 6 = "cache." then
        Some (name, Mv_obs.Registry.counter_value obs name)
      else None)
    (Mv_obs.Registry.names obs)

let clear t =
  Array.iter
    (fun s ->
      Mutex.protect s.lock (fun () ->
          Lru.clear s.matches;
          Lru.clear s.plans))
    t.shards
