(** Memo-based transformation optimizer.

    Conceptually a scaled-down Cascades: the query's SPJ core is explored
    bottom-up over connected table subsets; every enumerated subset is an
    SPJG subexpression on which the view-matching rule (Registry) is
    invoked, exactly like SQL Server invokes the rule on every SPJG
    expression the memo generates. Substitutes become leaf plans and
    compete on cost with join plans. Aggregation queries additionally
    explore preaggregated alternatives (Example 4's group-by pushdown), so
    a view like v4 can serve a query that also joins tables the view does
    not contain.

    Two switches reproduce the paper's four measurement configurations:
    [produce_substitutes] ("Alt") keeps/discards the rule's output, and the
    registry's [use_filter] enables/disables the filter tree. *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module A = Mv_relalg.Analysis

type config = { produce_substitutes : bool; prune_cost_bound : bool }

let default_config = { produce_substitutes = true; prune_cost_bound = true }

type result = {
  plan : Plan.t;
  cost : float;
  rows : float;
  used_views : bool;
  pruned_views : string list;
}

(* Join strategy picked at plan time from the estimated cardinalities of
   both sides: a nested loop does [left * right] key comparisons and only
   beats the hash join's per-row hashing overhead when that budget is
   small (the executor's [nlj_budget]). Purely physical — never affects
   cost comparisons or the result bag. *)
let strategy_for left right =
  if
    Plan.est_rows left *. Plan.est_rows right
    <= float_of_int Mv_engine.Exec.nlj_budget
  then Plan.Nlj
  else Plan.Hash

(* binding spec of a leaf: bare-column outputs rebind to their base column,
   everything else to a synthetic #agg column *)
let leaf_binds (block : Spjg.t) =
  List.map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Scalar (Expr.Col c) -> (o.Spjg.name, c)
      | _ -> (o.Spjg.name, Col.make "#agg" o.Spjg.name))
    block.Spjg.out

let scan_leaf stats (block : Spjg.t) =
  let rows = Cost.block_rows stats block in
  let base =
    List.fold_left
      (fun acc t ->
        acc +. float_of_int (max 1 (Mv_catalog.Stats.row_count stats t)))
      0.0 block.Spjg.tables
  in
  Plan.Leaf
    {
      source = Plan.Computed block;
      binds = leaf_binds block;
      est_rows = rows;
      est_cost = base +. rows;
    }

(* Substitute leaf costing with branch-and-bound: every term is
   nonnegative, so any partial sum is a lower bound on the final cost —
   as soon as it exceeds [bound] (the best complete plan so far) the
   candidate cannot win and costing stops. [Error view_name] reports the
   prune; the strict [>] keeps exact ties alive, so pruning never changes
   which plan is chosen. *)
let view_leaf ?bound schema stats (block : Spjg.t) (s : Mv_core.Substitute.t) :
    (Plan.t, string) Result.t =
  let over =
    match bound with Some b -> fun partial -> partial > b | None -> fun _ -> false
  in
  let view = s.Mv_core.Substitute.view in
  (* Leaf output estimate: with a statistics entry for the view itself
     (built from its actual contents at materialization time or refreshed
     by IVM), estimate from the substitute's own block — compensating
     predicates then see the view's histograms instead of base-table
     selectivities (ROADMAP item 4; the q_bigcust q-error of the exec
     bench came from exactly this gap). Without view-level statistics the
     base-table estimate is used, so statistics-only runs are unchanged. *)
  let rows =
    if Mv_catalog.Stats.table stats view.Mv_core.View.name <> None then
      Cost.block_rows stats s.Mv_core.Substitute.block
    else Cost.block_rows stats block
  in
  let vrows = float_of_int (max 1 view.Mv_core.View.row_count) in
  (* cost unit = rows x relative row width: the view projects a subset of
     its tables' columns, so scanning it moves proportionally less data
     than scanning the base tables *)
  let width =
    let out = List.length (Mv_core.View.spjg view).Spjg.out in
    let total =
      List.fold_left
        (fun acc t ->
          acc
          + List.length
              (Mv_catalog.Table_def.column_names
                 (Mv_catalog.Schema.table_exn schema t)))
        0
        (Mv_core.View.spjg view).Spjg.tables
    in
    Float.max 0.15 (float_of_int out /. float_of_int (max 1 total))
  in
  (* secondary indexes on the view are considered automatically: a
     compensating equality on an index prefix (or a range on its leading
     column) turns the full view scan into an index lookup *)
  let scan_cost =
    let cl =
      Mv_relalg.Classify.classify
        (List.filter
           (fun p ->
             List.for_all
               (fun (c : Col.t) -> c.Col.tbl = view.Mv_core.View.name)
               (Pred.columns p))
           s.Mv_core.Substitute.block.Spjg.where)
    in
    let eq_cols, range_cols =
      List.fold_left
        (fun (eqs, rngs) (c, op, _) ->
          match op with
          | Pred.Eq -> (c.Col.col :: eqs, rngs)
          | _ -> (eqs, c.Col.col :: rngs))
        ([], []) cl.Mv_relalg.Classify.ranges
    in
    let indexed =
      List.exists
        (fun ix ->
          match ix with
          | [] -> false
          | first :: _ -> List.mem first eq_cols || List.mem first range_cols)
        view.Mv_core.View.indexes
    in
    if indexed then
      (* log-time positioning plus the qualifying fraction of the view *)
      (Float.log2 (vrows +. 2.0) +. Float.min vrows (rows *. 2.0)) *. width
    else vrows *. width
  in
  if over scan_cost then Error view.Mv_core.View.name
  else
    let group_extra =
      if Mv_core.Substitute.uses_regrouping s then scan_cost else 0.0
    in
    if over (scan_cost +. group_extra) then Error view.Mv_core.View.name
    else
      (* backjoined base tables are re-scanned *)
      let backjoin_extra =
        List.fold_left
          (fun acc t ->
            acc +. float_of_int (max 1 (Mv_catalog.Stats.row_count stats t)))
          0.0 s.Mv_core.Substitute.backjoins
      in
      let total = scan_cost +. group_extra +. backjoin_extra +. rows in
      if over total then Error view.Mv_core.View.name
      else
        Ok
          (Plan.Leaf
             {
               source = Plan.Via s;
               binds = leaf_binds block;
               est_rows = rows;
               est_cost = total;
             })

(* The numbers the memo competes on, exposed for the advisor's benefit
   model ([Advisor]): a substitute leaf's estimated (cost, rows) without
   any branch-and-bound bound (costing never prunes), and the direct
   computed-leaf cost of the same block. *)
let substitute_cost schema stats (block : Spjg.t) (s : Mv_core.Substitute.t) :
    float * float =
  match view_leaf schema stats block s with
  | Ok p -> (Plan.est_cost p, Plan.est_rows p)
  | Error _ -> assert false (* unreachable: no bound was passed *)

let direct_cost stats (block : Spjg.t) : float =
  Plan.est_cost (scan_leaf stats block)

(* ---- join graph over the query's tables ---- *)

let table_edges (query : Spjg.t) =
  List.filter_map
    (fun p ->
      match p with
      | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b)
        when a.Col.tbl <> b.Col.tbl ->
          Some (a.Col.tbl, b.Col.tbl)
      | _ -> None)
    query.Spjg.where

let connected edges tables =
  match tables with
  | [] -> false
  | first :: _ ->
      let rec grow seen =
        let next =
          List.filter
            (fun t ->
              (not (List.mem t seen))
              && List.exists
                   (fun (a, b) ->
                     (a = t && List.mem b seen) || (b = t && List.mem a seen))
                   edges)
            tables
        in
        match next with [] -> seen | _ -> grow (next @ seen)
      in
      List.length (grow [ first ]) = List.length tables

(* ---- the memo ---- *)

type entry = { plan : Plan.t; rows : float; block : Spjg.t }

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let tables_of_mask tables mask =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list tables)

(* The SPJG subexpressions the memo invokes the view-matching rule on: one
   SPJ block per connected table subset, plus the whole query when it
   aggregates (preaggregated inner blocks are left out — the advisor's
   benefit model, which mirrors this enumeration, stays conservative:
   the real optimizer can only do better than the model predicts). *)
let enumerate_blocks (query : Spjg.t) : Spjg.t list =
  let spj = Block.spj_part query in
  let tables = Array.of_list spj.Spjg.tables in
  let n = Array.length tables in
  let edges = table_edges query in
  let full = (1 lsl n) - 1 in
  let blocks = ref [] in
  for mask = full downto 1 do
    let ts = tables_of_mask tables mask in
    if connected edges ts || popcount mask = 1 then
      blocks := Block.sub_block spj ts :: !blocks
  done;
  if query.Spjg.group_by = None then !blocks else !blocks @ [ query ]

(* crossing column-equality conjuncts between two table sets *)
let cross_keys (query : Spjg.t) left_tables right_tables =
  List.filter_map
    (fun p ->
      match p with
      | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) ->
          if List.mem a.Col.tbl left_tables && List.mem b.Col.tbl right_tables
          then Some (a, b)
          else if
            List.mem b.Col.tbl left_tables && List.mem a.Col.tbl right_tables
          then Some (b, a)
          else None
      | _ -> None)
    query.Spjg.where

let cheaper a b = if Plan.est_cost a <= Plan.est_cost b then a else b

(* Is pushing the group-by below the join boundary safe for [remaining]
   tables? Each must be joined on a full unique key (see DESIGN.md):
   then every preaggregated row matches at most one row per remaining
   table, so sums are never duplicated. *)
let safe_preagg (qa : A.t) schema remaining =
  List.for_all
    (fun r ->
      let td = Mv_catalog.Schema.table_exn schema r in
      let keys =
        td.Mv_catalog.Table_def.primary_key :: td.Mv_catalog.Table_def.unique_keys
      in
      List.exists
        (fun key ->
          key <> []
          && List.for_all
               (fun k ->
                 let c = Col.make r k in
                 Col.Set.exists
                   (fun c' -> c'.Col.tbl <> r)
                   (Mv_relalg.Equiv.class_of qa.A.equiv c))
               key)
        keys)
    remaining

let optimize_body ~(config : config) ?cache ?spans ?snap
    ?(fresh_only = false) (registry : Mv_core.Registry.t)
    (stats : Mv_catalog.Stats.t) (query : Spjg.t) : result =
  let schema = registry.Mv_core.Registry.schema in
  let obs = registry.Mv_core.Registry.obs in
  let octr name = Mv_obs.Registry.counter obs ("optimizer." ^ name) in
  (* Per-phase latency histograms (one sample per phase activity, wall
     seconds) — resolved once per optimize call, read back by the bench
     harness as p50/p90/p99 per phase. *)
  let phase name = Mv_obs.Registry.histogram obs ("optimizer.phase." ^ name) in
  let h_analyze = phase "analyze" in
  let h_match = phase "match" in
  let h_cost = phase "cost" in
  let spj = Block.spj_part query in
  let tables = Array.of_list spj.Spjg.tables in
  let n = Array.length tables in
  let edges = table_edges query in
  let memo : (int, entry) Hashtbl.t = Hashtbl.create 64 in
  let full = (1 lsl n) - 1 in
  let query_connected = n = 1 || connected edges (Array.to_list tables) in
  (* Per-optimization analysis memo, keyed by the (tables, where) core: the
     enumeration produces several blocks over the same core (the full-mask
     SPJ block, the whole query at the group-by stage, preaggregated inner
     blocks), and every derived analysis field depends on the block through
     that core alone — so each subexpression is analyzed exactly once and
     cheaply rebound to the other blocks (see {!A.rebind}). *)
  let analyses : (string list * Pred.t list, A.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let analyze block =
    Mv_obs.Instrument.time_hist h_analyze (fun () ->
        Mv_obs.Instrument.incr (octr "analyze.calls");
        let key = (block.Spjg.tables, block.Spjg.where) in
        match Hashtbl.find_opt analyses key with
        | Some a ->
            Mv_obs.Instrument.incr (octr "analyze.memo_hits");
            if a.A.spjg == block then a else A.rebind a block
        | None ->
            Mv_obs.Span.wrap spans "analyze" (fun _ ->
                let a = A.analyze schema block in
                Hashtbl.add analyses key a;
                a))
  in
  (* the view-matching rule, through the match cache when serving; the
     pinned snapshot (if any) rides along into every rule invocation, so
     all subexpressions of this optimization see one registry state *)
  let find_subs ?spans qa =
    Mv_obs.Instrument.time_hist h_match (fun () ->
        match cache with
        | Some c -> Match_cache.find_substitutes ?spans ?snap c qa
        | None ->
            Mv_core.Registry.find_substitutes ?spans ?snap ~fresh_only
              registry qa)
  in
  (* Branch-and-bound accounting: pruned candidate names (for provenance)
     and the [opt.prune.cost_bound] counter, distinct from matcher
     rejects. *)
  let pruned_acc = ref [] in
  let prune_ctr = Mv_obs.Registry.counter obs "opt.prune.cost_bound" in
  (* invoke the view-matching rule on a block; returns leaf plans.
     [bound] is sampled once on entry (the best complete plan so far, if
     any) and handed to substitute costing as a branch-and-bound upper
     bound. *)
  let rule_leaves ?(bound = fun () -> None) block =
    Mv_obs.Instrument.incr (octr "subexpressions");
    Mv_obs.Span.wrap spans "rule"
      ~attrs:(fun () ->
        [ ("tables", Mv_obs.Span.Str (String.concat "," block.Spjg.tables)) ])
      (fun sub ->
        let subs = find_subs ?spans:sub (analyze block) in
        Mv_obs.Span.wrap sub "cost" (fun costs ->
            Mv_obs.Instrument.time_hist h_cost (fun () ->
                if config.produce_substitutes then
                  let b = if config.prune_cost_bound then bound () else None in
                  List.filter_map
                    (fun s ->
                      match view_leaf ?bound:b schema stats block s with
                      | Ok p -> Some p
                      | Error vname ->
                          Mv_obs.Instrument.incr prune_ctr;
                          pruned_acc := vname :: !pruned_acc;
                          Mv_obs.Span.note costs "prune.cost_bound" (fun () ->
                              [ ("view", Mv_obs.Span.Str vname) ]);
                          None)
                    subs
                else [])))
  in
  (* substitute leaves competed on cost against [winner]: score them *)
  let score_substitutes vleaves winner =
    match vleaves with
    | [] -> ()
    | _ :: _ ->
        let won =
          match winner with
          | Some (Plan.Leaf { source = Plan.Via _; _ }) -> true
          | _ -> false
        in
        Mv_obs.Instrument.add (octr "substitutes.considered")
          (List.length vleaves);
        if won then Mv_obs.Instrument.incr (octr "substitutes.wins");
        Mv_obs.Instrument.add (octr "substitutes.losses")
          (List.length vleaves - if won then 1 else 0)
  in
  for mask = 1 to full do
    let ts = tables_of_mask tables mask in
    let is_conn = connected edges ts || popcount mask = 1 in
    (* disconnected queries (no workload generates them, but users can
       write them) fall back to exhaustive enumeration with cartesian
       joins *)
    if is_conn || not query_connected then begin
      let block = Block.sub_block spj ts in
      let rows = Cost.block_rows stats block in
      let best = ref None in
      let consider p =
        best := Some (match !best with None -> p | Some q -> cheaper p q)
      in
      if popcount mask = 1 then consider (scan_leaf stats block)
      else begin
        (* join splits *)
        let sub = ref ((mask - 1) land mask) in
        while !sub > 0 do
          let a = !sub and b = mask land lnot !sub in
          if a < b then begin
            match (Hashtbl.find_opt memo a, Hashtbl.find_opt memo b) with
            | Some ea, Some eb ->
                let lt = tables_of_mask tables a
                and rt = tables_of_mask tables b in
                let keys = cross_keys spj lt rt in
                if keys <> [] || not is_conn then begin
                  let local = Block.local_preds spj ts in
                  let post =
                    List.filter
                      (fun p ->
                        (not (List.memq p (Block.local_preds spj lt)))
                        && (not (List.memq p (Block.local_preds spj rt)))
                        && not
                             (List.exists
                                (fun (x, y) ->
                                  Pred.equal p
                                    (Pred.Cmp (Pred.Eq, Expr.Col x, Expr.Col y))
                                  || Pred.equal p
                                       (Pred.Cmp
                                          (Pred.Eq, Expr.Col y, Expr.Col x)))
                                keys))
                      local
                  in
                  let cost =
                    Plan.est_cost ea.plan +. Plan.est_cost eb.plan
                    +. ea.rows +. eb.rows +. rows
                  in
                  (* build both orders conceptually; cost model is symmetric
                     so one suffices *)
                  consider
                    (Plan.Join
                       {
                         left = ea.plan;
                         right = eb.plan;
                         keys;
                         post;
                         strategy = strategy_for ea.plan eb.plan;
                         est_rows = rows;
                         est_cost = cost;
                       })
                end
            | _ -> ()
          end;
          sub := (!sub - 1) land mask
        done
      end;
      if is_conn then begin
        let vleaves =
          rule_leaves ~bound:(fun () -> Option.map Plan.est_cost !best) block
        in
        List.iter consider vleaves;
        score_substitutes vleaves !best
      end;
      match !best with
      | Some plan -> Hashtbl.replace memo mask { plan; rows; block }
      | None -> ()
    end
  done;
  Mv_obs.Instrument.add (octr "memo.groups") (Hashtbl.length memo);
  let spj_entry =
    match Hashtbl.find_opt memo full with
    | Some e -> e
    | None -> failwith "optimizer: no plan for the full table set"
  in
  match query.Spjg.group_by with
  | None ->
      let plan = spj_entry.plan in
      {
        plan;
        cost = Plan.est_cost plan;
        rows = Plan.est_rows plan;
        used_views = Plan.uses_view plan;
        pruned_views = List.rev !pruned_acc;
      }
  | Some gq ->
      let qa = analyze query in
      let agg_over input =
        let in_rows = Plan.est_rows input in
        let rows = Cost.group_rows stats ~input:in_rows gq in
        Plan.Aggregate
          {
            input;
            group_by = gq;
            out = query.Spjg.out;
            est_rows = rows;
            est_cost = Plan.est_cost input +. in_rows;
          }
      in
      let baseline = agg_over spj_entry.plan in
      let best = ref baseline in
      let agg_considered = ref 0 in
      let consider p = if Plan.est_cost p < Plan.est_cost !best then best := p in
      (* whole-query substitutes; the aggregate baseline bounds the search *)
      (let vleaves =
         rule_leaves ~bound:(fun () -> Some (Plan.est_cost !best)) query
       in
       agg_considered := !agg_considered + List.length vleaves;
       List.iter consider vleaves);
      (* preaggregated alternatives *)
      for mask = 1 to full - 1 do
        let ts = tables_of_mask tables mask in
        if connected edges ts || popcount mask = 1 then begin
          let remaining = tables_of_mask tables (full land lnot mask) in
          match Block.preagg_block query ts with
          | Some pa
            when safe_preagg qa schema remaining
                 && List.for_all
                      (function Expr.Col _ -> true | _ -> false)
                      (Option.value ~default:[]
                         pa.Block.block.Spjg.group_by) ->
              let inner_rows = Cost.block_rows stats pa.Block.block in
              let inner_scan =
                let base =
                  List.fold_left
                    (fun acc t ->
                      acc
                      +. float_of_int
                           (max 1 (Mv_catalog.Stats.row_count stats t)))
                    0.0 ts
                in
                Plan.Leaf
                  {
                    source = Plan.Computed pa.Block.block;
                    binds = leaf_binds pa.Block.block;
                    est_rows = inner_rows;
                    est_cost = base +. inner_rows;
                  }
              in
              (* a preaggregated leaf only grows through joins and the
                 outer aggregation, so the current best's full cost is a
                 valid bound on the leaf alone *)
              let inner_views =
                rule_leaves
                  ~bound:(fun () -> Some (Plan.est_cost !best))
                  pa.Block.block
              in
              agg_considered := !agg_considered + List.length inner_views;
              List.iter
                (fun inner ->
                  (* join the preaggregated result with the remaining
                     tables, greedily *)
                  let rec attach plan joined = function
                    | [] -> Some plan
                    | rest ->
                        let avail = ts @ joined in
                        let next =
                          List.find_opt
                            (fun r -> cross_keys query avail [ r ] <> [])
                            rest
                        in
                        let next =
                          match next with
                          | Some r -> Some r
                          | None -> (
                              match rest with [] -> None | r :: _ -> Some r)
                        in
                        (match next with
                        | None -> None
                        | Some r ->
                            let avail_after = r :: avail in
                            let keys = cross_keys query avail [ r ] in
                            let rblock = Block.sub_block spj [ r ] in
                            let rplan = scan_leaf stats rblock in
                            (* non-equality conjuncts that become fully
                               bound once r joins (and were not already
                               applied below) *)
                            let post =
                              List.filter
                                (fun p ->
                                  let cols = Pred.columns p in
                                  List.exists
                                    (fun (c : Col.t) -> c.Col.tbl = r)
                                    cols
                                  && List.exists
                                       (fun (c : Col.t) -> c.Col.tbl <> r)
                                       cols
                                  && List.for_all
                                       (fun (c : Col.t) ->
                                         List.mem c.Col.tbl avail_after)
                                       cols
                                  && not
                                       (List.exists
                                          (fun (x, y) ->
                                            Pred.equal p
                                              (Pred.Cmp
                                                 (Pred.Eq, Expr.Col x, Expr.Col y))
                                            || Pred.equal p
                                                 (Pred.Cmp
                                                    (Pred.Eq, Expr.Col y,
                                                     Expr.Col x)))
                                          keys))
                                query.Spjg.where
                            in
                            (* remaining tables join on unique keys, so the
                               result cardinality stays at the inner side's *)
                            let rows = Plan.est_rows plan in
                            let j =
                              Plan.Join
                                {
                                  left = plan;
                                  right = rplan;
                                  keys;
                                  post;
                                  strategy = strategy_for plan rplan;
                                  est_rows = rows;
                                  est_cost =
                                    Plan.est_cost plan +. Plan.est_cost rplan
                                    +. Plan.est_rows plan
                                    +. Plan.est_rows rplan +. rows;
                                }
                            in
                            attach j (r :: joined)
                              (List.filter (( <> ) r) rest))
                  in
                  match attach inner [] remaining with
                  | None -> ()
                  | Some joined_plan ->
                      (* outer aggregation rewritten over the
                         preaggregated bindings *)
                      let cnt = Expr.Col (Col.make "#agg" "cnt") in
                      let outer_out =
                        List.map
                          (fun (o : Spjg.out_item) ->
                            match o.Spjg.def with
                            | Spjg.Scalar e -> Spjg.scalar o.Spjg.name e
                            | Spjg.Aggregate Spjg.Count_star ->
                                Spjg.aggregate o.Spjg.name (Spjg.Sum0 cnt)
                            | Spjg.Aggregate (Spjg.Sum _) ->
                                Spjg.aggregate o.Spjg.name
                                  (Spjg.Sum
                                     (Expr.Col
                                        (Col.make "#agg" ("s_" ^ o.Spjg.name))))
                            | Spjg.Aggregate (Spjg.Avg _) ->
                                Spjg.aggregate o.Spjg.name
                                  (Spjg.Sum_div_sum
                                     ( Expr.Col
                                         (Col.make "#agg" ("s_" ^ o.Spjg.name)),
                                       cnt ))
                            | Spjg.Aggregate (Spjg.Sum_div_sum _ | Spjg.Sum0 _)
                              ->
                                (* never present in user queries *)
                                assert false)
                          query.Spjg.out
                      in
                      let in_rows = Plan.est_rows joined_plan in
                      let rows = Cost.group_rows stats ~input:in_rows gq in
                      consider
                        (Plan.Aggregate
                           {
                             input = joined_plan;
                             group_by = gq;
                             out = outer_out;
                             est_rows = rows;
                             est_cost = Plan.est_cost joined_plan +. in_rows;
                           }))
                (inner_scan :: inner_views)
          | _ -> ()
        end
      done;
      let plan = !best in
      (* aggregation-stage scoring: did any alternative derived from a
         substitute (whole-query or preaggregated) beat the agg-over-SPJ
         baseline? *)
      if !agg_considered > 0 then begin
        let won = plan != baseline && Plan.uses_view plan in
        Mv_obs.Instrument.add (octr "substitutes.considered") !agg_considered;
        if won then Mv_obs.Instrument.incr (octr "substitutes.wins");
        Mv_obs.Instrument.add (octr "substitutes.losses")
          (!agg_considered - if won then 1 else 0)
      end;
      {
        plan;
        cost = Plan.est_cost plan;
        rows = Plan.est_rows plan;
        used_views = Plan.uses_view plan;
        pruned_views = List.rev !pruned_acc;
      }

let optimize ?(config = default_config) ?cache ?spans ?snap
    ?(fresh_only = false) (registry : Mv_core.Registry.t)
    (stats : Mv_catalog.Stats.t) (query : Spjg.t) : result =
  (match cache with
  | Some c when Match_cache.registry c != registry ->
      invalid_arg "Optimizer.optimize: cache belongs to another registry"
  | _ -> ());
  (* cached candidates/plans were computed without the freshness gate (a
     staleness mark does not bump the registry epoch), so the fresh-only
     mode bypasses the cache entirely rather than risk serving a plan
     built over a view that has since gone stale *)
  let cache = if fresh_only then None else cache in
  let obs = registry.Mv_core.Registry.obs in
  let r =
    Mv_obs.Instrument.time
      (Mv_obs.Registry.timer obs "optimizer.time")
      (fun () ->
        Mv_obs.Instrument.time_hist
          (Mv_obs.Registry.histogram obs "optimizer.phase.total")
          (fun () ->
            Mv_obs.Span.wrap spans "optimize"
              ~attrs:(fun () ->
                [
                  ( "tables",
                    Mv_obs.Span.Str (String.concat "," query.Spjg.tables) );
                  ("aggregate", Mv_obs.Span.Bool (query.Spjg.group_by <> None));
                ])
              (fun spans ->
                let r =
                  match cache with
                  | None ->
                      optimize_body ~config ?spans ?snap ~fresh_only registry
                        stats query
                  | Some c ->
                      (* plan layer: a warm hit skips enumeration and
                         matching entirely; a miss runs the normal
                         exploration with the rule routed through the match
                         layer. A pinned snapshot also pins the plan
                         layer's validation epoch. Prune provenance is not
                         cached: warm hits report none. *)
                      let pruned = ref [] in
                      let e =
                        Match_cache.with_plan ?spans
                          ?epoch:
                            (Option.map
                               (fun s -> s.Mv_core.Registry.snap_epoch)
                               snap)
                          c query
                          (fun () ->
                            let r =
                              optimize_body ~config ~cache:c ?spans ?snap
                                registry stats query
                            in
                            pruned := r.pruned_views;
                            {
                              Match_cache.plan = r.plan;
                              cost = r.cost;
                              rows = r.rows;
                              used_views = r.used_views;
                            })
                      in
                      {
                        plan = e.Match_cache.plan;
                        cost = e.Match_cache.cost;
                        rows = e.Match_cache.rows;
                        used_views = e.Match_cache.used_views;
                        pruned_views = !pruned;
                      }
                in
                Mv_obs.Span.annotate spans (fun () ->
                    [
                      ("cost", Mv_obs.Span.Float r.cost);
                      ("used_views", Mv_obs.Span.Bool r.used_views);
                    ]);
                r)))
  in
  Mv_obs.Instrument.incr (Mv_obs.Registry.counter obs "optimizer.calls");
  (* ledger attribution (DESIGN.md §14): every call logs the query it
     optimized; a winning plan credits each view leaf with "chosen" plus
     the estimated cost saved against computing the query directly. This
     counts every final plan, warm plan-cache hits included — serving-side
     L1/peek hits are attributed separately as cache hits. *)
  let health = registry.Mv_core.Registry.health in
  Mv_core.Health.record_query health query;
  if r.used_views then begin
    Mv_obs.Instrument.incr
      (Mv_obs.Registry.counter obs "optimizer.plans.using_views");
    let vnames = Plan.views_used r.plan in
    let base = direct_cost stats query in
    let benefit =
      Float.max 0.0 (base -. r.cost)
      /. float_of_int (max 1 (List.length vnames))
    in
    List.iter
      (fun n -> Mv_core.Health.record_chosen health ~benefit n)
      vnames
  end;
  r
