(** Workload-driven view selection (ROADMAP item 1): estimate each
    candidate's size and per-query benefit with the existing cost model,
    then pick a set under a storage budget with greedy seeding plus
    local-search add/drop/swap/merge moves, following the local-search
    selection literature (PAPERS.md). A maintenance-cost term derived from
    the measured [bench --maintain] delta-vs-rematerialize crossover makes
    write-heavy workloads penalize wide views.

    The selection core ({!Selection}) is deliberately self-contained and
    purely numeric so it can be property-tested in isolation
    (test/test_advisor.ml): within-budget by construction, local search
    never worse than greedy, and brute-force-optimal on small instances. *)

module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats
module A = Mv_relalg.Analysis

module Selection = struct
  type candidate = {
    id : string;
    size : float;
    maint : float;
    saves : (int * float) list;
        (* (query index, cost of that query when answered via this
           candidate); entries not strictly below the base cost are
           dropped by {!instance} *)
  }

  type instance = {
    base : float array;
    budget : float;
    cands : candidate array;
    tol : float;
  }

  exception Invalid of string

  let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

  let instance ~base ~budget cands =
    if Float.is_nan budget || budget < 0.0 then
      invalid "budget must be nonnegative";
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) || b < 0.0 then
          invalid "base cost %d must be finite and nonnegative" i)
      base;
    let nq = Array.length base in
    let clean c =
      if not (Float.is_finite c.size) || c.size < 0.0 then
        invalid "candidate %s: size must be finite and nonnegative" c.id;
      if not (Float.is_finite c.maint) || c.maint < 0.0 then
        invalid "candidate %s: maint must be finite and nonnegative" c.id;
      List.iter
        (fun (i, q) ->
          if i < 0 || i >= nq then
            invalid "candidate %s: save index %d out of range" c.id i;
          if Float.is_nan q then invalid "candidate %s: NaN save" c.id)
        c.saves;
      (* keep only genuine improvements, one (minimal) entry per query,
         sorted by query index for determinism *)
      let best = Hashtbl.create 8 in
      List.iter
        (fun (i, q) ->
          let q = Float.max 0.0 q in
          if q < base.(i) then
            match Hashtbl.find_opt best i with
            | Some q' when q' <= q -> ()
            | _ -> Hashtbl.replace best i q)
        c.saves;
      let saves =
        Hashtbl.fold (fun i q acc -> (i, q) :: acc) best []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      { c with saves }
    in
    let cands = Array.of_list (List.map clean cands) in
    let mass =
      Array.fold_left (fun acc b -> acc +. b) 0.0 base
      +. Array.fold_left (fun acc c -> acc +. c.maint) 0.0 cands
    in
    { base; budget; cands; tol = 1e-9 *. (1.0 +. mass) }

  let n_candidates inst = Array.length inst.cands

  let to_mask inst sel =
    let n = Array.length inst.cands in
    let chosen = Array.make n false in
    List.iter
      (fun j ->
        if j < 0 || j >= n then invalid "candidate index %d out of range" j;
        chosen.(j) <- true)
      sel;
    chosen

  let of_mask chosen =
    let acc = ref [] in
    for j = Array.length chosen - 1 downto 0 do
      if chosen.(j) then acc := j :: !acc
    done;
    !acc

  (* Per-query cost under a chosen set: base, improved by the best chosen
     candidate covering the query. *)
  let query_costs inst chosen =
    let cur = Array.copy inst.base in
    Array.iteri
      (fun j c ->
        if chosen.(j) then
          List.iter (fun (i, q) -> if q < cur.(i) then cur.(i) <- q) c.saves)
      inst.cands;
    cur

  let objective_arr inst chosen =
    let cur = query_costs inst chosen in
    let s = ref 0.0 in
    Array.iter (fun v -> s := !s +. v) cur;
    Array.iteri
      (fun j c -> if chosen.(j) then s := !s +. c.maint)
      inst.cands;
    !s

  let size_arr inst chosen =
    let s = ref 0.0 in
    Array.iteri
      (fun j c -> if chosen.(j) then s := !s +. c.size)
      inst.cands;
    !s

  let objective inst sel = objective_arr inst (to_mask inst sel)
  let size_of inst sel = size_arr inst (to_mask inst sel)
  let within_budget inst sel = size_of inst sel <= inst.budget

  (* ---- greedy seeding ---- *)

  let greedy_arr inst =
    let n = Array.length inst.cands in
    let chosen = Array.make n false in
    let cur = Array.copy inst.base in
    let used = ref 0.0 in
    let progress = ref true in
    while !progress do
      progress := false;
      let best = ref (-1) and best_g = ref inst.tol in
      for j = 0 to n - 1 do
        let c = inst.cands.(j) in
        if (not chosen.(j)) && !used +. c.size <= inst.budget then begin
          let g =
            List.fold_left
              (fun acc (i, q) -> acc +. Float.max 0.0 (cur.(i) -. q))
              0.0 c.saves
            -. c.maint
          in
          (* strict > keeps the lowest index on ties: deterministic *)
          if g > !best_g then begin
            best := j;
            best_g := g
          end
        end
      done;
      if !best >= 0 then begin
        let c = inst.cands.(!best) in
        chosen.(!best) <- true;
        used := !used +. c.size;
        List.iter
          (fun (i, q) -> if q < cur.(i) then cur.(i) <- q)
          c.saves;
        progress := true
      end
    done;
    chosen

  let greedy inst = of_mask (greedy_arr inst)

  (* ---- local search ---- *)

  (* For the current set: per query, the best chosen cost [b1] (base when
     nothing covers it), which candidate provides it [b1a], and the
     second-best [b2] (base included) — enough to price drops and swaps
     without re-evaluating from scratch. *)
  let bests inst chosen =
    let nq = Array.length inst.base in
    let b1 = Array.copy inst.base in
    let b1a = Array.make nq (-1) in
    let b2 = Array.copy inst.base in
    Array.iteri
      (fun j c ->
        if chosen.(j) then
          List.iter
            (fun (i, q) ->
              if q < b1.(i) then begin
                b2.(i) <- b1.(i);
                b1.(i) <- q;
                b1a.(i) <- j
              end
              else if q < b2.(i) then b2.(i) <- q)
            c.saves)
      inst.cands;
    (b1, b1a, b2)

  let max_moves = 256

  let local_search_arr inst chosen =
    let n = Array.length inst.cands in
    let chosen = Array.copy chosen in
    if size_arr inst chosen > inst.budget then
      invalid "local_search: starting set exceeds the budget";
    let used = ref (size_arr inst chosen) in
    let moves = ref 0 in
    let progress = ref true in
    while !progress && !moves < max_moves do
      progress := false;
      let b1, b1a, b2 = bests inst chosen in
      (* cost increase from dropping j (its maintenance not included) *)
      let drop_cost j =
        List.fold_left
          (fun acc (i, _) ->
            if b1a.(i) = j then acc +. (b2.(i) -. b1.(i)) else acc)
          0.0 inst.cands.(j).saves
      in
      let apply j on =
        chosen.(j) <- on;
        used :=
          !used +. (if on then inst.cands.(j).size else -.inst.cands.(j).size);
        incr moves;
        progress := true
      in
      (* add: first unchosen candidate that pays for itself *)
      let j = ref 0 in
      while (not !progress) && !j < n do
        let c = inst.cands.(!j) in
        if (not chosen.(!j)) && !used +. c.size <= inst.budget then begin
          let delta =
            c.maint
            -. List.fold_left
                 (fun acc (i, q) -> acc +. Float.max 0.0 (b1.(i) -. q))
                 0.0 c.saves
          in
          if delta < -.inst.tol then apply !j true
        end;
        incr j
      done;
      (* drop: first chosen candidate whose maintenance outweighs it *)
      let j = ref 0 in
      while (not !progress) && !j < n do
        if chosen.(!j) then begin
          let delta = drop_cost !j -. inst.cands.(!j).maint in
          if delta < -.inst.tol then apply !j false
        end;
        incr j
      done;
      (* swap: drop one chosen, add one unchosen, priced incrementally via
         the per-query costs with j removed *)
      let j = ref 0 in
      while (not !progress) && !j < n do
        if chosen.(!j) then begin
          let cj = inst.cands.(!j) in
          let curw = Array.copy b1 in
          List.iter
            (fun (i, _) -> if b1a.(i) = !j then curw.(i) <- b2.(i))
            cj.saves;
          let dc = drop_cost !j in
          let k = ref 0 in
          while (not !progress) && !k < n do
            let ck = inst.cands.(!k) in
            if
              (not chosen.(!k))
              && !k <> !j
              && !used -. cj.size +. ck.size <= inst.budget
            then begin
              let delta =
                ck.maint -. cj.maint +. dc
                -. List.fold_left
                     (fun acc (i, q) -> acc +. Float.max 0.0 (curw.(i) -. q))
                     0.0 ck.saves
              in
              if delta < -.inst.tol then begin
                apply !j false;
                apply !k true
              end
            end;
            incr k
          done
        end;
        incr j
      done;
      (* merge: replace two chosen candidates by one wider one (2 -> 1);
         scanned last — it is the expensive, rarely-firing move *)
      let sum_b1 = Array.fold_left (fun acc v -> acc +. v) 0.0 b1 in
      let j1 = ref 0 in
      while (not !progress) && !j1 < n do
        if chosen.(!j1) then begin
          let j2 = ref (!j1 + 1) in
          while (not !progress) && !j2 < n do
            if chosen.(!j2) then begin
              let c1 = inst.cands.(!j1) and c2 = inst.cands.(!j2) in
              chosen.(!j1) <- false;
              chosen.(!j2) <- false;
              let curw = query_costs inst chosen in
              chosen.(!j1) <- true;
              chosen.(!j2) <- true;
              let sum_curw =
                Array.fold_left (fun acc v -> acc +. v) 0.0 curw
              in
              let k = ref 0 in
              while (not !progress) && !k < n do
                let ck = inst.cands.(!k) in
                if
                  (not chosen.(!k))
                  && !used -. c1.size -. c2.size +. ck.size <= inst.budget
                then begin
                  let delta =
                    sum_curw -. sum_b1
                    -. List.fold_left
                         (fun acc (i, q) ->
                           acc +. Float.max 0.0 (curw.(i) -. q))
                         0.0 ck.saves
                    +. ck.maint -. c1.maint -. c2.maint
                  in
                  if delta < -.inst.tol then begin
                    apply !j1 false;
                    apply !j2 false;
                    apply !k true
                  end
                end;
                incr k
              done
            end;
            incr j2
          done
        end;
        incr j1
      done
    done;
    chosen

  let local_search inst sel = of_mask (local_search_arr inst (to_mask inst sel))

  (* ---- exhaustive search for small instances ---- *)

  let exhaustive_limit = 12

  let brute_force_arr inst =
    let n = Array.length inst.cands in
    if n > exhaustive_limit then
      invalid "brute_force: %d candidates exceed the exhaustive limit" n;
    let best_mask = ref 0 and best_obj = ref infinity in
    for mask = 0 to (1 lsl n) - 1 do
      let sz = ref 0.0 in
      for j = 0 to n - 1 do
        if mask land (1 lsl j) <> 0 then sz := !sz +. inst.cands.(j).size
      done;
      if !sz <= inst.budget then begin
        let chosen = Array.init n (fun j -> mask land (1 lsl j) <> 0) in
        let obj = objective_arr inst chosen in
        (* strict improvement beyond tol: the lowest mask wins ties *)
        if obj < !best_obj -. inst.tol then begin
          best_obj := obj;
          best_mask := mask
        end
      end
    done;
    Array.init n (fun j -> !best_mask land (1 lsl j) <> 0)

  let brute_force inst = of_mask (brute_force_arr inst)

  let select inst =
    if Array.length inst.cands <= exhaustive_limit then brute_force inst
    else of_mask (local_search_arr inst (greedy_arr inst))
end

(* ---- workload costing glue ---- *)

type config = {
  budget : float;
  write_fraction : float;
  batch_fraction : float;
  maintain_speedup : float;
}

let default_config =
  {
    budget = infinity;
    write_fraction = 0.1;
    batch_fraction = 0.05;
    (* measured bench --maintain delta-vs-rematerialize advantage at small
       batches (EXPERIMENTS.md: 1.6-1.8x); the policy term below caps the
       per-event cost at a full rematerialization *)
    maintain_speedup = 1.7;
  }

type pick = {
  name : string;
  spjg : Spjg.t;
  rows : int;
  benefit : float;
  maint : float;
}

type advice = {
  picks : pick list;
  cost_before : float;
  cost_after : float;
  budget : float;
  used_budget : float;
  considered : int;
  rejected : int;
}

(* Per-maintenance-event cost of keeping [spjg] fresh: a delta pass reads
   the changed fraction of the joined base tables at the measured
   delta-vs-rematerialize advantage, never worse than rebuilding from
   scratch (the maintain-vs-rematerialize policy, ROADMAP item 2). *)
let maintenance_cost config stats (spjg : Spjg.t) ~rows ~nqueries =
  let remat =
    List.fold_left
      (fun acc t -> acc +. float_of_int (max 1 (Stats.row_count stats t)))
      (float_of_int rows) spjg.Spjg.tables
  in
  let delta = config.batch_fraction *. remat /. config.maintain_speedup in
  config.write_fraction *. float_of_int nqueries *. Float.min delta remat

let advise ?(config = default_config) ?weights schema stats
    ~(candidates : (string * Spjg.t) list) ~(queries : Spjg.t list) : advice =
  (* optional per-query weights (observed frequencies from the health
     ledger): base costs and per-candidate savings are scaled per query,
     so the selection minimizes the cost of the observed trace rather
     than the uniform generator workload. Zero-weight queries drop out. *)
  (match weights with
  | None -> ()
  | Some w ->
      if Array.length w <> List.length queries then
        invalid_arg "Advisor.advise: weights length mismatch";
      Array.iter
        (fun x ->
          if not (Float.is_finite x) || x < 0.0 then
            invalid_arg "Advisor.advise: weights must be finite and >= 0")
        w);
  let weight i = match weights with None -> 1.0 | Some w -> w.(i) in
  (* one pooled registry of every candidate: the filter tree keeps the
     per-block matching cheap even at 1000 candidates *)
  let pool = Mv_core.Registry.create schema in
  let rejected = ref 0 in
  let accepted =
    List.filter_map
      (fun (name, spjg) ->
        let rows = Cost.estimate_view_rows ~name stats spjg in
        match Mv_core.Registry.add_view pool ~row_count:rows ~name spjg with
        | (_ : Mv_core.View.t) -> Some (name, spjg, rows)
        | exception Mv_core.View.Rejected _ ->
            incr rejected;
            None
        | exception Mv_core.Registry.Duplicate_view _ ->
            incr rejected;
            None)
      candidates
  in
  let accepted = Array.of_list accepted in
  let index_of = Hashtbl.create (Array.length accepted) in
  Array.iteri (fun j (name, _, _) -> Hashtbl.replace index_of name j) accepted;
  let qarr = Array.of_list queries in
  let nq = Array.length qarr in
  (* base cost: the best view-free plan for each query (raw, then
     weighted into the selection instance) *)
  let empty = Mv_core.Registry.create schema in
  let base_raw =
    Array.map (fun q -> (Optimizer.optimize empty stats q).Optimizer.cost) qarr
  in
  let base = Array.mapi (fun i b -> weight i *. b) base_raw in
  (* benefit model mirroring the memo's enumeration: for every SPJG
     subexpression the optimizer would invoke the rule on, price each
     substitute and credit the block-level saving against the query *)
  let saves = Array.make (Array.length accepted) [] in
  Array.iteri
    (fun i q ->
      List.iter
        (fun block ->
          let analysis = A.analyze schema block in
          let subs = Mv_core.Registry.find_substitutes pool analysis in
          if subs <> [] then begin
            let dcost = Optimizer.direct_cost stats block in
            List.iter
              (fun s ->
                let sc, _ = Optimizer.substitute_cost schema stats block s in
                let saving = dcost -. sc in
                if saving > 0.0 && weight i > 0.0 then begin
                  let qcost = Float.max sc (base_raw.(i) -. saving) in
                  match
                    Hashtbl.find_opt index_of
                      s.Mv_core.Substitute.view.Mv_core.View.name
                  with
                  | Some j when qcost < base_raw.(i) ->
                      saves.(j) <- (i, weight i *. qcost) :: saves.(j)
                  | _ -> ()
                end)
              subs
          end)
        (Optimizer.enumerate_blocks q))
    qarr;
  (* the maintenance term scales with how many queries (writes ride along
     at [write_fraction]) the workload sees: under weights that is the
     trace length, not the number of distinct queries *)
  let nq_eff =
    match weights with
    | None -> nq
    | Some w ->
        int_of_float (Float.round (Array.fold_left ( +. ) 0.0 w))
  in
  let cands =
    Array.to_list
      (Array.mapi
         (fun j (name, spjg, rows) ->
           {
             Selection.id = name;
             size = float_of_int rows;
             maint = maintenance_cost config stats spjg ~rows ~nqueries:nq_eff;
             saves = saves.(j);
           })
         accepted)
  in
  let inst = Selection.instance ~base ~budget:config.budget cands in
  let sel = Selection.select inst in
  let cost_before = Array.fold_left (fun acc b -> acc +. b) 0.0 base in
  let cost_after = Selection.objective inst sel in
  let carr = Array.of_list cands in
  let picks =
    List.map
      (fun j ->
        let name, spjg, rows = accepted.(j) in
        let c = carr.(j) in
        let benefit =
          List.fold_left
            (fun acc (i, q) -> acc +. Float.max 0.0 (base.(i) -. q))
            0.0 c.Selection.saves
        in
        { name; spjg; rows; benefit; maint = c.Selection.maint })
      sel
  in
  {
    picks;
    cost_before;
    cost_after;
    budget = config.budget;
    used_budget = Selection.size_of inst sel;
    considered = Array.length accepted;
    rejected = !rejected;
  }

let register_picks registry advice =
  List.iter
    (fun p ->
      ignore
        (Mv_core.Registry.add_view registry ~row_count:p.rows ~name:p.name
           p.spjg))
    advice.picks
