(** Memo-based transformation optimizer: bottom-up exploration of
    connected table subsets, the view-matching rule invoked on every
    enumerated SPJG subexpression, substitutes competing on cost, plus the
    preaggregation alternative of section 3.3 (Example 4).

    [produce_substitutes] = the paper's "Alt" switch (the rule still runs
    when off, for the NoAlt measurement mode); the registry's [use_filter]
    is the "Filter" switch. *)

type config = {
  produce_substitutes : bool;
  prune_cost_bound : bool;
      (** branch-and-bound pruning of substitute leaves against the best
          complete plan found so far (default on). Pruning never changes
          the chosen plan — it is conservative (partial sums of
          nonnegative cost terms, strict [>]) — only the work done; off
          exists for differential testing of exactly that claim. *)
}

val default_config : config

type result = {
  plan : Plan.t;
  cost : float;
  rows : float;
  used_views : bool;
  pruned_views : string list;
      (** views whose substitutes were abandoned by branch-and-bound
          cost-bound pruning (duplicates possible when a view matched
          several subexpressions). Pruning is conservative — partial sums
          of nonnegative cost terms against the best complete plan, strict
          [>] — so the chosen plan is identical to an unbounded search.
          Each prune bumps [opt.prune.cost_bound] on the registry's obs
          and emits a [prune.cost_bound] span instant. Empty when the
          result came from a warm plan-cache hit. *)
}

val enumerate_blocks : Mv_relalg.Spjg.t -> Mv_relalg.Spjg.t list
(** The SPJG subexpressions the memo invokes the view-matching rule on:
    one SPJ block per connected table subset (single tables included),
    plus the whole query when it aggregates. The advisor's benefit model
    mirrors this enumeration so its per-query saving estimates line up
    with what {!optimize} can actually exploit. *)

val substitute_cost :
  Mv_catalog.Schema.t ->
  Mv_catalog.Stats.t ->
  Mv_relalg.Spjg.t ->
  Mv_core.Substitute.t ->
  float * float
(** [(est_cost, est_rows)] of the substitute leaf the optimizer would
    build for [block] from this substitute — scan of the view (index-aware)
    plus any regrouping and backjoin surcharges. Exposed for the advisor's
    benefit model. *)

val direct_cost : Mv_catalog.Stats.t -> Mv_relalg.Spjg.t -> float
(** Cost of answering [block] directly from base tables (the scan leaf the
    memo starts from), for comparison against {!substitute_cost}. *)

val optimize :
  ?config:config ->
  ?cache:Match_cache.t ->
  ?spans:Mv_obs.Span.scope ->
  ?snap:Mv_core.Registry.snapshot ->
  ?fresh_only:bool ->
  Mv_core.Registry.t ->
  Mv_catalog.Stats.t ->
  Mv_relalg.Spjg.t ->
  result
(** With [cache] (which must belong to [registry] — checked by physical
    equality), the final plan is served from the epoch-validated plan
    layer when warm, and on a cold pass the view-matching rule runs
    through the match layer, so repeated queries skip both enumeration
    and matching. Identical results either way, except that cache hits do
    not advance the [rule.*] / [optimizer.*] exploration counters
    ([optimizer.calls] and [optimizer.plans.using_views] always move).

    With [spans], the whole call is recorded as an ["optimize"] span
    (table set, aggregate flag, final cost, [used_views]); under it, one
    ["rule"] span per enumerated subexpression carrying the candidate
    filtering and per-view match spans (see
    {!Mv_core.Registry.match_with_candidates}), ["analyze"] spans for
    fresh analyses, ["cost"] spans for substitute leaf construction, and
    cache hit/miss instants when [cache] is in play.

    Every call also feeds the [optimizer.phase.{analyze,match,cost,total}]
    latency histograms on the registry's obs instance (one wall-clock
    sample per phase activity), traced or not.

    With [snap] (a pinned {!Mv_core.Registry.snapshot} of [registry]),
    every rule invocation across all enumerated subexpressions — and the
    cache layers' epoch validation — runs against exactly that registry
    state, so one optimization is atomic with respect to concurrent
    add/drop churn: the result is what sequential optimization at the
    snapshot's epoch would produce (the serving layer's linearizability
    property, proved by test/test_serve.ml).

    With [fresh_only] (default [false]), every rule invocation rejects
    stale views with {!Mv_core.Reject.Stale} (freshness-aware mode,
    DESIGN.md §12). Staleness marks do not bump the registry epoch, so
    [cache] is bypassed in this mode rather than risk serving a plan
    built over a view that has since gone stale. *)
