(** Global string interner: string ⇄ dense int, one table per domain.

    Safe for concurrent use from multiple OCaml domains: growth is
    mutex-guarded, and after {!freeze} lookups of already interned strings
    are lock-free (they read an immutable published snapshot). *)

type domain

val create : string -> domain
(** A fresh, empty domain with the given (diagnostic) name. *)

val domain_name : domain -> string

val size : domain -> int
(** Number of symbols interned so far; ids are [0 .. size - 1]. *)

val intern : domain -> string -> int
(** The id of the string, assigning the next dense id on first sight.
    Thread-safe: concurrent interning of the same string from any number
    of domains yields the same id, and no insertion is ever lost. *)

val find : domain -> string -> int option
(** The id of the string if already interned, without assigning one. *)

val name : domain -> int -> string
(** Inverse of {!intern}. Raises [Invalid_argument] on an unknown id. *)

val freeze : domain -> unit
(** Publish an immutable snapshot of the table: lookups that hit the
    snapshot stop taking the lock. Interning genuinely new strings keeps
    working (mutex-guarded); call again after further growth to extend the
    lock-free set. Typically called once registry construction is done. *)

val is_frozen : domain -> bool

val frozen_size : domain -> int
(** Number of ids covered by the lock-free snapshot (0 if never frozen). *)
