(** Global string interner: string ⇄ dense int, one table per domain. *)

type domain

val create : string -> domain
(** A fresh, empty domain with the given (diagnostic) name. *)

val domain_name : domain -> string

val size : domain -> int
(** Number of symbols interned so far; ids are [0 .. size - 1]. *)

val intern : domain -> string -> int
(** The id of the string, assigning the next dense id on first sight. *)

val find : domain -> string -> int option
(** The id of the string if already interned, without assigning one. *)

val name : domain -> int -> string
(** Inverse of {!intern}. Raises [Invalid_argument] on an unknown id. *)
