(** Compact immutable bitsets over dense non-negative ints (interned
    symbols); subset / disjointness tests are word-level loops. *)

type t

val empty : t

val is_empty : t -> bool

val mem : t -> int -> bool

val add : t -> int -> t

val remove : t -> int -> t

val singleton : int -> t

val of_list : int list -> t

val union : t -> t -> t

val inter : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is [a ⊆ b]. *)

val inter_empty : t -> t -> bool
(** [inter_empty a b] iff [a ∩ b = ∅]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val cardinal : t -> int

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Elements in increasing order. *)

val iter : (int -> unit) -> t -> unit

val elements : t -> int list

val pp : Format.formatter -> t -> unit
