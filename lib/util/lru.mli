(** A bounded LRU map: hash table plus intrusive recency list. Capacity is
    a hard bound — inserting into a full cache evicts the least recently
    used binding and returns it, so the caller can count evictions.

    Not synchronized: callers that share a cache across OCaml domains must
    wrap operations in their own lock (the match/plan cache shards one
    [Lru.t] per mutex — see [Mv_opt.Match_cache]). Keys are compared with
    polymorphic equality and hashed with [Hashtbl.hash], like the stdlib's
    polymorphic hash tables. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the binding: a hit becomes the most recently used entry. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** [find] without the recency update (diagnostics, tests). *)

val mem : ('k, 'v) t -> 'k -> bool
(** No recency update. *)

val set : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace, making the binding most recently used. Returns the
    evicted least-recently-used binding when the insert pushed the cache
    over capacity ([None] on replace or when there was room). *)

val remove : ('k, 'v) t -> 'k -> bool
(** [true] when a binding was present and removed. *)

val clear : ('k, 'v) t -> unit

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
(** Most recently used first. *)
