(** Bounded LRU map: a polymorphic hash table over nodes of a doubly-linked
    recency list. [first] is the most recently used node, [last] the least.
    All operations are O(1) expected. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable nvalue : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; tbl = Hashtbl.create (min 64 (capacity + 1)); first = None; last = None }

let capacity t = t.capacity

let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let link_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      link_front t n;
      Some n.nvalue

let peek t k =
  match Hashtbl.find_opt t.tbl k with None -> None | Some n -> Some n.nvalue

let mem t k = Hashtbl.mem t.tbl k

let set t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.nvalue <- v;
      unlink t n;
      link_front t n;
      None
  | None ->
      let n = { nkey = k; nvalue = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      link_front t n;
      if Hashtbl.length t.tbl <= t.capacity then None
      else
        match t.last with
        | None -> None (* unreachable: capacity >= 1 and the table is over it *)
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.nkey;
            Some (lru.nkey, lru.nvalue)

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> false
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k;
      true

let clear t =
  Hashtbl.reset t.tbl;
  t.first <- None;
  t.last <- None

let fold f t acc =
  let rec go n acc =
    match n with None -> acc | Some n -> go n.next (f n.nkey n.nvalue acc)
  in
  go t.first acc
