(** Compact immutable bitsets over dense non-negative ints (interned
    symbols, see {!Symbol}).

    Representation: an int array of [Sys.int_size]-bit words, little-endian,
    with no trailing zero words. The normalization makes structural
    equality, hashing and comparison well-defined regardless of when a set
    was built, so sets built before a symbol domain grew compare correctly
    against younger, wider sets (missing high words read as zero).

    The filter-tree hot path runs entirely on [subset] and [inter_empty]:
    both are straight word loops with an early exit — a handful of AND/OR
    instructions for the typical one-to-two-word key. *)

type t = int array

let word_bits = Sys.int_size

let empty : t = [||]

let is_empty (t : t) = Array.length t = 0

(* trim trailing zero words; reuses [a] when already normalized *)
let norm (a : int array) : t =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let m = top n in
  if m = n then a else Array.sub a 0 m

let check i =
  if i < 0 then invalid_arg "Bitset: negative element"

let mem (t : t) i =
  check i;
  let w = i / word_bits in
  w < Array.length t && (t.(w) lsr (i mod word_bits)) land 1 = 1

let add (t : t) i =
  check i;
  let w = i / word_bits in
  let n = Array.length t in
  if w < n then
    if (t.(w) lsr (i mod word_bits)) land 1 = 1 then t
    else begin
      let a = Array.copy t in
      a.(w) <- a.(w) lor (1 lsl (i mod word_bits));
      a
    end
  else begin
    let a = Array.make (w + 1) 0 in
    Array.blit t 0 a 0 n;
    a.(w) <- 1 lsl (i mod word_bits);
    a
  end

let singleton i = add empty i

let of_list is = List.fold_left add empty is

let remove (t : t) i =
  check i;
  let w = i / word_bits in
  if w >= Array.length t || (t.(w) lsr (i mod word_bits)) land 1 = 0 then t
  else begin
    let a = Array.copy t in
    a.(w) <- a.(w) land lnot (1 lsl (i mod word_bits));
    norm a
  end

let union (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let big, small = if la >= lb then (a, b) else (b, a) in
    let r = Array.copy big in
    for i = 0 to Array.length small - 1 do
      r.(i) <- r.(i) lor small.(i)
    done;
    r
  end

let inter (a : t) (b : t) : t =
  let l = min (Array.length a) (Array.length b) in
  if l = 0 then empty
  else begin
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    norm r
  end

(* a ⊆ b — normalization means a longer [a] always has a high bit outside b *)
let subset (a : t) (b : t) =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let inter_empty (a : t) (b : t) =
  let l = min (Array.length a) (Array.length b) in
  let rec go i = i >= l || (a.(i) land b.(i) = 0 && go (i + 1)) in
  go 0

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) =
  Array.fold_left (fun h w -> ((h * 0x1000193) lxor w) land max_int) 0x811c9dc5 t

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal (t : t) = Array.fold_left (fun acc w -> acc + popcount w) 0 t

let fold f (t : t) init =
  let acc = ref init in
  Array.iteri
    (fun wi w ->
      let rec bits w =
        if w <> 0 then begin
          let b = w land -w in
          (* index of the lowest set bit *)
          let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
          acc := f ((wi * word_bits) + log2 b 0) !acc;
          bits (w land (w - 1))
        end
      in
      bits w)
    t;
  !acc

let iter f t = fold (fun i () -> f i) t ()

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") int) (elements t)
