(** Global string interner: string ⇄ dense int, one table per domain.

    Filter-tree keys draw from a few small vocabularies (table names,
    qualified column names, predicate/expression templates). Interning each
    vocabulary in its own domain keeps the assigned ids dense, so the
    bitsets built over them ({!Bitset}) stay a handful of words wide and
    the lattice subset tests become word-level AND/OR operations instead of
    string comparisons.

    Domains are append-only: ids are never reused or invalidated, so a
    bitset built early remains valid (shorter, zero-extended) as the domain
    grows. *)

type domain = {
  domain_name : string;
  table : (string, int) Hashtbl.t;
  mutable names : string array;  (** id -> string; length >= count *)
  mutable count : int;
}

let create domain_name =
  { domain_name; table = Hashtbl.create 64; names = Array.make 64 ""; count = 0 }

let domain_name d = d.domain_name

let size d = d.count

let intern d s =
  match Hashtbl.find_opt d.table s with
  | Some id -> id
  | None ->
      let id = d.count in
      if id = Array.length d.names then begin
        let names = Array.make (2 * id) "" in
        Array.blit d.names 0 names 0 id;
        d.names <- names
      end;
      d.names.(id) <- s;
      d.count <- id + 1;
      Hashtbl.add d.table s id;
      id

let find d s = Hashtbl.find_opt d.table s

let name d id =
  if id < 0 || id >= d.count then
    invalid_arg
      (Printf.sprintf "Symbol.name: id %d out of range for domain %s (size %d)"
         id d.domain_name d.count);
  d.names.(id)
