(** Global string interner: string ⇄ dense int, one table per domain.

    Filter-tree keys draw from a few small vocabularies (table names,
    qualified column names, predicate/expression templates). Interning each
    vocabulary in its own domain keeps the assigned ids dense, so the
    bitsets built over them ({!Bitset}) stay a handful of words wide and
    the lattice subset tests become word-level AND/OR operations instead of
    string comparisons.

    Domains are append-only: ids are never reused or invalidated, so a
    bitset built early remains valid (shorter, zero-extended) as the domain
    grows.

    Concurrency: every mutation runs under the domain's mutex, so
    concurrent [intern] calls from several OCaml domains always agree (same
    string ⇒ same id, no lost entries). After {!freeze}, lookups of already
    interned strings are lock-free: freezing publishes an immutable
    snapshot of the table through an [Atomic.t], and reads that hit the
    snapshot never touch the lock. Strings first seen after the freeze
    still intern correctly — they take the mutex-guarded slow path — so a
    freeze is a performance statement ("the vocabulary is essentially
    complete"), not a functional restriction. *)

type frozen = {
  f_table : (string, int) Hashtbl.t;  (** never mutated after publication *)
  f_names : string array;
  f_count : int;
}

type domain = {
  domain_name : string;
  lock : Mutex.t;
  table : (string, int) Hashtbl.t;  (** the full table; mutated under lock *)
  mutable names : string array;  (** id -> string; length >= count *)
  mutable count : int;
  frozen : frozen option Atomic.t;
      (** lock-free read snapshot; [Atomic] for publication safety *)
}

let create domain_name =
  {
    domain_name;
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    names = Array.make 64 "";
    count = 0;
    frozen = Atomic.make None;
  }

let domain_name d = d.domain_name

let locked d f = Mutex.protect d.lock f

let size d = locked d (fun () -> d.count)

let intern_locked d s =
  match Hashtbl.find_opt d.table s with
  | Some id -> id
  | None ->
      let id = d.count in
      if id = Array.length d.names then begin
        let names = Array.make (2 * id) "" in
        Array.blit d.names 0 names 0 id;
        d.names <- names
      end;
      d.names.(id) <- s;
      d.count <- id + 1;
      Hashtbl.add d.table s id;
      id

let intern d s =
  match Atomic.get d.frozen with
  | Some f -> (
      match Hashtbl.find_opt f.f_table s with
      | Some id -> id
      | None -> locked d (fun () -> intern_locked d s))
  | None -> locked d (fun () -> intern_locked d s)

let find d s =
  match Atomic.get d.frozen with
  | Some f -> (
      match Hashtbl.find_opt f.f_table s with
      | Some id -> Some id
      | None -> locked d (fun () -> Hashtbl.find_opt d.table s))
  | None -> locked d (fun () -> Hashtbl.find_opt d.table s)

let name d id =
  let fast =
    match Atomic.get d.frozen with
    | Some f when id >= 0 && id < f.f_count -> Some f.f_names.(id)
    | _ -> None
  in
  match fast with
  | Some s -> s
  | None ->
      locked d (fun () ->
          if id < 0 || id >= d.count then
            invalid_arg
              (Printf.sprintf
                 "Symbol.name: id %d out of range for domain %s (size %d)" id
                 d.domain_name d.count);
          d.names.(id))

(* Publish an immutable snapshot of the current table. Idempotent: a later
   freeze replaces the snapshot with a larger one (useful after further
   single-threaded growth). The snapshot is built under the lock, so it is
   internally consistent; [Atomic.set] makes its interior visible to other
   domains before the pointer is. *)
let freeze d =
  locked d (fun () ->
      let f =
        {
          f_table = Hashtbl.copy d.table;
          f_names = Array.sub d.names 0 d.count;
          f_count = d.count;
        }
      in
      Atomic.set d.frozen (Some f))

let is_frozen d = Atomic.get d.frozen <> None

let frozen_size d =
  match Atomic.get d.frozen with Some f -> f.f_count | None -> 0
