(** Derived information about an SPJG block: the classified predicate
    components, column equivalence classes, per-class ranges and residual
    templates. This is computed once per query subexpression and once per
    view (the paper's in-memory "view description"). *)

open Mv_base
module Sset = Mv_util.Sset
module Bitset = Mv_util.Bitset

(** The query-side filter-tree search keys (section 4.2), interned into the
    shared {!Intern} domains. Computed lazily, once per analysis — repeated
    probes of the same analyzed expression (several index plans, re-probed
    registries) pay the string rendering and interning exactly once. *)
type keys = {
  source_tables : Bitset.t;
  output_expr_templates : Bitset.t;
  output_classes : Bitset.t list;
      (** query equivalence class (interned) of each bare-column output *)
  residual_templates : Bitset.t;
  extended_range_cols : Bitset.t;
      (** all columns of every range-constrained query class *)
  grouping_expr_templates : Bitset.t;
  grouping_classes : Bitset.t list;
  is_aggregate : bool;
}

type t = {
  spjg : Spjg.t;
  schema : Mv_catalog.Schema.t;
  table_set : Sset.t;
  table_key : Bitset.t;  (** [table_set] interned in {!Intern.tables} *)
  classified : Classify.classified;
  equiv : Equiv.t;
  ranges : Range.map;
  residuals : Residual.t list;
  mutable keys_memo : keys option;  (** built on first {!keys} call *)
}

let analyze (schema : Mv_catalog.Schema.t) (spjg : Spjg.t) : t =
  let classified = Classify.classify spjg.Spjg.where in
  let equiv =
    Equiv.build schema ~tables:spjg.Spjg.tables
      ~col_eqs:classified.Classify.col_eqs
  in
  let ranges =
    Range.build equiv classified.Classify.ranges
      classified.Classify.disj_ranges
  in
  let residuals = List.map Residual.of_pred classified.Classify.residuals in
  {
    spjg;
    schema;
    table_set = Sset.of_list spjg.Spjg.tables;
    table_key =
      Bitset.of_list (List.map Intern.table spjg.Spjg.tables);
    classified;
    equiv;
    ranges;
    residuals;
    keys_memo = None;
  }

(* Re-attach a different SPJG to an existing analysis. Sound only when the
   two expressions share tables and WHERE: every derived field (classified,
   equiv, ranges, residuals, table set) depends on the block through
   (tables, where) alone, never through its output or grouping lists. The
   key memo does depend on them, so it is dropped. The optimizer uses this
   to analyze each (tables, where) core once per optimization even though
   it enumerates several blocks over it. *)
let rebind (t : t) (spjg : Spjg.t) : t = { t with spjg; keys_memo = None }

(* Outputs that are bare column references: column -> output name. *)
let col_outputs (t : t) : (Col.t * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Scalar (Expr.Col c) -> Some (c, o.Spjg.name)
      | _ -> None)
    t.spjg.Spjg.out

(* All scalar outputs: expression -> output name (includes bare columns). *)
let scalar_outputs (t : t) : (Expr.t * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Scalar e -> Some (e, o.Spjg.name)
      | Spjg.Aggregate _ -> None)
    t.spjg.Spjg.out

let agg_outputs (t : t) : (Spjg.agg * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Aggregate a -> Some (a, o.Spjg.name)
      | Spjg.Scalar _ -> None)
    t.spjg.Spjg.out

(* Find a view output column for column [c], looking through the given
   equivalence structure: any column equivalent to [c] that the block
   outputs as a bare column qualifies (section 3.1.3). *)
let output_for_col (t : t) (equiv : Equiv.t) (c : Col.t) : string option =
  let outs = col_outputs t in
  let rec go = function
    | [] -> None
    | (c', name) :: rest -> if Equiv.same equiv c c' then Some name else go rest
  in
  (* prefer an exact match for stable, readable substitutes *)
  match List.assoc_opt c (List.map (fun (a, b) -> (a, b)) outs) with
  | Some name -> Some name
  | None -> go outs

(* Extended output column list (section 4.2.3): every column equivalent to
   some bare-column output of the block, under the block's own classes. *)
let extended_output_cols (t : t) : Col.Set.t =
  List.fold_left
    (fun acc (c, _) -> Col.Set.union acc (Equiv.class_of t.equiv c))
    Col.Set.empty (col_outputs t)

(* Grouping expressions that are bare columns, extended by equivalence
   (section 4.2.4). *)
let extended_grouping_cols (t : t) : Col.Set.t =
  match t.spjg.Spjg.group_by with
  | None -> Col.Set.empty
  | Some gs ->
      List.fold_left
        (fun acc g ->
          match g with
          | Expr.Col c -> Col.Set.union acc (Equiv.class_of t.equiv c)
          | _ -> acc)
        Col.Set.empty gs

(* Textual templates of non-column output expressions / grouping
   expressions / residual predicates, for the filter-tree set conditions
   (sections 4.2.6-4.2.8). *)
let output_expr_templates (t : t) : Sset.t =
  List.fold_left
    (fun acc (e, _) ->
      match e with
      | Expr.Col _ | Expr.Const _ -> acc
      | _ -> Sset.add (fst (Residual.expr_template e)) acc)
    Sset.empty (scalar_outputs t)

let grouping_expr_templates (t : t) : Sset.t =
  match t.spjg.Spjg.group_by with
  | None -> Sset.empty
  | Some gs ->
      List.fold_left
        (fun acc g ->
          match g with
          | Expr.Col _ | Expr.Const _ -> acc
          | _ -> Sset.add (fst (Residual.expr_template g)) acc)
        Sset.empty gs

let residual_templates (t : t) : Sset.t =
  List.fold_left
    (fun acc (r : Residual.t) -> Sset.add r.Residual.template acc)
    Sset.empty t.residuals

(* Equivalence-class representatives with a constrained range, rendered as
   column sets (section 4.2.5). *)
let range_constrained_classes (t : t) : Col.Set.t list =
  List.map (Equiv.class_of t.equiv) (Range.constrained_reprs t.ranges)

(* ---- interned key extraction (the filter-tree search keys) ----

   Same template/column sets as above, but interned into the shared
   {!Intern} domains and packed as bitsets, skipping the intermediate
   string-set construction entirely. These run once per view at
   registration and once per query per rule invocation, so they are on the
   candidate-selection hot path. *)

let output_expr_template_key (t : t) : Bitset.t =
  List.fold_left
    (fun acc (e, _) ->
      match e with
      | Expr.Col _ | Expr.Const _ -> acc
      | _ ->
          Bitset.add acc (Intern.template (fst (Residual.expr_template e))))
    Bitset.empty (scalar_outputs t)

let grouping_expr_template_key (t : t) : Bitset.t =
  match t.spjg.Spjg.group_by with
  | None -> Bitset.empty
  | Some gs ->
      List.fold_left
        (fun acc g ->
          match g with
          | Expr.Col _ | Expr.Const _ -> acc
          | _ ->
              Bitset.add acc (Intern.template (fst (Residual.expr_template g))))
        Bitset.empty gs

let residual_template_key (t : t) : Bitset.t =
  List.fold_left
    (fun acc (r : Residual.t) ->
      Bitset.add acc (Intern.template r.Residual.template))
    Bitset.empty t.residuals

(* All columns of every range-constrained class, interned — the query side
   of the weak and strong range conditions. *)
let extended_range_col_key (t : t) : Bitset.t =
  List.fold_left
    (fun acc cls -> Bitset.union acc (Intern.of_colset cls))
    Bitset.empty
    (range_constrained_classes t)

let compute_keys (t : t) : keys =
  let classes_of_cols cols =
    List.map (fun c -> Intern.of_colset (Equiv.class_of t.equiv c)) cols
  in
  let grouping_cols =
    match t.spjg.Spjg.group_by with
    | None -> []
    | Some gs ->
        List.filter_map (function Expr.Col c -> Some c | _ -> None) gs
  in
  {
    source_tables = t.table_key;
    output_expr_templates = output_expr_template_key t;
    output_classes = classes_of_cols (List.map fst (col_outputs t));
    residual_templates = residual_template_key t;
    extended_range_cols = extended_range_col_key t;
    grouping_expr_templates = grouping_expr_template_key t;
    grouping_classes = classes_of_cols grouping_cols;
    is_aggregate = Spjg.is_aggregate t.spjg;
  }

let keys (t : t) : keys =
  match t.keys_memo with
  | Some k -> k
  | None ->
      let k = compute_keys t in
      t.keys_memo <- Some k;
      k
