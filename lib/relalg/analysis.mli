(** Derived information about an SPJG block: classified predicate
    components, column equivalence classes, per-class ranges and residual
    templates — computed once per query subexpression and once per view
    (the paper's in-memory "view description"). *)

open Mv_base
module Sset = Mv_util.Sset
module Bitset = Mv_util.Bitset

(** The query-side filter-tree search keys (section 4.2), interned into the
    shared {!Intern} domains. *)
type keys = {
  source_tables : Bitset.t;
  output_expr_templates : Bitset.t;
  output_classes : Bitset.t list;
      (** query equivalence class (interned) of each bare-column output *)
  residual_templates : Bitset.t;
  extended_range_cols : Bitset.t;
      (** all columns of every range-constrained query class *)
  grouping_expr_templates : Bitset.t;
  grouping_classes : Bitset.t list;
  is_aggregate : bool;
}

type t = {
  spjg : Spjg.t;
  schema : Mv_catalog.Schema.t;
  table_set : Sset.t;
  table_key : Bitset.t;  (** [table_set] interned in {!Intern.tables} *)
  classified : Classify.classified;
  equiv : Equiv.t;
  ranges : Range.map;
  residuals : Residual.t list;
  mutable keys_memo : keys option;  (** built on first {!keys} call *)
}

val keys : t -> keys
(** The interned search keys, computed once per analysis and memoized —
    repeated probes (several index plans, re-probed registries) pay the
    template rendering and interning exactly once. *)

val analyze : Mv_catalog.Schema.t -> Spjg.t -> t

val rebind : t -> Spjg.t -> t
(** Re-attach a different SPJG sharing the analysis' tables and WHERE:
    every derived field depends on the block through (tables, where) alone,
    so the expensive analysis can be reused across the several blocks the
    optimizer enumerates over one core. *)

val col_outputs : t -> (Col.t * string) list
(** Outputs that are bare column references: column -> output name. *)

val scalar_outputs : t -> (Expr.t * string) list

val agg_outputs : t -> (Spjg.agg * string) list

val output_for_col : t -> Equiv.t -> Col.t -> string option
(** An output column for [c], looked up through the given equivalence
    structure (section 3.1.3's routing). *)

val extended_output_cols : t -> Col.Set.t
(** Every column equivalent to some bare-column output, under the block's
    own classes (section 4.2.3). *)

val extended_grouping_cols : t -> Col.Set.t

val output_expr_templates : t -> Sset.t
(** Textual templates of non-column output expressions (section 4.2.7). *)

val grouping_expr_templates : t -> Sset.t

val residual_templates : t -> Sset.t

val range_constrained_classes : t -> Col.Set.t list
(** One class (as a column set) per constrained range (section 4.2.5). *)

(** {2 Interned key extraction}

    The same sets as above, interned into the shared {!Intern} domains and
    packed as {!Mv_util.Bitset} keys — the filter-tree search keys, built
    without intermediate string sets. *)

val output_expr_template_key : t -> Bitset.t

val grouping_expr_template_key : t -> Bitset.t

val residual_template_key : t -> Bitset.t

val extended_range_col_key : t -> Bitset.t
(** All columns of every range-constrained class, interned in
    {!Intern.cols}. *)
