(** The shared symbol domains behind the filter-tree keys (section 4).

    Every level key is a set drawn from one of three small vocabularies —
    table names (hub / source-table conditions), qualified column names
    (output / grouping / range-column conditions) or textual templates
    (residual predicates, output and grouping expressions). Each vocabulary
    is interned in its own {!Mv_util.Symbol} domain so ids stay dense and
    the {!Mv_util.Bitset} keys built from them stay one or two words wide.

    The domains are process-global on purpose: view descriptors are built
    once at registration and then shared across registries, experiment
    sweeps and query batches, so their interned keys must mean the same
    thing everywhere. Domains only ever grow; existing bitsets stay valid. *)

val tables : Mv_util.Symbol.domain
(** Table names (hub and source-table conditions). *)

val cols : Mv_util.Symbol.domain
(** Qualified column names (output / grouping / range-column
    conditions). *)

val templates : Mv_util.Symbol.domain
(** Textual templates (residual predicates, output and grouping
    expressions). *)

val table : string -> int
(** Intern a table name into {!tables}. *)

val col : Mv_base.Col.t -> int
(** Intern a qualified column into {!cols} via [Col.to_string]. *)

val template : string -> int
(** Intern a template string into {!templates}. *)

val of_sset : Mv_util.Symbol.domain -> Mv_util.Sset.t -> Mv_util.Bitset.t
(** Intern every member of a string set into [dom] and collect the ids as
    a bitset key. *)

val of_colset : Mv_base.Col.Set.t -> Mv_util.Bitset.t
(** Intern every column of the set into {!cols} and collect the ids as a
    bitset key. *)

val freeze : unit -> unit
(** Freeze all three domains (see {!Mv_util.Symbol.freeze}): lookups of
    the registered vocabulary become lock-free, which is what query-side
    key construction from concurrently running domains hits almost
    exclusively. Call after registry construction; genuinely new strings
    (a query template no view ever used) still intern correctly via the
    mutex. *)
