(** The shared symbol domains behind the filter-tree keys (section 4).

    Every level key is a set drawn from one of three small vocabularies —
    table names (hub / source-table conditions), qualified column names
    (output / grouping / range-column conditions) or textual templates
    (residual predicates, output and grouping expressions). Each vocabulary
    is interned in its own {!Mv_util.Symbol} domain so ids stay dense and
    the {!Mv_util.Bitset} keys built from them stay one or two words wide.

    The domains are process-global on purpose: view descriptors are built
    once at registration and then shared across registries, experiment
    sweeps and query batches, so their interned keys must mean the same
    thing everywhere. Domains only ever grow; existing bitsets stay valid. *)

open Mv_base
module Symbol = Mv_util.Symbol
module Bitset = Mv_util.Bitset
module Sset = Mv_util.Sset

let tables = Symbol.create "tables"

let cols = Symbol.create "columns"

let templates = Symbol.create "templates"

let table t = Symbol.intern tables t

let col c = Symbol.intern cols (Col.to_string c)

let template s = Symbol.intern templates s

let of_sset dom s =
  Sset.fold (fun x acc -> Bitset.add acc (Symbol.intern dom x)) s Bitset.empty

let of_colset s =
  Col.Set.fold (fun c acc -> Bitset.add acc (col c)) s Bitset.empty

(* Freeze all three domains (see {!Mv_util.Symbol.freeze}): lookups of the
   registered vocabulary become lock-free, which is what query-side key
   construction from concurrently running domains hits almost exclusively.
   Call after registry construction; genuinely new strings (a query
   template no view ever used) still intern correctly via the mutex. *)
let freeze () =
  Symbol.freeze tables;
  Symbol.freeze cols;
  Symbol.freeze templates
