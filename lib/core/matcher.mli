(** The complete view-matching pipeline of section 3: given an analyzed
    query expression and one view, either construct a substitute or explain
    the rejection. *)

val match_view :
  ?relaxed_nulls:bool ->
  ?backjoins:bool ->
  ?fresh_only:bool ->
  ?spans:Mv_obs.Span.scope ->
  query:Mv_relalg.Analysis.t ->
  View.t ->
  (Substitute.t, Reject.t) result
(** With [spans], records ["spj-tests"] and ["construct"] child spans and
    annotates the enclosing span with the outcome ([result], plus
    [reject]/[detail] from the {!Reject.t} on failure).

    [fresh_only] (default [false]) rejects a view whose {!View.is_stale}
    mark is set with {!Reject.Stale} before any structural test runs — the
    freshness-aware mode of DESIGN.md §12. *)

val match_spjg :
  ?relaxed_nulls:bool ->
  ?backjoins:bool ->
  ?fresh_only:bool ->
  Mv_catalog.Schema.t ->
  query:Mv_relalg.Spjg.t ->
  View.t ->
  (Substitute.t, Reject.t) result
(** Convenience wrapper that analyzes the query block first. *)
