(** The view registry: all materialized views, indexed by a filter tree,
    with the counters the paper's evaluation reports. This is the entry
    point the optimizer's view-matching rule calls.

    Measurement runs through {!field-obs} (an [Mv_obs] registry, scoped to
    this view registry unless one is passed in): [rule.invocations],
    [rule.candidates], [rule.matched], [rule.substitutes], the [rule.time]
    wall+CPU timer, and the filter tree's [filter_tree.*] per-level
    counters. {!stats} derives the historical record from them. *)

type stats = {
  invocations : int;
  candidates : int;  (** views surviving the filter tree *)
  matched : int;  (** candidates that produced a substitute *)
  substitutes : int;
  rule_time : float;
      (** cumulative CPU seconds inside the view-matching rule; wall time
          is on the [rule.time] timer *)
}

(** An immutable, epoch-stamped view of the registry: the population and
    a filter tree indexing exactly that population, consistent with each
    other by construction (published together with one [Atomic.set]).
    Nothing reachable from a snapshot is ever mutated — add/drop build and
    publish a fresh one — so a reader may hold it across an arbitrary
    amount of work with no lock (DESIGN.md §10). *)
type snapshot = {
  snap_epoch : int;  (** the registry epoch this state corresponds to *)
  snap_views : View.t list;  (** insertion order, like [views] *)
  snap_tree : Filter_tree.t;  (** a private tree over [snap_views] *)
}

type t = {
  schema : Mv_catalog.Schema.t;
  relaxed_nulls : bool;
  backjoins : bool;
      (** enable the section 7 base-table backjoin extension; also switches
          the filter tree to {!Filter_tree.backjoin_plan} *)
  mutable use_filter : bool;
      (** [false] = the paper's "No Filter" configuration: candidates are
          all views, tested linearly *)
  mutable views : View.t list;
  tree : Filter_tree.t;
  obs : Mv_obs.Registry.t;
  health : Health.t;
      (** the per-view ledger: candidate/matched recorded here by the
          rule, staleness flips by {!mark_stale}; higher layers attribute
          chosen/benefit (optimizer), maintenance ([Mv_engine.Ivm]) and
          cache hits (serving front end). Keyed by view name, so accounts
          survive churn and republication. *)
  tracing : bool;
      (** append a [rule] trace event per invocation (requires an [obs]
          with a nonzero trace capacity; [create ~tracing:true] makes one) *)
  epoch : int Atomic.t;
      (** registry epoch: bumped by every effective {!add_view} /
          {!add_prebuilt} / {!remove_view}. Caches stamp their entries with
          it and treat a mismatch as stale, so an add/drop invalidates
          without a global rebuild ({!Mv_opt.Match_cache}, DESIGN.md §8).
          Read through {!val-epoch}. *)
  snap : snapshot option Atomic.t;
      (** the published snapshot; [None] until {!val-snapshot} first
          activates RCU publication. Internal — read through
          {!val-snapshot}. *)
  write : Mutex.t;
      (** serializes mutations; no read path ever takes it *)
}

exception Duplicate_view of string

val create :
  ?relaxed_nulls:bool ->
  ?backjoins:bool ->
  ?use_filter:bool ->
  ?obs:Mv_obs.Registry.t ->
  ?tracing:bool ->
  Mv_catalog.Schema.t ->
  t

val stats : t -> stats
(** Snapshot of the paper's counters, read from the instruments. *)

val epoch : t -> int
(** The current registry epoch (0 for an empty registry). Monotonically
    increasing; changes exactly when the view population changes. *)

val snapshot : t -> snapshot
(** The current published snapshot — wait-free (one [Atomic.get]) on the
    hot path. The first call activates RCU publication: it builds the
    initial snapshot under the write lock, and from then on every
    effective mutation rebuilds and republishes (writers pay the O(views)
    rebuild, readers never block — DESIGN.md §10). Until that first call,
    mutations stay O(delta) and reads run against the master state, so
    purely sequential users pay nothing.

    Pinning the result and passing it as [?snap] to the read operations
    below runs them all against one registry state, regardless of
    concurrent add/drop. *)

val view_count : t -> int

val find_view : t -> string -> View.t option

val add_view :
  t ->
  ?row_count:int ->
  ?indexes:string list list ->
  name:string ->
  Mv_relalg.Spjg.t ->
  View.t
(** Define and index a materialized view.
    @raise Duplicate_view on name collision.
    @raise View.Rejected when the definition is not indexable. *)

val add_prebuilt : t -> View.t -> unit
(** Register an already-created descriptor (shared across registries by
    the experiment sweeps). *)

val remove_view : t -> string -> unit
(** Drop a view by name: in-place filter-tree removal (empty lattice keys
    are deleted, no rebuild) plus an epoch bump. Unknown names are a no-op
    and do not advance the epoch (and do not republish). *)

val candidates : ?snap:snapshot -> t -> Mv_relalg.Analysis.t -> View.t list

val mark_stale : t -> tables:string list -> int
(** Set the staleness mark on every registered view sourcing one of
    [tables]; returns how many views newly became stale. Marks live on the
    shared descriptors (an atomic bool), so no epoch bump or snapshot
    republication happens — matching is unchanged unless a caller passes
    [fresh_only]. Clear per view with {!View.mark_fresh} after a refresh
    (see [Mv_engine.Ivm]). *)

val match_with_candidates :
  ?spans:Mv_obs.Span.scope ->
  ?snap:snapshot ->
  ?fresh_only:bool ->
  t ->
  Mv_relalg.Analysis.t ->
  View.t list * Substitute.t list
(** {!find_substitutes} returning the surviving candidate set too — what
    the match cache stores per query signature.

    With [spans], records a ["filter"] child span (population / candidate
    counts plus one ["stage:<name>"] instant per filter-tree stage with
    entered/pruned/out counts and the pruned view names, capped) and one
    ["match:<view>"] span per candidate carrying the matcher's phase spans
    and outcome attributes. The traced replay never touches the indexed
    search; untraced invocations are unchanged. *)

val find_substitutes :
  ?spans:Mv_obs.Span.scope ->
  ?snap:snapshot ->
  ?fresh_only:bool ->
  t ->
  Mv_relalg.Analysis.t ->
  Substitute.t list
(** The view-matching rule body: filter, test every candidate, build one
    substitute per matching view. Updates {!stats}.

    Without [snap], each invocation runs against {!val-snapshot}'s current
    value (or the master state before activation); with it, against
    exactly the pinned state — what lets a whole optimization see one
    consistent registry under concurrent churn.

    [fresh_only] (default [false]) additionally rejects stale views with
    {!Reject.Stale} — the freshness-aware matcher mode of DESIGN.md §12. *)

(** {2 Why-not} *)

type explanation =
  | Filtered of Filter_tree.stage
      (** pruned by the filter tree at exactly this stage *)
  | Rejected of Reject.t  (** survived filtering, failed the matcher *)
  | Matched of Substitute.t

val explain :
  ?snap:snapshot ->
  ?fresh_only:bool ->
  t ->
  Mv_relalg.Analysis.t ->
  (View.t * explanation) list
(** Account for every registered view, in registration order. Exact with
    respect to the rule: [Filtered] views are precisely the population
    minus {!candidates} (the filtering is replayed per view through
    {!Filter_tree.provenance}), and the rest are re-tested through the
    real matcher (with [fresh_only] passed along, so stale views report
    [Rejected Stale]). Bumps no [rule.*] counters. With [use_filter] off,
    every view goes straight to the matcher. *)

val find_substitutes_spjg : t -> Mv_relalg.Spjg.t -> Substitute.t list

val find_union_substitutes :
  ?snap:snapshot ->
  ?fresh_only:bool ->
  t ->
  Mv_relalg.Analysis.t ->
  Union_substitute.t option
(** The section 7 union-substitute extension: views that individually fail
    only the range test, composed over disjoint slices of one class. Views
    are pre-filtered by the source-table condition only (the filter tree's
    range level would prune exactly the views a union needs); [fresh_only]
    drops stale views from the pool. *)

val reset_stats : t -> unit
(** Zero every instrument on {!field-obs} (including the filter-tree
    counters) and clear the trace. *)
