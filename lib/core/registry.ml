(** The view registry: all materialized views, indexed by a filter tree,
    with the counters the paper's evaluation reports (candidate fraction,
    pass rate, substitutes per invocation). This is the entry point the
    optimizer's view-matching rule calls.

    All measurement goes through an [Mv_obs] registry (one scoped instance
    per view registry unless the caller shares one): the rule maintains the
    [rule.*] counters and the [rule.time] wall+CPU timer, the filter tree
    contributes its per-level [filter_tree.*] counters, and — when tracing
    is on — every invocation appends a [rule] event carrying the query's
    table set and the candidate/match counts. The historical [stats] record
    survives as a read-only façade computed from the instruments. *)

module A = Mv_relalg.Analysis
module Obs = Mv_obs.Registry

type stats = {
  invocations : int;
  candidates : int;  (** views surviving the filter tree *)
  matched : int;  (** candidates that produced a substitute *)
  substitutes : int;
  rule_time : float;
      (** cumulative CPU seconds spent inside the view-matching rule
          (filtering + per-view tests + substitute construction); wall time
          is on the [rule.time] timer of {!field-obs} *)
}

type snapshot = {
  snap_epoch : int;
  snap_views : View.t list;
  snap_tree : Filter_tree.t;
}

type t = {
  schema : Mv_catalog.Schema.t;
  relaxed_nulls : bool;
  backjoins : bool;
  mutable use_filter : bool;
  mutable views : View.t list;  (** insertion order *)
  tree : Filter_tree.t;
  obs : Obs.t;
  health : Health.t;
  tracing : bool;
  epoch : int Atomic.t;
      (** bumped by every effective add/drop; caches key their entries by
          it (see [Mv_opt.Match_cache]). Atomic so reader domains see a
          fresh value without a lock. *)
  snap : snapshot option Atomic.t;
      (** RCU publication slot, [None] until {!snapshot} first activates
          it (DESIGN.md §10). Once active, every effective mutation
          republishes a freshly built (epoch, views, tree) triple with one
          [Atomic.set] — readers that pin a snapshot see an internally
          consistent registry state with a single [Atomic.get] and never
          touch a mutex. *)
  write : Mutex.t;
      (** serializes mutations (and the first snapshot publication); never
          taken on any read path. *)
}

exception Duplicate_view of string

let create ?(relaxed_nulls = false) ?(backjoins = false) ?(use_filter = true)
    ?obs ?(tracing = false) schema =
  let obs =
    match obs with
    | Some o -> o
    | None -> Obs.create ~trace_capacity:(if tracing then 256 else 0) ()
  in
  {
    schema;
    relaxed_nulls;
    backjoins;
    use_filter;
    views = [];
    tree =
      Filter_tree.create
        ~plan:
          (if backjoins then Filter_tree.backjoin_plan
           else Filter_tree.default_plan)
        ();
    obs;
    health = Health.create ();
    tracing;
    epoch = Atomic.make 0;
    snap = Atomic.make None;
    write = Mutex.create ();
  }

let epoch t = Atomic.get t.epoch

(* ---- RCU snapshot publication (DESIGN.md §10) ----

   The master [views]/[tree] stay mutated in place (cheap O(delta) under
   bulk construction); the published snapshot is a from-scratch rebuild of
   the current population into a FRESH tree, so nothing a reader pinned
   can ever be mutated under it. Publication is one [Atomic.set] of the
   whole (epoch, views, tree) record — the triple is always internally
   consistent. Writers pay the rebuild (classic RCU writer-pays); readers
   pay one [Atomic.get]. The slot stays [None] (and mutations skip the
   rebuild entirely) until the first [snapshot] call activates it, so
   registries that never serve concurrently keep O(delta) mutations. *)

let build_snapshot t =
  let tree = Filter_tree.create ~plan:(Filter_tree.plan t.tree) () in
  List.iter (Filter_tree.insert tree) t.views;
  (* extend the interners' published lock-free snapshot over any symbols
     the new views introduced, so reader-side key building after this
     publication stays on the frozen fast path *)
  Mv_relalg.Intern.freeze ();
  { snap_epoch = Atomic.get t.epoch; snap_views = t.views; snap_tree = tree }

(* Call with [t.write] held, after the master state reached its new
   epoch. A no-op until the slot is activated. *)
let republish t =
  if Atomic.get t.snap <> None then Atomic.set t.snap (Some (build_snapshot t))

let snapshot t =
  match Atomic.get t.snap with
  | Some s -> s
  | None ->
      (* first call: activate the slot under the write lock (competing
         mutations quiesce; competing first-snapshot calls publish twice,
         last wins, both results are current) *)
      Mutex.protect t.write (fun () ->
          match Atomic.get t.snap with
          | Some s -> s
          | None ->
              let s = build_snapshot t in
              Atomic.set t.snap (Some s);
              s)

let stats t =
  {
    invocations = Obs.counter_value t.obs "rule.invocations";
    candidates = Obs.counter_value t.obs "rule.candidates";
    matched = Obs.counter_value t.obs "rule.matched";
    substitutes = Obs.counter_value t.obs "rule.substitutes";
    rule_time = Mv_obs.Instrument.cpu (Obs.timer t.obs "rule.time");
  }

let view_count t = List.length t.views

let find_view t name = List.find_opt (fun v -> v.View.name = name) t.views

(* Define (and index) a materialized view. The duplicate check, the master
   mutation, the epoch bump and the republication all happen under the
   write lock, so concurrent writers serialize and an exception
   (Duplicate_view, View.Rejected) leaves the registry untouched. *)
let add_view t ?(row_count = 0) ?(indexes = []) ~name spjg : View.t =
  Mutex.protect t.write (fun () ->
      if find_view t name <> None then raise (Duplicate_view name);
      let view =
        View.create ~relaxed_nulls:t.relaxed_nulls ~row_count ~indexes
          t.schema ~name spjg
      in
      t.views <- t.views @ [ view ];
      Filter_tree.insert t.tree view;
      Atomic.incr t.epoch;
      republish t;
      view)

(* Register an already-created view descriptor (lets experiment sweeps
   share one descriptor across many registries instead of re-analyzing). *)
let add_prebuilt t (view : View.t) =
  Mutex.protect t.write (fun () ->
      if find_view t view.View.name <> None then
        raise (Duplicate_view view.View.name);
      t.views <- t.views @ [ view ];
      Filter_tree.insert t.tree view;
      Atomic.incr t.epoch;
      republish t)

(* Drop a view: filter-tree removal prunes lattice keys in place (no
   rebuild), and the epoch bump lazily invalidates every cache entry
   computed against the old population. A missing name is a no-op and
   does NOT advance the epoch (or republish). *)
let remove_view t name =
  Mutex.protect t.write (fun () ->
      match find_view t name with
      | None -> ()
      | Some v ->
          t.views <- List.filter (fun x -> x.View.name <> name) t.views;
          Filter_tree.remove t.tree v;
          Atomic.incr t.epoch;
          republish t)

(* The registry state a read runs against: the caller's pinned snapshot,
   the published one, or (pre-activation) an ephemeral view of the master
   — same fields, zero copies, so unactivated registries behave exactly
   as before. *)
let current ?snap t =
  match snap with
  | Some s -> s
  | None -> (
      match Atomic.get t.snap with
      | Some s -> s
      | None ->
          {
            snap_epoch = Atomic.get t.epoch;
            snap_views = t.views;
            snap_tree = t.tree;
          })

(* Candidate views for a query expression: via the filter tree, or a
   linear scan when the tree is disabled (the paper's "No Filter"
   configuration). *)
let candidates ?snap t (q : A.t) =
  let s = current ?snap t in
  if t.use_filter then Filter_tree.candidates ~obs:t.obs s.snap_tree q
  else s.snap_views

(* At most this many view names are spelled out in a span attribute; the
   rest collapse into a count so traces of 1000-view registries stay
   readable and bounded. *)
let names_cap = 16

let capped_names views =
  let names = List.map (fun v -> v.View.name) views in
  let n = List.length names in
  if n <= names_cap then String.concat "," names
  else
    String.concat "," (List.filteri (fun i _ -> i < names_cap) names)
    ^ Printf.sprintf ",+%d more" (n - names_cap)

(* One instant event per filter-tree stage under [sub], carrying how many
   views entered the stage, how many it pruned (with their names, capped)
   and how many it passed on. Computed by replaying {!Filter_tree.provenance}
   over the population — exact with respect to the indexed search, and only
   ever run on traced invocations, so the search itself stays untouched. *)
let record_stage_notes snap sub (q : A.t) =
  let qi = Filter_tree.query_info q in
  let tallies = Hashtbl.create 16 in
  let tally s =
    let key = Filter_tree.stage_name s in
    match Hashtbl.find_opt tallies key with
    | Some x -> x
    | None ->
        let x = (ref 0, ref []) in
        Hashtbl.add tallies key x;
        x
  in
  List.iter
    (fun v ->
      let path, fate = Filter_tree.provenance snap.snap_tree qi v in
      List.iter (fun s -> incr (fst (tally s))) path;
      match fate with
      | Filter_tree.Pruned s ->
          let _, pruned = tally s in
          pruned := v :: !pruned
      | Filter_tree.Passed -> ())
    snap.snap_views;
  List.iter
    (fun s ->
      let key = Filter_tree.stage_name s in
      match Hashtbl.find_opt tallies key with
      | None -> ()
      | Some (entered, pruned) ->
          let pruned = List.rev !pruned in
          let npruned = List.length pruned in
          Mv_obs.Span.note sub ("stage:" ^ key) (fun () ->
              [
                ("entered", Mv_obs.Span.Int !entered);
                ("pruned", Mv_obs.Span.Int npruned);
                ("out", Mv_obs.Span.Int (!entered - npruned));
              ]
              @
              if pruned = [] then []
              else [ ("pruned_views", Mv_obs.Span.Str (capped_names pruned)) ]))
    (Filter_tree.stages snap.snap_tree)

(* The view-matching rule body: find all views that can compute [q] and
   build one substitute per view. Returns the candidate set alongside the
   substitutes so the match cache can store both (the candidates are what
   the model-based tests compare against a from-scratch rebuild). *)
let match_with_candidates ?spans ?snap ?(fresh_only = false) t (q : A.t) :
    View.t list * Substitute.t list =
  (* one snapshot per invocation: the candidate search, the population
     counts and the traced stage replay all see the same registry state *)
  let s = current ?snap t in
  let span = Mv_obs.Instrument.enter () in
  Mv_obs.Instrument.incr (Obs.counter t.obs "rule.invocations");
  let cands =
    Mv_obs.Span.wrap spans "filter" (fun sub ->
        let cands = candidates ~snap:s t q in
        if sub <> None then begin
          Mv_obs.Span.annotate sub (fun () ->
              [
                ("population", Mv_obs.Span.Int (List.length s.snap_views));
                ("candidates", Mv_obs.Span.Int (List.length cands));
                ("indexed", Mv_obs.Span.Bool t.use_filter);
              ]);
          if t.use_filter then record_stage_notes s sub q
        end;
        cands)
  in
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.candidates")
    (List.length cands);
  List.iter (fun v -> Health.record_candidate t.health v.View.name) cands;
  let subs =
    List.filter_map
      (fun v ->
        Mv_obs.Span.wrap spans ("match:" ^ v.View.name) (fun sub ->
            match
              Matcher.match_view ~relaxed_nulls:t.relaxed_nulls
                ~backjoins:t.backjoins ~fresh_only ?spans:sub ~query:q v
            with
            | Ok s -> Some s
            | Error _ -> None))
      cands
  in
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.matched") (List.length subs);
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.substitutes")
    (List.length subs);
  List.iter
    (fun (s : Substitute.t) ->
      Health.record_matched t.health s.Substitute.view.View.name)
    subs;
  Mv_obs.Instrument.exit_into (Obs.timer t.obs "rule.time") span;
  if t.tracing then begin
    let wall, _ = Mv_obs.Instrument.elapsed span in
    Mv_obs.Trace.record (Obs.trace t.obs) "rule"
      [
        ("tables", Mv_obs.Json.String (Mv_util.Sset.to_string q.A.table_set));
        ("population", Mv_obs.Json.Int (List.length s.snap_views));
        ("candidates", Mv_obs.Json.Int (List.length cands));
        ("matched", Mv_obs.Json.Int (List.length subs));
        ( "views",
          Mv_obs.Json.List
            (List.map
               (fun (s : Substitute.t) ->
                 Mv_obs.Json.String s.Substitute.view.View.name)
               subs) );
        ("wall_s", Mv_obs.Json.Float wall);
      ]
  end;
  (cands, subs)

let find_substitutes ?spans ?snap ?fresh_only t (q : A.t) :
    Substitute.t list =
  snd (match_with_candidates ?spans ?snap ?fresh_only t q)

(* ---- freshness (DESIGN.md §12) ----

   Staleness marks live on the shared [View.t] descriptors (an atomic
   bool), so marking needs no epoch bump or republication: snapshots share
   the descriptors and the population did not change. Matching behavior is
   unchanged unless a caller opts into [fresh_only]. *)

let mark_stale t ~tables : int =
  let hit (v : View.t) =
    List.exists (fun tn -> Mv_util.Sset.mem tn v.View.source_tables) tables
  in
  List.fold_left
    (fun n v ->
      if hit v && not (View.is_stale v) then begin
        View.mark_stale v;
        Health.record_stale t.health v.View.name;
        n + 1
      end
      else n)
    0 t.views

(* ---- why-not ---- *)

type explanation =
  | Filtered of Filter_tree.stage
  | Rejected of Reject.t
  | Matched of Substitute.t

(* Account for every registered view: the exact filter-tree stage that
   pruned it, the [Reject.t] the matcher returned, or its substitute.
   Filtering is replayed per view via {!Filter_tree.provenance} (exact with
   respect to {!candidates}); views that pass are re-tested through the
   real matcher. Deliberately bumps NO [rule.*] counters — explanation is a
   diagnostic read, not a rule invocation. With [use_filter] off every view
   goes straight to the matcher, mirroring the "No Filter" configuration. *)
let explain ?snap ?(fresh_only = false) t (q : A.t) :
    (View.t * explanation) list =
  let s = current ?snap t in
  let qi = Filter_tree.query_info q in
  List.map
    (fun v ->
      let fate =
        if t.use_filter then Filter_tree.fate s.snap_tree qi v
        else Filter_tree.Passed
      in
      match fate with
      | Filter_tree.Pruned stage -> (v, Filtered stage)
      | Filter_tree.Passed -> (
          match
            Matcher.match_view ~relaxed_nulls:t.relaxed_nulls
              ~backjoins:t.backjoins ~fresh_only ~query:q v
          with
          | Ok sub -> (v, Matched sub)
          | Error e -> (v, Rejected e)))
    s.snap_views

let find_substitutes_spjg t (spjg : Mv_relalg.Spjg.t) =
  find_substitutes t (A.analyze t.schema spjg)

(* Union substitutes (section 7) over the filtered... no: views that fail
   the range test are pruned by the filter tree's range level, so the
   union finder scans the full population restricted by the cheap table
   condition. *)
let find_union_substitutes ?snap ?(fresh_only = false) t (q : A.t) :
    Union_substitute.t option =
  let coarse =
    List.filter
      (fun v ->
        Mv_util.Bitset.subset q.A.table_key v.View.keys.View.source_tables
        && not (fresh_only && View.is_stale v))
      (current ?snap t).snap_views
  in
  Union_match.find ~relaxed_nulls:t.relaxed_nulls ~backjoins:t.backjoins q
    coarse

let reset_stats t = Obs.reset t.obs
