(** The view registry: all materialized views, indexed by a filter tree,
    with the counters the paper's evaluation reports (candidate fraction,
    pass rate, substitutes per invocation). This is the entry point the
    optimizer's view-matching rule calls.

    All measurement goes through an [Mv_obs] registry (one scoped instance
    per view registry unless the caller shares one): the rule maintains the
    [rule.*] counters and the [rule.time] wall+CPU timer, the filter tree
    contributes its per-level [filter_tree.*] counters, and — when tracing
    is on — every invocation appends a [rule] event carrying the query's
    table set and the candidate/match counts. The historical [stats] record
    survives as a read-only façade computed from the instruments. *)

module A = Mv_relalg.Analysis
module Obs = Mv_obs.Registry

type stats = {
  invocations : int;
  candidates : int;  (** views surviving the filter tree *)
  matched : int;  (** candidates that produced a substitute *)
  substitutes : int;
  rule_time : float;
      (** cumulative CPU seconds spent inside the view-matching rule
          (filtering + per-view tests + substitute construction); wall time
          is on the [rule.time] timer of {!field-obs} *)
}

type t = {
  schema : Mv_catalog.Schema.t;
  relaxed_nulls : bool;
  backjoins : bool;
  mutable use_filter : bool;
  mutable views : View.t list;  (** insertion order *)
  tree : Filter_tree.t;
  obs : Obs.t;
  tracing : bool;
  epoch : int Atomic.t;
      (** bumped by every effective add/drop; caches key their entries by
          it (see [Mv_opt.Match_cache]). Atomic so reader domains see a
          fresh value without a lock; the mutations themselves still
          require exclusive access (DESIGN.md §7-§8). *)
}

exception Duplicate_view of string

let create ?(relaxed_nulls = false) ?(backjoins = false) ?(use_filter = true)
    ?obs ?(tracing = false) schema =
  let obs =
    match obs with
    | Some o -> o
    | None -> Obs.create ~trace_capacity:(if tracing then 256 else 0) ()
  in
  {
    schema;
    relaxed_nulls;
    backjoins;
    use_filter;
    views = [];
    tree =
      Filter_tree.create
        ~plan:
          (if backjoins then Filter_tree.backjoin_plan
           else Filter_tree.default_plan)
        ();
    obs;
    tracing;
    epoch = Atomic.make 0;
  }

let epoch t = Atomic.get t.epoch

let stats t =
  {
    invocations = Obs.counter_value t.obs "rule.invocations";
    candidates = Obs.counter_value t.obs "rule.candidates";
    matched = Obs.counter_value t.obs "rule.matched";
    substitutes = Obs.counter_value t.obs "rule.substitutes";
    rule_time = Mv_obs.Instrument.cpu (Obs.timer t.obs "rule.time");
  }

let view_count t = List.length t.views

let find_view t name = List.find_opt (fun v -> v.View.name = name) t.views

(* Define (and index) a materialized view. *)
let add_view t ?(row_count = 0) ?(indexes = []) ~name spjg : View.t =
  if find_view t name <> None then raise (Duplicate_view name);
  let view =
    View.create ~relaxed_nulls:t.relaxed_nulls ~row_count ~indexes t.schema
      ~name spjg
  in
  t.views <- t.views @ [ view ];
  Filter_tree.insert t.tree view;
  Atomic.incr t.epoch;
  view

(* Register an already-created view descriptor (lets experiment sweeps
   share one descriptor across many registries instead of re-analyzing). *)
let add_prebuilt t (view : View.t) =
  if find_view t view.View.name <> None then
    raise (Duplicate_view view.View.name);
  t.views <- t.views @ [ view ];
  Filter_tree.insert t.tree view;
  Atomic.incr t.epoch

(* Drop a view: filter-tree removal prunes lattice keys in place (no
   rebuild), and the epoch bump lazily invalidates every cache entry
   computed against the old population. A missing name is a no-op and
   does NOT advance the epoch. *)
let remove_view t name =
  match find_view t name with
  | None -> ()
  | Some v ->
      t.views <- List.filter (fun x -> x.View.name <> name) t.views;
      Filter_tree.remove t.tree v;
      Atomic.incr t.epoch

(* Candidate views for a query expression: via the filter tree, or a
   linear scan when the tree is disabled (the paper's "No Filter"
   configuration). *)
let candidates t (q : A.t) =
  if t.use_filter then Filter_tree.candidates ~obs:t.obs t.tree q else t.views

(* At most this many view names are spelled out in a span attribute; the
   rest collapse into a count so traces of 1000-view registries stay
   readable and bounded. *)
let names_cap = 16

let capped_names views =
  let names = List.map (fun v -> v.View.name) views in
  let n = List.length names in
  if n <= names_cap then String.concat "," names
  else
    String.concat "," (List.filteri (fun i _ -> i < names_cap) names)
    ^ Printf.sprintf ",+%d more" (n - names_cap)

(* One instant event per filter-tree stage under [sub], carrying how many
   views entered the stage, how many it pruned (with their names, capped)
   and how many it passed on. Computed by replaying {!Filter_tree.provenance}
   over the population — exact with respect to the indexed search, and only
   ever run on traced invocations, so the search itself stays untouched. *)
let record_stage_notes t sub (q : A.t) =
  let qi = Filter_tree.query_info q in
  let tallies = Hashtbl.create 16 in
  let tally s =
    let key = Filter_tree.stage_name s in
    match Hashtbl.find_opt tallies key with
    | Some x -> x
    | None ->
        let x = (ref 0, ref []) in
        Hashtbl.add tallies key x;
        x
  in
  List.iter
    (fun v ->
      let path, fate = Filter_tree.provenance t.tree qi v in
      List.iter (fun s -> incr (fst (tally s))) path;
      match fate with
      | Filter_tree.Pruned s ->
          let _, pruned = tally s in
          pruned := v :: !pruned
      | Filter_tree.Passed -> ())
    t.views;
  List.iter
    (fun s ->
      let key = Filter_tree.stage_name s in
      match Hashtbl.find_opt tallies key with
      | None -> ()
      | Some (entered, pruned) ->
          let pruned = List.rev !pruned in
          let npruned = List.length pruned in
          Mv_obs.Span.note sub ("stage:" ^ key) (fun () ->
              [
                ("entered", Mv_obs.Span.Int !entered);
                ("pruned", Mv_obs.Span.Int npruned);
                ("out", Mv_obs.Span.Int (!entered - npruned));
              ]
              @
              if pruned = [] then []
              else [ ("pruned_views", Mv_obs.Span.Str (capped_names pruned)) ]))
    (Filter_tree.stages t.tree)

(* The view-matching rule body: find all views that can compute [q] and
   build one substitute per view. Returns the candidate set alongside the
   substitutes so the match cache can store both (the candidates are what
   the model-based tests compare against a from-scratch rebuild). *)
let match_with_candidates ?spans t (q : A.t) : View.t list * Substitute.t list =
  let span = Mv_obs.Instrument.enter () in
  Mv_obs.Instrument.incr (Obs.counter t.obs "rule.invocations");
  let cands =
    Mv_obs.Span.wrap spans "filter" (fun sub ->
        let cands = candidates t q in
        if sub <> None then begin
          Mv_obs.Span.annotate sub (fun () ->
              [
                ("population", Mv_obs.Span.Int (List.length t.views));
                ("candidates", Mv_obs.Span.Int (List.length cands));
                ("indexed", Mv_obs.Span.Bool t.use_filter);
              ]);
          if t.use_filter then record_stage_notes t sub q
        end;
        cands)
  in
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.candidates")
    (List.length cands);
  let subs =
    List.filter_map
      (fun v ->
        Mv_obs.Span.wrap spans ("match:" ^ v.View.name) (fun sub ->
            match
              Matcher.match_view ~relaxed_nulls:t.relaxed_nulls
                ~backjoins:t.backjoins ?spans:sub ~query:q v
            with
            | Ok s -> Some s
            | Error _ -> None))
      cands
  in
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.matched") (List.length subs);
  Mv_obs.Instrument.add (Obs.counter t.obs "rule.substitutes")
    (List.length subs);
  Mv_obs.Instrument.exit_into (Obs.timer t.obs "rule.time") span;
  if t.tracing then begin
    let wall, _ = Mv_obs.Instrument.elapsed span in
    Mv_obs.Trace.record (Obs.trace t.obs) "rule"
      [
        ("tables", Mv_obs.Json.String (Mv_util.Sset.to_string q.A.table_set));
        ("population", Mv_obs.Json.Int (List.length t.views));
        ("candidates", Mv_obs.Json.Int (List.length cands));
        ("matched", Mv_obs.Json.Int (List.length subs));
        ( "views",
          Mv_obs.Json.List
            (List.map
               (fun (s : Substitute.t) ->
                 Mv_obs.Json.String s.Substitute.view.View.name)
               subs) );
        ("wall_s", Mv_obs.Json.Float wall);
      ]
  end;
  (cands, subs)

let find_substitutes ?spans t (q : A.t) : Substitute.t list =
  snd (match_with_candidates ?spans t q)

(* ---- why-not ---- *)

type explanation =
  | Filtered of Filter_tree.stage
  | Rejected of Reject.t
  | Matched of Substitute.t

(* Account for every registered view: the exact filter-tree stage that
   pruned it, the [Reject.t] the matcher returned, or its substitute.
   Filtering is replayed per view via {!Filter_tree.provenance} (exact with
   respect to {!candidates}); views that pass are re-tested through the
   real matcher. Deliberately bumps NO [rule.*] counters — explanation is a
   diagnostic read, not a rule invocation. With [use_filter] off every view
   goes straight to the matcher, mirroring the "No Filter" configuration. *)
let explain t (q : A.t) : (View.t * explanation) list =
  let qi = Filter_tree.query_info q in
  List.map
    (fun v ->
      let fate =
        if t.use_filter then Filter_tree.fate t.tree qi v
        else Filter_tree.Passed
      in
      match fate with
      | Filter_tree.Pruned stage -> (v, Filtered stage)
      | Filter_tree.Passed -> (
          match
            Matcher.match_view ~relaxed_nulls:t.relaxed_nulls
              ~backjoins:t.backjoins ~query:q v
          with
          | Ok s -> (v, Matched s)
          | Error e -> (v, Rejected e)))
    t.views

let find_substitutes_spjg t (spjg : Mv_relalg.Spjg.t) =
  find_substitutes t (A.analyze t.schema spjg)

(* Union substitutes (section 7) over the filtered... no: views that fail
   the range test are pruned by the filter tree's range level, so the
   union finder scans the full population restricted by the cheap table
   condition. *)
let find_union_substitutes t (q : A.t) : Union_substitute.t option =
  let coarse =
    List.filter
      (fun v ->
        Mv_util.Bitset.subset q.A.table_key v.View.keys.View.source_tables)
      t.views
  in
  Union_match.find ~relaxed_nulls:t.relaxed_nulls ~backjoins:t.backjoins q
    coarse

let reset_stats t = Obs.reset t.obs
