(** Why a view was rejected for a given query expression. *)

type t =
  | Missing_tables
  | Extra_tables_not_eliminable
  | Equijoin_subsumption_failed
  | Range_subsumption_failed of string
  | Residual_subsumption_failed of string
  | Compensation_not_computable of string
  | Output_not_computable of string
  | Grouping_incompatible of string
  | View_more_aggregated
  | Stale
      (** the view's base tables changed since it was last refreshed and
          the caller asked for fresh views only (IVM, DESIGN.md §12) *)

val to_string : t -> string

val label : t -> string
(** Stable kebab-case aggregation key, one per constructor (detail
    payloads dropped): ["missing-tables"], ["extra-tables"],
    ["equijoin-subsumption"], ["range-subsumption"],
    ["residual-subsumption"], ["compensation-not-computable"],
    ["output-not-computable"], ["grouping-incompatible"],
    ["view-more-aggregated"], ["stale"]. *)

val pp : Format.formatter -> t -> unit
