(** The lattice index of section 4.1: keys are sets organized in a DAG by
    the subset partial order. Each node stores pointers to its minimal
    supersets ([supers]) and maximal subsets ([subs]); nodes without
    supersets are "tops", nodes without subsets are "roots".

    Searching for all subsets of S starts at the roots and climbs superset
    pointers; searching for supersets starts at the tops and descends. Both
    searches prune whole regions: if a node fails, everything on the far
    side of it fails too. The same traversal supports any monotone
    predicate, which is how the filter tree's output-column and
    grouping-column conditions (section 4.2.3/4.2.4) are evaluated.

    Keys are interned bitsets ({!Mv_util.Bitset}): the subset tests the
    traversal performs at every visited node are word-level AND loops, and
    exact lookup hashes the key's words directly — no string
    re-concatenation anywhere on the search path.

    Searches are read-only and carry their own visit state (borrowed from a
    domain-local scratch pool), so any number of domains may search one
    lattice concurrently, and a search may re-enter the lattice from inside
    its predicate. Insertions and deletions still require exclusive access
    (single-domain construction, searches quiesced). *)

module Bitset = Mv_util.Bitset
module Index = Hashtbl.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal

  let hash = Bitset.hash
end)

type 'a node = {
  id : int;
  key : Bitset.t;
  mutable payload : 'a option;
  mutable supers : 'a node list;
  mutable subs : 'a node list;
}

type 'a t = {
  mutable tops : 'a node list;
  mutable roots : 'a node list;
  index : 'a node Index.t;  (** exact-key lookup *)
  mutable next_id : int;
}

let create () = { tops = []; roots = []; index = Index.create 64; next_id = 0 }

(* ---- per-search visit state ----

   Earlier revisions deduplicated visited nodes with a per-node [mark]
   stamp field — fast, but shared mutable state: two concurrent searches
   over one lattice corrupted each other's dedup, and even a single-domain
   *reentrant* search (a predicate or payload callback re-entering the
   lattice, e.g. rule tracing) overwrote the outer search's marks and could
   return duplicated nodes.

   Each search now borrows a scratch buffer — an [int array] of per-node
   stamps indexed by node id, plus the buffer's own stamp counter — from a
   domain-local pool. Borrowed buffers are exclusively owned for the
   duration of the search: a reentrant search pops a *different* buffer,
   and searches running on other domains use their own domain's pool, so
   N domains can probe one shared (read-only) lattice concurrently. The
   stamp counter makes reuse O(1): no clearing between searches, a buffer
   would need 2^62 searches to overflow. *)

type scratch = { mutable marks : int array; mutable stamp : int }

let scratch_pool : scratch list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_scratch n f =
  let pool = Domain.DLS.get scratch_pool in
  let s =
    match !pool with
    | s :: rest ->
        pool := rest;
        s
    | [] -> { marks = Array.make (max 64 n) 0; stamp = 0 }
  in
  if Array.length s.marks < n then begin
    let grown = Array.make (max n (2 * Array.length s.marks)) 0 in
    Array.blit s.marks 0 grown 0 (Array.length s.marks);
    s.marks <- grown
  end;
  s.stamp <- s.stamp + 1;
  Fun.protect ~finally:(fun () -> pool := s :: !pool) (fun () -> f s)

let size t = Index.length t.index

let nodes t = Index.fold (fun _ n acc -> n :: acc) t.index []

let find_exact t key = Index.find_opt t.index key

(* Generic pruned traversal. [`Down] starts at the tops and follows subset
   pointers: correct when [pred] failing on a key implies it fails on every
   subset (e.g. "key is a superset of S"). [`Up] starts at the roots and
   follows superset pointers: correct when failure propagates to supersets
   (e.g. "key is a subset of S"). Each node is visited at most once. *)
let search t ~dir ~pred =
  with_scratch t.next_id (fun s ->
      let marks = s.marks and stamp = s.stamp in
      let acc = ref [] in
      let rec visit n =
        if marks.(n.id) <> stamp then begin
          marks.(n.id) <- stamp;
          if pred n.key then begin
            acc := n :: !acc;
            let next = match dir with `Down -> n.subs | `Up -> n.supers in
            List.iter visit next
          end
        end
      in
      let start = match dir with `Down -> t.tops | `Up -> t.roots in
      List.iter visit start;
      !acc)

let supersets_of t key =
  search t ~dir:`Down ~pred:(fun k -> Bitset.subset key k)

let subsets_of t key = search t ~dir:`Up ~pred:(fun k -> Bitset.subset k key)

(* Keep only keys with no strict subset among [ns]. *)
let minimal_nodes ns =
  List.filter
    (fun n ->
      not
        (List.exists
           (fun m -> m.id <> n.id && Bitset.subset m.key n.key)
           ns))
    ns

let maximal_nodes ns =
  List.filter
    (fun n ->
      not
        (List.exists
           (fun m -> m.id <> n.id && Bitset.subset n.key m.key)
           ns))
    ns

let remove_node n ns = List.filter (fun m -> m.id <> n.id) ns

let mem_node n ns = List.exists (fun m -> m.id = n.id) ns

(* Insert [key] (or return the existing node). Links the new node between
   its maximal existing subsets and minimal existing supersets, removing
   the edges that become transitive. *)
let insert t key =
  match find_exact t key with
  | Some n -> n
  | None ->
      let n = { id = t.next_id; key; payload = None; supers = []; subs = [] } in
      t.next_id <- t.next_id + 1;
      let supers = minimal_nodes (remove_node n (supersets_of t key)) in
      let subs = maximal_nodes (remove_node n (subsets_of t key)) in
      n.supers <- supers;
      n.subs <- subs;
      List.iter
        (fun s ->
          (* edges from our subsets straight to s are now transitive *)
          let transitive, keep =
            List.partition (fun b -> mem_node b subs) s.subs
          in
          List.iter (fun b -> b.supers <- remove_node s b.supers) transitive;
          s.subs <- n :: keep)
        supers;
      List.iter (fun b -> b.supers <- n :: b.supers) subs;
      (* maintain tops and roots: every subset of n is no longer a top,
         every superset no longer a root *)
      List.iter (fun b -> t.tops <- remove_node b t.tops) subs;
      List.iter (fun s -> t.roots <- remove_node s t.roots) supers;
      if supers = [] then t.tops <- n :: t.tops;
      if subs = [] then t.roots <- n :: t.roots;
      Index.add t.index key n;
      n

(* Remove the node with [key], reconnecting its subsets to its supersets
   where no other path exists. *)
let delete t key =
  match find_exact t key with
  | None -> ()
  | Some n ->
      Index.remove t.index key;
      List.iter (fun b -> b.supers <- remove_node n b.supers) n.subs;
      List.iter (fun s -> s.subs <- remove_node n s.subs) n.supers;
      List.iter
        (fun b ->
          List.iter
            (fun s ->
              (* add b -> s unless some existing superset of b is below s *)
              let implied =
                List.exists
                  (fun x -> x.id = s.id || Bitset.subset x.key s.key)
                  b.supers
              in
              if not implied then begin
                b.supers <- s :: b.supers;
                (* drop s.subs entries that b now dominates *)
                let dominated, keep =
                  List.partition
                    (fun x -> Bitset.subset x.key b.key && x.id <> b.id)
                    s.subs
                in
                List.iter
                  (fun x -> x.supers <- remove_node s x.supers)
                  dominated;
                s.subs <- b :: keep
              end)
            n.supers)
        n.subs;
      t.tops <- remove_node n t.tops;
      t.roots <- remove_node n t.roots;
      (* former subs may have become tops; former supers may be roots *)
      List.iter
        (fun b ->
          if b.supers = [] && not (mem_node b t.tops) then
            t.tops <- b :: t.tops)
        n.subs;
      List.iter
        (fun s ->
          if s.subs = [] && not (mem_node s t.roots) then
            t.roots <- s :: t.roots)
        n.supers
