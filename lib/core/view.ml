(** A materialized view: its SPJG definition plus the precomputed in-memory
    description the paper keeps for fast filtering (section 4) — hub,
    extended output/grouping column sets, residual and expression templates,
    and range-constraint lists. *)

open Mv_base
module Sset = Mv_util.Sset
module Bitset = Mv_util.Bitset
module Intern = Mv_relalg.Intern

(** The view's filter-tree keys, interned once at registration (the paper
    computes the in-memory view description once and reuses it for every
    query; so do we — no per-search string work). Field order mirrors the
    filter-tree levels. *)
type keys = {
  hub : Bitset.t;
  source_tables : Bitset.t;
  output_exprs : Bitset.t;
  output_cols : Bitset.t;
  residuals : Bitset.t;
  range_cols : Bitset.t;
  grouping_exprs : Bitset.t;
  grouping_cols : Bitset.t;
  range_classes : Bitset.t list;
      (** full range-constraint list for the strong post-check *)
}

type t = {
  name : string;
  analysis : Mv_relalg.Analysis.t;
  hub : Sset.t;
  source_tables : Sset.t;
  output_expr_templates : Sset.t;
  extended_output_cols : Col.Set.t;
  residual_templates : Sset.t;
  reduced_range_cols : Sset.t;
      (** range-constrained columns in trivial equivalence classes,
          rendered as strings — the weak range condition key *)
  range_classes : Col.Set.t list;
      (** full range-constraint list: one class per constrained range *)
  grouping_expr_templates : Sset.t;
  extended_grouping_cols : Col.Set.t;
  keys : keys;  (** interned bitset keys over the fields above *)
  mutable row_count : int;  (** statistics for the cost model *)
  mutable indexes : string list list;
      (** secondary indexes over output columns (Example 1 creates one on
          (gross_revenue, p_name)); considered automatically by the cost
          model and built at materialization time *)
  stale : bool Atomic.t;
      (** freshness mark (DESIGN.md §12): set when a base table is written
          without the view's contents being maintained, cleared by
          materialize/refresh. Atomic so write-side marking and a
          [fresh_only] matcher on another domain never race. *)
  mutable base_epochs : (string * int) list;
      (** per-base-table database write epochs recorded at the last
          materialize/refresh — the provenance behind the staleness mark *)
}

let cols_to_strings (s : Col.Set.t) =
  Col.Set.fold (fun c acc -> Sset.add (Col.to_string c) acc) s Sset.empty

exception Rejected of string

(* [relaxed_nulls] enables the null-rejecting FK relaxation of section 3.2;
   it makes hub computation optimistic so the hub condition never prunes a
   view the relaxed matcher could use. *)
let create ?(relaxed_nulls = false) ?(row_count = 0) ?(indexes = []) schema
    ~name spjg : t =
  (match Mv_relalg.Spjg.check_indexable spjg with
  | Ok () -> ()
  | Error msg -> raise (Rejected (Fmt.str "view %s is not indexable: %s" name msg)));
  List.iter
    (fun ix ->
      List.iter
        (fun c ->
          if Mv_relalg.Spjg.find_out spjg c = None then
            raise
              (Rejected
                 (Fmt.str "index column %s is not an output of view %s" c name)))
        ix)
    indexes;
  let analysis = Mv_relalg.Analysis.analyze schema spjg in
  let mode = if relaxed_nulls then `Optimistic else `Strict in
  let trivial c =
    Col.Set.cardinal (Mv_relalg.Equiv.class_of analysis.Mv_relalg.Analysis.equiv c) = 1
  in
  let reduced_range_cols =
    List.fold_left
      (fun acc cls ->
        match Col.Set.elements cls with
        | [ c ] when trivial c -> Sset.add (Col.to_string c) acc
        | _ -> acc)
      Sset.empty
      (Mv_relalg.Analysis.range_constrained_classes analysis)
  in
  let hub = Fk_graph.hub ~mode analysis in
  let extended_output_cols =
    Mv_relalg.Analysis.extended_output_cols analysis
  in
  let range_classes =
    Mv_relalg.Analysis.range_constrained_classes analysis
  in
  let extended_grouping_cols =
    Mv_relalg.Analysis.extended_grouping_cols analysis
  in
  let keys =
    {
      hub = Intern.of_sset Intern.tables hub;
      source_tables = analysis.Mv_relalg.Analysis.table_key;
      output_exprs = Mv_relalg.Analysis.output_expr_template_key analysis;
      output_cols = Intern.of_colset extended_output_cols;
      residuals = Mv_relalg.Analysis.residual_template_key analysis;
      range_cols = Intern.of_sset Intern.cols reduced_range_cols;
      grouping_exprs =
        Mv_relalg.Analysis.grouping_expr_template_key analysis;
      grouping_cols = Intern.of_colset extended_grouping_cols;
      range_classes = List.map Intern.of_colset range_classes;
    }
  in
  {
    name;
    analysis;
    hub;
    source_tables = analysis.Mv_relalg.Analysis.table_set;
    output_expr_templates = Mv_relalg.Analysis.output_expr_templates analysis;
    extended_output_cols;
    residual_templates = Mv_relalg.Analysis.residual_templates analysis;
    reduced_range_cols;
    range_classes;
    grouping_expr_templates = Mv_relalg.Analysis.grouping_expr_templates analysis;
    extended_grouping_cols;
    keys;
    row_count;
    indexes;
    stale = Atomic.make false;
    base_epochs = [];
  }

let spjg t = t.analysis.Mv_relalg.Analysis.spjg

let is_stale t = Atomic.get t.stale

let mark_stale t = Atomic.set t.stale true

let mark_fresh ?epochs t =
  (match epochs with Some e -> t.base_epochs <- e | None -> ());
  Atomic.set t.stale false

let is_aggregate t = Mv_relalg.Spjg.is_aggregate (spjg t)

(* Output column of the view for a plain column reference [c], looked up
   through [equiv] (the query's classes for range/residual/output routing,
   the view's own classes for compensating equality predicates). *)
let output_for_col t equiv c =
  Mv_relalg.Analysis.output_for_col t.analysis equiv c

(* The view exposed as a table definition so substitutes can be parsed,
   executed and costed like any base table. Output columns are nullable
   unless they are bare references to non-null base columns. *)
let as_table_def schema t : Mv_catalog.Table_def.t =
  let sp = spjg t in
  let columns =
    List.map
      (fun (o : Mv_relalg.Spjg.out_item) ->
        match o.Mv_relalg.Spjg.def with
        | Mv_relalg.Spjg.Scalar (Expr.Col c) ->
            let cd = Mv_catalog.Schema.column_def_exn schema c in
            Mv_catalog.Column.make ~nullable:cd.Mv_catalog.Column.nullable
              o.Mv_relalg.Spjg.name cd.Mv_catalog.Column.dtype
        | Mv_relalg.Spjg.Scalar _ ->
            Mv_catalog.Column.make ~nullable:true o.Mv_relalg.Spjg.name
              Mv_base.Dtype.Float
        | Mv_relalg.Spjg.Aggregate Mv_relalg.Spjg.Count_star ->
            Mv_catalog.Column.make ~nullable:false o.Mv_relalg.Spjg.name
              Mv_base.Dtype.Int
        | Mv_relalg.Spjg.Aggregate _ ->
            Mv_catalog.Column.make ~nullable:true o.Mv_relalg.Spjg.name
              Mv_base.Dtype.Float)
      sp.Mv_relalg.Spjg.out
  in
  Mv_catalog.Table_def.make ~name:t.name ~columns ~primary_key:[] ()

let pp ppf t =
  Fmt.pf ppf "@[<v>view %s:@,%a@,hub: %a@]" t.name Mv_relalg.Spjg.pp (spjg t)
    Sset.pp t.hub
