(** The filter tree of section 4: a stack of lattice indexes — one per
    partitioning condition — that narrows the view population to a small
    candidate set before the per-view tests run.

    Level order follows the paper's implementation: hubs, source tables,
    output expressions, output columns, residual predicates, range
    constraints; aggregation views get two more levels (grouping
    expressions, grouping columns) while SPJ views terminate early, since
    an aggregation view can never answer an SPJ query. *)

type level =
  | Hubs
  | Source_tables
  | Output_exprs
  | Output_cols
  | Residuals
  | Range_cols
  | Grouping_exprs
  | Grouping_cols

val level_name : level -> string

type plan = P_level of level * plan | P_split of plan * plan | P_bucket

val plan_levels : plan -> level list
(** Levels in navigation order (split branches concatenated, duplicates
    possible across branches but not produced by the built-in plans). *)

val default_plan : plan

val backjoin_plan : plan
(** Without the two output-column/expression levels, which stop being
    necessary conditions once backjoins can restore missing columns. *)

type t

val create : ?plan:plan -> unit -> t

type query_info = {
  source_tables : Mv_util.Bitset.t;
  output_expr_templates : Mv_util.Bitset.t;
  output_classes : Mv_util.Bitset.t list;
  residual_templates : Mv_util.Bitset.t;
  extended_range_cols : Mv_util.Bitset.t;
  grouping_expr_templates : Mv_util.Bitset.t;
  grouping_classes : Mv_util.Bitset.t list;
  is_aggregate : bool;
}

val query_info : Mv_relalg.Analysis.t -> query_info
(** The query-side search keys (interned bitsets over the
    {!Mv_relalg.Intern} domains), computed once per analysis and memoized
    there ({!Mv_relalg.Analysis.keys}). *)

val view_key : level -> View.t -> Mv_util.Bitset.t
(** The view's precomputed key for a level (from {!View.keys}). *)

val strong_range_ok : query_info -> View.t -> bool
(** The full range-constraint condition of section 4.2.5, applied per
    candidate after the tree navigates by the weak condition. *)

val insert : t -> View.t -> unit
(** In-place: new lattice keys are linked into the level DAGs as needed
    (interner growth takes the mutex slow path after a freeze). Requires
    exclusive access — quiesce concurrent searches first. *)

val remove : t -> View.t -> unit
(** In-place: decrements subtree counts along the view's path and deletes
    lattice keys whose subtree emptied, so churn never accumulates dead
    nodes. Requires exclusive access, like {!insert}. *)

val candidates :
  ?obs:Mv_obs.Registry.t -> t -> Mv_relalg.Analysis.t -> View.t list
(** With [obs], each search bumps [filter_tree.searches], the per-level
    [filter_tree.level.<name>.in]/[.out] candidate counters (how many
    views entered the level's nodes and how many survived into their
    children), and [filter_tree.strong_range.in]/[.out] for the
    post-navigation section 4.2.5 check. *)

val stats : t -> int
(** Total lattice nodes across all levels. *)

val plan : t -> plan
(** The navigation plan this tree was created with — what a from-scratch
    rebuild of the same population must use to index identically (the
    registry's snapshot publication relies on this). *)

(** {1 Rejection provenance ("why-not")}

    A pruning stage is either one of the indexed levels, the SPJ/aggregate
    split (an aggregation view can never answer an SPJ query), or the
    post-navigation strong range check of section 4.2.5. *)

type stage =
  | Stage_level of level
  | Stage_agg_split
  | Stage_strong_range

val stage_name : stage -> string
(** [level_name] for levels, ["agg-split"], ["strong-range"]. *)

type fate = Pruned of stage  (** first stage whose test the view fails *)
          | Passed  (** the view reaches the candidate set *)

val provenance : t -> query_info -> View.t -> stage list * fate
(** Replay the tree's plan for one view: the stages the view enters, in
    navigation order (ending at the stage that pruned it, or spanning its
    whole path when it passed), and its fate. Exact with respect to
    {!candidates} — the view is in the candidate set iff its fate is
    [Passed] — because each stage applies the same predicate the search
    applies to the same precomputed key. Costs one predicate evaluation
    per stage on the view's path; the indexed search is untouched. *)

val fate : t -> query_info -> View.t -> fate

val stages : t -> stage list
(** Every stage of the tree's plan in navigation order (split branches
    concatenated), with [Stage_strong_range] last. *)
