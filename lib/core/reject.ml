(** Why a view was rejected for a given query expression. Carried through
    the pipeline for diagnostics, the CLI's EXPLAIN output and tests. *)

type t =
  | Missing_tables
  | Extra_tables_not_eliminable
  | Equijoin_subsumption_failed
  | Range_subsumption_failed of string
  | Residual_subsumption_failed of string
  | Compensation_not_computable of string
  | Output_not_computable of string
  | Grouping_incompatible of string
  | View_more_aggregated
  | Stale

let to_string = function
  | Missing_tables -> "view lacks tables required by the query"
  | Extra_tables_not_eliminable ->
      "extra view tables cannot be removed by cardinality-preserving joins"
  | Equijoin_subsumption_failed -> "equijoin subsumption test failed"
  | Range_subsumption_failed s -> "range subsumption test failed: " ^ s
  | Residual_subsumption_failed s -> "residual subsumption test failed: " ^ s
  | Compensation_not_computable s ->
      "compensating predicate not computable from view output: " ^ s
  | Output_not_computable s ->
      "query output not computable from view output: " ^ s
  | Grouping_incompatible s -> "grouping lists incompatible: " ^ s
  | View_more_aggregated -> "view is more aggregated than the query"
  | Stale ->
      "view is stale: base tables changed since it was last refreshed"

(* Stable machine-readable labels: one per constructor, detail payloads
   dropped. Used as aggregation keys (why-not tables, span attributes), so
   renaming one is a reporting-format change. *)
let label = function
  | Missing_tables -> "missing-tables"
  | Extra_tables_not_eliminable -> "extra-tables"
  | Equijoin_subsumption_failed -> "equijoin-subsumption"
  | Range_subsumption_failed _ -> "range-subsumption"
  | Residual_subsumption_failed _ -> "residual-subsumption"
  | Compensation_not_computable _ -> "compensation-not-computable"
  | Output_not_computable _ -> "output-not-computable"
  | Grouping_incompatible _ -> "grouping-incompatible"
  | View_more_aggregated -> "view-more-aggregated"
  | Stale -> "stale"

let pp ppf t = Fmt.string ppf (to_string t)
