(** The per-view health ledger: runtime accounts of what each registered
    view cost and earned, plus the observed query workload.

    Accounts are keyed by view {e name}, the stable identity that
    survives RCU snapshot republication and add/drop churn (descriptors
    are rebuilt; names are not). Counts are atomic, float accumulators
    sit behind a per-account mutex — safe to record from every serving
    domain concurrently, with no lost updates.

    Attribution points (DESIGN.md §14): candidate/matched in the
    view-matching rule ({!Registry.match_with_candidates}), chosen and
    estimated benefit at the optimizer's win site, staleness flips in
    {!Registry.mark_stale}, maintenance wall time in [Mv_engine.Ivm],
    cache hits in the serving front end. *)

type t

val create : unit -> t

(** {2 Recording} *)

val record_candidate : t -> string -> unit

val record_matched : t -> string -> unit

val record_chosen : t -> ?benefit:float -> string -> unit
(** The view appeared in a final plan; [benefit] is the estimated cost
    saved at this win site (direct minus substitute cost), accumulated
    when positive. *)

val record_cache_hit : t -> string -> unit

val record_stale : t -> string -> unit

val record_maintenance : t -> wall:float -> string -> unit

val record_query : t -> Mv_relalg.Spjg.t -> unit
(** Count one observed query (keyed by its SQL rendering) — the trace
    the ledger-driven advisor re-prices against. *)

(** {2 Reading} *)

type row = {
  r_view : string;
  r_candidate : int;
  r_matched : int;
  r_chosen : int;
  r_cache_hits : int;
  r_stale_flips : int;
  r_maint_events : int;
  r_benefit : float;
  r_maint_s : float;
}

val net : row -> float
(** Ranking heuristic: estimated cost saved minus maintenance wall
    seconds. Units differ, so only the ordering is meaningful. *)

val dead : row -> bool
(** Never matched. *)

val find : t -> string -> row option

val rows : t -> row list
(** All accounts, sorted by {!net} descending (name-tiebroken). *)

val queries_total : t -> int

val query_frequencies : t -> (Mv_relalg.Spjg.t * int) list
(** Distinct observed queries with occurrence counts, most frequent
    first. *)

val reset : t -> unit

(** {2 Surfaces} *)

val row_json : row -> Mv_obs.Json.t

val to_json : t -> Mv_obs.Json.t
(** [{"views": _, "queries_observed": _, "distinct_queries": _,
    "dead": [...], "accounts": [...]}]. *)

val families : ?prefix:string -> t -> Mv_obs.Export.family list
(** One [view]-labelled OpenMetrics family per ledger column
    (default prefix ["mv_view_"]); empty when no accounts. *)

val render : ?limit:int -> t -> string
(** The [mvopt top] table: one line per view, sorted by {!net}, dead
    views flagged. [limit] > 0 keeps only the first rows. *)
