(** The lattice index of section 4.1: keys are sets organized in a DAG by
    the subset partial order, supporting pruned subset/superset search and
    any monotone predicate traversal. Keys are interned bitsets
    ({!Mv_util.Bitset}); exact lookup hashes the key words directly.

    Searches are read-only and deduplicate visited nodes with per-search
    scratch state (pooled per OCaml domain), so concurrent searches of one
    lattice from many domains are safe, as are reentrant searches (a
    predicate re-entering the lattice). Mutations ([insert]/[delete])
    require exclusive access. *)

module Bitset = Mv_util.Bitset

module Index : Hashtbl.S with type key = Bitset.t

type 'a node = {
  id : int;
  key : Bitset.t;
  mutable payload : 'a option;
  mutable supers : 'a node list;  (** minimal strict supersets *)
  mutable subs : 'a node list;  (** maximal strict subsets *)
}

type 'a t = {
  mutable tops : 'a node list;  (** nodes without supersets *)
  mutable roots : 'a node list;  (** nodes without subsets *)
  index : 'a node Index.t;
  mutable next_id : int;
}

val create : unit -> 'a t

val size : 'a t -> int

val nodes : 'a t -> 'a node list

val find_exact : 'a t -> Bitset.t -> 'a node option

val search :
  'a t -> dir:[ `Down | `Up ] -> pred:(Bitset.t -> bool) -> 'a node list
(** Pruned traversal. [`Down] starts at the tops and follows subset
    pointers — correct when [pred] failing on a key implies it fails on
    every subset. [`Up] starts at the roots and follows superset pointers —
    correct when failure propagates to supersets. *)

val supersets_of : 'a t -> Bitset.t -> 'a node list

val subsets_of : 'a t -> Bitset.t -> 'a node list

val insert : 'a t -> Bitset.t -> 'a node
(** Insert (or return the existing node), relinking minimal-superset /
    maximal-subset edges and removing those made transitive. *)

val delete : 'a t -> Bitset.t -> unit
(** Remove a key, reconnecting its subsets to its supersets where no other
    path exists. *)
