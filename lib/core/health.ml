(* The per-view health ledger: runtime accounts of what each registered
   view cost and earned, keyed by view NAME so an account survives RCU
   snapshot republication and add/drop churn (the descriptors are
   rebuilt; the name is the stable identity — same reasoning as the
   staleness bit in DESIGN.md §12).

   Counts are atomic ints (no lock, no lost updates under multi-domain
   serving); the float accumulators (estimated cost saved, maintenance
   wall time) share a tiny per-account mutex, exactly like
   [Mv_obs.Instrument] timers. Account creation is rare and serialized
   by the ledger mutex; lookups take the same mutex because OCaml
   hashtables do not tolerate concurrent resize — one uncontended
   lock/unlock per attribution, nanoseconds next to the matching and
   optimization being measured. *)

module J = Mv_obs.Json
module E = Mv_obs.Export

type account = {
  a_candidate : int Atomic.t;  (** survived the filter tree *)
  a_matched : int Atomic.t;  (** produced a substitute *)
  a_chosen : int Atomic.t;  (** appeared in a final plan *)
  a_cache_hits : int Atomic.t;  (** served from plan cache / L1 *)
  a_stale_flips : int Atomic.t;  (** fresh -> stale transitions *)
  a_maint_events : int Atomic.t;  (** maintenance batches applied *)
  a_lock : Mutex.t;
  mutable a_benefit : float;
      (** cumulative estimated cost saved: direct minus substitute cost
          at the optimizer's win sites *)
  mutable a_maint_s : float;  (** cumulative maintenance wall seconds *)
}

type t = {
  lock : Mutex.t;
  accounts : (string, account) Hashtbl.t;
  queries : (string, Mv_relalg.Spjg.t * int ref) Hashtbl.t;
      (** observed workload: distinct query (by SQL rendering) -> count *)
  q_total : int Atomic.t;
}

let create () =
  {
    lock = Mutex.create ();
    accounts = Hashtbl.create 64;
    queries = Hashtbl.create 64;
    q_total = Atomic.make 0;
  }

let account t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.accounts name with
      | Some a -> a
      | None ->
          let a =
            {
              a_candidate = Atomic.make 0;
              a_matched = Atomic.make 0;
              a_chosen = Atomic.make 0;
              a_cache_hits = Atomic.make 0;
              a_stale_flips = Atomic.make 0;
              a_maint_events = Atomic.make 0;
              a_lock = Mutex.create ();
              a_benefit = 0.0;
              a_maint_s = 0.0;
            }
          in
          Hashtbl.replace t.accounts name a;
          a)

let bump field t name = Atomic.incr (field (account t name))

let record_candidate = bump (fun a -> a.a_candidate)

let record_matched = bump (fun a -> a.a_matched)

let record_cache_hit = bump (fun a -> a.a_cache_hits)

let record_stale = bump (fun a -> a.a_stale_flips)

let record_chosen t ?(benefit = 0.0) name =
  let a = account t name in
  Atomic.incr a.a_chosen;
  if benefit > 0.0 then
    Mutex.protect a.a_lock (fun () -> a.a_benefit <- a.a_benefit +. benefit)

let record_maintenance t ~wall name =
  let a = account t name in
  Atomic.incr a.a_maint_events;
  Mutex.protect a.a_lock (fun () -> a.a_maint_s <- a.a_maint_s +. wall)

(* ---- observed workload ---- *)

let record_query t spjg =
  Atomic.incr t.q_total;
  let key = Mv_relalg.Spjg.to_sql spjg in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.queries key with
      | Some (_, n) -> incr n
      | None -> Hashtbl.replace t.queries key (spjg, ref 1))

let queries_total t = Atomic.get t.q_total

let query_frequencies t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ (spjg, n) acc -> (spjg, !n) :: acc) t.queries [])
  |> List.sort (fun (a, na) (b, nb) ->
         match compare nb na with
         | 0 -> String.compare (Mv_relalg.Spjg.to_sql a) (Mv_relalg.Spjg.to_sql b)
         | c -> c)

(* ---- reporting ---- *)

type row = {
  r_view : string;
  r_candidate : int;
  r_matched : int;
  r_chosen : int;
  r_cache_hits : int;
  r_stale_flips : int;
  r_maint_events : int;
  r_benefit : float;
  r_maint_s : float;
}

let row_of name a =
  let benefit, maint_s =
    Mutex.protect a.a_lock (fun () -> (a.a_benefit, a.a_maint_s))
  in
  {
    r_view = name;
    r_candidate = Atomic.get a.a_candidate;
    r_matched = Atomic.get a.a_matched;
    r_chosen = Atomic.get a.a_chosen;
    r_cache_hits = Atomic.get a.a_cache_hits;
    r_stale_flips = Atomic.get a.a_stale_flips;
    r_maint_events = Atomic.get a.a_maint_events;
    r_benefit = benefit;
    r_maint_s = maint_s;
  }

(* Ranking heuristic for surfaces: estimated optimizer cost saved net of
   maintenance wall time. The units differ (cost model units vs seconds)
   so the absolute value is a heuristic, but the ORDERING is what the
   table is for: views with benefit and no maintenance rise, freeloaders
   that only ever pay maintenance sink below zero. *)
let net r = r.r_benefit -. r.r_maint_s

let dead r = r.r_matched = 0

let find t name =
  let a = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.accounts name) in
  Option.map (row_of name) a

let rows t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.accounts [])
  |> List.map (fun (name, a) -> row_of name a)
  |> List.sort (fun a b ->
         match compare (net b) (net a) with
         | 0 -> String.compare a.r_view b.r_view
         | c -> c)

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.accounts;
      Hashtbl.reset t.queries);
  Atomic.set t.q_total 0

let row_json r =
  J.Obj
    [
      ("view", J.String r.r_view);
      ("candidate", J.Int r.r_candidate);
      ("matched", J.Int r.r_matched);
      ("chosen", J.Int r.r_chosen);
      ("cache_hits", J.Int r.r_cache_hits);
      ("stale_flips", J.Int r.r_stale_flips);
      ("maint_events", J.Int r.r_maint_events);
      ("benefit", J.Float r.r_benefit);
      ("maint_s", J.Float r.r_maint_s);
      ("net", J.Float (net r));
      ("dead", J.Bool (dead r));
    ]

let to_json t =
  let rs = rows t in
  J.Obj
    [
      ("views", J.Int (List.length rs));
      ("queries_observed", J.Int (queries_total t));
      ("distinct_queries", J.Int (List.length (query_frequencies t)));
      ("dead", J.List (List.filter_map (fun r -> if dead r then Some (J.String r.r_view) else None) rs));
      ("accounts", J.List (List.map row_json rs));
    ]

(* ---- OpenMetrics families (per-view label on each sample) ---- *)

let families ?(prefix = "mv_view_") t =
  let rs = rows t in
  let label r = [ ("view", r.r_view) ] in
  let counter name help get =
    E.Counter
      {
        name = prefix ^ name;
        help;
        samples = List.map (fun r -> (label r, float_of_int (get r))) rs;
      }
  in
  let fcounter name help get =
    E.Counter
      { name = prefix ^ name; help; samples = List.map (fun r -> (label r, get r)) rs }
  in
  if rs = [] then []
  else
    [
      counter "candidate" "times the view survived the filter tree"
        (fun r -> r.r_candidate);
      counter "matched" "times the view produced a substitute"
        (fun r -> r.r_matched);
      counter "chosen" "times the view appeared in a final plan"
        (fun r -> r.r_chosen);
      counter "cache_hits" "times a cached plan using the view was served"
        (fun r -> r.r_cache_hits);
      counter "stale_flips" "fresh->stale transitions" (fun r -> r.r_stale_flips);
      counter "maintenance_batches" "maintenance batches applied"
        (fun r -> r.r_maint_events);
      fcounter "benefit" "estimated optimizer cost saved" (fun r -> r.r_benefit);
      fcounter "maintenance_seconds" "maintenance wall time paid"
        (fun r -> r.r_maint_s);
      E.Gauge
        {
          name = prefix ^ "net_benefit";
          help = "benefit minus maintenance (ranking heuristic)";
          samples = List.map (fun r -> (label r, net r)) rs;
        };
    ]

(* ---- human table (mvopt top) ---- *)

let render ?(limit = 0) t =
  let rs = rows t in
  let rs = if limit > 0 then List.filteri (fun i _ -> i < limit) rs else rs in
  let b = Buffer.create 1024 in
  let width =
    List.fold_left (fun acc r -> max acc (String.length r.r_view)) 4 rs
  in
  Printf.bprintf b "  %-*s %9s %9s %9s %7s %7s %6s %12s %10s %12s  %s\n" width
    "view" "candidate" "matched" "chosen" "l1+hit" "stale" "maint" "benefit"
    "maint_s" "net" "";
  List.iter
    (fun r ->
      Printf.bprintf b "  %-*s %9d %9d %9d %7d %7d %6d %12.1f %10.4f %12.1f  %s\n"
        width r.r_view r.r_candidate r.r_matched r.r_chosen r.r_cache_hits
        r.r_stale_flips r.r_maint_events r.r_benefit r.r_maint_s (net r)
        (if dead r then "DEAD" else ""))
    rs;
  Buffer.contents b
