(** A materialized view: its SPJG definition plus the precomputed
    description the paper keeps in memory for fast filtering (section 4). *)

open Mv_base
module Sset = Mv_util.Sset
module Bitset = Mv_util.Bitset

(** The view's filter-tree keys, interned once at registration; field
    order mirrors the filter-tree levels. *)
type keys = {
  hub : Bitset.t;
  source_tables : Bitset.t;
  output_exprs : Bitset.t;
  output_cols : Bitset.t;
  residuals : Bitset.t;
  range_cols : Bitset.t;
  grouping_exprs : Bitset.t;
  grouping_cols : Bitset.t;
  range_classes : Bitset.t list;
      (** full range-constraint list for the strong post-check *)
}

type t = {
  name : string;
  analysis : Mv_relalg.Analysis.t;
  hub : Sset.t;
  source_tables : Sset.t;
  output_expr_templates : Sset.t;
  extended_output_cols : Col.Set.t;
  residual_templates : Sset.t;
  reduced_range_cols : Sset.t;
      (** range-constrained columns in trivial equivalence classes — the
          weak range condition key (section 4.2.5) *)
  range_classes : Col.Set.t list;
      (** full range-constraint list: one class per constrained range *)
  grouping_expr_templates : Sset.t;
  extended_grouping_cols : Col.Set.t;
  keys : keys;  (** interned bitset keys over the fields above *)
  mutable row_count : int;  (** statistics for the cost model *)
  mutable indexes : string list list;
      (** secondary indexes over output columns; considered automatically
          by the cost model and built at materialization time *)
  stale : bool Atomic.t;
      (** freshness mark: set when a base table is written without the
          view being maintained; read through {!is_stale} *)
  mutable base_epochs : (string * int) list;
      (** per-base-table database write epochs at the last refresh *)
}

exception Rejected of string

val cols_to_strings : Col.Set.t -> Sset.t

val create :
  ?relaxed_nulls:bool ->
  ?row_count:int ->
  ?indexes:string list list ->
  Mv_catalog.Schema.t ->
  name:string ->
  Mv_relalg.Spjg.t ->
  t
(** Validates indexability and precomputes the descriptor.
    @raise Rejected when the definition is not indexable. *)

val spjg : t -> Mv_relalg.Spjg.t

val is_stale : t -> bool
(** [true] once a base-table write outran the view's contents. Stale views
    still match by default; a [fresh_only] matcher rejects them with
    {!Reject.Stale}. *)

val mark_stale : t -> unit

val mark_fresh : ?epochs:(string * int) list -> t -> unit
(** Clear the staleness mark, optionally recording the base-table write
    epochs the contents now correspond to. *)

val is_aggregate : t -> bool

val output_for_col : t -> Mv_relalg.Equiv.t -> Col.t -> string option

val as_table_def : Mv_catalog.Schema.t -> t -> Mv_catalog.Table_def.t
(** The view exposed as a table definition, so substitutes execute and
    cost like base-table scans. *)

val pp : Format.formatter -> t -> unit
