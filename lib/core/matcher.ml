(** The complete view-matching pipeline of section 3: given an analyzed
    query expression and one view, either construct a substitute or explain
    the rejection.

    With [backjoins] enabled (the extension sketched in section 7), a
    failed routing pass is retried once: the tables owning the unresolved
    columns are joined back to the view on unique keys the view outputs,
    restoring the missing columns without changing cardinality. *)

module A = Mv_relalg.Analysis
module Spjg = Mv_relalg.Spjg
module Residual = Mv_relalg.Residual

let ( let* ) = Result.bind

(* Does every expression of [xs] match some expression of [ys] under
   [q_equiv]? (grouping-list subset test, section 3.3). *)
let exprs_subset q_equiv xs ys =
  List.for_all (fun x -> List.exists (Residual.exprs_match q_equiv x) ys) xs

(* Decide the aggregation situation. *)
let grouping (view : View.t) (q_equiv : Mv_relalg.Equiv.t) (query : A.t) :
    ([ `Plain | `Agg_over_spj | `Agg_same | `Agg_regroup ], Reject.t) result =
  let q_gb = query.A.spjg.Spjg.group_by in
  let v_gb = (View.spjg view).Spjg.group_by in
  match (q_gb, v_gb) with
  | None, None -> Ok `Plain
  | None, Some _ -> Error Reject.View_more_aggregated
  | Some _, None -> Ok `Agg_over_spj
  | Some gq, Some gv ->
      if not (exprs_subset q_equiv gq gv) then
        Error
          (Reject.Grouping_incompatible
             "query grouping list is not a subset of the view's")
      else if exprs_subset q_equiv gv gq then Ok `Agg_same
      else Ok `Agg_regroup

(* Map the query's group-by expressions onto the view's output. *)
let substitute_group_by (router : Routing.t) q_equiv ~situation (query : A.t) :
    (Mv_base.Expr.t list option, Reject.t) result =
  match (situation, query.A.spjg.Spjg.group_by) with
  | `Plain, _ | `Agg_same, _ -> Ok None
  | (`Agg_over_spj | `Agg_regroup), Some gq ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | g :: rest -> (
            match Output_match.scalar router q_equiv g with
            | Some g' -> go (g' :: acc) rest
            | None ->
                Error
                  (Reject.Grouping_incompatible
                     (Fmt.str "grouping expression %s not available"
                        (Mv_base.Expr.to_string g))))
      in
      go [] gq
  | (`Agg_over_spj | `Agg_regroup), None -> assert false

(* One construction pass with a given router. *)
let build_substitute (router : Routing.t) ~backjoin_preds
    (tests : Spj_match.ok) ~situation (query : A.t) :
    (Substitute.t, Reject.t) result =
  let q_equiv = tests.Spj_match.q_equiv in
  let* preds = Compensate.all router tests in
  let* group_by = substitute_group_by router q_equiv ~situation query in
  let* out =
    Output_match.out_items router q_equiv ~situation query.A.spjg.Spjg.out
  in
  match
    Substitute.make ~backjoins:router.Routing.backjoins ~backjoin_preds
      router.Routing.view ~preds ~group_by ~out
  with
  | s -> Ok s
  | exception Spjg.Invalid msg ->
      Error (Reject.Output_not_computable ("substitute invalid: " ^ msg))

let match_view ?(relaxed_nulls = false) ?(backjoins = false)
    ?(fresh_only = false) ?spans ~(query : A.t) (view : View.t) :
    (Substitute.t, Reject.t) result =
  if fresh_only && View.is_stale view then begin
    (* freshness gate (DESIGN.md §12): a stale view may answer with data
       its base tables have since outrun, so a fresh-only caller rejects
       it before any structural test runs *)
    Mv_obs.Span.annotate spans (fun () ->
        [
          ("result", Mv_obs.Span.Str "rejected");
          ("reject", Mv_obs.Span.Str (Reject.label Reject.Stale));
          ("detail", Mv_obs.Span.Str (Reject.to_string Reject.Stale));
        ]);
    Error Reject.Stale
  end
  else
  let checks =
    Mv_obs.Span.wrap spans "spj-tests" (fun _ ->
        let* tests = Spj_match.run ~relaxed_nulls query view in
        let* situation = grouping view tests.Spj_match.q_equiv query in
        Ok (tests, situation))
  in
  let result =
    match checks with
    | Error _ as e -> e
    | Ok (tests, situation) ->
        Mv_obs.Span.wrap spans "construct" (fun _ ->
            (* Construction fails fast, so a failing pass may only reveal
               the first unresolved table; iterate, folding newly discovered
               tables into the backjoin set, until success or no progress.
               Each round adds at least one table, so this terminates within
               the query's table count. *)
            let rec attempt joined preds_so_far first_error =
              let router =
                if joined = [] then Routing.plain view
                else Routing.with_backjoins view joined
              in
              match
                build_substitute router ~backjoin_preds:preds_so_far tests
                  ~situation query
              with
              | Ok s -> Ok s
              | Error e -> (
                  let e = Option.value first_error ~default:e in
                  if not backjoins then Error e
                  else
                    let fresh =
                      List.filter
                        (fun t -> not (List.mem t joined))
                        (Routing.missing_tables router)
                    in
                    match fresh with
                    | [] -> Error e
                    | _ -> (
                        let joins =
                          List.map
                            (fun t -> (t, Routing.backjoin_preds view t))
                            fresh
                        in
                        if List.exists (fun (_, p) -> p = None) joins then
                          Error e
                        else
                          let new_preds =
                            List.concat_map
                              (fun (_, p) -> Option.value ~default:[] p)
                              joins
                          in
                          attempt (fresh @ joined) (new_preds @ preds_so_far)
                            (Some e)))
            in
            attempt [] [] None)
  in
  (match result with
  | Ok _ ->
      Mv_obs.Span.annotate spans (fun () ->
          [ ("result", Mv_obs.Span.Str "matched") ])
  | Error e ->
      Mv_obs.Span.annotate spans (fun () ->
          [
            ("result", Mv_obs.Span.Str "rejected");
            ("reject", Mv_obs.Span.Str (Reject.label e));
            ("detail", Mv_obs.Span.Str (Reject.to_string e));
          ]));
  result

(* Convenience entry point used by tests and examples. *)
let match_spjg ?relaxed_nulls ?backjoins ?fresh_only schema
    ~(query : Spjg.t) (view : View.t) =
  let analysis = A.analyze schema query in
  match_view ?relaxed_nulls ?backjoins ?fresh_only ~query:analysis view
