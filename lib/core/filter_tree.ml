(** The filter tree of section 4: a stack of lattice indexes, one per
    partitioning condition, that narrows the view population to a small
    candidate set before the expensive per-view tests run.

    Level order follows the paper's implementation: hubs, source tables,
    output expressions, output columns, residual constraints, range
    constraints; aggregation views then get two more levels (grouping
    expressions, grouping columns) while SPJ views terminate in their own
    bucket — an SPJ view can answer an aggregation query, but an
    aggregation view can never answer an SPJ query. *)

module Bitset = Mv_util.Bitset
module A = Mv_relalg.Analysis

type level =
  | Hubs
  | Source_tables
  | Output_exprs
  | Output_cols
  | Residuals
  | Range_cols
  | Grouping_exprs
  | Grouping_cols

let level_name = function
  | Hubs -> "hubs"
  | Source_tables -> "source-tables"
  | Output_exprs -> "output-expressions"
  | Output_cols -> "output-columns"
  | Residuals -> "residual-predicates"
  | Range_cols -> "range-constrained-columns"
  | Grouping_exprs -> "grouping-expressions"
  | Grouping_cols -> "grouping-columns"

type plan = P_level of level * plan | P_split of plan * plan | P_bucket

(* Levels of a plan in navigation order (split branches concatenated). *)
let rec plan_levels = function
  | P_bucket -> []
  | P_level (l, rest) -> l :: plan_levels rest
  | P_split (a, b) -> plan_levels a @ plan_levels b

let default_plan =
  let agg = List.fold_right (fun l p -> P_level (l, p))
      [ Grouping_exprs; Grouping_cols ] P_bucket
  in
  List.fold_right (fun l p -> P_level (l, p))
    [ Hubs; Source_tables; Output_exprs; Output_cols; Residuals; Range_cols ]
    (P_split (P_bucket, agg))

(* With base-table backjoins enabled, a view missing output columns can
   still serve a query, so the two output conditions are no longer
   necessary conditions and their levels must be dropped (weaker filtering,
   still sound). *)
let backjoin_plan =
  let agg = List.fold_right (fun l p -> P_level (l, p))
      [ Grouping_exprs; Grouping_cols ] P_bucket
  in
  List.fold_right (fun l p -> P_level (l, p))
    [ Hubs; Source_tables; Residuals; Range_cols ]
    (P_split (P_bucket, agg))

type node =
  | Bucket of { mutable views : View.t list }
  | Agg_split of { spj : node; agg : node }
  | Level of {
      level : level;
      rest : plan;
      lattice : node Lattice.t;
      mutable nviews : int;
          (** views in this subtree — lets a search report how many
              candidates each level received and passed on without ever
              enumerating them *)
    }

let rec new_node = function
  | P_bucket -> Bucket { views = [] }
  | P_split (ps, pa) -> Agg_split { spj = new_node ps; agg = new_node pa }
  | P_level (level, rest) ->
      Level { level; rest; lattice = Lattice.create (); nviews = 0 }

(* Views under a node: O(1) at levels, O(bucket size) at the leaves. *)
let rec views_under = function
  | Bucket b -> List.length b.views
  | Agg_split s -> views_under s.spj + views_under s.agg
  | Level l -> l.nviews

(* Cached per-level counter handles: counters are resolved from the obs
   registry by dotted-name lookup, which costs a string concatenation and a
   hash per call — far too much for something the search does at every
   visited level node. The handles are plain mutable records, so resolving
   them once per (tree, obs) pairing and indexing by level is safe. *)
type obs_handles = {
  h_obs : Mv_obs.Registry.t;
  h_searches : Mv_obs.Instrument.counter;
  h_level_in : Mv_obs.Instrument.counter array;  (** indexed by level *)
  h_level_out : Mv_obs.Instrument.counter array;
  h_strong_in : Mv_obs.Instrument.counter;
  h_strong_out : Mv_obs.Instrument.counter;
}

type t = { plan : plan; root : node; handles : obs_handles option Atomic.t }

let create ?(plan = default_plan) () =
  { plan; root = new_node plan; handles = Atomic.make None }

let level_index = function
  | Hubs -> 0
  | Source_tables -> 1
  | Output_exprs -> 2
  | Output_cols -> 3
  | Residuals -> 4
  | Range_cols -> 5
  | Grouping_exprs -> 6
  | Grouping_cols -> 7

let all_levels =
  [
    Hubs;
    Source_tables;
    Output_exprs;
    Output_cols;
    Residuals;
    Range_cols;
    Grouping_exprs;
    Grouping_cols;
  ]

(* ---- keys ----

   All level keys are interned bitsets ({!Mv_util.Bitset} over the
   {!Mv_relalg.Intern} domains): the view side is precomputed once at
   registration ({!View.keys}), the query side once per rule invocation,
   and every subset / disjointness test the navigation performs is a
   word-level AND loop. *)

let view_key level (v : View.t) : Bitset.t =
  let k = v.View.keys in
  match level with
  | Hubs -> k.View.hub
  | Source_tables -> k.View.source_tables
  | Output_exprs -> k.View.output_exprs
  | Output_cols -> k.View.output_cols
  | Residuals -> k.View.residuals
  | Range_cols -> k.View.range_cols
  | Grouping_exprs -> k.View.grouping_exprs
  | Grouping_cols -> k.View.grouping_cols

(* Query-side search keys: the analysis' interned key record, computed once
   per analyzed expression and memoized there (see {!A.keys}). *)
type query_info = A.keys = {
  source_tables : Bitset.t;
  output_expr_templates : Bitset.t;
  output_classes : Bitset.t list;
      (** query equivalence class (interned) of each bare-column output *)
  residual_templates : Bitset.t;
  extended_range_cols : Bitset.t;
      (** all columns of every range-constrained query class *)
  grouping_expr_templates : Bitset.t;
  grouping_classes : Bitset.t list;
  is_aggregate : bool;
}

let query_info (q : A.t) : query_info = A.keys q

(* The search condition at each level, as (traversal direction, monotone
   predicate on node keys). Interning preserves monotonicity: string-set
   inclusion maps to bitset inclusion bit-for-bit, so `Up/`Down pruning
   stays sound (see DESIGN.md). *)
let level_search level (qi : query_info) =
  let covers_classes classes k =
    List.for_all (fun cls -> not (Bitset.inter_empty k cls)) classes
  in
  match level with
  | Hubs -> (`Up, fun k -> Bitset.subset k qi.source_tables)
  | Source_tables -> (`Down, fun k -> Bitset.subset qi.source_tables k)
  | Output_exprs -> (`Down, fun k -> Bitset.subset qi.output_expr_templates k)
  | Output_cols -> (`Down, covers_classes qi.output_classes)
  | Residuals -> (`Up, fun k -> Bitset.subset k qi.residual_templates)
  | Range_cols -> (`Up, fun k -> Bitset.subset k qi.extended_range_cols)
  | Grouping_exprs ->
      (`Down, fun k -> Bitset.subset qi.grouping_expr_templates k)
  | Grouping_cols -> (`Down, covers_classes qi.grouping_classes)

(* The strong range-constraint condition (section 4.2.5) cannot be indexed
   directly (it involves the view's full, class-aware constraint list), so
   the tree navigates by the weak condition and this check runs once per
   surviving candidate. *)
let strong_range_ok (qi : query_info) (v : View.t) =
  List.for_all
    (fun cls -> not (Bitset.inter_empty cls qi.extended_range_cols))
    v.View.keys.View.range_classes

(* ---- insertion ---- *)

let rec insert_node node (v : View.t) =
  match node with
  | Bucket b -> b.views <- v :: b.views
  | Agg_split s ->
      insert_node (if View.is_aggregate v then s.agg else s.spj) v
  | Level l ->
      l.nviews <- l.nviews + 1;
      let key = view_key l.level v in
      let ln = Lattice.insert l.lattice key in
      let child =
        match ln.Lattice.payload with
        | Some c -> c
        | None ->
            let c = new_node l.rest in
            ln.Lattice.payload <- Some c;
            c
      in
      insert_node child v

let insert t v = insert_node t.root v

(* Removal is fully in place: the view leaves its bucket, every level on
   its path decrements its subtree count, and a lattice key whose subtree
   just emptied is deleted ({!Lattice.delete} relinks subset/superset
   edges around it) — so a long-lived registry that churns views never
   accumulates dead index nodes and never needs a rebuild. *)
let rec remove_node node (v : View.t) =
  match node with
  | Bucket b ->
      b.views <- List.filter (fun x -> x.View.name <> v.View.name) b.views
  | Agg_split s -> remove_node (if View.is_aggregate v then s.agg else s.spj) v
  | Level l -> (
      let key = view_key l.level v in
      match Lattice.find_exact l.lattice key with
      | None -> ()
      | Some ln -> (
          match ln.Lattice.payload with
          | None -> ()
          | Some child ->
              let before = views_under child in
              remove_node child v;
              let after = views_under child in
              l.nviews <- l.nviews - (before - after);
              if after = 0 then Lattice.delete l.lattice key))

let remove t v = remove_node t.root v

(* ---- search ---- *)

(* [record] is called once per visited level node with the number of views
   the node received and the number its surviving children still hold —
   summed per level by the caller, this is the paper's level-by-level
   pruning breakdown (Figures 6-7). *)
let rec search_node ?record node (qi : query_info) acc =
  match node with
  | Bucket b -> List.rev_append b.views acc
  | Agg_split s ->
      let acc = search_node ?record s.spj qi acc in
      if qi.is_aggregate then search_node ?record s.agg qi acc else acc
  | Level l ->
      let dir, pred = level_search l.level qi in
      let hits = Lattice.search l.lattice ~dir ~pred in
      (match record with
      | None -> ()
      | Some f ->
          let out =
            List.fold_left
              (fun n (ln : node Lattice.node) ->
                match ln.Lattice.payload with
                | Some child -> n + views_under child
                | None -> n)
              0 hits
          in
          f l.level ~in_:l.nviews ~out);
      List.fold_left
        (fun acc (ln : node Lattice.node) ->
          match ln.Lattice.payload with
          | Some child -> search_node ?record child qi acc
          | None -> acc)
        acc hits

let level_counter obs level suffix =
  Mv_obs.Registry.counter obs
    ("filter_tree.level." ^ level_name level ^ "." ^ suffix)

(* Resolve (and cache) the counter handles for [obs]. The cache is keyed by
   physical equality on the registry: benches and tests that swap in a
   fresh registry get fresh handles, the common case (one registry per
   process) resolves everything exactly once. The cache cell is atomic so
   concurrent searches from several domains can share one tree: counter
   creation below is idempotent (the obs registry returns the existing
   instrument), so two domains racing here cache equivalent handles. *)
let handles_for t obs =
  match Atomic.get t.handles with
  | Some h when h.h_obs == obs -> h
  | _ ->
      let searches = Mv_obs.Registry.counter obs "filter_tree.searches" in
      let per_level suffix =
        (* every slot is overwritten below; [searches] is just a filler *)
        let arr = Array.make 8 searches in
        List.iter
          (fun l -> arr.(level_index l) <- level_counter obs l suffix)
          all_levels;
        arr
      in
      let h =
        {
          h_obs = obs;
          h_searches = searches;
          h_level_in = per_level "in";
          h_level_out = per_level "out";
          h_strong_in =
            Mv_obs.Registry.counter obs "filter_tree.strong_range.in";
          h_strong_out =
            Mv_obs.Registry.counter obs "filter_tree.strong_range.out";
        }
      in
      Atomic.set t.handles (Some h);
      h

(* Candidate views for the analyzed query expression. With [obs], bump
   [filter_tree.searches], per-level [filter_tree.level.<name>.in/out]
   and the post-navigation [filter_tree.strong_range.in/out] counters. *)
let candidates ?obs t (q : A.t) : View.t list =
  let qi = query_info q in
  let handles = Option.map (handles_for t) obs in
  let record =
    match handles with
    | None -> None
    | Some h ->
        Mv_obs.Instrument.incr h.h_searches;
        Some
          (fun level ~in_ ~out ->
            let i = level_index level in
            Mv_obs.Instrument.add h.h_level_in.(i) in_;
            Mv_obs.Instrument.add h.h_level_out.(i) out)
  in
  let navigated = search_node ?record t.root qi [] in
  let survivors = List.filter (strong_range_ok qi) navigated in
  (match handles with
  | None -> ()
  | Some h ->
      Mv_obs.Instrument.add h.h_strong_in (List.length navigated);
      Mv_obs.Instrument.add h.h_strong_out (List.length survivors));
  survivors

(* ---- provenance ---- *)

type stage =
  | Stage_level of level
  | Stage_agg_split
  | Stage_strong_range

let stage_name = function
  | Stage_level l -> level_name l
  | Stage_agg_split -> "agg-split"
  | Stage_strong_range -> "strong-range"

type fate = Pruned of stage | Passed

(* Why-not replay: walk the tree's plan for ONE view, applying exactly the
   predicates the search applies — each level's [level_search] predicate to
   the view's own precomputed key, the agg-split branch rule, and the
   post-navigation strong-range check. A view reaches the candidate set iff
   its key passes the predicate at every level on its path (the search
   soundness property, qcheck-tested against a reference implementation),
   so this replay names the exact stage that pruned it without ever
   touching — or slowing — the indexed search itself. *)
let provenance t (qi : query_info) (v : View.t) : stage list * fate =
  let agg_view = View.is_aggregate v in
  let rec go plan acc =
    match plan with
    | P_level (l, rest) ->
        let acc = Stage_level l :: acc in
        let _, pred = level_search l qi in
        if pred (view_key l v) then go rest acc
        else (List.rev acc, Pruned (Stage_level l))
    | P_split (spj, agg) ->
        let acc = Stage_agg_split :: acc in
        if not agg_view then go spj acc
        else if qi.is_aggregate then go agg acc
        else (List.rev acc, Pruned Stage_agg_split)
    | P_bucket ->
        let acc = Stage_strong_range :: acc in
        if strong_range_ok qi v then (List.rev acc, Passed)
        else (List.rev acc, Pruned Stage_strong_range)
  in
  go t.plan []

let fate t qi v = snd (provenance t qi v)

let stages t =
  let rec go = function
    | P_bucket -> []
    | P_level (l, rest) -> Stage_level l :: go rest
    | P_split (spj, agg) -> (Stage_agg_split :: go spj) @ go agg
  in
  go t.plan @ [ Stage_strong_range ]

(* Number of lattice nodes across all levels, for diagnostics. *)
let rec node_count = function
  | Bucket _ -> 0
  | Agg_split s -> node_count s.spj + node_count s.agg
  | Level l ->
      List.fold_left
        (fun acc (ln : node Lattice.node) ->
          acc
          + match ln.Lattice.payload with Some c -> node_count c | None -> 0)
        (Lattice.size l.lattice)
        (Lattice.nodes l.lattice)

let stats t = node_count t.root
let plan t = t.plan
