(** An in-memory base table: definition plus rows (arrays ordered like the
    definition's column list). *)

open Mv_base

type t = {
  def : Mv_catalog.Table_def.t;
  mutable rows : Value.t array list;
}

let create def = { def; rows = [] }

let of_rows def rows = { def; rows }

let name t = t.def.Mv_catalog.Table_def.name

let def_of t = t.def

let row_count t = List.length t.rows

let col_index t cname =
  let rec go i = function
    | [] -> None
    | (c : Mv_catalog.Column.t) :: rest ->
        if c.Mv_catalog.Column.name = cname then Some i else go (i + 1) rest
  in
  go 0 t.def.Mv_catalog.Table_def.columns

let col_index_exn t cname =
  match col_index t cname with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Table.col_index: no column %s in %s" cname (name t))

let insert t row =
  if Array.length row <> List.length t.def.Mv_catalog.Table_def.columns then
    invalid_arg "Table.insert: row arity mismatch";
  t.rows <- row :: t.rows

(* Remove exactly one instance equal to [row] (bag semantics: duplicates
   lose a single copy). Returns [false], leaving the table untouched, when
   no instance matches. *)
let delete t row =
  if Array.length row <> List.length t.def.Mv_catalog.Table_def.columns then
    invalid_arg "Table.delete: row arity mismatch";
  let rec go acc = function
    | [] -> false
    | r :: rest ->
        if r = row then begin
          t.rows <- List.rev_append acc rest;
          true
        end
        else go (r :: acc) rest
  in
  go [] t.rows

(* Verify the table's CHECK constraints over the data; returns the
   predicates that some row violates. *)
let check_violations t =
  let env row (c : Mv_base.Col.t) =
    match col_index t c.Mv_base.Col.col with
    | Some i -> row.(i)
    | None -> Mv_base.Value.Null
  in
  List.filter
    (fun check ->
      List.exists
        (fun row -> Mv_base.Eval.pred (env row) check = Mv_base.Pred.False)
        t.rows)
    t.def.Mv_catalog.Table_def.checks

(* Check declared not-null constraints over the data; returns offending
   column names (used by datagen tests). *)
let null_violations t =
  List.filteri (fun _ _ -> true) t.def.Mv_catalog.Table_def.columns
  |> List.mapi (fun i (c : Mv_catalog.Column.t) -> (i, c))
  |> List.filter_map (fun (i, (c : Mv_catalog.Column.t)) ->
         if c.Mv_catalog.Column.nullable then None
         else if List.exists (fun row -> Value.is_null row.(i)) t.rows then
           Some c.Mv_catalog.Column.name
         else None)
