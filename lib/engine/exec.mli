(** Direct execution of SPJG blocks with SQL bag semantics: greedy hash
    joins along column-equality predicates, each conjunct applied as soon
    as its columns are bound, then grouping and projection.

    Adaptive mode ([~adaptive:true], optionally with [~stats]) picks the
    join order by estimated intermediate cardinality and a per-join
    strategy from the actual cardinalities at hand — an indexed nested
    loop when a declared index leads with a join key and the probe side is
    small, a plain nested loop below a build-side threshold, a hash join
    above it. Strategy picks are counted as
    [exec.join.strategy.hash|nlj|inlj] and per-join estimation error (the
    q-error [max(est/actual, actual/est)]) is observed as
    [exec.estimation.qerror], both on [Mv_obs.Registry.global]. All
    strategies produce the same bag. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type bindings = Value.t Col.Map.t

val nlj_threshold : int
(** Probe-side row-count bound for preferring an index nested loop (and
    the side of the square that defines {!nlj_budget}). *)

val nlj_budget : int
(** A plain nested loop replaces the hash join when
    [build_rows * probe_rows] is within this budget: the loop's total key
    comparisons stay small enough to beat the hash join's per-row hashing
    overhead (one hash operation costs roughly a dozen key
    comparisons). *)

val count_strategy : string -> unit
(** Bump [exec.join.strategy.<kind>] on the global registry. Exposed so
    [Mv_opt.Plan_exec] records its strategy picks under the same names. *)

val observe_qerror : est:float -> actual:int -> unit
(** Record [max(est/actual, actual/est)] in the [exec.estimation.qerror]
    histogram (skipped unless both sides are positive). *)

val env_of : bindings -> Col.t -> Value.t
(** @raise Eval.Eval_error on unbound columns. *)

val eval_agg : bindings list -> Spjg.agg -> Value.t
(** Aggregate over one group's rows; NULLs are skipped, empty sums are
    NULL (except [Sum0], which coalesces to 0). *)

val spj_tuples :
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Database.t ->
  Spjg.t ->
  bindings list
(** The fully-joined, fully-filtered bag of tuples of the SPJ part.
    [adaptive] defaults to [false]: the original greedy
    connectivity-ordered hash-join pipeline. *)

val execute :
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Database.t ->
  Spjg.t ->
  Relation.t

val materialize : Database.t -> Mv_core.View.t -> Table.t
(** Compute the view's contents, register them as a table in the database,
    and record the row count on the view descriptor — which is also marked
    fresh at the base tables' current write epochs (DESIGN.md §12). *)

val materialize_stats :
  ?buckets:int ->
  Database.t ->
  Mv_core.View.t ->
  Mv_catalog.Stats.t ->
  Table.t * Mv_catalog.Stats.t
(** {!materialize}, additionally returning [stats] extended with a
    statistics entry built from the view's actual contents (shadowing any
    earlier entry of the same name), so
    {!Mv_opt.Cost.estimate_view_rows} and substitute costing use measured
    numbers for unmaintained views. *)

val execute_substitute :
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Database.t ->
  Mv_core.Substitute.t ->
  Relation.t
(** The substitute's view must have been materialized first. *)

val execute_union :
  ?adaptive:bool ->
  ?stats:Mv_catalog.Stats.t ->
  Database.t ->
  Mv_core.Union_substitute.t ->
  Relation.t
(** UNION ALL of the parts; every part's view must be materialized. *)
