(** A database instance: the catalog plus table contents (base tables and
    materialized views alike). *)

type t = {
  schema : Mv_catalog.Schema.t;
  tables : (string, Table.t) Hashtbl.t;
  declared_indexes : (string, string list list) Hashtbl.t;
  index_cache : (string * string list, Index.t) Hashtbl.t;
}

val create : Mv_catalog.Schema.t -> t
(** Empty tables for every catalog table. *)

val table : t -> string -> Table.t option

val table_exn : t -> string -> Table.t

val add_table : t -> Table.t -> unit
(** Register a derived table (e.g. materialized view contents). *)

val insert : t -> string -> Mv_base.Value.t array -> unit
(** Also invalidates any built index over the table. *)

val declare_index : t -> table:string -> cols:string list -> unit
(** Declare a secondary index (on a base table or a materialized view);
    built lazily on first use. *)

val declared_indexes : t -> string -> string list list

val index : t -> table:string -> cols:string list -> Index.t option
(** The built index, if declared (building it on first call). *)

val row_count : t -> string -> int

val stats : ?buckets:int -> t -> Mv_catalog.Stats.t
(** Per-table, per-column statistics computed from the actual contents in
    one pass: min/max/ndv plus equi-depth histograms (at most [buckets]
    buckets, default 16) and exhaustive MCV lists for low-NDV columns — see
    {!Mv_catalog.Stats.build_column}. *)
