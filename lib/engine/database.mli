(** A database instance: the catalog plus table contents (base tables and
    materialized views alike). *)

type t = {
  schema : Mv_catalog.Schema.t;
  tables : (string, Table.t) Hashtbl.t;
  declared_indexes : (string, string list list) Hashtbl.t;
  index_cache : (string * string list, Index.t) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;
      (** per-table write epoch; read through {!table_epoch} *)
}

val create : Mv_catalog.Schema.t -> t
(** Empty tables for every catalog table. *)

val table : t -> string -> Table.t option

val table_exn : t -> string -> Table.t

val add_table : t -> Table.t -> unit
(** Register a derived table (e.g. materialized view contents). *)

val insert : t -> string -> Mv_base.Value.t array -> unit
(** Also invalidates any built index over the table and bumps its write
    epoch. *)

val delete : t -> string -> Mv_base.Value.t array -> unit
(** Remove one instance of the row (bag semantics); invalidates built
    indexes and bumps the write epoch like {!insert}.
    @raise Invalid_argument when no instance matches. *)

val table_epoch : t -> string -> int
(** The table's write epoch: 0 until the first write, bumped by every
    {!insert}/{!delete}/{!touch}. View freshness marks record these
    (DESIGN.md §12). *)

val touch : t -> string -> unit
(** Record an out-of-band write to the table: invalidate built indexes
    and bump its write epoch. Used by [Ivm] after rewriting a
    materialized view's rows in place. *)

val copy : t -> t
(** An independent instance with the same contents (row lists are shared
    as immutable values, per-table row chains diverge on write). Declared
    indexes carry over; built indexes and write epochs start empty. *)

val declare_index : t -> table:string -> cols:string list -> unit
(** Declare a secondary index (on a base table or a materialized view);
    built lazily on first use. *)

val declared_indexes : t -> string -> string list list

val index : t -> table:string -> cols:string list -> Index.t option
(** The built index, if declared (building it on first call). *)

val row_count : t -> string -> int

val table_stats : ?buckets:int -> t -> string -> Mv_catalog.Stats.table_stats
(** One table's statistics from its actual contents — what {!stats} runs
    per table, exposed so IVM can rebuild a single maintained view's
    entry without rescanning the whole database. *)

val stats : ?buckets:int -> t -> Mv_catalog.Stats.t
(** Per-table, per-column statistics computed from the actual contents in
    one pass: min/max/ndv plus equi-depth histograms (at most [buckets]
    buckets, default 16) and exhaustive MCV lists for low-NDV columns — see
    {!Mv_catalog.Stats.build_column}. *)
