(** Direct execution of SPJG blocks with SQL bag semantics.

    The executor joins tables greedily along column-equality predicates
    (hash join when an equijoin key is available, filtered nested loop
    otherwise), applies each conjunct as soon as all its columns are bound,
    then groups and projects. It is deliberately simple: it exists to give
    ground truth for the matching algorithm's rewrites and to run the
    examples, not to be fast.

    With [~adaptive:true] (and optionally [~stats]) it additionally picks
    the join order by estimated intermediate cardinality and a per-join
    strategy — indexed or plain nested loop below a cardinality threshold,
    hash join above — recording strategy counts and estimation error on the
    global registry. All strategies produce the same bag. *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats

type bindings = Value.t Col.Map.t

(* Per-operator-kind row counters ([exec.rows.<kind>]). They live on the
   process-wide [Mv_obs.Registry.global]: execution has no per-query
   context object to scope them to, and the executor exists for ground
   truth, not for concurrent serving. *)
let count_rows kind n =
  Mv_obs.Instrument.add
    (Mv_obs.Registry.counter Mv_obs.Registry.global ("exec.rows." ^ kind))
    n

(* Strategy pick counters ([exec.join.strategy.hash|nlj|inlj]) and the
   per-join q-error histogram (max(est/actual, actual/est); only recorded
   when both sides are positive). Shared names with Plan_exec so bench
   snapshots aggregate both executors. *)
let count_strategy kind =
  Mv_obs.Instrument.incr
    (Mv_obs.Registry.counter Mv_obs.Registry.global
       ("exec.join.strategy." ^ kind))

let qerror_hist =
  lazy
    (Mv_obs.Registry.histogram Mv_obs.Registry.global "exec.estimation.qerror")

let observe_qerror ~est ~actual =
  if est > 0.0 && actual > 0 then
    let a = float_of_int actual in
    Mv_obs.Instrument.observe (Lazy.force qerror_hist)
      (Float.max (est /. a) (a /. est))

(* Below this many build-side rows a nested loop beats paying hash-table
   construction; also the probe-count bound for preferring an index
   lookup. *)
let nlj_threshold = 64
let nlj_budget = 16 * nlj_threshold

let env_of (b : bindings) (c : Col.t) =
  match Col.Map.find_opt c b with
  | Some v -> v
  | None ->
      raise
        (Eval.Eval_error ("unbound column " ^ Col.to_string c))

(* Bindings for one row of one table. *)
let bind_row (tbl : Table.t) (row : Value.t array) : bindings =
  let tname = Table.name tbl in
  List.fold_left
    (fun (i, acc) (c : Mv_catalog.Column.t) ->
      (i + 1, Col.Map.add (Col.make tname c.Mv_catalog.Column.name) row.(i) acc))
    (0, Col.Map.empty)
    tbl.Table.def.Mv_catalog.Table_def.columns
  |> snd

(* A conjunct is applicable once every column it references is bound. *)
let applicable bound_tables p =
  List.for_all (fun (c : Col.t) -> List.mem c.Col.tbl bound_tables)
    (Pred.columns p)

let apply_preds preds (rows : bindings list) =
  if preds = [] then rows
  else begin
    let kept =
      List.filter
        (fun b -> List.for_all (Eval.pred_holds (env_of b)) preds)
        rows
    in
    count_rows "filter" (List.length kept);
    kept
  end

(* Equijoin keys between the next table and the already-bound tables. *)
let join_keys conjuncts ~bound ~next =
  List.filter_map
    (fun p ->
      match p with
      | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) ->
          if a.Col.tbl = next && List.mem b.Col.tbl bound then Some (a, b)
          else if b.Col.tbl = next && List.mem a.Col.tbl bound then
            Some (b, a)
          else None
      | _ -> None)
    conjuncts

let key_repr (vs : Value.t list) =
  String.concat "\x01" (List.map Value.to_string vs)

(* ---- cardinality estimation (adaptive mode) --------------------------- *)

(* A deliberately coarse mirror of [Mv_opt.Cost]'s single-table selectivity
   (the engine cannot depend on the optimizer): histograms/MCVs through
   [Stats.range_selectivity], 1/max-ndv for same-table column equality,
   fixed guesses for the rest. Only used to pick join orders. *)
let est_local_rows stats conjuncts tname =
  let local =
    List.filter
      (fun p ->
        let cols = Pred.columns p in
        cols <> []
        && List.for_all (fun (c : Col.t) -> c.Col.tbl = tname) cols)
      conjuncts
  in
  let sel =
    List.fold_left
      (fun acc p ->
        acc
        *.
        match Mv_relalg.Classify.classify_one p with
        | `Range (c, op, v) -> Stats.range_selectivity stats c op v
        | `Col_eq (a, b) ->
            1.0 /. float_of_int (max (Stats.ndv stats a) (Stats.ndv stats b))
        | `Disj_range (_, ivs) ->
            Float.min 1.0 (0.33 *. float_of_int (List.length ivs))
        | `Residual _ -> 0.25)
      1.0 local
  in
  Float.max 1.0 (float_of_int (Stats.row_count stats tname) *. sel)

(* Selectivity of the equijoin between [next] and the bound set: containment
   assumption, one term per key. 1.0 when unconnected (cross product). *)
let join_selectivity stats conjuncts ~bound ~next =
  List.fold_left
    (fun acc (tc, oc) ->
      acc /. float_of_int (max (Stats.ndv stats tc) (Stats.ndv stats oc)))
    1.0
    (join_keys conjuncts ~bound ~next)

let table_connected conjuncts bound t =
  List.exists
    (fun p ->
      match p with
      | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) ->
          (a.Col.tbl = t && List.mem b.Col.tbl bound)
          || (b.Col.tbl = t && List.mem a.Col.tbl bound)
      | _ -> false)
    conjuncts

(* Greedy order by estimated intermediate cardinality: start at the table
   with the fewest estimated post-filter rows, then repeatedly take the
   connected table minimizing the estimated result of the next join
   (falling back to any table when nothing connects). Returns the order and
   the running estimate after each step. *)
let order_tables_est stats conjuncts tables =
  match tables with
  | [] | [ _ ] ->
      (* nothing to order and no join to instrument: skip estimation *)
      (tables, [])
  | _ ->
      let base = List.map (fun t -> (t, est_local_rows stats conjuncts t)) tables in
      let argmin f = function
        | [] -> invalid_arg "argmin"
        | x :: xs ->
            List.fold_left (fun b y -> if f y < f b then y else b) x xs
      in
      let rec go bound cur remaining order ests =
        match remaining with
        | [] -> (List.rev order, List.rev ests)
        | _ ->
            let connected =
              List.filter (fun (t, _) -> table_connected conjuncts bound t)
                remaining
            in
            let pool =
              if bound = [] || connected = [] then remaining else connected
            in
            let score (t, b) =
              if bound = [] then b
              else cur *. b *. join_selectivity stats conjuncts ~bound ~next:t
            in
            let ((t, _) as pick) = argmin score pool in
            let cur' = score pick in
            go (t :: bound)
              (Float.max 1.0 cur')
              (List.filter (fun (u, _) -> u <> t) remaining)
              (t :: order) (cur' :: ests)
      in
      go [] 1.0 base [] []

(* Candidate rows of [tname], narrowed through a declared index when one
   matches the table-local predicates: equality on an index prefix, or a
   range on the leading index column. All local predicates are re-applied
   by the caller, so the index only has to return a superset filtered by
   the conditions it used. *)
let table_source db conjuncts tname : Value.t array list =
  let tbl = Database.table_exn db tname in
  let local =
    List.filter
      (fun p ->
        let cols = Pred.columns p in
        cols <> []
        && List.for_all (fun (c : Col.t) -> c.Col.tbl = tname) cols)
      conjuncts
  in
  let classified = Mv_relalg.Classify.classify local in
  let eq_cols, range_cols =
    List.fold_left
      (fun (eqs, rngs) (c, op, _) ->
        match op with
        | Pred.Eq -> (c.Col.col :: eqs, rngs)
        | _ -> (eqs, c.Col.col :: rngs))
      ([], [])
      classified.Mv_relalg.Classify.ranges
  in
  let eq_value col =
    List.find_map
      (fun (c, op, v) ->
        if c.Col.col = col && op = Pred.Eq then Some v else None)
      classified.Mv_relalg.Classify.ranges
  in
  let interval_of col =
    List.fold_left
      (fun acc (c, op, v) ->
        if c.Col.col = col && op <> Pred.Eq then
          Mv_relalg.Interval.intersect acc (Mv_relalg.Interval.of_cmp op v)
        else acc)
      Mv_relalg.Interval.full
      classified.Mv_relalg.Classify.ranges
  in
  let try_index cols =
    match Database.index db ~table:tname ~cols with
    | None -> None
    | Some ix -> (
        match Index.usable_for ix ~eq_cols ~range_cols with
        | Some (`Prefix n) ->
            let key =
              List.filteri (fun i _ -> i < n) cols
              |> List.map (fun c -> Option.get (eq_value c))
            in
            Some (Index.prefix_lookup ix key)
        | Some `Range ->
            Some (Index.range_scan ix (interval_of (List.hd cols)))
        | None -> None)
  in
  let best =
    List.find_map try_index (Database.declared_indexes db tname)
  in
  let rows = match best with Some rows -> rows | None -> tbl.Table.rows in
  count_rows "scan" (List.length rows);
  rows

(* Join [tbl] into the current tuples. In adaptive mode the strategy is
   picked from the {e actual} cardinalities at hand: an index lookup when a
   declared index leads with a join key and the probe side is small, a
   nested loop when the comparison budget [n_src * n_probe] is within
   [nlj_budget], a hash join otherwise. Every strategy compares full key tuples through [key_repr]
   (NULLs never join), so they produce identical bags. *)
let join_table ?(adaptive = false) db conjuncts ~bound (tuples : bindings list)
    tname : string list * bindings list =
  let tbl = Database.table_exn db tname in
  let source_rows = table_source db conjuncts tname in
  let keys = join_keys conjuncts ~bound ~next:tname in
  let bound' = tname :: bound in
  let merge tup b = Col.Map.union (fun _ x _ -> Some x) tup b in
  let build_key b = List.map (fun (tc, _) -> Col.Map.find tc b) keys in
  let probe_key tup = List.map (fun (_, oc) -> Col.Map.find oc tup) keys in
  let hash_join () =
    (* build on the new table, probe with current tuples *)
    let build = Hashtbl.create 256 in
    List.iter
      (fun row ->
        let b = bind_row tbl row in
        let kv = build_key b in
        if not (List.exists Value.is_null kv) then
          Hashtbl.add build (key_repr kv) b)
      source_rows;
    List.concat_map
      (fun tup ->
        let kv = probe_key tup in
        if List.exists Value.is_null kv then []
        else List.map (merge tup) (Hashtbl.find_all build (key_repr kv)))
      tuples
  in
  let nested_loop () =
    count_strategy "nlj";
    let srcs =
      List.filter_map
        (fun row ->
          let b = bind_row tbl row in
          let kv = build_key b in
          if List.exists Value.is_null kv then None
          else Some (key_repr kv, b))
        source_rows
    in
    List.concat_map
      (fun tup ->
        let kv = probe_key tup in
        if List.exists Value.is_null kv then []
        else
          let k = key_repr kv in
          List.filter_map
            (fun (bk, b) -> if String.equal bk k then Some (merge tup b) else None)
            srcs)
      tuples
  in
  (* Index nested loop through a declared index whose leading column is a
     join key. The index serves the full table, possibly wider than the
     narrowed [source_rows] — harmless, since the caller re-applies every
     local predicate once the table is bound. *)
  let indexed_loop ix oc0 =
    count_strategy "inlj";
    List.concat_map
      (fun tup ->
        let kv = probe_key tup in
        if List.exists Value.is_null kv then []
        else
          let k = key_repr kv in
          List.filter_map
            (fun row ->
              let b = bind_row tbl row in
              let bk = build_key b in
              if
                (not (List.exists Value.is_null bk))
                && String.equal (key_repr bk) k
              then Some (merge tup b)
              else None)
            (Index.prefix_lookup ix [ Col.Map.find oc0 tup ]))
      tuples
  in
  let join_index () =
    List.find_map
      (fun cols ->
        match cols with
        | lead :: _ -> (
            match
              List.find_opt (fun ((tc : Col.t), _) -> tc.Col.col = lead) keys
            with
            | Some (_, oc) -> (
                match Database.index db ~table:tname ~cols with
                | Some ix -> Some (ix, oc)
                | None -> None)
            | None -> None)
        | [] -> None)
      (Database.declared_indexes db tname)
  in
  let joined =
    if keys <> [] && tuples <> [] then
      if not adaptive then hash_join ()
      else
        let n_src = List.length source_rows in
        let n_probe = List.length tuples in
        match join_index () with
        | Some (ix, oc0) when n_probe <= nlj_threshold && n_src > nlj_threshold
          ->
            indexed_loop ix oc0
        | _ ->
            (* a nested loop does [n_src * n_probe] key comparisons; a hash
               join does [n_src + n_probe] hashtable operations — the loop
               only wins when the comparison budget is small *)
            if n_src * n_probe <= nlj_budget || n_probe <= 2 then
              nested_loop ()
            else begin
              count_strategy "hash";
              hash_join ()
            end
    else
      (* cross product (filtered immediately below) *)
      List.concat_map
        (fun tup -> List.map (fun row -> merge tup (bind_row tbl row)) source_rows)
        tuples
  in
  count_rows "join" (List.length joined);
  (bound', joined)

(* Greedy join order: start anywhere, prefer tables connected to the bound
   set by a column-equality predicate. *)
let order_tables conjuncts tables =
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let next =
          match List.find_opt (table_connected conjuncts bound) remaining with
          | Some t -> t
          | None -> List.hd remaining
        in
        go (next :: bound) (List.filter (( <> ) next) remaining) (next :: acc)
  in
  go [] tables []

(* The SPJ part: the bag of fully-joined, fully-filtered tuples. *)
let spj_tuples ?(adaptive = false) ?stats db (block : Spjg.t) : bindings list =
  let conjuncts = block.Spjg.where in
  let order, ests =
    match (adaptive, stats) with
    | true, Some st -> order_tables_est st conjuncts block.Spjg.tables
    | _ -> (order_tables conjuncts block.Spjg.tables, [])
  in
  let rec go i bound applied tuples = function
    | [] ->
        (* any conjunct never applied (e.g. constant-only) runs here *)
        let rest = List.filter (fun p -> not (List.memq p applied)) conjuncts in
        apply_preds rest tuples
    | t :: rest ->
        let bound', tuples' =
          join_table ~adaptive db conjuncts ~bound tuples t
        in
        let ready =
          List.filter
            (fun p -> (not (List.memq p applied)) && applicable bound' p)
            conjuncts
        in
        let filtered = apply_preds ready tuples' in
        (* estimation-error instrument: running estimate vs. the actual
           intermediate result, per join (the first table is a scan) *)
        (if i > 0 then
           match List.nth_opt ests i with
           | Some est -> observe_qerror ~est ~actual:(List.length filtered)
           | None -> ());
        go (i + 1) bound' (ready @ applied) filtered rest
  in
  go 0 [] [] [ Col.Map.empty ] order

(* ---- aggregation ---- *)

let add_value a b =
  match (a, b) with
  | Value.Null, v | v, Value.Null -> v
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> (
      match (Value.as_float a, Value.as_float b) with
      | Some x, Some y -> Value.Float (x +. y)
      | _ -> assert false)
  | _ -> raise (Eval.Eval_error "sum of non-numeric values")

(* Aggregate evaluation per output item over the rows of one group. *)
let eval_agg (rows : bindings list) (a : Spjg.agg) : Value.t =
  let sum_of e =
    List.fold_left
      (fun acc b ->
        match Eval.expr (env_of b) e with
        | Value.Null -> acc
        | v -> add_value acc v)
      Value.Null rows
  in
  match a with
  | Spjg.Count_star -> Value.Int (List.length rows)
  | Spjg.Sum e -> sum_of e
  | Spjg.Sum0 e -> (
      match sum_of e with Value.Null -> Value.Int 0 | v -> v)
  | Spjg.Avg e ->
      let non_null =
        List.filter
          (fun b -> not (Value.is_null (Eval.expr (env_of b) e)))
          rows
      in
      if non_null = [] then Value.Null
      else Eval.arith Expr.Div (sum_of e) (Value.Int (List.length non_null))
  | Spjg.Sum_div_sum (num, den) -> Eval.arith Expr.Div (sum_of num) (sum_of den)

let group_key gexprs (b : bindings) =
  List.map (fun g -> Eval.expr (env_of b) g) gexprs

let execute ?adaptive ?stats db (block : Spjg.t) : Relation.t =
  let tuples = spj_tuples ?adaptive ?stats db block in
  let cols = Spjg.out_names block in
  let finish (rel : Relation.t) =
    count_rows "output" (List.length rel.Relation.rows);
    rel
  in
  match block.Spjg.group_by with
  | None ->
      let rows =
        List.map
          (fun b ->
            Array.of_list
              (List.map
                 (fun (o : Spjg.out_item) ->
                   match o.Spjg.def with
                   | Spjg.Scalar e -> Eval.expr (env_of b) e
                   | Spjg.Aggregate _ -> assert false)
                 block.Spjg.out))
          tuples
      in
      finish { Relation.cols; rows }
  | Some gexprs ->
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun b ->
          let k = key_repr (group_key gexprs b) in
          match Hashtbl.find_opt groups k with
          | Some rows -> Hashtbl.replace groups k (b :: rows)
          | None ->
              order := k :: !order;
              Hashtbl.add groups k [ b ])
        tuples;
      (* SQL: zero input rows with an empty grouping list yields one row
         (count = 0, sums NULL); with a non-empty grouping list it yields
         none. *)
      let keys =
        if tuples = [] && gexprs = [] then [ `Empty ]
        else List.rev_map (fun k -> `Group k) !order
      in
      let rows =
        List.map
          (fun key ->
            let group_rows =
              match key with
              | `Empty -> []
              | `Group k -> Hashtbl.find groups k
            in
            let witness =
              match group_rows with b :: _ -> Some b | [] -> None
            in
            Array.of_list
              (List.map
                 (fun (o : Spjg.out_item) ->
                   match (o.Spjg.def, witness) with
                   | Spjg.Scalar e, Some b -> Eval.expr (env_of b) e
                   | Spjg.Scalar _, None -> Value.Null
                   | Spjg.Aggregate a, _ -> eval_agg group_rows a)
                 block.Spjg.out))
          keys
      in
      count_rows "group" (List.length rows);
      finish { Relation.cols; rows }

(* Materialize a view's contents as a table registered in the database. *)
let materialize db (view : Mv_core.View.t) : Table.t =
  let rel = execute db (Mv_core.View.spjg view) in
  let def = Mv_core.View.as_table_def db.Database.schema view in
  let tbl = Table.of_rows def rel.Relation.rows in
  Database.add_table db tbl;
  view.Mv_core.View.row_count <- List.length rel.Relation.rows;
  Mv_core.View.mark_fresh
    ~epochs:
      (List.map
         (fun tn -> (tn, Database.table_epoch db tn))
         (Mv_util.Sset.elements view.Mv_core.View.source_tables))
    view;
  List.iter
    (fun cols ->
      Database.declare_index db ~table:view.Mv_core.View.name ~cols)
    view.Mv_core.View.indexes;
  tbl

(* Materialize and return the statistics extended with an entry for the
   view's actual contents, so estimate_view_rows and the optimizer's
   substitute costing see measured numbers instead of the analytic
   estimate (ROADMAP item 4: view-level statistics for unmaintained
   views; maintained ones go through Ivm.refresh_stats). *)
let materialize_stats ?buckets db (view : Mv_core.View.t) stats :
    Table.t * Mv_catalog.Stats.t =
  let tbl = materialize db view in
  let ts = Database.table_stats ?buckets db view.Mv_core.View.name in
  (tbl, (view.Mv_core.View.name, ts) :: stats)

(* Execute a substitute: its block references the view's materialized
   table, which must exist in [db] (see [materialize]). *)
let execute_substitute ?adaptive ?stats db (s : Mv_core.Substitute.t) :
    Relation.t =
  execute ?adaptive ?stats db s.Mv_core.Substitute.block

(* UNION ALL of a union substitute's parts (all views materialized). *)
let execute_union ?adaptive ?stats db (u : Mv_core.Union_substitute.t) :
    Relation.t =
  match u.Mv_core.Union_substitute.parts with
  | [] -> invalid_arg "Exec.execute_union: empty union"
  | first :: rest ->
      let r0 = execute_substitute ?adaptive ?stats db first in
      List.fold_left
        (fun (acc : Relation.t) part ->
          let r = execute_substitute ?adaptive ?stats db part in
          { acc with Relation.rows = acc.Relation.rows @ r.Relation.rows })
        r0 rest
