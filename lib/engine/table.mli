(** An in-memory base table: definition plus rows (value arrays ordered
    like the definition's column list). *)

open Mv_base

type t = {
  def : Mv_catalog.Table_def.t;
  mutable rows : Value.t array list;
}

val create : Mv_catalog.Table_def.t -> t

val of_rows : Mv_catalog.Table_def.t -> Value.t array list -> t

val name : t -> string

val def_of : t -> Mv_catalog.Table_def.t

val row_count : t -> int

val col_index : t -> string -> int option

val col_index_exn : t -> string -> int

val insert : t -> Value.t array -> unit
(** @raise Invalid_argument on arity mismatch. *)

val delete : t -> Value.t array -> bool
(** Remove exactly one instance structurally equal to the row (bag
    semantics: duplicates lose a single copy). [false] when no instance
    matches (the table is left untouched).
    @raise Invalid_argument on arity mismatch. *)

val check_violations : t -> Pred.t list
(** CHECK constraints some row violates. *)

val null_violations : t -> string list
(** Not-null columns containing a NULL. *)
