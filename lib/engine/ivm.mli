(** Incremental view maintenance (IVM): counting-based bag deltas
    propagated through SPJG view definitions on base-table insert/delete
    batches (DESIGN.md §12).

    The delta of a join is the telescoping sum over the view's tables
    [T1 .. Tn]:

    {v ΔQ = Σᵢ  T1ⁿᵉʷ ⋈ … ⋈ Tᵢ₋₁ⁿᵉʷ ⋈ ΔTᵢ ⋈ Tᵢ₊₁ᵒˡᵈ ⋈ … ⋈ Tnᵒˡᵈ v}

    where [ΔTᵢ = inserts − deletes] as a signed bag. Each term is
    evaluated by the ordinary executor against a scratch database with the
    delta part substituted for table [i] (insert and delete parts run
    separately; the sign multiplies through). For SPJ views the signed
    output tuples apply directly to the materialized table as bag
    inserts/deletes; for aggregation views they are grouped and folded
    into the stored [count_big( * )] and [SUM] columns — a group is born
    when its count first becomes positive and dies when it returns to
    zero (the indexability rules of section 2 guarantee every grouping
    expression and a count column are stored, which is exactly what makes
    this maintainable). A per-group sidecar of non-null SUM contribution
    counts (rebuilt at {!attach}) keeps NULL semantics exact: a SUM whose
    surviving inputs are all NULL returns to NULL, indistinguishable from
    0 by the stored value alone.

    Progress is observable on [Mv_obs.Registry.global]: [ivm.batches],
    [ivm.views.updated], [ivm.rows.plus], [ivm.rows.minus],
    [ivm.groups.born], [ivm.groups.died].

    Floating-point caveat: SUM over [Float] expressions is maintained by
    incremental addition/subtraction, which can drift from a from-scratch
    rematerialization by rounding (summation order differs). Integer sums
    are exact. *)

type delta = {
  ins : Mv_base.Value.t array list;  (** rows inserted *)
  del : Mv_base.Value.t array list;  (** row instances deleted *)
}

type batch = (string * delta) list
(** One write batch: per-base-table inserts and deletes, applied
    atomically with respect to maintenance (every attached view sees the
    whole batch). *)

val updates : (Mv_base.Value.t array * Mv_base.Value.t array) list -> delta
(** UPDATE as delete+insert sugar (ROADMAP item 2 follow-up): each
    [(before, after)] pair contributes [before] to {!field-del} and
    [after] to {!field-ins}, so counting-based maintenance treats an
    update exactly as the bag difference it is. Identical pairs are kept —
    a no-op update round-trips through maintenance unchanged. *)

exception Unsupported of string
(** The view definition cannot be maintained incrementally (an [AVG] or
    [SUM]/[SUM] output — never produced by {!Mv_core.View.create}, which
    enforces indexability). *)

exception Inconsistent of string
(** Maintenance derived an impossible state (negative group count, a
    delete of a row the view does not contain): the batch contradicts the
    database contents the view was attached over. *)

type t
(** A maintenance engine bound to one database: the set of attached views
    plus their aggregate sidecars. *)

val create : ?health:Mv_core.Health.t -> Database.t -> t
(** [health] is the owning registry's per-view ledger: when given, every
    per-view delta application in {!apply} charges its wall time to that
    view's account ([record_maintenance], DESIGN.md §14). *)

val database : t -> Database.t

val attach : t -> Mv_core.View.t -> unit
(** Register a materialized view for maintenance. The view's table must
    already exist in the database ({!Exec.materialize}); aggregation
    views pay one evaluation of their SPJ part here to build the
    non-null-count sidecar. Records the current base-table write epochs
    on the descriptor and clears its staleness mark.
    @raise Invalid_argument when the view is not materialized or already
    attached.
    @raise Unsupported on a definition IVM cannot maintain. *)

val detach : t -> string -> unit
(** Forget a view by name (no-op when unknown). Its table is left as-is. *)

val attached : t -> Mv_core.View.t list
(** Attachment order. *)

val apply : t -> batch -> unit
(** Apply the batch to the base tables, then propagate deltas into every
    attached view whose sources intersect the written tables: rewrite
    their materialized rows in place, update {!Mv_core.View.row_count},
    bump the view tables' write epochs (invalidating built indexes) and
    re-stamp freshness ({!Mv_core.View.mark_fresh} with the new base
    epochs). Views sourcing none of the written tables are untouched.
    @raise Invalid_argument when a batch table is unknown, is an attached
    view's own table, a row has the wrong arity, or a delete names a row
    the base table does not contain.
    @raise Inconsistent when propagation contradicts the attached state. *)

val refresh_stats :
  ?buckets:int -> t -> Mv_catalog.Stats.t -> Mv_catalog.Stats.t
(** Mark-and-rebuild view statistics (ROADMAP item 4): return [stats]
    with the entry of every view updated by {!apply} since the last call
    rebuilt from its current contents ({!Database.table_stats} — row
    count and histograms), leaving every other entry untouched. Clears
    the dirty marks. *)

val dirty_views : t -> string list
(** Views updated by {!apply} since the last {!refresh_stats} — whose
    statistics entries are out of date. *)
