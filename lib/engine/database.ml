(** A database instance: the catalog plus table contents (base tables and
    materialized views alike). *)

type t = {
  schema : Mv_catalog.Schema.t;
  tables : (string, Table.t) Hashtbl.t;
  declared_indexes : (string, string list list) Hashtbl.t;
      (** table -> declared index column lists *)
  index_cache : (string * string list, Index.t) Hashtbl.t;
      (** built lazily; invalidated on insert/delete *)
  epochs : (string, int) Hashtbl.t;
      (** per-table write epoch, bumped by every insert/delete batch —
          what view freshness marks are recorded against (DESIGN.md §12) *)
}

let create schema =
  let db =
    {
      schema;
      tables = Hashtbl.create 16;
      declared_indexes = Hashtbl.create 8;
      index_cache = Hashtbl.create 8;
      epochs = Hashtbl.create 8;
    }
  in
  List.iter
    (fun (td : Mv_catalog.Table_def.t) ->
      Hashtbl.replace db.tables td.Mv_catalog.Table_def.name (Table.create td))
    schema.Mv_catalog.Schema.tables;
  db

let table t name : Table.t option = Hashtbl.find_opt t.tables name

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Database.table: unknown table " ^ name)

(* Register a derived table (e.g. a materialized view's contents). *)
let add_table t (tbl : Table.t) = Hashtbl.replace t.tables (Table.name tbl) tbl

let table_epoch t name =
  match Hashtbl.find_opt t.epochs name with Some e -> e | None -> 0

(* A write happened to [name]: built indexes over it are stale and its
   write epoch advances. Also used by [Ivm] after rewriting a materialized
   view's rows in place. *)
let touch t name =
  Hashtbl.iter
    (fun (tbl, cols) _ ->
      if tbl = name then Hashtbl.remove t.index_cache (tbl, cols))
    (Hashtbl.copy t.index_cache);
  Hashtbl.replace t.epochs name (table_epoch t name + 1)

let insert t name row =
  Table.insert (table_exn t name) row;
  touch t name

let delete t name row =
  if not (Table.delete (table_exn t name) row) then
    invalid_arg ("Database.delete: no such row in " ^ name);
  touch t name

(* Declare a (secondary) index; it is built lazily on first use. *)
let declare_index t ~table ~cols =
  let td = Table.def_of (table_exn t table) in
  List.iter
    (fun c ->
      if not (Mv_catalog.Table_def.has_column td c) then
        invalid_arg ("Database.declare_index: no column " ^ c))
    cols;
  let cur =
    match Hashtbl.find_opt t.declared_indexes table with
    | Some l -> l
    | None -> []
  in
  if not (List.mem cols cur) then
    Hashtbl.replace t.declared_indexes table (cols :: cur)

let declared_indexes t table =
  match Hashtbl.find_opt t.declared_indexes table with
  | Some l -> l
  | None -> []

(* Fetch (building if needed) the index on (table, cols). *)
let index t ~table ~cols : Index.t option =
  if not (List.mem cols (declared_indexes t table)) then None
  else
    match Hashtbl.find_opt t.index_cache (table, cols) with
    | Some ix -> Some ix
    | None ->
        let ix = Index.build (table_exn t table) cols in
        Hashtbl.replace t.index_cache (table, cols) ix;
        Some ix

let row_count t name = Table.row_count (table_exn t name)

(* An independent instance with the same contents: table row lists are
   immutable values, so sharing them is safe — each copy mutates its own
   Table.t records. Declared indexes carry over; built indexes and write
   epochs start empty. *)
let copy (t : t) : t =
  let c =
    {
      schema = t.schema;
      tables = Hashtbl.create (Hashtbl.length t.tables);
      declared_indexes = Hashtbl.copy t.declared_indexes;
      index_cache = Hashtbl.create 8;
      epochs = Hashtbl.create 8;
    }
  in
  Hashtbl.iter
    (fun name (tbl : Table.t) ->
      Hashtbl.replace c.tables name
        (Table.of_rows (Table.def_of tbl) tbl.Table.rows))
    t.tables;
  c

(* Per-column statistics of one table's actual contents. *)
let table_stats ?buckets (t : t) name : Mv_catalog.Stats.table_stats =
  let tbl = table_exn t name in
  let cols = tbl.Table.def.Mv_catalog.Table_def.columns in
  let col_stats =
    List.mapi
      (fun i (c : Mv_catalog.Column.t) ->
        let values = List.map (fun row -> row.(i)) tbl.Table.rows in
        (c.Mv_catalog.Column.name, Mv_catalog.Stats.build_column ?buckets values))
      cols
  in
  { Mv_catalog.Stats.row_count = Table.row_count tbl; columns = col_stats }

(* Compute per-table, per-column statistics from the actual contents,
   including equi-depth histograms and exhaustive MCV lists for low-NDV
   columns (Stats.build_column) — the one-pass [Stats.of_database] hook. *)
let stats ?buckets (t : t) : Mv_catalog.Stats.t =
  Hashtbl.fold
    (fun name (_ : Table.t) acc -> (name, table_stats ?buckets t name) :: acc)
    t.tables []
