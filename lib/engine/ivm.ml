(** Incremental view maintenance: counting-based bag deltas through SPJG
    (DESIGN.md §12). The join delta telescopes over the view's tables —

      ΔQ = Σᵢ  T1ⁿᵉʷ ⋈ … ⋈ Tᵢ₋₁ⁿᵉʷ ⋈ ΔTᵢ ⋈ Tᵢ₊₁ᵒˡᵈ ⋈ … ⋈ Tnᵒˡᵈ

    — and each term runs through the ordinary executor against a scratch
    database holding the right old/delta/new slice per table, with
    synthetic statistics that make the (tiny) delta table the cheapest so
    adaptive ordering starts the join there. SPJ deltas edit the view's
    bag directly; aggregation deltas fold into the stored grouping
    columns, count_big( * ) and SUMs through a per-group sidecar that also
    tracks non-null SUM contributions (NULL vs 0 on all-NULL groups). *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats
module View = Mv_core.View
module Sset = Mv_util.Sset

type delta = { ins : Value.t array list; del : Value.t array list }

type batch = (string * delta) list

(* UPDATE as delete+insert sugar: the bag difference of the before/after
   rows, in pair order. *)
let updates pairs =
  {
    del = List.map fst pairs;
    ins = List.map snd pairs;
  }

exception Unsupported of string

exception Inconsistent of string

let counter name = Mv_obs.Registry.counter Mv_obs.Registry.global ("ivm." ^ name)

let bump name n = if n <> 0 then Mv_obs.Instrument.add (counter name) n

let tick name = Mv_obs.Instrument.incr (counter name)

(* ---- aggregate view shape -------------------------------------------- *)

type sum_spec = { s_expr : Expr.t; s_zero : bool  (** Sum0: render 0 *) }

(* Where each output column of an aggregation view comes from. *)
type slot =
  | Key of int  (** i-th grouping (scalar) output *)
  | Count_slot
  | Sum_slot of int

type agg_shape = {
  scalars : Expr.t list;  (** grouping outputs, in output order *)
  sums : sum_spec array;
  layout : slot array;  (** one per output column *)
  key_cols : int array;  (** column position of each grouping output *)
  scalar_only : bool;  (** [group_by = Some []]: the single row never dies *)
}

(* Indexable aggregation views ([View.create] enforces [check_indexable])
   output every grouping expression and a count column and never AVG, so
   the scalar outputs determine the group and counts/sums are foldable —
   exactly the property that makes them maintainable. *)
let shape_of (name : string) (sp : Spjg.t) : agg_shape =
  let scalars = ref [] and sums = ref [] in
  let layout =
    List.map
      (fun (o : Spjg.out_item) ->
        match o.Spjg.def with
        | Spjg.Scalar e ->
            scalars := e :: !scalars;
            Key (List.length !scalars - 1)
        | Spjg.Aggregate Spjg.Count_star -> Count_slot
        | Spjg.Aggregate (Spjg.Sum e) ->
            sums := { s_expr = e; s_zero = false } :: !sums;
            Sum_slot (List.length !sums - 1)
        | Spjg.Aggregate (Spjg.Sum0 e) ->
            sums := { s_expr = e; s_zero = true } :: !sums;
            Sum_slot (List.length !sums - 1)
        | Spjg.Aggregate (Spjg.Avg _ | Spjg.Sum_div_sum _) ->
            raise
              (Unsupported
                 (name ^ ": AVG / SUM-ratio outputs are not maintainable")))
      sp.Spjg.out
    |> Array.of_list
  in
  let key_cols =
    Array.to_list layout
    |> List.mapi (fun col s -> (col, s))
    |> List.filter_map (fun (col, s) ->
           match s with Key _ -> Some col | _ -> None)
    |> Array.of_list
  in
  {
    scalars = List.rev !scalars;
    sums = Array.of_list (List.rev !sums);
    layout;
    key_cols;
    scalar_only = sp.Spjg.group_by = Some [];
  }

(* One group's running state: stored count, raw signed sums (independent
   of NULL rendering) and non-null contribution counts per SUM. The same
   record doubles as a batch-delta accumulator, where [g_count] and
   [g_nn] may go negative. *)
type group = {
  g_key : Value.t list;
  mutable g_count : int;
  g_sums : Value.t array;
  g_nn : int array;
}

type vstate = Spj_state | Agg_state of agg_shape * (string, group) Hashtbl.t

type entry = { view : View.t; state : vstate; mutable dirty : bool }

type t = {
  db : Database.t;
  mutable entries : entry list;
  health : Mv_core.Health.t option;
      (* when present, every per-view delta application charges its wall
         time to the view's ledger account (DESIGN.md §14) *)
}

let create ?health db = { db; entries = []; health }

let database t = t.db

let attached t = List.map (fun e -> e.view) t.entries

let dirty_views t =
  List.filter_map
    (fun e -> if e.dirty then Some e.view.View.name else None)
    t.entries

let detach t name =
  t.entries <- List.filter (fun e -> e.view.View.name <> name) t.entries

(* ---- value arithmetic ------------------------------------------------- *)

(* Mirrors [Exec.add_value]: Null is the identity, Int + Int stays Int. *)
let add a b =
  match (a, b) with
  | Value.Null, v | v, Value.Null -> v
  | Value.Int x, Value.Int y -> Value.Int (x + y)
  | _ -> (
      match (Value.as_float a, Value.as_float b) with
      | Some x, Some y -> Value.Float (x +. y)
      | _ ->
          raise (Inconsistent ("Ivm: sum of non-numeric " ^ Value.to_string b)))

let neg = function
  | Value.Null -> Value.Null
  | Value.Int i -> Value.Int (-i)
  | Value.Float f -> Value.Float (-.f)
  | v -> raise (Inconsistent ("Ivm: sum of non-numeric " ^ Value.to_string v))

let is_zero = function
  | Value.Null | Value.Int 0 -> true
  | Value.Float f -> f = 0.
  | _ -> false

let key_repr (vs : Value.t list) =
  String.concat "\x01" (List.map Value.to_string vs)

let eval b e = Eval.expr (Exec.env_of b) e

(* Fold one signed SPJ tuple into a group table (sidecar at attach time,
   sign +1 only; batch-delta accumulator during apply, either sign). *)
let fold_signed shape (groups : (string, group) Hashtbl.t) b sign =
  let key = List.map (eval b) shape.scalars in
  let k = key_repr key in
  let g =
    match Hashtbl.find_opt groups k with
    | Some g -> g
    | None ->
        let g =
          {
            g_key = key;
            g_count = 0;
            g_sums = Array.make (Array.length shape.sums) Value.Null;
            g_nn = Array.make (Array.length shape.sums) 0;
          }
        in
        Hashtbl.replace groups k g;
        g
  in
  g.g_count <- g.g_count + sign;
  Array.iteri
    (fun j spec ->
      let v = eval b spec.s_expr in
      if not (Value.is_null v) then begin
        g.g_nn.(j) <- g.g_nn.(j) + sign;
        g.g_sums.(j) <- add g.g_sums.(j) (if sign < 0 then neg v else v)
      end)
    shape.sums

let row_of_group shape (g : group) : Value.t array =
  Array.map
    (function
      | Key i -> List.nth g.g_key i
      | Count_slot -> Value.Int g.g_count
      | Sum_slot j ->
          if g.g_nn.(j) = 0 then
            if shape.sums.(j).s_zero then Value.Int 0 else Value.Null
          else g.g_sums.(j))
    shape.layout

(* ---- attach ----------------------------------------------------------- *)

let record_fresh t (view : View.t) =
  let epochs =
    List.map
      (fun tn -> (tn, Database.table_epoch t.db tn))
      (Sset.elements view.View.source_tables)
  in
  View.mark_fresh ~epochs view

let attach t (view : View.t) =
  let name = view.View.name in
  if List.exists (fun e -> e.view.View.name = name) t.entries then
    invalid_arg ("Ivm.attach: view " ^ name ^ " already attached");
  (match Database.table t.db name with
  | Some _ -> ()
  | None -> invalid_arg ("Ivm.attach: view " ^ name ^ " is not materialized"));
  let sp = View.spjg view in
  let state =
    if Spjg.is_aggregate sp then begin
      let shape = shape_of name sp in
      let groups = Hashtbl.create 64 in
      List.iter
        (fun b -> fold_signed shape groups b 1)
        (Exec.spj_tuples t.db sp);
      (* a scalar aggregate's single row exists even over empty input *)
      if shape.scalar_only && Hashtbl.length groups = 0 then
        Hashtbl.replace groups (key_repr [])
          {
            g_key = [];
            g_count = 0;
            g_sums = Array.make (Array.length shape.sums) Value.Null;
            g_nn = Array.make (Array.length shape.sums) 0;
          };
      Agg_state (shape, groups)
    end
    else Spj_state
  in
  record_fresh t view;
  t.entries <- t.entries @ [ { view; state; dirty = false } ]

(* ---- delta evaluation ------------------------------------------------- *)

(* The signed SPJ tuple bag of the view's delta under [batch], with
   [old_rows] the pre-batch contents of every written table (the database
   already holds the post-batch state). Each telescoping term runs the
   executor over a scratch database: tables before the delta position see
   new rows, the delta position sees just the insert (or delete) slice,
   tables after it see old rows. Synthetic row-count-only statistics make
   the delta slice the smallest table so adaptive ordering leads with it. *)
let signed_tuples t (view : View.t) (batch : batch)
    (old_rows : (string * Value.t array list) list) :
    (Exec.bindings * int) list =
  let sp = View.spjg view in
  let tables = sp.Spjg.tables in
  let old_of v =
    match List.assoc_opt v old_rows with
    | Some rows -> rows
    | None -> (Database.table_exn t.db v).Table.rows
  in
  let acc = ref [] in
  List.iteri
    (fun i u ->
      match List.assoc_opt u batch with
      | None -> ()
      | Some d ->
          let term rows sign =
            if rows <> [] then begin
              let scratch = Database.create t.db.Database.schema in
              let stats = ref [] in
              List.iteri
                (fun j v ->
                  let src =
                    if j = i then rows
                    else if j < i then (Database.table_exn t.db v).Table.rows
                    else old_of v
                  in
                  (Database.table_exn scratch v).Table.rows <- src;
                  stats :=
                    (v, { Stats.row_count = List.length src; columns = [] })
                    :: !stats)
                tables;
              List.iter
                (fun b -> acc := (b, sign) :: !acc)
                (Exec.spj_tuples ~adaptive:true ~stats:!stats scratch sp)
            end
          in
          term d.ins 1;
          term d.del (-1))
    tables;
  !acc

(* ---- applying deltas to the stored contents --------------------------- *)

let apply_spj t (entry : entry) signed : bool =
  let sp = View.spjg entry.view in
  let scalars =
    List.map
      (fun (o : Spjg.out_item) ->
        match o.Spjg.def with
        | Spjg.Scalar e -> e
        | Spjg.Aggregate _ -> assert false (* SPJ block *))
      sp.Spjg.out
  in
  let plus = ref [] and minus = Hashtbl.create 16 and n_minus = ref 0 in
  List.iter
    (fun (b, sign) ->
      let row = Array.of_list (List.map (eval b) scalars) in
      if sign > 0 then plus := row :: !plus
      else begin
        let k = key_repr (Array.to_list row) in
        let n = match Hashtbl.find_opt minus k with Some n -> n | None -> 0 in
        Hashtbl.replace minus k (n + 1);
        incr n_minus
      end)
    signed;
  if !plus = [] && !n_minus = 0 then false
  else begin
    let tbl = Database.table_exn t.db entry.view.View.name in
    let removed = ref 0 in
    let rows' =
      if !n_minus = 0 then tbl.Table.rows
      else
        List.filter
          (fun row ->
            match Hashtbl.find_opt minus (key_repr (Array.to_list row)) with
            | Some n when n > 0 ->
                Hashtbl.replace minus (key_repr (Array.to_list row)) (n - 1);
                incr removed;
                false
            | _ -> true)
          tbl.Table.rows
    in
    if !removed < !n_minus then
      raise
        (Inconsistent
           (entry.view.View.name
          ^ ": delta deletes a row the view does not contain"));
    tbl.Table.rows <- List.rev_append !plus rows';
    bump "rows.plus" (List.length !plus);
    bump "rows.minus" !removed;
    true
  end

let apply_agg t (entry : entry) shape groups signed : bool =
  let name = entry.view.View.name in
  let d = Hashtbl.create 16 in
  List.iter (fun (b, sign) -> fold_signed shape d b sign) signed;
  if Hashtbl.length d = 0 then false
  else begin
    let died = Hashtbl.create 8 in
    let updated = Hashtbl.create 8 in
    let born = ref [] in
    Hashtbl.iter
      (fun k (dg : group) ->
        match Hashtbl.find_opt groups k with
        | None ->
            if dg.g_count > 0 then begin
              if Array.exists (fun n -> n < 0) dg.g_nn then
                raise
                  (Inconsistent (name ^ ": negative SUM input count at birth"));
              Hashtbl.replace groups k dg;
              born := dg :: !born
            end
            else if
              dg.g_count = 0
              && Array.for_all (( = ) 0) dg.g_nn
              && Array.for_all is_zero dg.g_sums
            then () (* the batch fully cancels within an unborn group *)
            else
              raise
                (Inconsistent
                   (name ^ ": delta shrinks a group the view does not have"))
        | Some g ->
            let count' = g.g_count + dg.g_count in
            if count' < 0 then
              raise (Inconsistent (name ^ ": group count went negative"));
            if count' = 0 && not shape.scalar_only then begin
              Hashtbl.remove groups k;
              Hashtbl.replace died k ()
            end
            else begin
              g.g_count <- count';
              Array.iteri
                (fun j _ ->
                  g.g_sums.(j) <- add g.g_sums.(j) dg.g_sums.(j);
                  g.g_nn.(j) <- g.g_nn.(j) + dg.g_nn.(j);
                  if g.g_nn.(j) < 0 then
                    raise
                      (Inconsistent (name ^ ": SUM input count went negative")))
                shape.sums;
              Hashtbl.replace updated k g
            end)
      d;
    let tbl = Database.table_exn t.db name in
    let key_of_row row =
      key_repr (Array.to_list (Array.map (fun c -> row.(c)) shape.key_cols))
    in
    let rows' =
      List.filter_map
        (fun row ->
          let k = key_of_row row in
          if Hashtbl.mem died k then None
          else
            match Hashtbl.find_opt updated k with
            | Some g ->
                Hashtbl.remove updated k;
                Some (row_of_group shape g)
            | None -> Some row)
        tbl.Table.rows
    in
    if Hashtbl.length updated > 0 then
      raise
        (Inconsistent (name ^ ": stored rows diverged from the group sidecar"));
    tbl.Table.rows <- rows' @ List.rev_map (row_of_group shape) !born;
    bump "rows.plus" (List.length !born);
    bump "rows.minus" (Hashtbl.length died);
    bump "groups.born" (List.length !born);
    bump "groups.died" (Hashtbl.length died);
    true
  end

(* ---- the batch entry point ------------------------------------------- *)

let apply t (batch : batch) =
  if batch <> [] then begin
    List.iter
      (fun (name, d) ->
        if List.exists (fun e -> e.view.View.name = name) t.entries then
          invalid_arg ("Ivm.apply: " ^ name ^ " is an attached view's table");
        let td = Table.def_of (Database.table_exn t.db name) in
        let arity = List.length td.Mv_catalog.Table_def.columns in
        List.iter
          (fun r ->
            if Array.length r <> arity then
              invalid_arg ("Ivm.apply: row arity mismatch for " ^ name))
          (d.ins @ d.del))
      batch;
    let old_rows =
      List.map
        (fun (name, _) -> (name, (Database.table_exn t.db name).Table.rows))
        batch
    in
    List.iter
      (fun (name, d) ->
        List.iter (fun r -> Database.insert t.db name r) d.ins;
        List.iter (fun r -> Database.delete t.db name r) d.del)
      batch;
    let written = List.map fst batch in
    tick "batches";
    List.iter
      (fun entry ->
        let affected =
          List.exists
            (fun tn -> Sset.mem tn entry.view.View.source_tables)
            written
        in
        if affected then begin
          let t0 = Mv_obs.Instrument.now_wall () in
          let signed = signed_tuples t entry.view batch old_rows in
          let changed =
            match entry.state with
            | Spj_state -> apply_spj t entry signed
            | Agg_state (shape, groups) -> apply_agg t entry shape groups signed
          in
          if changed then begin
            Database.touch t.db entry.view.View.name;
            entry.view.View.row_count <-
              Database.row_count t.db entry.view.View.name;
            entry.dirty <- true
          end;
          tick "views.updated";
          record_fresh t entry.view;
          match t.health with
          | Some h ->
              Mv_core.Health.record_maintenance h
                ~wall:(Mv_obs.Instrument.now_wall () -. t0)
                entry.view.View.name
          | None -> ()
        end)
      t.entries
  end

let refresh_stats ?buckets t (stats : Stats.t) : Stats.t =
  let dirty = List.filter (fun e -> e.dirty) t.entries in
  let stats' =
    List.fold_left
      (fun acc e ->
        let name = e.view.View.name in
        (name, Database.table_stats ?buckets t.db name)
        :: List.remove_assoc name acc)
      stats dirty
  in
  List.iter (fun e -> e.dirty <- false) dirty;
  stats'
