(** SQL front-end tests: lexing, parsing, name resolution, error
    handling, and pretty-print/re-parse roundtrips. *)

open Helpers
module Spjg = Mv_relalg.Spjg

let test_lexer () =
  let toks = Mv_sql.Lexer.tokenize "SELECT a, 1.5, 'it''s' <> <= != -- c\nFROM t" in
  let strs = List.map Mv_sql.Token.to_string toks in
  Alcotest.(check (list string))
    "tokens"
    [ "SELECT"; "a"; ","; "1.5"; ","; "'it's'"; "<>"; "<="; "<>"; "FROM"; "t"; "<eof>" ]
    strs

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Mv_sql.Lexer.tokenize "select 'abc");
       false
     with Mv_sql.Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Mv_sql.Lexer.tokenize "select #");
       false
     with Mv_sql.Lexer.Lex_error _ -> true)

let test_parse_simple () =
  let q = parse_q "select l_orderkey, l_quantity from lineitem where l_quantity >= 10" in
  Alcotest.(check (list string)) "tables" [ "lineitem" ] q.Spjg.tables;
  Alcotest.(check int) "outputs" 2 (List.length q.Spjg.out);
  Alcotest.(check int) "conjuncts" 1 (List.length q.Spjg.where)

let test_parse_qualified_and_alias () =
  let q =
    parse_q
      "select l.l_orderkey from lineitem l, orders o where l.l_orderkey = o.o_orderkey"
  in
  Alcotest.(check (list string)) "tables" [ "lineitem"; "orders" ] q.Spjg.tables;
  (* alias-qualified columns resolve to canonical table names *)
  match (List.hd q.Spjg.out).Spjg.def with
  | Spjg.Scalar (Mv_base.Expr.Col c) ->
      Alcotest.(check string) "canonical table" "lineitem" c.Mv_base.Col.tbl
  | _ -> Alcotest.fail "expected column output"

let test_parse_between_and_date () =
  let q =
    parse_q
      "select l_orderkey from lineitem where l_shipdate between DATE '1995-01-01' and DATE '1995-12-31'"
  in
  Alcotest.(check int) "between becomes two conjuncts" 2
    (List.length q.Spjg.where)

let test_parse_group_by_and_aggs () =
  let q =
    parse_q
      "select o_custkey, count(*) as n, sum(o_totalprice) as t, avg(o_totalprice) as a from orders group by o_custkey"
  in
  Alcotest.(check bool) "aggregate" true (Spjg.is_aggregate q);
  Alcotest.(check int) "outputs" 4 (List.length q.Spjg.out)

let test_parse_create_view () =
  let name, v =
    parse_v
      {| create view foo with schemabinding as
         select o_custkey, count_big(*) as cnt from dbo.orders group by o_custkey |}
  in
  Alcotest.(check string) "name" "foo" name;
  Alcotest.(check bool) "indexable" true
    (Result.is_ok (Spjg.check_indexable v))

let expect_parse_error src =
  try
    ignore (parse_q src);
    Alcotest.failf "expected parse error for %s" src
  with
  | Mv_sql.Parser.Parse_error _ -> ()
  | Mv_catalog.Schema.Schema_error _ -> ()

let test_parse_errors () =
  expect_parse_error "select foo from lineitem";
  expect_parse_error "select l_orderkey from nosuchtable";
  expect_parse_error "select l_orderkey from lineitem, lineitem";
  expect_parse_error "select l_orderkey from lineitem where";
  expect_parse_error "select count(*) from lineitem";
  (* count needs AS *)
  expect_parse_error "select l_orderkey lineitem";
  (* o_custkey is ambiguous? no — unique. but a column from an
     out-of-scope table must fail *)
  expect_parse_error "select p_name from lineitem"

let test_parse_parenthesized_predicates () =
  let q =
    parse_q
      "select l_orderkey from lineitem where (l_quantity >= 1 and l_quantity <= 5) or l_orderkey = 7"
  in
  (* one OR conjunct after CNF: (a or c) and (b or c) -> 2 conjuncts *)
  Alcotest.(check int) "cnf distributed" 2 (List.length q.Spjg.where)

let test_roundtrip () =
  (* to_sql output must re-parse to a structurally equal block *)
  let cases =
    [
      "select l_orderkey, l_quantity from lineitem where l_quantity >= 10";
      "select o_custkey, sum(o_totalprice) as t, count(*) as n from orders \
       where o_totalprice <= 1000 group by o_custkey";
      "select l_orderkey from lineitem, orders where l_orderkey = o_orderkey \
       and o_orderdate >= DATE '1995-06-01' and l_comment like '%steel%'";
      "select l_quantity * l_extendedprice as rev from lineitem where \
       l_quantity * l_extendedprice > 100";
    ]
  in
  List.iter
    (fun src ->
      let q1 = parse_q src in
      let q2 = parse_q (Spjg.to_sql q1) in
      Alcotest.(check string)
        ("roundtrip: " ^ src)
        (Spjg.to_sql q1) (Spjg.to_sql q2))
    cases

(* pretty-printed random workload blocks must re-parse to the same text *)
let roundtrip_prop =
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  QCheck.Test.make ~name:"sql: workload blocks roundtrip through to_sql"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 77) in
      let q = Mv_workload.Generator.generate_query schema stats rng in
      let sql = Spjg.to_sql q in
      let q2 = parse_q sql in
      String.equal sql (Spjg.to_sql q2))

let suite =
  [
    ( "sql",
      [
        Alcotest.test_case "lexer" `Quick test_lexer;
        Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
        Alcotest.test_case "parse simple select" `Quick test_parse_simple;
        Alcotest.test_case "qualified columns and aliases" `Quick
          test_parse_qualified_and_alias;
        Alcotest.test_case "between and date literals" `Quick
          test_parse_between_and_date;
        Alcotest.test_case "group by and aggregates" `Quick
          test_parse_group_by_and_aggs;
        Alcotest.test_case "create view" `Quick test_parse_create_view;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parenthesized predicates" `Quick
          test_parse_parenthesized_predicates;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Helpers.qtest roundtrip_prop;
      ] );
  ]
