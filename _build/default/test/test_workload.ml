(** Workload generator tests: the section 5 recipe's shape constraints
    must hold over large samples — aggregation fraction, query table-count
    distribution, indexability of every view, cardinality bands. *)

module Spjg = Mv_relalg.Spjg

let schema = Mv_tpch.Schema.schema
let stats = Mv_tpch.Datagen.synthetic_stats ()

let sample_views = lazy (Mv_workload.Generator.views ~seed:606 schema stats 400)

let sample_queries = lazy (Mv_workload.Generator.queries ~seed:707 schema stats 400)

let test_views_indexable () =
  List.iter
    (fun (name, v) ->
      match Spjg.check_indexable v with
      | Ok () -> ()
      | Error e -> Alcotest.failf "view %s not indexable: %s" name e)
    (Lazy.force sample_views)

let test_views_create_cleanly () =
  (* every generated view must be accepted by View.create (descriptor
     construction, hub computation, filter keys) *)
  List.iter
    (fun (name, v) -> ignore (Mv_core.View.create schema ~name v))
    (Lazy.force sample_views)

let test_aggregation_fraction () =
  let views = Lazy.force sample_views in
  let aggs = List.length (List.filter (fun (_, v) -> Spjg.is_aggregate v) views) in
  let frac = float_of_int aggs /. float_of_int (List.length views) in
  if frac < 0.6 || frac > 0.9 then
    Alcotest.failf "aggregation fraction %.2f outside [0.6, 0.9] (paper: 0.75)"
      frac

let test_query_table_distribution () =
  let queries = Lazy.force sample_queries in
  let count n =
    List.length
      (List.filter (fun q -> List.length q.Spjg.tables = n) queries)
  in
  let total = float_of_int (List.length queries) in
  (* paper: 40% 2 tables, 20% 3, 17% 4, 13% 5, 8% 6, 2% 7 — allow slack
     for the FK-walk sometimes stopping early *)
  let f2 = float_of_int (count 2) /. total in
  if f2 < 0.3 || f2 > 0.6 then
    Alcotest.failf "2-table fraction %.2f outside [0.3,0.6] (paper: 0.40)" f2;
  Alcotest.(check bool) "some 4-table queries" true (count 4 > 0);
  Alcotest.(check bool) "few 7-table queries" true
    (float_of_int (count 7) /. total < 0.1);
  Alcotest.(check int) "no single-table queries" 0 (count 1)

let test_query_cardinality_band () =
  (* estimated cardinality should be below the band's upper edge for the
     vast majority of queries (the generator may stop early when it runs
     out of rangeable columns) *)
  let queries = Lazy.force sample_queries in
  let ok =
    List.length
      (List.filter
         (fun q ->
           let largest =
             List.fold_left
               (fun acc t -> max acc (Mv_catalog.Stats.row_count stats t))
               1 q.Spjg.tables
           in
           let est =
             Mv_opt.Cost.spj_rows stats ~tables:q.Spjg.tables
               ~where:q.Spjg.where
           in
           est <= float_of_int largest *. 0.2)
         queries)
  in
  let frac = float_of_int ok /. float_of_int (List.length queries) in
  if frac < 0.8 then
    Alcotest.failf "only %.2f of queries near the 8-12%% cardinality band" frac

let test_views_parse_back () =
  (* generated views render to SQL that the parser accepts *)
  List.iter
    (fun (name, v) ->
      let sql = Spjg.to_sql v in
      try ignore (Mv_sql.Parser.parse_query schema sql)
      with e ->
        Alcotest.failf "view %s SQL does not re-parse (%s):\n%s" name
          (Printexc.to_string e) sql)
    (Lazy.force sample_views)

let test_determinism () =
  let a = Mv_workload.Generator.views ~seed:42 schema stats 50 in
  let b = Mv_workload.Generator.views ~seed:42 schema stats 50 in
  Alcotest.(check bool) "same seed, same views" true
    (List.for_all2 (fun (_, x) (_, y) -> Spjg.to_sql x = Spjg.to_sql y) a b);
  let c = Mv_workload.Generator.views ~seed:43 schema stats 50 in
  Alcotest.(check bool) "different seed differs" false
    (List.for_all2 (fun (_, x) (_, y) -> Spjg.to_sql x = Spjg.to_sql y) a c)

let test_join_predicates_are_fk () =
  (* every generated block's column-equality predicates come from declared
     foreign keys *)
  let ok_pair (a : Mv_base.Col.t) (b : Mv_base.Col.t) =
    List.exists
      (fun (fk : Mv_catalog.Foreign_key.t) ->
        List.exists2
          (fun f t ->
            (a.Mv_base.Col.tbl = fk.Mv_catalog.Foreign_key.from_tbl
             && a.Mv_base.Col.col = f
             && b.Mv_base.Col.tbl = fk.Mv_catalog.Foreign_key.to_tbl
             && b.Mv_base.Col.col = t)
            || (b.Mv_base.Col.tbl = fk.Mv_catalog.Foreign_key.from_tbl
                && b.Mv_base.Col.col = f
                && a.Mv_base.Col.tbl = fk.Mv_catalog.Foreign_key.to_tbl
                && a.Mv_base.Col.col = t))
          fk.Mv_catalog.Foreign_key.from_cols fk.Mv_catalog.Foreign_key.to_cols)
      schema.Mv_catalog.Schema.foreign_keys
  in
  List.iter
    (fun (name, v) ->
      let cl = Mv_relalg.Classify.classify v.Spjg.where in
      List.iter
        (fun (a, b) ->
          if not (ok_pair a b) then
            Alcotest.failf "view %s has a non-FK equijoin %s = %s" name
              (Mv_base.Col.to_string a) (Mv_base.Col.to_string b))
        cl.Mv_relalg.Classify.col_eqs)
    (Lazy.force sample_views)

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "views are indexable" `Quick test_views_indexable;
        Alcotest.test_case "views create cleanly" `Quick test_views_create_cleanly;
        Alcotest.test_case "aggregation fraction ~0.75" `Quick
          test_aggregation_fraction;
        Alcotest.test_case "query table-count distribution" `Quick
          test_query_table_distribution;
        Alcotest.test_case "query cardinality band" `Quick
          test_query_cardinality_band;
        Alcotest.test_case "views re-parse from SQL" `Quick test_views_parse_back;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "equijoins come from FKs" `Quick
          test_join_predicates_are_fk;
      ] );
  ]
