(** Shared helpers for the test suites. *)

open Mv_base

let schema = Mv_tpch.Schema.schema

let parse_q src = Mv_sql.Parser.parse_query schema src

let parse_v src = Mv_sql.Parser.parse_view schema src

let view_of_sql ?(relaxed_nulls = false) src =
  let name, spjg = parse_v src in
  Mv_core.View.create ~relaxed_nulls schema ~name spjg

let match_sql ?relaxed_nulls ~view_sql ~query_sql () =
  let view = view_of_sql ?relaxed_nulls view_sql in
  Mv_core.Matcher.match_spjg ?relaxed_nulls schema ~query:(parse_q query_sql)
    view

let check_matches ?relaxed_nulls ~view_sql ~query_sql () =
  match match_sql ?relaxed_nulls ~view_sql ~query_sql () with
  | Ok s -> s
  | Error r ->
      Alcotest.failf "expected a match, got rejection: %s"
        (Mv_core.Reject.to_string r)

let check_rejects ?relaxed_nulls ~view_sql ~query_sql () =
  match match_sql ?relaxed_nulls ~view_sql ~query_sql () with
  | Ok s ->
      Alcotest.failf "expected a rejection, got substitute:\n%s"
        (Mv_core.Substitute.to_sql s)
  | Error r -> r

(* Execute [query] directly and via [substitute] over a database seeded
   with generated data, and compare bags. *)
let check_equivalent ?(seed = 7) ?(scale = 1) ~(query : Mv_relalg.Spjg.t)
    (s : Mv_core.Substitute.t) =
  let db = Mv_tpch.Datagen.generate ~seed ~scale () in
  let direct = Mv_engine.Exec.execute db query in
  let _ = Mv_engine.Exec.materialize db s.Mv_core.Substitute.view in
  let via_view = Mv_engine.Exec.execute_substitute db s in
  if not (Mv_engine.Relation.same_bag direct via_view) then
    Alcotest.failf
      "rewrite is not equivalent.\nquery:\n%s\nsubstitute:\n%s\ndirect \
       (%d rows):\n%s\nvia view (%d rows):\n%s"
      (Mv_relalg.Spjg.to_sql query)
      (Mv_core.Substitute.to_sql s)
      (Mv_engine.Relation.cardinality direct)
      (Mv_engine.Relation.to_string direct)
      (Mv_engine.Relation.cardinality via_view)
      (Mv_engine.Relation.to_string via_view)

let col t c = Col.make t c

let qtest = QCheck_alcotest.to_alcotest

(* Substring search, for loose assertions on rendered text. *)
let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* qcheck case counts: CI-quick runs can shrink property tests via
   MVIEW_QCHECK_COUNT without touching the test sources. *)
let qcheck_count default =
  match Sys.getenv_opt "MVIEW_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default
