(** The base-table backjoin extension (section 7 of the paper): a view that
    contains all the tables and rows a query needs but lacks some output
    columns can still be used, by joining it back to a base table on a
    unique key the view outputs. *)

open Helpers
module Spjg = Mv_relalg.Spjg

let match_bj ~view_sql ~query_sql () =
  let view = view_of_sql view_sql in
  Mv_core.Matcher.match_spjg ~backjoins:true schema
    ~query:(parse_q query_sql) view

let check_bj ~view_sql ~query_sql () =
  match match_bj ~view_sql ~query_sql () with
  | Ok s -> s
  | Error r ->
      Alcotest.failf "expected backjoin match, got: %s"
        (Mv_core.Reject.to_string r)

(* the view outputs the lineitem PK but not l_tax; the query needs l_tax *)
let narrow_view =
  {| create view bj_v1 with schemabinding as
     select l_orderkey, l_linenumber, l_quantity from dbo.lineitem
     where l_quantity >= 5 |}

let test_missing_output_restored () =
  let query_sql =
    {| select l_orderkey, l_tax from lineitem where l_quantity >= 5 |}
  in
  (* without backjoins: rejected *)
  (match match_sql ~view_sql:narrow_view ~query_sql () with
  | Error (Mv_core.Reject.Output_not_computable _) -> ()
  | Error r -> Alcotest.failf "unexpected: %s" (Mv_core.Reject.to_string r)
  | Ok _ -> Alcotest.fail "plain matching must reject");
  (* with backjoins: matched, block joins lineitem back in *)
  let s = check_bj ~view_sql:narrow_view ~query_sql () in
  Alcotest.(check bool) "uses backjoin" true (Mv_core.Substitute.uses_backjoin s);
  Alcotest.(check (list string))
    "joins back to lineitem"
    [ "bj_v1"; "lineitem" ]
    s.Mv_core.Substitute.block.Spjg.tables;
  check_equivalent ~query:(parse_q query_sql) s

let test_backjoin_compensating_predicate () =
  (* the compensation itself needs the missing column *)
  let query_sql =
    {| select l_orderkey from lineitem
       where l_quantity >= 5 and l_tax <= 4 |}
  in
  let s = check_bj ~view_sql:narrow_view ~query_sql () in
  Alcotest.(check bool) "uses backjoin" true (Mv_core.Substitute.uses_backjoin s);
  check_equivalent ~query:(parse_q query_sql) s

let test_no_key_no_backjoin () =
  (* the view outputs no unique key of lineitem: backjoin impossible *)
  let view_sql =
    {| create view bj_v2 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 5 |}
  in
  let query_sql =
    {| select l_orderkey, l_tax from lineitem where l_quantity >= 5 |}
  in
  match match_bj ~view_sql ~query_sql () with
  | Error (Mv_core.Reject.Output_not_computable _) -> ()
  | Error r -> Alcotest.failf "unexpected: %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      Alcotest.failf "must reject without a routable key, got:\n%s"
        (Mv_core.Substitute.to_sql s)

let test_backjoin_through_aggregation () =
  (* an aggregation view grouped on the orders PK: order attributes can be
     restored through a backjoin, compensations on them included *)
  let view_sql =
    {| create view bj_v3 with schemabinding as
       select o_orderkey, count_big(*) as cnt, sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey
       group by o_orderkey |}
  in
  let query_sql =
    {| select o_orderkey, sum(l_quantity) as qty
       from lineitem, orders
       where l_orderkey = o_orderkey and o_totalprice >= 200000
       group by o_orderkey |}
  in
  let s = check_bj ~view_sql ~query_sql () in
  Alcotest.(check bool) "uses backjoin" true (Mv_core.Substitute.uses_backjoin s);
  check_equivalent ~query:(parse_q query_sql) s

let test_backjoin_multiple_tables () =
  let view_sql =
    {| create view bj_v4 with schemabinding as
       select l_orderkey, l_linenumber, o_orderkey, l_quantity
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey |}
  in
  let query_sql =
    {| select l_tax, o_totalprice from lineitem, orders
       where l_orderkey = o_orderkey |}
  in
  let s = check_bj ~view_sql ~query_sql () in
  Alcotest.(check int) "two backjoined tables" 2
    (List.length s.Mv_core.Substitute.backjoins);
  check_equivalent ~query:(parse_q query_sql) s

let test_registry_backjoin_end_to_end () =
  let r = Mv_core.Registry.create ~backjoins:true schema in
  let _, spjg = parse_v narrow_view in
  ignore (Mv_core.Registry.add_view r ~name:"bj_v1" spjg);
  let q =
    parse_q {| select l_orderkey, l_tax from lineitem where l_quantity >= 5 |}
  in
  (* the backjoin filter-tree plan must not prune on output columns *)
  Alcotest.(check int) "found through the backjoin tree" 1
    (List.length (Mv_core.Registry.find_substitutes_spjg r q))

let test_plain_registry_prunes_same_case () =
  (* sanity: the default tree prunes this view for the same query (output
     column condition), so plain mode loses the rewrite — this is exactly
     the conservatism the paper accepts in 4.2.7 *)
  let r = Mv_core.Registry.create ~backjoins:false schema in
  let _, spjg = parse_v narrow_view in
  ignore (Mv_core.Registry.add_view r ~name:"bj_v1" spjg);
  let q =
    parse_q {| select l_orderkey, l_tax from lineitem where l_quantity >= 5 |}
  in
  Alcotest.(check int) "plain mode finds nothing" 0
    (List.length (Mv_core.Registry.find_substitutes_spjg r q))

(* property: backjoin substitutes over random workload pairs stay
   equivalent *)
let backjoin_equivalence_prop =
  let db = lazy (Mv_tpch.Datagen.generate ~seed:61 ~scale:2 ()) in
  let stats = lazy (Mv_engine.Database.stats (Lazy.force db)) in
  let counter = ref 0 in
  QCheck.Test.make ~name:"backjoin: substitutes compute the same bag"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 55001) in
      let stats = Lazy.force stats in
      let view_def = Mv_workload.Generator.generate_view schema stats rng in
      let query = Mv_workload.Generator.generate_query schema stats rng in
      incr counter;
      let name = Printf.sprintf "bjp%d_%d" seed !counter in
      let view = Mv_core.View.create schema ~name view_def in
      match Mv_core.Matcher.match_spjg ~backjoins:true schema ~query view with
      | Error _ -> true
      | Ok s ->
          let db = Lazy.force db in
          let direct = Mv_engine.Exec.execute db query in
          (match Mv_engine.Database.table db name with
          | Some _ -> ()
          | None -> ignore (Mv_engine.Exec.materialize db view));
          let via = Mv_engine.Exec.execute_substitute db s in
          if not (Mv_engine.Relation.same_bag direct via) then
            QCheck.Test.fail_reportf
              "backjoin mismatch!\nview:\n%s\nquery:\n%s\nsubstitute:\n%s"
              (Spjg.to_sql view_def) (Spjg.to_sql query)
              (Mv_core.Substitute.to_sql s)
          else true)

let suite =
  [
    ( "backjoin",
      [
        Alcotest.test_case "missing output restored" `Quick
          test_missing_output_restored;
        Alcotest.test_case "compensating predicate via backjoin" `Quick
          test_backjoin_compensating_predicate;
        Alcotest.test_case "no key, no backjoin" `Quick test_no_key_no_backjoin;
        Alcotest.test_case "backjoin through aggregation" `Quick
          test_backjoin_through_aggregation;
        Alcotest.test_case "multiple backjoined tables" `Quick
          test_backjoin_multiple_tables;
        Alcotest.test_case "registry end to end" `Quick
          test_registry_backjoin_end_to_end;
        Alcotest.test_case "plain tree prunes the same case" `Quick
          test_plain_registry_prunes_same_case;
        Helpers.qtest backjoin_equivalence_prop;
      ] );
  ]
