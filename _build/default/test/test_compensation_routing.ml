(** The routing subtlety of section 3.1.3: compensating column-equality
    predicates must be routed through the VIEW's equivalence classes, and
    everything else through the QUERY's. Routing an equality through the
    query's classes would collapse both sides to the same column and turn
    the predicate into a tautology. *)

open Helpers
module Spjg = Mv_relalg.Spjg

let test_equality_not_tautological () =
  (* the view knows nothing about o_orderdate = l_shipdate; the query
     enforces it. Both columns are view outputs, so the compensating
     predicate must compare them — not route one into the other. *)
  let view_sql =
    {| create view rt_v with schemabinding as
       select l_orderkey, o_orderdate, l_shipdate
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey |}
  in
  let query_sql =
    {| select l_orderkey from lineitem, orders
       where l_orderkey = o_orderkey and o_orderdate = l_shipdate |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  let preds = s.Mv_core.Substitute.block.Spjg.where in
  Alcotest.(check int) "one compensating predicate" 1 (List.length preds);
  (match preds with
  | [ Mv_base.Pred.Cmp (Mv_base.Pred.Eq, Mv_base.Expr.Col a, Mv_base.Expr.Col b) ] ->
      Alcotest.(check bool) "two distinct view columns" true
        (not (Mv_base.Col.equal a b))
  | _ -> Alcotest.fail "expected a single equality");
  check_equivalent ~query:(parse_q query_sql) s

let test_equality_via_view_class_alias () =
  (* neither query column is an output, but each has a view-equivalent
     column that is: the equality routes through the VIEW's classes *)
  let view_sql =
    {| create view rt_v2 with schemabinding as
       select o_orderkey, p_partkey, l_quantity
       from dbo.lineitem, dbo.orders, dbo.part
       where l_orderkey = o_orderkey and l_partkey = p_partkey |}
  in
  (* query equates l_orderkey with l_partkey (odd but legal); the view
     outputs their class aliases o_orderkey and p_partkey *)
  let query_sql =
    {| select l_quantity from lineitem, orders, part
       where l_orderkey = o_orderkey and l_partkey = p_partkey
         and l_orderkey = l_partkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_equality_unroutable_rejects () =
  (* the view outputs only ONE side of the needed equality *)
  let view_sql =
    {| create view rt_v3 with schemabinding as
       select l_orderkey, o_orderdate
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey |}
  in
  let query_sql =
    {| select l_orderkey from lineitem, orders
       where l_orderkey = o_orderkey and o_orderdate = l_shipdate |}
  in
  match match_sql ~view_sql ~query_sql () with
  | Error (Mv_core.Reject.Compensation_not_computable _) -> ()
  | Error r -> Alcotest.failf "unexpected: %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      Alcotest.failf "must reject, got:\n%s" (Mv_core.Substitute.to_sql s)

let test_range_routes_through_query_class () =
  (* the range compensation lands on ANY column of the query class: here
     the view outputs p_partkey while the query constrains l_partkey *)
  let view_sql =
    {| create view rt_v4 with schemabinding as
       select l_orderkey, p_partkey
       from dbo.lineitem, dbo.part
       where l_partkey = p_partkey |}
  in
  let query_sql =
    {| select l_orderkey from lineitem, part
       where l_partkey = p_partkey and l_partkey <= 30 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  (* the compensating range references the view's p_partkey output *)
  let mentions_partkey =
    List.exists
      (fun p ->
        List.exists
          (fun (c : Mv_base.Col.t) -> c.Mv_base.Col.col = "p_partkey")
          (Mv_base.Pred.columns p))
      s.Mv_core.Substitute.block.Spjg.where
  in
  Alcotest.(check bool) "routed to p_partkey" true mentions_partkey;
  check_equivalent ~query:(parse_q query_sql) s

let test_residual_routes_through_query_class () =
  let view_sql =
    {| create view rt_v5 with schemabinding as
       select l_orderkey, p_partkey, l_quantity
       from dbo.lineitem, dbo.part
       where l_partkey = p_partkey |}
  in
  (* the residual references l_partkey, which is not an output; its query
     class member p_partkey is *)
  let query_sql =
    {| select l_orderkey from lineitem, part
       where l_partkey = p_partkey
         and l_partkey * l_quantity > 100 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_merged_view_classes_count_once () =
  (* three view classes collapsing into one query class need exactly two
     linking equalities, not three *)
  let view_sql =
    {| create view rt_v6 with schemabinding as
       select l_orderkey, l_partkey, l_suppkey, l_quantity
       from dbo.lineitem |}
  in
  let query_sql =
    {| select l_quantity from lineitem
       where l_orderkey = l_partkey and l_partkey = l_suppkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check int) "two linking equalities" 2
    (List.length s.Mv_core.Substitute.block.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let suite =
  [
    ( "compensation-routing",
      [
        Alcotest.test_case "equality is not tautological" `Quick
          test_equality_not_tautological;
        Alcotest.test_case "equality via view-class alias" `Quick
          test_equality_via_view_class_alias;
        Alcotest.test_case "unroutable equality rejects" `Quick
          test_equality_unroutable_rejects;
        Alcotest.test_case "range routes through query class" `Quick
          test_range_routes_through_query_class;
        Alcotest.test_case "residual routes through query class" `Quick
          test_residual_routes_through_query_class;
        Alcotest.test_case "merged classes linked once" `Quick
          test_merged_view_classes_count_once;
      ] );
  ]
