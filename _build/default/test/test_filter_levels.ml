(** One test per filter-tree level (sections 4.2.1-4.2.8): for each
    partitioning condition, a view that violates exactly that condition
    must be pruned — and, for sanity, must also fail full matching, so the
    pruning is sound. *)

open Helpers
module A = Mv_relalg.Analysis

let candidates_for view_sql query_sql =
  let r = Mv_core.Registry.create schema in
  let name, spjg = parse_v view_sql in
  ignore (Mv_core.Registry.add_view r ~name spjg);
  let qa = A.analyze schema (parse_q query_sql) in
  (Mv_core.Registry.candidates r qa, r, qa)

let check_pruned ~level view_sql query_sql =
  let cands, r, qa = candidates_for view_sql query_sql in
  Alcotest.(check int) (level ^ " level prunes the view") 0 (List.length cands);
  (* soundness: the matcher agrees *)
  r.Mv_core.Registry.use_filter <- false;
  Alcotest.(check int) "full matching also rejects" 0
    (List.length (Mv_core.Registry.find_substitutes r qa))

let check_survives view_sql query_sql =
  let cands, _, _ = candidates_for view_sql query_sql in
  Alcotest.(check int) "view is a candidate" 1 (List.length cands)

let test_source_tables_level () =
  check_pruned ~level:"source-tables"
    {| create view fl_src with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem |}
    {| select l_orderkey from lineitem, orders where l_orderkey = o_orderkey |}

let test_hub_level () =
  (* orders carries a non-FK range predicate, pinning it into the hub; a
     query on lineitem alone can then never use the view *)
  check_pruned ~level:"hub"
    {| create view fl_hub with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey and o_totalprice >= 100000 |}
    {| select l_orderkey, l_quantity from lineitem |};
  (* the same view without the pinning predicate survives the hub level *)
  check_survives
    {| create view fl_hub2 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey |}
    {| select l_orderkey, l_quantity from lineitem |}

let test_output_exprs_level () =
  (* the query needs l_quantity * l_extendedprice; the view has a
     different expression and keeps the source columns hidden *)
  check_pruned ~level:"output-expressions"
    {| create view fl_oexpr with schemabinding as
       select l_orderkey, l_quantity + l_extendedprice as s from dbo.lineitem |}
    {| select l_quantity * l_extendedprice as p from lineitem |}

let test_output_cols_level () =
  check_pruned ~level:"output-columns"
    {| create view fl_ocol with schemabinding as
       select l_orderkey from dbo.lineitem |}
    {| select l_partkey from lineitem |}

let test_residual_level () =
  check_pruned ~level:"residual-predicates"
    {| create view fl_res with schemabinding as
       select l_orderkey, l_comment from dbo.lineitem
       where l_comment like '%steel%' |}
    {| select l_orderkey from lineitem |}

let test_range_level_weak () =
  (* the view constrains l_quantity (a trivial class): its reduced range
     list is non-empty while the query constrains nothing *)
  check_pruned ~level:"range-constrained-columns"
    {| create view fl_rng with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 10 |}
    {| select l_orderkey from lineitem |}

let test_range_level_strong () =
  (* the view's constrained column sits in a NON-trivial view class, so the
     reduced (weak) list is empty and only the strong per-candidate check
     can prune it *)
  let view_sql =
    {| create view fl_rng2 with schemabinding as
       select l_orderkey, p_partkey from dbo.lineitem, dbo.part
       where l_partkey = p_partkey and p_partkey >= 150 |}
  in
  let query_sql =
    {| select l_orderkey, p_partkey from lineitem, part
       where l_partkey = p_partkey |}
  in
  let cands, r, qa = candidates_for view_sql query_sql in
  Alcotest.(check int) "strong range check prunes" 0 (List.length cands);
  r.Mv_core.Registry.use_filter <- false;
  Alcotest.(check int) "matcher agrees" 0
    (List.length (Mv_core.Registry.find_substitutes r qa))

let test_grouping_cols_level () =
  (* aggregation query grouped on a column outside the view's grouping *)
  check_pruned ~level:"grouping-columns"
    {| create view fl_gc with schemabinding as
       select o_custkey, count_big(*) as cnt from dbo.orders
       group by o_custkey |}
    {| select o_orderdate, count(*) as n from orders group by o_orderdate |}

let test_grouping_exprs_level () =
  check_pruned ~level:"grouping-expressions"
    {| create view fl_ge with schemabinding as
       select o_totalprice + o_shippriority as bucket, count_big(*) as cnt
       from dbo.orders
       group by o_totalprice + o_shippriority |}
    {| select o_totalprice * o_shippriority as bucket, count(*) as n
       from orders group by o_totalprice * o_shippriority |}

let test_extended_output_survives () =
  (* example 6 of the paper: the query output routes through an
     equivalence class, so the extended output list must keep the view *)
  check_survives
    {| create view fl_ext with schemabinding as
       select p_partkey, l_quantity from dbo.lineitem, dbo.part
       where l_partkey = p_partkey |}
    {| select l_partkey, l_quantity from lineitem, part
       where l_partkey = p_partkey |}

let test_agg_query_sees_spj_views () =
  (* SPJ views sit in their own branch but still serve aggregation
     queries *)
  check_survives
    {| create view fl_spjv with schemabinding as
       select o_custkey, o_totalprice from dbo.orders |}
    {| select o_custkey, sum(o_totalprice) as t from orders
       group by o_custkey |}

let suite =
  [
    ( "filter-levels",
      [
        Alcotest.test_case "source tables (4.2.1)" `Quick test_source_tables_level;
        Alcotest.test_case "hubs (4.2.2)" `Quick test_hub_level;
        Alcotest.test_case "output expressions (4.2.7)" `Quick
          test_output_exprs_level;
        Alcotest.test_case "output columns (4.2.3)" `Quick test_output_cols_level;
        Alcotest.test_case "residual predicates (4.2.6)" `Quick test_residual_level;
        Alcotest.test_case "range constraints, weak (4.2.5)" `Quick
          test_range_level_weak;
        Alcotest.test_case "range constraints, strong (4.2.5)" `Quick
          test_range_level_strong;
        Alcotest.test_case "grouping columns (4.2.4)" `Quick
          test_grouping_cols_level;
        Alcotest.test_case "grouping expressions (4.2.8)" `Quick
          test_grouping_exprs_level;
        Alcotest.test_case "extended output list keeps example 6" `Quick
          test_extended_output_survives;
        Alcotest.test_case "SPJ views serve aggregation queries" `Quick
          test_agg_query_sees_spj_views;
      ] );
  ]
