(** Secondary indexes on tables and materialized views: correctness of the
    index structure against brute force, index-accelerated execution
    returning identical results, and the optimizer considering view indexes
    automatically (Example 1's v1_sidx). *)

open Mv_base
open Helpers
module Index = Mv_engine.Index
module Interval = Mv_relalg.Interval

let db () = Mv_tpch.Datagen.generate ~seed:77 ~scale:2 ()

(* index range scans agree with a naive filter *)
let range_scan_prop =
  let database = lazy (db ()) in
  QCheck.Test.make ~name:"index: range scan agrees with naive filter"
    ~count:200
    QCheck.(pair (int_range 0 60) (int_range 0 60))
    (fun (a, b) ->
      let db = Lazy.force database in
      let tbl = Mv_engine.Database.table_exn db "lineitem" in
      let ix = Index.build tbl [ "l_quantity"; "l_orderkey" ] in
      let lo = min a b and hi = max a b in
      let interval =
        { Interval.lo = Interval.Incl (Value.Int lo);
          Interval.hi = Interval.Excl (Value.Int hi) }
      in
      let qi = Mv_engine.Table.col_index_exn tbl "l_quantity" in
      let naive =
        List.filter
          (fun row -> Interval.mem row.(qi) interval)
          tbl.Mv_engine.Table.rows
      in
      let got = Index.range_scan ix interval in
      List.length got = List.length naive
      && List.sort compare got = List.sort compare naive)

let prefix_lookup_prop =
  let database = lazy (db ()) in
  QCheck.Test.make ~name:"index: prefix lookup agrees with naive filter"
    ~count:200
    QCheck.(int_range 1 50)
    (fun q ->
      let db = Lazy.force database in
      let tbl = Mv_engine.Database.table_exn db "lineitem" in
      let ix = Index.build tbl [ "l_quantity"; "l_orderkey" ] in
      let qi = Mv_engine.Table.col_index_exn tbl "l_quantity" in
      let naive =
        List.filter
          (fun row -> Value.equal row.(qi) (Value.Int q))
          tbl.Mv_engine.Table.rows
      in
      let got = Index.prefix_lookup ix [ Value.Int q ] in
      List.sort compare got = List.sort compare naive)

let test_usable_for () =
  let db = db () in
  let tbl = Mv_engine.Database.table_exn db "lineitem" in
  let ix = Index.build tbl [ "l_quantity"; "l_orderkey" ] in
  Alcotest.(check bool) "prefix 1" true
    (Index.usable_for ix ~eq_cols:[ "l_quantity" ] ~range_cols:[] = Some (`Prefix 1));
  Alcotest.(check bool) "prefix 2" true
    (Index.usable_for ix ~eq_cols:[ "l_orderkey"; "l_quantity" ] ~range_cols:[]
     = Some (`Prefix 2));
  Alcotest.(check bool) "range on lead" true
    (Index.usable_for ix ~eq_cols:[] ~range_cols:[ "l_quantity" ] = Some `Range);
  Alcotest.(check bool) "nothing on second col only" true
    (Index.usable_for ix ~eq_cols:[ "l_orderkey" ] ~range_cols:[] = None)

let test_indexed_execution_equivalent () =
  (* the same query, with and without a declared index, returns the same
     bag *)
  let db1 = db () in
  let db2 = db () in
  Mv_engine.Database.declare_index db2 ~table:"lineitem"
    ~cols:[ "l_quantity" ];
  let q =
    parse_q
      "select l_orderkey, l_extendedprice from lineitem where l_quantity \
       between 10 and 20 and l_discount >= 3"
  in
  let r1 = Mv_engine.Exec.execute db1 q in
  let r2 = Mv_engine.Exec.execute db2 q in
  Alcotest.(check bool) "same results" true (Mv_engine.Relation.same_bag r1 r2);
  Alcotest.(check bool) "nonempty" true (Mv_engine.Relation.cardinality r1 > 0)

let test_index_invalidated_on_insert () =
  let db = db () in
  Mv_engine.Database.declare_index db ~table:"orders" ~cols:[ "o_custkey" ];
  let q = parse_q "select o_orderkey from orders where o_custkey = 1" in
  let before = Mv_engine.Relation.cardinality (Mv_engine.Exec.execute db q) in
  (* insert a new row for customer 1; the stale index must not hide it *)
  Mv_engine.Database.insert db "orders"
    [|
      Value.Int 999999; Value.Int 1; Value.Str "O"; Value.Int 100;
      Value.Date 9000; Value.Str "1-URGENT"; Value.Str "Clerk#1"; Value.Int 0;
      Value.Str "x";
    |];
  let after = Mv_engine.Relation.cardinality (Mv_engine.Exec.execute db q) in
  Alcotest.(check int) "insert visible" (before + 1) after

let example1_view_sql =
  (* the paper's Example 1 *)
  {| create view v1 with schemabinding as
     select p_partkey, p_name, p_retailprice, count_big(*) as cnt,
            sum(l_extendedprice * l_quantity) as gross_revenue
     from dbo.lineitem, dbo.part
     where p_partkey <= 60 and p_name like '%a%' and p_partkey = l_partkey
     group by p_partkey, p_name, p_retailprice |}

let test_view_with_secondary_index () =
  let db = db () in
  let registry = Mv_core.Registry.create schema in
  let name, vdef = parse_v example1_view_sql in
  let view =
    Mv_core.Registry.add_view registry ~name
      ~indexes:[ [ "gross_revenue"; "p_name" ]; [ "p_partkey" ] ]
      vdef
  in
  let tbl = Mv_engine.Exec.materialize db view in
  Alcotest.(check bool) "materialized" true (Mv_engine.Table.row_count tbl > 0);
  (* the index declarations reached the database *)
  Alcotest.(check int) "two indexes declared" 2
    (List.length (Mv_engine.Database.declared_indexes db "v1"));
  (* a query with an equality compensation on p_partkey still returns the
     right answer through the index path *)
  let q =
    parse_q
      {| select p_name, sum(l_extendedprice * l_quantity) as rev
         from lineitem, part
         where p_partkey = l_partkey and p_partkey = 30 and p_name like '%a%'
         group by p_name |}
  in
  match Mv_core.Registry.find_substitutes_spjg registry q with
  | [] -> Alcotest.fail "expected a substitute"
  | s :: _ ->
      let direct = Mv_engine.Exec.execute db q in
      let via = Mv_engine.Exec.execute_substitute db s in
      Alcotest.(check bool) "equivalent via indexed view" true
        (Mv_engine.Relation.same_bag direct via)

let test_optimizer_prefers_indexed_view () =
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let name, vdef = parse_v example1_view_sql in
  let rows = Mv_opt.Cost.estimate_view_rows stats vdef in
  let query =
    parse_q
      {| select p_name, sum(l_extendedprice * l_quantity) as rev
         from lineitem, part
         where p_partkey = l_partkey and p_partkey = 30 and p_name like '%a%'
         group by p_name |}
  in
  let cost_with indexes =
    let registry = Mv_core.Registry.create schema in
    ignore
      (Mv_core.Registry.add_view registry ~name ~row_count:rows ~indexes vdef);
    (Mv_opt.Optimizer.optimize registry stats query).Mv_opt.Optimizer.cost
  in
  let plain = cost_with [] in
  let indexed = cost_with [ [ "p_partkey" ] ] in
  Alcotest.(check bool)
    (Printf.sprintf "indexed view costed cheaper (%.0f < %.0f)" indexed plain)
    true (indexed < plain)

let test_bad_index_rejected () =
  let _, vdef = parse_v example1_view_sql in
  Alcotest.(check bool) "non-output index column rejected" true
    (try
       ignore
         (Mv_core.View.create schema ~name:"v1x"
            ~indexes:[ [ "no_such_col" ] ]
            vdef);
       false
     with Mv_core.View.Rejected _ -> true)

let suite =
  [
    ( "index",
      [
        Helpers.qtest range_scan_prop;
        Helpers.qtest prefix_lookup_prop;
        Alcotest.test_case "usable_for" `Quick test_usable_for;
        Alcotest.test_case "indexed execution equivalent" `Quick
          test_indexed_execution_equivalent;
        Alcotest.test_case "index invalidated on insert" `Quick
          test_index_invalidated_on_insert;
        Alcotest.test_case "view with secondary index (Example 1)" `Quick
          test_view_with_secondary_index;
        Alcotest.test_case "optimizer prefers indexed view" `Quick
          test_optimizer_prefers_indexed_view;
        Alcotest.test_case "bad index column rejected" `Quick
          test_bad_index_rejected;
      ] );
  ]
