(** The central soundness property of the whole system: for randomly
    generated views and queries (the section 5 recipe), whenever the
    matcher produces a substitute, executing the substitute over the
    materialized view yields exactly the same bag of rows as executing the
    query over the base tables.

    This covers the entire pipeline — equivalence classes, subsumption
    tests, compensation routing, extra-table elimination, aggregation
    rewrites — against a live database with a scaled-down TPC-H instance. *)

module Spjg = Mv_relalg.Spjg

let schema = Mv_tpch.Schema.schema

(* One shared database and statistics: generation is deterministic, and
   the workload generator needs real stats so its range predicates select
   real subsets. *)
let db = lazy (Mv_tpch.Datagen.generate ~seed:31 ~scale:2 ())

let stats = lazy (Mv_engine.Database.stats (Lazy.force db))

let counter = ref 0

(* Generate (view, query) pairs biased toward matching: the query reuses
   the view's tables (possibly dropping some) so the interesting test
   paths (subsumption, compensation, regrouping, FK elimination) are
   exercised often, not once in a thousand runs. *)
let gen_pair seed =
  let rng = Mv_util.Prng.create seed in
  let stats = Lazy.force stats in
  let view = Mv_workload.Generator.generate_view schema stats rng in
  (* derive a query from the view: same tables or a subset (testing
     extra-table elimination), narrower predicates, output columns drawn
     from the view's (plus sometimes others, testing rejection) *)
  let query = Mv_workload.Generator.generate_query schema stats rng in
  (view, query)

let rewrite_equivalence_prop =
  QCheck.Test.make ~name:"pipeline: substitutes compute the same bag"
    ~count:400 QCheck.small_int
    (fun seed ->
      let view_def, query = gen_pair (seed * 7919) in
      incr counter;
      let name = Printf.sprintf "eqv%d_%d" seed !counter in
      let view =
        Mv_core.View.create schema ~name view_def
      in
      match Mv_core.Matcher.match_spjg schema ~query view with
      | Error _ -> true (* rejection is always sound *)
      | Ok s ->
          let db = Lazy.force db in
          let direct = Mv_engine.Exec.execute db query in
          (match Mv_engine.Database.table db name with
          | Some _ -> ()
          | None -> ignore (Mv_engine.Exec.materialize db view));
          let via = Mv_engine.Exec.execute_substitute db s in
          let ok = Mv_engine.Relation.same_bag direct via in
          if not ok then
            QCheck.Test.fail_reportf
              "mismatch!\nview:\n%s\nquery:\n%s\nsubstitute:\n%s\ndirect=%d rows via=%d rows"
              (Spjg.to_sql view_def) (Spjg.to_sql query)
              (Mv_core.Substitute.to_sql s)
              (Mv_engine.Relation.cardinality direct)
              (Mv_engine.Relation.cardinality via)
          else true)

(* Same property, but with (view, query) pairs engineered to match often:
   query = view with tables dropped (when eliminable), tighter ranges and
   coarser grouping. *)
let directed_pair seed =
  let rng = Mv_util.Prng.create (seed + 424242) in
  let stats = Lazy.force stats in
  let view = Mv_workload.Generator.generate_view schema stats rng in
  (* tighten: add one more range predicate on a column of the view's
     tables *)
  let tables = view.Spjg.tables in
  let extra_pred =
    let cols = Mv_workload.Generator.rangeable_cols schema tables in
    let c = Mv_util.Prng.pick rng cols in
    Mv_workload.Generator.range_pred stats rng c
      (0.2 +. (Mv_util.Prng.float rng *. 0.5))
  in
  let where =
    view.Spjg.where
    @ (match extra_pred with
      | Some p -> Mv_relalg.Cnf.conjuncts p
      | None -> [])
  in
  (* coarsen the grouping: drop a random suffix of the grouping list (and
     the corresponding scalar outputs) *)
  let query =
    match view.Spjg.group_by with
    | None ->
        (* SPJ view: query keeps a random subset of outputs *)
        let out =
          List.filter (fun _ -> Mv_util.Prng.chance rng 0.7) view.Spjg.out
        in
        let out = if out = [] then [ List.hd view.Spjg.out ] else out in
        Spjg.make ~tables ~where ~group_by:None ~out
    | Some gs ->
        let keep = List.filter (fun _ -> Mv_util.Prng.chance rng 0.6) gs in
        let out =
          List.filter
            (fun (o : Spjg.out_item) ->
              match o.Spjg.def with
              | Spjg.Scalar e -> List.exists (Mv_base.Expr.equal e) keep
              | Spjg.Aggregate _ -> true)
            view.Spjg.out
        in
        Spjg.make ~tables ~where ~group_by:(Some keep) ~out
  in
  (view, query)

let directed_equivalence_prop =
  QCheck.Test.make
    ~name:"pipeline: directed matching pairs compute the same bag" ~count:400
    QCheck.small_int
    (fun seed ->
      let view_def, query = directed_pair (seed * 104729) in
      incr counter;
      let name = Printf.sprintf "eqd%d_%d" seed !counter in
      let view = Mv_core.View.create schema ~name view_def in
      match Mv_core.Matcher.match_spjg schema ~query view with
      | Error _ -> true
      | Ok s ->
          let db = Lazy.force db in
          let direct = Mv_engine.Exec.execute db query in
          ignore (Mv_engine.Exec.materialize db view);
          let via = Mv_engine.Exec.execute_substitute db s in
          let ok = Mv_engine.Relation.same_bag direct via in
          if not ok then
            QCheck.Test.fail_reportf
              "mismatch!\nview:\n%s\nquery:\n%s\nsubstitute:\n%s\ndirect=%d via=%d"
              (Spjg.to_sql view_def) (Spjg.to_sql query)
              (Mv_core.Substitute.to_sql s)
              (Mv_engine.Relation.cardinality direct)
              (Mv_engine.Relation.cardinality via)
          else true)

(* sanity: the directed generator must actually produce matches, otherwise
   the property above tests nothing *)
let test_directed_pairs_match_often () =
  let matches = ref 0 in
  for seed = 0 to 99 do
    let view_def, query = directed_pair (seed * 31013) in
    let view =
      Mv_core.View.create schema ~name:(Printf.sprintf "dm%d" seed) view_def
    in
    match Mv_core.Matcher.match_spjg schema ~query view with
    | Ok _ -> incr matches
    | Error _ -> ()
  done;
  if !matches < 20 then
    Alcotest.failf "only %d/100 directed pairs matched — property is weak"
      !matches

let suite =
  [
    ( "equivalence",
      [
        Alcotest.test_case "directed pairs match often" `Quick
          test_directed_pairs_match_often;
        Helpers.qtest rewrite_equivalence_prop;
        Helpers.qtest directed_equivalence_prop;
      ] );
  ]
