(** Disjunctive range subsumption — the extension the paper sketches at
    the end of section 3.1.2 ("This range coverage algorithm can be
    extended to support disjunctions (OR) of range predicates"). Range
    sets (unions of disjoint intervals) replace single intervals per
    class; CNF distribution plus per-conjunct sets plus intersection
    reassembles predicates like (a BETWEEN 1 AND 5 OR a = 7) exactly. *)

open Mv_base
open Helpers
module Interval = Mv_relalg.Interval
module Rset = Mv_relalg.Rset

(* ---- Rset algebra properties ---- *)

let interval_gen =
  QCheck.Gen.(
    let bound =
      frequency
        [
          (1, return Interval.Unbounded);
          (3, map (fun x -> Interval.Incl (Value.Int x)) (int_range (-10) 10));
          (3, map (fun x -> Interval.Excl (Value.Int x)) (int_range (-10) 10));
        ]
    in
    map2 (fun lo hi -> { Interval.lo; hi }) bound bound)

let rset_gen = QCheck.Gen.(map Rset.normalize (list_size (int_range 0 4) interval_gen))

let rset_arb = QCheck.make ~print:Rset.to_string rset_gen

let sample = List.init 45 (fun k -> Value.Int (k - 22))

let member_vector s = List.map (fun v -> Rset.mem v s) sample

let normalize_preserves_membership =
  QCheck.Test.make ~name:"rset: normalize preserves membership" ~count:500
    QCheck.(make Gen.(list_size (int_range 0 5) interval_gen))
    (fun intervals ->
      let s = Rset.normalize intervals in
      List.for_all
        (fun v ->
          Rset.mem v s = List.exists (fun i -> Interval.mem v i) intervals)
        sample)

let normalize_disjoint =
  QCheck.Test.make ~name:"rset: normalized intervals are disjoint, sorted"
    ~count:500 rset_arb
    (fun s ->
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Interval.cmp_lower a.Interval.lo b.Interval.lo <= 0
            && (not
                  (List.exists
                     (fun v -> Interval.mem v a && Interval.mem v b)
                     sample))
            && ok rest
        | _ -> true
      in
      ok s)

let inter_pointwise =
  QCheck.Test.make ~name:"rset: intersection is pointwise and" ~count:500
    QCheck.(pair rset_arb rset_arb)
    (fun (a, b) ->
      let i = Rset.inter a b in
      List.for_all2
        (fun x (y, z) -> x = (y && z))
        (member_vector i)
        (List.combine (member_vector a) (member_vector b)))

let union_pointwise =
  QCheck.Test.make ~name:"rset: union is pointwise or" ~count:500
    QCheck.(pair rset_arb rset_arb)
    (fun (a, b) ->
      let u = Rset.union a b in
      List.for_all2
        (fun x (y, z) -> x = (y || z))
        (member_vector u)
        (List.combine (member_vector a) (member_vector b)))

let contains_agrees =
  QCheck.Test.make ~name:"rset: contains agrees with sampled membership"
    ~count:500
    QCheck.(pair rset_arb rset_arb)
    (fun (outer, inner) ->
      if Rset.contains ~outer ~inner then
        List.for_all2
          (fun o i -> (not i) || o)
          (member_vector outer) (member_vector inner)
      else true)

let to_pred_encodes =
  QCheck.Test.make ~name:"rset: to_pred encodes membership" ~count:500
    rset_arb
    (fun s ->
      let c = col "lineitem" "l_quantity" in
      match Rset.to_pred (Expr.Col c) s with
      | None -> Rset.is_full s
      | Some p ->
          List.for_all
            (fun v ->
              let env x = if Col.equal x c then v else Value.Null in
              Eval.pred_holds env p = Rset.mem v s)
            sample)

(* ---- classification ---- *)

let test_classify_disjunction () =
  let q =
    parse_q
      "select l_orderkey from lineitem where (l_quantity between 10 and 20) or l_quantity = 35"
  in
  let cl = Mv_relalg.Classify.classify q.Mv_relalg.Spjg.where in
  (* CNF gives two disjunctive conjuncts; no residuals *)
  Alcotest.(check int) "no residuals" 0 (List.length cl.Mv_relalg.Classify.residuals);
  Alcotest.(check int) "two disjunctive conjuncts" 2
    (List.length cl.Mv_relalg.Classify.disj_ranges)

let test_cnf_reassembles_exact_set () =
  let q =
    parse_q
      "select l_orderkey from lineitem where (l_quantity between 10 and 20) or l_quantity = 35"
  in
  let a = Mv_relalg.Analysis.analyze schema q in
  let set =
    Mv_relalg.Range.find a.Mv_relalg.Analysis.equiv a.Mv_relalg.Analysis.ranges
      (col "lineitem" "l_quantity")
  in
  (* exactly [10,20] u [35,35] *)
  List.iter
    (fun (v, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "membership of %d" v)
        expected
        (Rset.mem (Value.Int v) set))
    [ (9, false); (10, true); (20, true); (21, false); (34, false); (35, true); (36, false) ]

let test_mixed_columns_is_residual () =
  let q =
    parse_q
      "select l_orderkey from lineitem where l_quantity <= 5 or l_discount >= 8"
  in
  let cl = Mv_relalg.Classify.classify q.Mv_relalg.Spjg.where in
  Alcotest.(check int) "stays residual" 1
    (List.length cl.Mv_relalg.Classify.residuals);
  Alcotest.(check int) "no disj ranges" 0
    (List.length cl.Mv_relalg.Classify.disj_ranges)

(* ---- matching ---- *)

let test_disjunctive_query_in_wider_view () =
  (* a view with a single wide range serves a query with a disjunctive
     range inside it — the old residual-based treatment could never match
     this (the view has no matching residual) *)
  let view_sql =
    {| create view dj_v1 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 5 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem
       where (l_quantity between 10 and 20) or l_quantity = 35 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_disjunctive_view_contains_query () =
  (* the view itself is disjunctive; the query fits in one arm *)
  let view_sql =
    {| create view dj_v2 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity <= 20 or l_quantity >= 40 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem where l_quantity between 5 and 15 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_disjunctive_view_vs_disjunctive_query () =
  let view_sql =
    {| create view dj_v3 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity <= 20 or l_quantity >= 40 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem
       where l_quantity <= 10 or l_quantity >= 45 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_disjunctive_gap_rejected () =
  (* the query needs rows in the view's gap *)
  let view_sql =
    {| create view dj_v4 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity <= 20 or l_quantity >= 40 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem where l_quantity between 15 and 45 |}
  in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Range_subsumption_failed _ -> ()
  | r -> Alcotest.failf "expected range failure, got %s" (Mv_core.Reject.to_string r)

let test_disjunctive_compensation_unroutable_rejects () =
  (* compensation needs the column in the output *)
  let view_sql =
    {| create view dj_v5 with schemabinding as
       select l_orderkey from dbo.lineitem
       where l_quantity >= 5 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem
       where (l_quantity between 10 and 20) or l_quantity = 35 |}
  in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Compensation_not_computable _ -> ()
  | r ->
      Alcotest.failf "expected compensation failure, got %s"
        (Mv_core.Reject.to_string r)

(* randomized: disjunctive queries against single- or double-arm views *)
let disjunctive_equivalence_prop =
  let db = lazy (Mv_tpch.Datagen.generate ~seed:111 ~scale:2 ()) in
  let counter = ref 0 in
  QCheck.Test.make ~name:"disjunction: rewrites compute the same bag"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 31415) in
      incr counter;
      let r a b = (min a b, max a b) in
      let a1, b1 = r (1 + Mv_util.Prng.int rng 50) (1 + Mv_util.Prng.int rng 50) in
      let a2, b2 = r (1 + Mv_util.Prng.int rng 50) (1 + Mv_util.Prng.int rng 50) in
      let va, vb = r (1 + Mv_util.Prng.int rng 50) (1 + Mv_util.Prng.int rng 50) in
      let view_sql =
        Printf.sprintf
          "create view djp%d with schemabinding as select l_orderkey, \
           l_quantity from dbo.lineitem where l_quantity <= %d or \
           l_quantity >= %d"
          !counter va vb
      in
      let query_sql =
        Printf.sprintf
          "select l_orderkey from lineitem where (l_quantity between %d and \
           %d) or (l_quantity between %d and %d)"
          a1 b1 a2 b2
      in
      match match_sql ~view_sql ~query_sql () with
      | Error _ -> true
      | Ok s ->
          let db = Lazy.force db in
          (match Mv_engine.Database.table db s.Mv_core.Substitute.view.Mv_core.View.name with
          | Some _ -> ()
          | None -> ignore (Mv_engine.Exec.materialize db s.Mv_core.Substitute.view));
          let q = parse_q query_sql in
          let direct = Mv_engine.Exec.execute db q in
          let via = Mv_engine.Exec.execute_substitute db s in
          if not (Mv_engine.Relation.same_bag direct via) then
            QCheck.Test.fail_reportf "disjunction mismatch:\nview: %s\nquery: %s\nsubst:\n%s"
              view_sql query_sql
              (Mv_core.Substitute.to_sql s)
          else true)

let suite =
  [
    ( "disjunction",
      [
        Helpers.qtest normalize_preserves_membership;
        Helpers.qtest normalize_disjoint;
        Helpers.qtest inter_pointwise;
        Helpers.qtest union_pointwise;
        Helpers.qtest contains_agrees;
        Helpers.qtest to_pred_encodes;
        Alcotest.test_case "classification of OR-of-ranges" `Quick
          test_classify_disjunction;
        Alcotest.test_case "CNF reassembles the exact set" `Quick
          test_cnf_reassembles_exact_set;
        Alcotest.test_case "mixed columns stay residual" `Quick
          test_mixed_columns_is_residual;
        Alcotest.test_case "disjunctive query in wider view" `Quick
          test_disjunctive_query_in_wider_view;
        Alcotest.test_case "disjunctive view contains query" `Quick
          test_disjunctive_view_contains_query;
        Alcotest.test_case "disjunctive view vs disjunctive query" `Quick
          test_disjunctive_view_vs_disjunctive_query;
        Alcotest.test_case "gap in the view rejects" `Quick
          test_disjunctive_gap_rejected;
        Alcotest.test_case "unroutable disjunctive compensation rejects" `Quick
          test_disjunctive_compensation_unroutable_rejects;
        Helpers.qtest disjunctive_equivalence_prop;
      ] );
  ]
