(** Utility tests: union-find properties and PRNG sanity. *)

module UF = Mv_util.Union_find.Make (Int)
module Prng = Mv_util.Prng

(* union-find must agree with a naive transitive closure *)
let uf_prop =
  QCheck.Test.make ~name:"union-find: agrees with transitive closure"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let uf = UF.create () in
      List.iter (fun (a, b) -> UF.union uf a b) pairs;
      (* naive closure over 0..9 *)
      let reach = Array.make_matrix 10 10 false in
      for i = 0 to 9 do
        reach.(i).(i) <- true
      done;
      List.iter
        (fun (a, b) ->
          reach.(a).(b) <- true;
          reach.(b).(a) <- true)
        pairs;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to 9 do
          for j = 0 to 9 do
            for k = 0 to 9 do
              if reach.(i).(k) && reach.(k).(j) && not reach.(i).(j) then begin
                reach.(i).(j) <- true;
                changed := true
              end
            done
          done
        done
      done;
      let ok = ref true in
      List.iter
        (fun (a, _) ->
          List.iter
            (fun (b, _) ->
              if UF.same uf a b <> reach.(a).(b) then ok := false)
            pairs)
        pairs;
      !ok)

let test_uf_classes () =
  let uf = UF.create () in
  List.iter (UF.add uf) [ 1; 2; 3; 4; 5 ];
  UF.union uf 1 2;
  UF.union uf 2 3;
  let classes = UF.classes uf in
  let sizes = List.sort compare (List.map List.length classes) in
  Alcotest.(check (list int)) "class sizes" [ 1; 1; 3 ] sizes

let test_uf_copy_isolated () =
  let uf = UF.create () in
  UF.union uf 1 2;
  let cp = UF.copy uf in
  UF.union cp 2 3;
  Alcotest.(check bool) "copy merged" true (UF.same cp 1 3);
  Alcotest.(check bool) "original untouched" false (UF.same uf 1 3)

let test_prng_determinism () =
  let a = Prng.create 5 and b = Prng.create 5 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let prng_bounds_prop =
  QCheck.Test.make ~name:"prng: int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      List.for_all
        (fun _ ->
          let x = Prng.int rng bound in
          x >= 0 && x < bound)
        (List.init 50 Fun.id))

let test_prng_uniformish () =
  let rng = Prng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let x = Prng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 700 || n > 1300 then
        Alcotest.failf "bucket %d has %d of 10000 (expected ~1000)" i n)
    buckets

let test_pick_weighted () =
  let rng = Prng.create 9 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 1000 do
    match Prng.pick_weighted rng [ (9.0, `A); (1.0, `B) ] with
    | `A -> incr a
    | `B -> incr b
  done;
  Alcotest.(check bool) "weighting respected" true (!a > !b * 4)

let test_shuffle_permutes () =
  let rng = Prng.create 17 in
  let xs = List.init 20 Fun.id in
  let ys = Prng.shuffle rng xs in
  Alcotest.(check (list int)) "same elements" xs (List.sort compare ys)

let test_sset_helpers () =
  let s = Mv_util.Sset.of_list [ "b"; "a"; "a" ] in
  Alcotest.(check (list string)) "sorted unique" [ "a"; "b" ]
    (Mv_util.Sset.to_list s);
  Alcotest.(check string) "printing" "{a, b}" (Mv_util.Sset.to_string s)

let suite =
  [
    ( "util",
      [
        Helpers.qtest uf_prop;
        Alcotest.test_case "union-find classes" `Quick test_uf_classes;
        Alcotest.test_case "union-find copy isolation" `Quick test_uf_copy_isolated;
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
        Helpers.qtest prng_bounds_prop;
        Alcotest.test_case "prng roughly uniform" `Quick test_prng_uniformish;
        Alcotest.test_case "weighted pick" `Quick test_pick_weighted;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        Alcotest.test_case "string set helpers" `Quick test_sset_helpers;
      ] );
  ]
