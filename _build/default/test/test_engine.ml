(** Execution engine tests: operators against hand-computed results, join
    correctness vs a nested-loop reference, aggregation semantics. *)

open Mv_base
open Helpers
module Spjg = Mv_relalg.Spjg

let db () = Mv_tpch.Datagen.generate ~seed:3 ~scale:1 ()

let test_scan_filter () =
  let db = db () in
  let q = parse_q "select l_orderkey from lineitem where l_quantity >= 25" in
  let r = Mv_engine.Exec.execute db q in
  (* recompute by hand *)
  let tbl = Mv_engine.Database.table_exn db "lineitem" in
  let qi = Mv_engine.Table.col_index_exn tbl "l_quantity" in
  let expected =
    List.length
      (List.filter
         (fun row ->
           match row.(qi) with Value.Int q -> q >= 25 | _ -> false)
         tbl.Mv_engine.Table.rows)
  in
  Alcotest.(check int) "row count" expected (Mv_engine.Relation.cardinality r)

let test_join_vs_nested_loop () =
  let db = db () in
  let q =
    parse_q
      "select l_orderkey, o_custkey from lineitem, orders where l_orderkey = o_orderkey and l_quantity <= 10"
  in
  let r = Mv_engine.Exec.execute db q in
  (* nested-loop reference *)
  let li = Mv_engine.Database.table_exn db "lineitem" in
  let o = Mv_engine.Database.table_exn db "orders" in
  let lio = Mv_engine.Table.col_index_exn li "l_orderkey" in
  let liq = Mv_engine.Table.col_index_exn li "l_quantity" in
  let oo = Mv_engine.Table.col_index_exn o "o_orderkey" in
  let oc = Mv_engine.Table.col_index_exn o "o_custkey" in
  let expected =
    List.concat_map
      (fun lrow ->
        List.filter_map
          (fun orow ->
            if
              Value.equal lrow.(lio) orow.(oo)
              && Value.order lrow.(liq) (Value.Int 10) <= 0
            then Some [| lrow.(lio); orow.(oc) |]
            else None)
          o.Mv_engine.Table.rows)
      li.Mv_engine.Table.rows
  in
  Alcotest.(check bool) "same bag" true
    (Mv_engine.Relation.same_bag r
       { Mv_engine.Relation.cols = r.Mv_engine.Relation.cols; rows = expected })

let test_three_way_join_count () =
  let db = db () in
  let q =
    parse_q
      "select l_orderkey from lineitem, orders, customer where l_orderkey = o_orderkey and o_custkey = c_custkey"
  in
  let r = Mv_engine.Exec.execute db q in
  (* FK integrity means every lineitem row survives *)
  Alcotest.(check int) "cardinality preserved"
    (Mv_engine.Database.row_count db "lineitem")
    (Mv_engine.Relation.cardinality r)

let test_group_by_sums () =
  let db = db () in
  let q =
    parse_q
      "select o_custkey, count(*) as n, sum(o_totalprice) as t from orders group by o_custkey"
  in
  let r = Mv_engine.Exec.execute db q in
  (* total of the per-group counts equals the table size *)
  let ni =
    let rec idx i = function
      | [] -> failwith "no n"
      | c :: rest -> if c = "n" then i else idx (i + 1) rest
    in
    idx 0 r.Mv_engine.Relation.cols
  in
  let total =
    List.fold_left
      (fun acc row ->
        match row.(ni) with Value.Int n -> acc + n | _ -> acc)
      0 r.Mv_engine.Relation.rows
  in
  Alcotest.(check int) "counts add up"
    (Mv_engine.Database.row_count db "orders")
    total

let test_scalar_aggregate_of_empty () =
  let db = db () in
  (* impossible predicate -> empty input; empty grouping still yields one
     row with count 0 and NULL sum *)
  let q =
    Spjg.make ~tables:[ "orders" ]
      ~where:
        [ Pred.Cmp (Pred.Lt, Expr.Col (col "orders" "o_orderkey"), Expr.Const (Value.Int 0)) ]
      ~group_by:(Some [])
      ~out:
        [
          Spjg.aggregate "n" Spjg.Count_star;
          Spjg.aggregate "t" (Spjg.Sum (Expr.Col (col "orders" "o_totalprice")));
        ]
  in
  let r = Mv_engine.Exec.execute db q in
  Alcotest.(check int) "one row" 1 (Mv_engine.Relation.cardinality r);
  match r.Mv_engine.Relation.rows with
  | [ [| n; t |] ] ->
      Alcotest.(check bool) "count 0" true (Value.equal n (Value.Int 0));
      Alcotest.(check bool) "sum null" true (Value.is_null t)
  | _ -> Alcotest.fail "unexpected shape"

let test_grouped_aggregate_of_empty () =
  let db = db () in
  let q =
    parse_q
      "select o_custkey, count(*) as n from orders where o_orderkey < 0 group by o_custkey"
  in
  let r = Mv_engine.Exec.execute db q in
  Alcotest.(check int) "no rows" 0 (Mv_engine.Relation.cardinality r)

let test_materialize_and_query_view () =
  let db = db () in
  let view =
    view_of_sql
      {| create view mv_test with schemabinding as
         select o_custkey, count_big(*) as cnt from dbo.orders group by o_custkey |}
  in
  let tbl = Mv_engine.Exec.materialize db view in
  Alcotest.(check bool) "view has rows" true (Mv_engine.Table.row_count tbl > 0);
  Alcotest.(check int) "row_count recorded"
    (Mv_engine.Table.row_count tbl)
    view.Mv_core.View.row_count;
  (* the view table is queryable through the engine *)
  let r =
    Mv_engine.Exec.execute db
      (Spjg.make ~tables:[ "mv_test" ] ~where:[] ~group_by:None
         ~out:[ Spjg.scalar "cnt" (Expr.Col (col "mv_test" "cnt")) ])
  in
  Alcotest.(check int) "same cardinality" (Mv_engine.Table.row_count tbl)
    (Mv_engine.Relation.cardinality r)

let test_null_join_keys_do_not_match () =
  (* NULL = NULL must not join *)
  let schema =
    Mv_catalog.Schema.make
      ~tables:
        [
          Mv_catalog.Table_def.make ~name:"t1"
            ~columns:
              [
                Mv_catalog.Column.make "a" Dtype.Int;
                Mv_catalog.Column.make ~nullable:true "b" Dtype.Int;
              ]
            ~primary_key:[ "a" ] ();
          Mv_catalog.Table_def.make ~name:"t2"
            ~columns:
              [
                Mv_catalog.Column.make "c" Dtype.Int;
                Mv_catalog.Column.make ~nullable:true "d" Dtype.Int;
              ]
            ~primary_key:[ "c" ] ();
        ]
      ~foreign_keys:[]
  in
  let db = Mv_engine.Database.create schema in
  Mv_engine.Database.insert db "t1" [| Value.Int 1; Value.Null |];
  Mv_engine.Database.insert db "t1" [| Value.Int 2; Value.Int 5 |];
  Mv_engine.Database.insert db "t2" [| Value.Int 1; Value.Null |];
  Mv_engine.Database.insert db "t2" [| Value.Int 2; Value.Int 5 |];
  let q =
    Spjg.make ~tables:[ "t1"; "t2" ]
      ~where:
        [
          Pred.Cmp (Pred.Eq, Expr.Col (col "t1" "b"), Expr.Col (col "t2" "d"));
        ]
      ~group_by:None
      ~out:[ Spjg.scalar "a" (Expr.Col (col "t1" "a")) ]
  in
  let r = Mv_engine.Exec.execute db q in
  Alcotest.(check int) "only the non-null pair" 1
    (Mv_engine.Relation.cardinality r)

let test_same_bag_detects_duplicates () =
  let a = { Mv_engine.Relation.cols = [ "x" ]; rows = [ [| Value.Int 1 |]; [| Value.Int 1 |] ] } in
  let b = { Mv_engine.Relation.cols = [ "x" ]; rows = [ [| Value.Int 1 |] ] } in
  Alcotest.(check bool) "bags differ" false (Mv_engine.Relation.same_bag a b);
  Alcotest.(check bool) "bag equals itself" true (Mv_engine.Relation.same_bag a a)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "scan + filter" `Quick test_scan_filter;
        Alcotest.test_case "hash join vs nested loop" `Quick test_join_vs_nested_loop;
        Alcotest.test_case "FK joins preserve cardinality" `Quick
          test_three_way_join_count;
        Alcotest.test_case "group by sums" `Quick test_group_by_sums;
        Alcotest.test_case "scalar aggregate of empty input" `Quick
          test_scalar_aggregate_of_empty;
        Alcotest.test_case "grouped aggregate of empty input" `Quick
          test_grouped_aggregate_of_empty;
        Alcotest.test_case "materialize view" `Quick test_materialize_and_query_view;
        Alcotest.test_case "null join keys do not match" `Quick
          test_null_join_keys_do_not_match;
        Alcotest.test_case "same_bag is multiset equality" `Quick
          test_same_bag_detects_duplicates;
      ] );
  ]
