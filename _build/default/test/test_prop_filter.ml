(** Filter-tree soundness property (section 4): the filter tree is an
    index, not an oracle — with [use_filter:true] its candidate set must be
    a superset of the views that actually match when tested linearly.
    Checked for both index plans: {!Filter_tree.default_plan}
    ([backjoins:false]) and {!Filter_tree.backjoin_plan}
    ([backjoins:true], which drops the output levels because backjoins can
    recover missing columns). *)

module Gen = Mv_workload.Generator
module Sset = Mv_util.Sset

let schema = Helpers.schema

let stats = Mv_tpch.Datagen.synthetic_stats ()

let candidate_names registry qa =
  List.fold_left
    (fun acc (v : Mv_core.View.t) -> Sset.add v.Mv_core.View.name acc)
    Sset.empty
    (Mv_core.Registry.candidates registry qa)

(* One case = one fresh mini-workload: the seed drives both the view batch
   and the query batch, so shrinking finds a small failing workload. *)
let check_seed seed =
  let views =
    List.filter_map
      (fun (name, spjg) ->
        match Mv_core.View.create schema ~name spjg with
        | v -> Some v
        | exception Mv_core.View.Rejected _ -> None)
      (Gen.views ~seed:(1000 + seed) schema stats 25)
  in
  let queries = Gen.queries ~seed:(5000 + seed) schema stats 5 in
  List.iter
    (fun backjoins ->
      let filtered = Mv_core.Registry.create ~backjoins schema in
      List.iter (Mv_core.Registry.add_prebuilt filtered) views;
      assert filtered.Mv_core.Registry.use_filter;
      List.iter
        (fun q ->
          let qa = Mv_relalg.Analysis.analyze schema q in
          let cands = candidate_names filtered qa in
          List.iter
            (fun (v : Mv_core.View.t) ->
              match Mv_core.Matcher.match_view ~backjoins ~query:qa v with
              | Ok _ ->
                  if not (Sset.mem v.Mv_core.View.name cands) then
                    QCheck.Test.fail_reportf
                      "%s pruned view %s although it matches query:@.%s"
                      (if backjoins then "backjoin_plan" else "default_plan")
                      v.Mv_core.View.name
                      (Mv_relalg.Spjg.to_sql q)
              | Error _ -> ())
            views)
        queries)
    [ false; true ];
  true

let soundness_prop =
  QCheck.Test.make
    ~name:"filter-tree candidates are a superset of matches (both plans)"
    ~count:(Helpers.qcheck_count 50)
    QCheck.(int_bound 9999)
    check_seed

let suite =
  [ ("prop_filter", [ Helpers.qtest soundness_prop ]) ]
