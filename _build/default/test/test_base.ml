(** Unit and property tests for the base layer: values, dates, LIKE,
    three-valued logic and expression evaluation. *)

open Mv_base

let v_int i = Value.Int i

let test_value_cmp3 () =
  Alcotest.(check (option int)) "int lt" (Some (-1)) (Value.cmp3 (Value.Int 1) (Value.Int 2));
  Alcotest.(check (option int)) "null lhs" None (Value.cmp3 Value.Null (Value.Int 2));
  Alcotest.(check (option int)) "null rhs" None (Value.cmp3 (Value.Int 2) Value.Null);
  Alcotest.(check (option int))
    "mixed numeric" (Some 0)
    (Value.cmp3 (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool)
    "incomparable raises" true
    (try
       ignore (Value.cmp3 (Value.Int 1) (Value.Str "x"));
       false
     with Value.Type_error _ -> true)

let test_value_order_total () =
  (* order must be a total order: null first, then by type tag *)
  let vs =
    [ Value.Null; Value.Bool true; Value.Int 3; Value.Float 2.5;
      Value.Date 100; Value.Str "a" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.order a b and ba = Value.order b a in
          Alcotest.(check bool) "antisymmetric" true (compare ab (-ba) = 0))
        vs)
    vs

let test_date_roundtrip () =
  List.iter
    (fun s ->
      match Date.of_string s with
      | None -> Alcotest.failf "cannot parse %s" s
      | Some d -> Alcotest.(check string) s s (Date.to_string d))
    [ "1992-01-01"; "1998-12-31"; "1996-02-29"; "2000-02-29"; "1970-01-01" ]

let test_date_arith () =
  let d = Option.get (Date.of_string "1995-12-31") in
  Alcotest.(check string) "+1 day" "1996-01-01" (Date.to_string (d + 1));
  Alcotest.(check (option int)) "bad month" None (Date.of_string "1995-13-01");
  Alcotest.(check (option int)) "junk" None (Date.of_string "hello")

let date_roundtrip_prop =
  QCheck.Test.make ~name:"date: days -> ymd -> days roundtrip" ~count:500
    QCheck.(int_range (-100000) 100000)
    (fun days ->
      let y, m, d = Date.ymd_of_days days in
      Date.days_of_ymd ~year:y ~month:m ~day:d = days)

let test_like_basics () =
  let check pat s expected =
    Alcotest.(check bool)
      (Printf.sprintf "'%s' LIKE '%s'" s pat)
      expected
      (Like.matches ~pattern:pat s)
  in
  check "%steel%" "stainless steel rod" true;
  check "%steel%" "stainless iron rod" false;
  check "steel" "steel" true;
  check "steel" "steels" false;
  check "s_eel" "steel" true;
  check "s_eel" "stteel" false;
  check "%" "" true;
  check "_%" "" false;
  check "a%b%c" "aXXbYYc" true;
  check "a%b%c" "acb" false;
  check "%%x" "x" true

let like_prop_literal =
  QCheck.Test.make ~name:"like: pattern without wildcards is equality"
    ~count:300
    QCheck.(string_of_size (Gen.int_range 0 12))
    (fun s ->
      QCheck.assume
        ((not (String.contains s '%')) && not (String.contains s '_'));
      Like.matches ~pattern:s s
      && (s = "" || not (Like.matches ~pattern:s (s ^ "!"))))

let like_prop_contains =
  QCheck.Test.make ~name:"like: %s% means substring" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 6)) (string_of_size (Gen.int_range 0 12)))
    (fun (needle, hay) ->
      QCheck.assume
        ((not (String.contains needle '%')) && not (String.contains needle '_'));
      let contains () =
        let nn = String.length needle and nh = String.length hay in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        nn = 0 || go 0
      in
      Like.matches ~pattern:("%" ^ needle ^ "%") hay = contains ())

let env_empty (_ : Col.t) = Value.Null

let test_eval_arith () =
  let e = Expr.Binop (Expr.Mul, Expr.Const (v_int 6), Expr.Const (v_int 7)) in
  Alcotest.(check bool) "6*7" true (Value.equal (Eval.expr env_empty e) (v_int 42));
  let div0 = Expr.Binop (Expr.Div, Expr.Const (v_int 1), Expr.Const (v_int 0)) in
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (Eval.expr env_empty div0));
  let mixed =
    Expr.Binop (Expr.Add, Expr.Const (Value.Float 1.5), Expr.Const (v_int 2))
  in
  Alcotest.(check bool) "mixed promotes" true
    (Value.equal (Eval.expr env_empty mixed) (Value.Float 3.5))

let test_eval_null_propagation () =
  let e = Expr.Binop (Expr.Add, Expr.Const Value.Null, Expr.Const (v_int 2)) in
  Alcotest.(check bool) "null + 2 = null" true (Value.is_null (Eval.expr env_empty e))

let test_3vl_where_semantics () =
  (* NULL comparisons are Unknown and rows are kept only on True *)
  let p = Pred.Cmp (Pred.Eq, Expr.Const Value.Null, Expr.Const (v_int 1)) in
  Alcotest.(check bool) "unknown not kept" false (Eval.pred_holds env_empty p);
  Alcotest.(check bool) "NOT unknown not kept" false
    (Eval.pred_holds env_empty (Pred.Not p));
  let q = Pred.Or (p, Pred.Bool true) in
  Alcotest.(check bool) "unknown OR true" true (Eval.pred_holds env_empty q);
  let r = Pred.And (p, Pred.Bool false) in
  Alcotest.(check bool) "unknown AND false" false (Eval.pred_holds env_empty r)

let test_is_null () =
  let p = Pred.Is_null (Expr.Const Value.Null) in
  Alcotest.(check bool) "null is null" true (Eval.pred_holds env_empty p);
  let q = Pred.Is_null (Expr.Const (v_int 1)) in
  Alcotest.(check bool) "1 is not null" false (Eval.pred_holds env_empty q)

(* negate_cmp must complement the comparison in 2VL *)
let negate_cmp_prop =
  QCheck.Test.make ~name:"pred: negate_cmp complements" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          let e1 = Expr.Const (v_int a) and e2 = Expr.Const (v_int b) in
          let t1 = Eval.pred env_empty (Pred.Cmp (op, e1, e2)) in
          let t2 = Eval.pred env_empty (Pred.Cmp (Pred.negate_cmp op, e1, e2)) in
          Pred.truth_not t1 = t2)
        [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])

let flip_cmp_prop =
  QCheck.Test.make ~name:"pred: flip_cmp mirrors arguments" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      List.for_all
        (fun op ->
          let e1 = Expr.Const (v_int a) and e2 = Expr.Const (v_int b) in
          Eval.pred env_empty (Pred.Cmp (op, e1, e2))
          = Eval.pred env_empty (Pred.Cmp (Pred.flip_cmp op, e2, e1)))
        [ Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge ])

let suite =
  [
    ( "base",
      [
        Alcotest.test_case "value cmp3" `Quick test_value_cmp3;
        Alcotest.test_case "value order total" `Quick test_value_order_total;
        Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
        Alcotest.test_case "date arithmetic and parsing" `Quick test_date_arith;
        Helpers.qtest date_roundtrip_prop;
        Alcotest.test_case "like basics" `Quick test_like_basics;
        Helpers.qtest like_prop_literal;
        Helpers.qtest like_prop_contains;
        Alcotest.test_case "eval arithmetic" `Quick test_eval_arith;
        Alcotest.test_case "eval null propagation" `Quick test_eval_null_propagation;
        Alcotest.test_case "3VL where semantics" `Quick test_3vl_where_semantics;
        Alcotest.test_case "is null" `Quick test_is_null;
        Helpers.qtest negate_cmp_prop;
        Helpers.qtest flip_cmp_prop;
      ] );
  ]
