(** The OLAP dimension-hierarchy claim of the paper's section 6: "if a
    dimension hierarchy is implemented as a set of tables connected by
    foreign keys, the functional dependencies are implied by foreign keys
    and will be exploited." A snowflake schema (sales -> product ->
    category) checks this end to end: a view aggregated at the product
    level answers queries rolled up to the category level, through the
    optimizer's preaggregation alternative and cardinality-preserving FK
    joins. *)

open Mv_base

(* a small snowflake: sales (fact), product, category *)
let schema =
  Mv_catalog.Schema.make
    ~tables:
      [
        Mv_catalog.Table_def.make ~name:"category"
          ~columns:
            [
              Mv_catalog.Column.make "cat_id" Dtype.Int;
              Mv_catalog.Column.make "cat_name" Dtype.Str;
            ]
          ~primary_key:[ "cat_id" ] ();
        Mv_catalog.Table_def.make ~name:"product"
          ~columns:
            [
              Mv_catalog.Column.make "prod_id" Dtype.Int;
              Mv_catalog.Column.make "prod_name" Dtype.Str;
              Mv_catalog.Column.make "prod_cat" Dtype.Int;
            ]
          ~primary_key:[ "prod_id" ] ();
        Mv_catalog.Table_def.make ~name:"sales"
          ~columns:
            [
              Mv_catalog.Column.make "sale_id" Dtype.Int;
              Mv_catalog.Column.make "sale_prod" Dtype.Int;
              Mv_catalog.Column.make "amount" Dtype.Int;
            ]
          ~primary_key:[ "sale_id" ] ();
      ]
    ~foreign_keys:
      [
        Mv_catalog.Foreign_key.make ~from_tbl:"product" ~from_cols:[ "prod_cat" ]
          ~to_tbl:"category" ~to_cols:[ "cat_id" ];
        Mv_catalog.Foreign_key.make ~from_tbl:"sales" ~from_cols:[ "sale_prod" ]
          ~to_tbl:"product" ~to_cols:[ "prod_id" ];
      ]

let db () =
  let db = Mv_engine.Database.create schema in
  let rng = Mv_util.Prng.create 404 in
  for c = 1 to 4 do
    Mv_engine.Database.insert db "category"
      [| Value.Int c; Value.Str (Printf.sprintf "cat-%d" c) |]
  done;
  for p = 1 to 20 do
    Mv_engine.Database.insert db "product"
      [|
        Value.Int p;
        Value.Str (Printf.sprintf "prod-%d" p);
        Value.Int (1 + Mv_util.Prng.int rng 4);
      |]
  done;
  for s = 1 to 500 do
    Mv_engine.Database.insert db "sales"
      [|
        Value.Int s;
        Value.Int (1 + Mv_util.Prng.int rng 20);
        Value.Int (10 + Mv_util.Prng.int rng 990);
      |]
  done;
  db

(* revenue per product: the "lower level" of the hierarchy *)
let product_level_view =
  {| create view rev_by_product with schemabinding as
     select sale_prod, count_big(*) as cnt, sum(amount) as revenue
     from dbo.sales
     group by sale_prod |}

let category_level_query =
  {| select cat_name, sum(amount) as revenue
     from sales, product, category
     where sale_prod = prod_id and prod_cat = cat_id
     group by cat_name |}

let test_category_rollup_uses_product_view () =
  let db = db () in
  let stats = Mv_engine.Database.stats db in
  let registry = Mv_core.Registry.create schema in
  let name, vdef = Mv_sql.Parser.parse_view schema product_level_view in
  let view =
    Mv_core.Registry.add_view registry ~name
      ~row_count:(Mv_opt.Cost.estimate_view_rows stats vdef)
      vdef
  in
  ignore (Mv_engine.Exec.materialize db view);
  let q = Mv_sql.Parser.parse_query schema category_level_query in
  let r = Mv_opt.Optimizer.optimize registry stats q in
  Alcotest.(check bool) "rollup goes through the product-level view" true
    r.Mv_opt.Optimizer.used_views;
  let direct = Mv_engine.Exec.execute db q in
  let via = Mv_opt.Plan_exec.execute db q r.Mv_opt.Optimizer.plan in
  Alcotest.(check int) "four categories" 4 (Mv_engine.Relation.cardinality direct);
  Alcotest.(check bool) "rollup is exact" true
    (Mv_engine.Relation.same_bag direct via)

let test_hierarchy_view_with_dimensions_joined () =
  (* the view itself carries the whole hierarchy (extra tables for a
     sales-only query): both FK hops must be eliminated *)
  let db = db () in
  let view_sql =
    {| create view sales_star with schemabinding as
       select sale_id, amount, prod_name, cat_name
       from dbo.sales, dbo.product, dbo.category
       where sale_prod = prod_id and prod_cat = cat_id |}
  in
  let query_sql = {| select sale_id, amount from sales |} in
  let name, vdef = Mv_sql.Parser.parse_view schema view_sql in
  let view = Mv_core.View.create schema ~name vdef in
  (* the hub collapses all the way down the hierarchy *)
  Alcotest.(check (list string))
    "hub is the fact table" [ "sales" ]
    (Mv_util.Sset.to_list view.Mv_core.View.hub);
  let q = Mv_sql.Parser.parse_query schema query_sql in
  match Mv_core.Matcher.match_spjg schema ~query:q view with
  | Error r -> Alcotest.failf "expected match: %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      ignore (Mv_engine.Exec.materialize db view);
      let direct = Mv_engine.Exec.execute db q in
      let via = Mv_engine.Exec.execute_substitute db s in
      Alcotest.(check bool) "equivalent" true
        (Mv_engine.Relation.same_bag direct via)

let test_mid_level_rollup () =
  (* view at the (product, category) level answers a category-level
     query directly through the grouping-subset test *)
  let db = db () in
  let view_sql =
    {| create view rev_by_prod_cat with schemabinding as
       select prod_id, cat_name, count_big(*) as cnt, sum(amount) as revenue
       from dbo.sales, dbo.product, dbo.category
       where sale_prod = prod_id and prod_cat = cat_id
       group by prod_id, cat_name |}
  in
  let query_sql =
    {| select cat_name, sum(amount) as revenue
       from sales, product, category
       where sale_prod = prod_id and prod_cat = cat_id
       group by cat_name |}
  in
  let name, vdef = Mv_sql.Parser.parse_view schema view_sql in
  let view = Mv_core.View.create schema ~name vdef in
  let q = Mv_sql.Parser.parse_query schema query_sql in
  match Mv_core.Matcher.match_spjg schema ~query:q view with
  | Error r -> Alcotest.failf "expected match: %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      Alcotest.(check bool) "regroups to the coarser level" true
        (Mv_core.Substitute.uses_regrouping s);
      ignore (Mv_engine.Exec.materialize db view);
      let direct = Mv_engine.Exec.execute db q in
      let via = Mv_engine.Exec.execute_substitute db s in
      Alcotest.(check bool) "equivalent" true
        (Mv_engine.Relation.same_bag direct via)

let suite =
  [
    ( "dimension-hierarchy",
      [
        Alcotest.test_case "category rollup via product-level view" `Quick
          test_category_rollup_uses_product_view;
        Alcotest.test_case "hierarchy joined into the view collapses" `Quick
          test_hierarchy_view_with_dimensions_joined;
        Alcotest.test_case "mid-level view regroups to coarser level" `Quick
          test_mid_level_rollup;
      ] );
  ]
