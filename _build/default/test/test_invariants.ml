(** Cross-cutting invariants over random workload views: descriptor
    consistency, registry insert/remove round-trips, matcher determinism,
    and substitute well-formedness. *)

module Spjg = Mv_relalg.Spjg
module Sset = Mv_util.Sset

let schema = Mv_tpch.Schema.schema
let stats = Mv_tpch.Datagen.synthetic_stats ()

let random_view seed =
  let rng = Mv_util.Prng.create (seed + 606060) in
  Mv_workload.Generator.generate_view schema stats rng

let descriptor_invariants_prop =
  QCheck.Test.make ~name:"view descriptor: structural invariants" ~count:300
    QCheck.small_int
    (fun seed ->
      let spjg = random_view seed in
      let v = Mv_core.View.create schema ~name:"inv" spjg in
      (* hub is a nonempty subset of the source tables *)
      Sset.subset v.Mv_core.View.hub v.Mv_core.View.source_tables
      && (not (Sset.is_empty v.Mv_core.View.hub))
      (* the extended output set contains every bare-column output *)
      && List.for_all
           (fun (c, _) -> Mv_base.Col.Set.mem c v.Mv_core.View.extended_output_cols)
           (Mv_relalg.Analysis.col_outputs v.Mv_core.View.analysis)
      (* reduced range columns are a subset of the full range classes *)
      && Sset.for_all
           (fun s ->
             List.exists
               (fun cls ->
                 Mv_base.Col.Set.exists
                   (fun c -> Mv_base.Col.to_string c = s)
                   cls)
               v.Mv_core.View.range_classes)
           v.Mv_core.View.reduced_range_cols
      (* aggregation views have grouping keys; SPJ views none *)
      &&
      if Mv_core.View.is_aggregate v then true
      else Sset.is_empty v.Mv_core.View.grouping_expr_templates
           && Mv_base.Col.Set.is_empty v.Mv_core.View.extended_grouping_cols)

let remove_restores_candidates_prop =
  QCheck.Test.make ~name:"registry: remove/re-add round-trips" ~count:100
    QCheck.small_int
    (fun seed ->
      let r = Mv_core.Registry.create schema in
      let views =
        List.init 10 (fun i -> (Printf.sprintf "rr%d" i, random_view (seed + i)))
      in
      List.iter (fun (n, s) -> ignore (Mv_core.Registry.add_view r ~name:n s)) views;
      let rng = Mv_util.Prng.create (seed + 17) in
      let q =
        Mv_relalg.Analysis.analyze schema
          (Mv_workload.Generator.generate_query schema stats rng)
      in
      let names l = List.sort compare (List.map (fun v -> v.Mv_core.View.name) l) in
      let before = names (Mv_core.Registry.candidates r q) in
      (* remove half, re-add, candidates must be identical *)
      List.iteri
        (fun i (n, _) -> if i mod 2 = 0 then Mv_core.Registry.remove_view r n)
        views;
      List.iteri
        (fun i (n, s) ->
          if i mod 2 = 0 then ignore (Mv_core.Registry.add_view r ~name:n s))
        views;
      names (Mv_core.Registry.candidates r q) = before)

let matcher_deterministic_prop =
  QCheck.Test.make ~name:"matcher: deterministic output" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 99) in
      let view_def = Mv_workload.Generator.generate_view schema stats rng in
      let q = Mv_workload.Generator.generate_query schema stats rng in
      let v1 = Mv_core.View.create schema ~name:"det" view_def in
      let v2 = Mv_core.View.create schema ~name:"det" view_def in
      let run v = Mv_core.Matcher.match_spjg schema ~query:q v in
      match (run v1, run v2) with
      | Ok a, Ok b ->
          Mv_core.Substitute.to_sql a = Mv_core.Substitute.to_sql b
      | Error _, Error _ -> true
      | _ -> false)

let substitute_wellformed_prop =
  QCheck.Test.make ~name:"substitute: well-formed blocks" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 2024) in
      let view_def = Mv_workload.Generator.generate_view schema stats rng in
      let q = Mv_workload.Generator.generate_query schema stats rng in
      let v = Mv_core.View.create schema ~name:"wf" view_def in
      match Mv_core.Matcher.match_spjg schema ~query:q v with
      | Error _ -> true
      | Ok s ->
          let b = s.Mv_core.Substitute.block in
          (* same output names as the query, same order *)
          Spjg.out_names b = Spjg.out_names q
          (* references only the view *)
          && b.Spjg.tables = [ "wf" ]
          (* every column reference is a view output *)
          && List.for_all
               (fun (c : Mv_base.Col.t) ->
                 c.Mv_base.Col.tbl = "wf"
                 && Spjg.find_out (Mv_core.View.spjg v) c.Mv_base.Col.col
                    <> None)
               (Mv_base.Col.Set.elements (Spjg.referenced_columns b)))

let union_parts_disjoint_prop =
  QCheck.Test.make ~name:"union: slices are pairwise disjoint" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 31) in
      let cut = 10 + Mv_util.Prng.int rng 25 in
      let overlap = Mv_util.Prng.int rng 5 in
      let r = Mv_core.Registry.create schema in
      List.iter
        (fun (n, sql) ->
          let _, def = Mv_sql.Parser.parse_view schema sql in
          ignore (Mv_core.Registry.add_view r ~name:n def))
        [
          ( "ua",
            Printf.sprintf
              "create view ua with schemabinding as select l_orderkey, \
               l_quantity from dbo.lineitem where l_quantity <= %d"
              cut );
          ( "ub",
            Printf.sprintf
              "create view ub with schemabinding as select l_orderkey, \
               l_quantity from dbo.lineitem where l_quantity >= %d"
              (cut - overlap) );
        ];
      let q =
        Mv_sql.Parser.parse_query schema
          "select l_orderkey from lineitem where l_quantity between 2 and 48"
      in
      match
        Mv_core.Registry.find_union_substitutes r
          (Mv_relalg.Analysis.analyze schema q)
      with
      | None -> true
      | Some u ->
          let slices = u.Mv_core.Union_substitute.slices in
          let values = List.init 52 (fun k -> Mv_base.Value.Int k) in
          List.for_all
            (fun v ->
              List.length
                (List.filter
                   (fun s -> Mv_relalg.Interval.mem v s)
                   slices)
              <= 1)
            values)

let suite =
  [
    ( "invariants",
      [
        Helpers.qtest descriptor_invariants_prop;
        Helpers.qtest remove_restores_candidates_prop;
        Helpers.qtest matcher_deterministic_prop;
        Helpers.qtest substitute_wellformed_prop;
        Helpers.qtest union_parts_disjoint_prop;
      ] );
  ]
