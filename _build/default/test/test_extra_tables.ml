(** Views with extra tables (section 3.2): the paper's Example 3, hub
    computation, and the null-rejecting relaxation. *)

open Helpers
module Sset = Mv_util.Sset

(* Example 3: view joins lineitem-orders-customer; the query only needs
   lineitem. Both extra tables fall away through cardinality-preserving FK
   joins. *)
let example3_view =
  {| create view v3 with schemabinding as
     select c_custkey, c_name, l_orderkey, l_partkey, l_quantity
     from dbo.lineitem, dbo.orders, dbo.customer
     where l_orderkey = o_orderkey
       and o_custkey = c_custkey
       and o_orderkey >= 500 |}

let example3_query =
  {| select l_orderkey, l_partkey, l_quantity
     from lineitem
     where l_orderkey between 1000 and 1500
       and l_shipdate = l_commitdate |}

let test_example3 () =
  (* smaller constants so the scaled-down data still has matching rows *)
  let query_sql =
    {| select l_orderkey, l_partkey, l_quantity
       from lineitem
       where l_orderkey between 10 and 60
         and l_shipdate = l_commitdate |}
  in
  let view_sql =
    {| create view v3 with schemabinding as
       select c_custkey, c_name, l_orderkey, l_partkey, l_quantity,
              l_shipdate, l_commitdate
       from dbo.lineitem, dbo.orders, dbo.customer
       where l_orderkey = o_orderkey
         and o_custkey = c_custkey
         and o_orderkey >= 5 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_example3_structure () =
  (* the original constants: check the match succeeds and the compensating
     predicates enforce the narrower range *)
  let view_sql =
    {| create view v3 with schemabinding as
       select c_custkey, c_name, l_orderkey, l_partkey, l_quantity,
              l_shipdate, l_commitdate
       from dbo.lineitem, dbo.orders, dbo.customer
       where l_orderkey = o_orderkey
         and o_custkey = c_custkey
         and o_orderkey >= 500 |}
  in
  let s = check_matches ~view_sql ~query_sql:example3_query () in
  let preds = s.Mv_core.Substitute.block.Mv_relalg.Spjg.where in
  (* expected: l_shipdate = l_commitdate, l_orderkey >= 1000,
     l_orderkey <= 1500 *)
  Alcotest.(check int) "three compensating predicates" 3 (List.length preds)

let test_no_fk_path_rejects () =
  (* part is an extra table but nothing joins it with an FK equijoin *)
  let view_sql =
    {| create view v_nofk with schemabinding as
       select l_orderkey, l_quantity
       from dbo.lineitem, dbo.part
       where l_quantity = p_size |}
  in
  let query_sql = {| select l_orderkey, l_quantity from lineitem |} in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Extra_tables_not_eliminable -> ()
  | r ->
      Alcotest.failf "expected elimination failure, got %s"
        (Mv_core.Reject.to_string r)

let test_extra_table_with_predicate_rejects () =
  (* the extra table carries a range predicate: the join is no longer
     cardinality preserving for the query's purposes; the range subsumption
     test must reject (the query has no constraint on o_totalprice) *)
  let view_sql =
    {| create view v_pred with schemabinding as
       select l_orderkey, l_quantity
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey and o_totalprice >= 100000 |}
  in
  let query_sql = {| select l_orderkey, l_quantity from lineitem |} in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Range_subsumption_failed _ -> ()
  | r ->
      Alcotest.failf "expected range failure, got %s"
        (Mv_core.Reject.to_string r)

let test_composite_fk_elimination () =
  (* partsupp is eliminated through the composite
     (l_partkey, l_suppkey) -> (ps_partkey, ps_suppkey) key *)
  let view_sql =
    {| create view v_ps with schemabinding as
       select l_orderkey, l_quantity, ps_availqty
       from dbo.lineitem, dbo.partsupp
       where l_partkey = ps_partkey and l_suppkey = ps_suppkey |}
  in
  let query_sql = {| select l_orderkey, l_quantity from lineitem |} in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_composite_fk_partial_join_rejects () =
  (* only one of the two composite-key columns is equated *)
  let view_sql =
    {| create view v_ps2 with schemabinding as
       select l_orderkey, l_quantity
       from dbo.lineitem, dbo.partsupp
       where l_partkey = ps_partkey |}
  in
  let query_sql = {| select l_orderkey, l_quantity from lineitem |} in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Extra_tables_not_eliminable -> ()
  | r ->
      Alcotest.failf "expected elimination failure, got %s"
        (Mv_core.Reject.to_string r)

let test_chain_elimination_order () =
  (* customer can only go after orders (example 3's deletion order) —
     exercise a three-level chain lineitem -> orders -> customer -> nation *)
  let view_sql =
    {| create view v_chain with schemabinding as
       select l_orderkey, l_quantity
       from dbo.lineitem, dbo.orders, dbo.customer, dbo.nation
       where l_orderkey = o_orderkey and o_custkey = c_custkey
         and c_nationkey = n_nationkey |}
  in
  let query_sql = {| select l_orderkey, l_quantity from lineitem |} in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_hub_of_pure_fk_view () =
  let view =
    view_of_sql
      {| create view v_hub with schemabinding as
         select l_orderkey, l_quantity
         from dbo.lineitem, dbo.orders, dbo.customer
         where l_orderkey = o_orderkey and o_custkey = c_custkey |}
  in
  Alcotest.(check (list string))
    "hub reduces to lineitem" [ "lineitem" ]
    (Sset.to_list view.Mv_core.View.hub)

let test_hub_keeps_predicate_table () =
  (* orders carries a range predicate on a trivial-class column, so the
     refinement of section 4.2.2 keeps it in the hub *)
  let view =
    view_of_sql
      {| create view v_hub2 with schemabinding as
         select l_orderkey, l_quantity
         from dbo.lineitem, dbo.orders
         where l_orderkey = o_orderkey and o_totalprice >= 100000 |}
  in
  Alcotest.(check (list string))
    "hub keeps orders" [ "lineitem"; "orders" ]
    (Sset.to_list view.Mv_core.View.hub)

let test_query_larger_than_view_rejects () =
  let view_sql =
    {| create view v_small with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem |}
  in
  let query_sql =
    {| select l_orderkey from lineitem, orders where l_orderkey = o_orderkey |}
  in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Missing_tables -> ()
  | r -> Alcotest.failf "expected missing tables, got %s" (Mv_core.Reject.to_string r)

let suite =
  [
    ( "extra-tables",
      [
        Alcotest.test_case "paper example 3 end-to-end" `Quick test_example3;
        Alcotest.test_case "example 3 compensating predicates" `Quick
          test_example3_structure;
        Alcotest.test_case "reject without FK path" `Quick test_no_fk_path_rejects;
        Alcotest.test_case "reject when extra table filtered" `Quick
          test_extra_table_with_predicate_rejects;
        Alcotest.test_case "composite FK eliminates partsupp" `Quick
          test_composite_fk_elimination;
        Alcotest.test_case "partial composite join rejects" `Quick
          test_composite_fk_partial_join_rejects;
        Alcotest.test_case "chained elimination" `Quick test_chain_elimination_order;
        Alcotest.test_case "hub of pure FK view" `Quick test_hub_of_pure_fk_view;
        Alcotest.test_case "hub keeps predicate-bearing table" `Quick
          test_hub_keeps_predicate_table;
        Alcotest.test_case "reject when query has more tables" `Quick
          test_query_larger_than_view_rejects;
      ] );
  ]
