(** Tests for the relational-algebra layer: CNF conversion, predicate
    classification, equivalence classes, ranges and residual templates. *)

open Mv_base
module Cnf = Mv_relalg.Cnf
module Classify = Mv_relalg.Classify
module Equiv = Mv_relalg.Equiv
module Interval = Mv_relalg.Interval

let c t n = Col.make t n
let lq = c "lineitem" "l_quantity"
let lo = c "lineitem" "l_orderkey"
let oo = c "orders" "o_orderkey"
let ok = c "orders" "o_custkey"
let i x = Expr.Const (Value.Int x)
let colq = Expr.Col lq

(* random predicate generator over two integer "columns" *)
let pred_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map2
          (fun op x ->
            let ops = [| Pred.Eq; Pred.Ne; Pred.Lt; Pred.Le; Pred.Gt; Pred.Ge |] in
            Pred.Cmp (ops.(op mod 6), Expr.Col lq, i x))
          small_nat (int_range (-5) 5);
        map
          (fun x -> Pred.Cmp (Pred.Eq, Expr.Col lo, i x))
          (int_range (-5) 5);
        return (Pred.Cmp (Pred.Eq, Expr.Col lq, Expr.Col lo));
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (2, map2 (fun a b -> Pred.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> Pred.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> Pred.Not a) (go (depth - 1)));
        ]
  in
  go 3

let pred_arb = QCheck.make ~print:Pred.to_string pred_gen

(* CNF conversion preserves 3VL truth under every assignment *)
let cnf_equiv_prop =
  QCheck.Test.make ~name:"cnf: conversion preserves truth" ~count:500
    QCheck.(pair pred_arb (pair (int_range (-6) 6) (int_range (-6) 6)))
    (fun (p, (vq, vo)) ->
      let env col =
        if Col.equal col lq then Value.Int vq
        else if Col.equal col lo then Value.Int vo
        else Value.Null
      in
      let direct = Eval.pred env p in
      let via_cnf = Eval.pred env (Pred.conj (Cnf.conjuncts p)) in
      direct = via_cnf)

let cnf_shape_prop =
  QCheck.Test.make ~name:"cnf: conjuncts contain no top-level AND" ~count:300
    pred_arb
    (fun p ->
      List.for_all
        (fun conj ->
          let rec no_and = function
            | Pred.And _ -> false
            | Pred.Or (a, b) -> no_and a && no_and b
            | Pred.Not x -> no_and x
            | _ -> true
          in
          no_and conj)
        (Cnf.conjuncts p))

let test_classify () =
  let conjs =
    [
      Pred.Cmp (Pred.Eq, Expr.Col lo, Expr.Col oo);
      Pred.Cmp (Pred.Le, colq, i 10);
      Pred.Cmp (Pred.Ge, i 2, colq);
      (* flipped: 2 >= q is a range on q *)
      Pred.Cmp (Pred.Ne, colq, i 5);
      (* <> is residual *)
      Pred.Like (Expr.Col (c "part" "p_name"), "%x%");
      Pred.Cmp (Pred.Eq, colq, Expr.Col lo);
    ]
  in
  let cl = Classify.classify conjs in
  Alcotest.(check int) "col eqs" 2 (List.length cl.Classify.col_eqs);
  Alcotest.(check int) "ranges" 2 (List.length cl.Classify.ranges);
  Alcotest.(check int) "residuals" 2 (List.length cl.Classify.residuals);
  (* the flipped range must arrive as q <= 2 *)
  let has_le2 =
    List.exists
      (fun (col, op, v) ->
        Col.equal col lq && op = Pred.Le && Value.equal v (Value.Int 2))
      cl.Classify.ranges
  in
  Alcotest.(check bool) "flipped comparison normalized" true has_le2

let test_equiv_classes () =
  let schema = Mv_tpch.Schema.schema in
  let equiv =
    Equiv.build schema ~tables:[ "lineitem"; "orders" ]
      ~col_eqs:[ (lo, oo); (oo, ok) ]
  in
  Alcotest.(check bool) "lo ~ ok transitively" true (Equiv.same equiv lo ok);
  Alcotest.(check bool) "lq alone" false (Equiv.same equiv lq lo);
  Alcotest.(check int) "one nontrivial class" 1
    (List.length (Equiv.nontrivial_classes equiv));
  let cls = Equiv.class_of equiv lo in
  Alcotest.(check int) "class size 3" 3 (Col.Set.cardinal cls)

let test_class_within () =
  let schema = Mv_tpch.Schema.schema in
  let q = Equiv.build schema ~tables:[ "lineitem" ] ~col_eqs:[ (lo, lq) ] in
  Alcotest.(check bool) "subset ok" true
    (Equiv.class_within q (Col.Set.of_list [ lo; lq ]));
  Alcotest.(check bool) "not within" false
    (Equiv.class_within q (Col.Set.of_list [ lo; c "lineitem" "l_partkey" ]))

(* interval properties *)
let bound_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Interval.Unbounded);
        (3, map (fun x -> Interval.Incl (Value.Int x)) (int_range (-10) 10));
        (3, map (fun x -> Interval.Excl (Value.Int x)) (int_range (-10) 10));
      ])

let interval_gen =
  QCheck.Gen.map2 (fun lo hi -> { Interval.lo; hi }) bound_gen bound_gen

let interval_arb = QCheck.make ~print:Interval.to_string interval_gen

let mem_all i vs = List.filter (fun v -> Interval.mem (Value.Int v) i) vs

let sample = List.init 41 (fun k -> k - 20)

let interval_contains_prop =
  QCheck.Test.make ~name:"interval: contains agrees with membership" ~count:1000
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      if Interval.contains ~outer:a ~inner:b then
        (* every sampled member of b is in a *)
        List.for_all
          (fun v -> Interval.mem (Value.Int v) a)
          (mem_all b sample)
      else true)

let interval_intersect_prop =
  QCheck.Test.make ~name:"interval: intersection is pointwise and" ~count:1000
    QCheck.(pair interval_arb interval_arb)
    (fun (a, b) ->
      let inter = Interval.intersect a b in
      List.for_all
        (fun v ->
          Interval.mem (Value.Int v) inter
          = (Interval.mem (Value.Int v) a && Interval.mem (Value.Int v) b))
        sample)

let interval_to_preds_prop =
  QCheck.Test.make ~name:"interval: to_preds encodes membership" ~count:1000
    interval_arb
    (fun iv ->
      let preds = Interval.to_preds (Expr.Col lq) iv in
      List.for_all
        (fun v ->
          let env col =
            if Col.equal col lq then Value.Int v else Value.Null
          in
          List.for_all (Eval.pred_holds env) preds
          = Interval.mem (Value.Int v) iv)
        sample)

let test_residual_templates () =
  let r1 =
    Mv_relalg.Residual.of_pred
      (Pred.Cmp (Pred.Gt, Expr.Binop (Expr.Mul, Expr.Col lq, Expr.Col lo), i 100))
  in
  let r2 =
    Mv_relalg.Residual.of_pred
      (Pred.Cmp (Pred.Gt, Expr.Binop (Expr.Mul, Expr.Col lq, Expr.Col oo), i 100))
  in
  Alcotest.(check string) "same template" r1.Mv_relalg.Residual.template
    r2.Mv_relalg.Residual.template;
  let schema = Mv_tpch.Schema.schema in
  let equiv_eq =
    Equiv.build schema ~tables:[ "lineitem"; "orders" ] ~col_eqs:[ (lo, oo) ]
  in
  let equiv_ne =
    Equiv.build schema ~tables:[ "lineitem"; "orders" ] ~col_eqs:[]
  in
  Alcotest.(check bool) "match when equivalent" true
    (Mv_relalg.Residual.matches equiv_eq r1 r2);
  Alcotest.(check bool) "no match otherwise" false
    (Mv_relalg.Residual.matches equiv_ne r1 r2)

let test_spjg_validation () =
  let bad () =
    Mv_relalg.Spjg.make ~tables:[ "lineitem" ] ~where:[]
      ~group_by:(Some [ Expr.Col lq ])
      ~out:[ Mv_relalg.Spjg.scalar "x" (Expr.Col lo) ]
  in
  Alcotest.(check bool) "non-grouped scalar rejected" true
    (try
       ignore (bad ());
       false
     with Mv_relalg.Spjg.Invalid _ -> true);
  let dup () =
    Mv_relalg.Spjg.make ~tables:[ "lineitem" ] ~where:[] ~group_by:None
      ~out:
        [
          Mv_relalg.Spjg.scalar "x" (Expr.Col lo);
          Mv_relalg.Spjg.scalar "x" (Expr.Col lq);
        ]
  in
  Alcotest.(check bool) "duplicate names rejected" true
    (try
       ignore (dup ());
       false
     with Mv_relalg.Spjg.Invalid _ -> true)

let test_check_indexable () =
  let agg_no_count =
    Mv_relalg.Spjg.make ~tables:[ "lineitem" ] ~where:[]
      ~group_by:(Some [ Expr.Col lq ])
      ~out:
        [
          Mv_relalg.Spjg.scalar "l_quantity" (Expr.Col lq);
          Mv_relalg.Spjg.aggregate "s" (Mv_relalg.Spjg.Sum (Expr.Col lo));
        ]
  in
  Alcotest.(check bool) "missing count rejected" true
    (Result.is_error (Mv_relalg.Spjg.check_indexable agg_no_count))

let suite =
  [
    ( "relalg",
      [
        Helpers.qtest cnf_equiv_prop;
        Helpers.qtest cnf_shape_prop;
        Alcotest.test_case "classify conjuncts" `Quick test_classify;
        Alcotest.test_case "equivalence classes" `Quick test_equiv_classes;
        Alcotest.test_case "class within" `Quick test_class_within;
        Helpers.qtest interval_contains_prop;
        Helpers.qtest interval_intersect_prop;
        Helpers.qtest interval_to_preds_prop;
        Alcotest.test_case "residual templates" `Quick test_residual_templates;
        Alcotest.test_case "spjg validation" `Quick test_spjg_validation;
        Alcotest.test_case "check indexable" `Quick test_check_indexable;
      ] );
  ]
