(** The null-rejecting FK relaxation (last paragraph of section 3.2): a
    nullable foreign-key column normally disqualifies the edge, but when
    the query carries a null-rejecting predicate on that column the join is
    still cardinality preserving for exactly the rows the query keeps. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

(* a small schema with a nullable FK: employee.dept_id -> department.id *)
let schema =
  Mv_catalog.Schema.make
    ~tables:
      [
        Mv_catalog.Table_def.make ~name:"department"
          ~columns:
            [
              Mv_catalog.Column.make "id" Dtype.Int;
              Mv_catalog.Column.make "dname" Dtype.Str;
            ]
          ~primary_key:[ "id" ] ();
        Mv_catalog.Table_def.make ~name:"employee"
          ~columns:
            [
              Mv_catalog.Column.make "eid" Dtype.Int;
              Mv_catalog.Column.make ~nullable:true "dept_id" Dtype.Int;
              Mv_catalog.Column.make "salary" Dtype.Int;
            ]
          ~primary_key:[ "eid" ] ();
      ]
    ~foreign_keys:
      [
        Mv_catalog.Foreign_key.make ~from_tbl:"employee"
          ~from_cols:[ "dept_id" ] ~to_tbl:"department" ~to_cols:[ "id" ];
      ]

let c t n = Col.make t n

let view_def =
  (* employee joined with department: rows with NULL dept_id are absent *)
  Spjg.make ~tables:[ "department"; "employee" ]
    ~where:
      [ Pred.Cmp (Pred.Eq, Expr.Col (c "employee" "dept_id"), Expr.Col (c "department" "id")) ]
    ~group_by:None
    ~out:
      [
        Spjg.scalar "eid" (Expr.Col (c "employee" "eid"));
        Spjg.scalar "dept_id" (Expr.Col (c "employee" "dept_id"));
        Spjg.scalar "salary" (Expr.Col (c "employee" "salary"));
      ]

(* query with a null-rejecting range predicate on the FK column *)
let query_rejecting =
  Spjg.make ~tables:[ "employee" ]
    ~where:
      [ Pred.Cmp (Pred.Ge, Expr.Col (c "employee" "dept_id"), Expr.Const (Value.Int 2)) ]
    ~group_by:None
    ~out:
      [
        Spjg.scalar "eid" (Expr.Col (c "employee" "eid"));
        Spjg.scalar "salary" (Expr.Col (c "employee" "salary"));
      ]

(* query without any predicate on the FK column: NULL rows must appear *)
let query_keeping =
  Spjg.make ~tables:[ "employee" ] ~where:[] ~group_by:None
    ~out:[ Spjg.scalar "eid" (Expr.Col (c "employee" "eid")) ]

let test_strict_mode_rejects () =
  let view = Mv_core.View.create schema ~name:"emp_dept" view_def in
  match Mv_core.Matcher.match_spjg schema ~query:query_rejecting view with
  | Error Mv_core.Reject.Extra_tables_not_eliminable -> ()
  | Error r -> Alcotest.failf "unexpected rejection: %s" (Mv_core.Reject.to_string r)
  | Ok _ -> Alcotest.fail "strict mode must reject the nullable FK edge"

let test_relaxed_accepts_with_rejecting_pred () =
  let view =
    Mv_core.View.create ~relaxed_nulls:true schema ~name:"emp_dept2" view_def
  in
  match
    Mv_core.Matcher.match_spjg ~relaxed_nulls:true schema
      ~query:query_rejecting view
  with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "expected a match, got %s" (Mv_core.Reject.to_string r)

let test_relaxed_still_rejects_without_pred () =
  let view =
    Mv_core.View.create ~relaxed_nulls:true schema ~name:"emp_dept3" view_def
  in
  match
    Mv_core.Matcher.match_spjg ~relaxed_nulls:true schema ~query:query_keeping
      view
  with
  | Error Mv_core.Reject.Extra_tables_not_eliminable -> ()
  | Error r -> Alcotest.failf "unexpected rejection: %s" (Mv_core.Reject.to_string r)
  | Ok _ ->
      Alcotest.fail
        "without a null-rejecting predicate the rows with NULL dept_id are \
         missing from the view"

let test_relaxed_rewrite_is_correct_on_nulls () =
  (* execute with actual NULLs present *)
  let db = Mv_engine.Database.create schema in
  Mv_engine.Database.insert db "department" [| Value.Int 1; Value.Str "eng" |];
  Mv_engine.Database.insert db "department" [| Value.Int 2; Value.Str "ops" |];
  Mv_engine.Database.insert db "department" [| Value.Int 3; Value.Str "hr" |];
  List.iteri
    (fun i dept ->
      Mv_engine.Database.insert db "employee"
        [| Value.Int (i + 1); dept; Value.Int ((i + 1) * 100) |])
    [ Value.Int 1; Value.Int 2; Value.Null; Value.Int 3; Value.Null; Value.Int 2 ];
  let view =
    Mv_core.View.create ~relaxed_nulls:true schema ~name:"emp_dept4" view_def
  in
  match
    Mv_core.Matcher.match_spjg ~relaxed_nulls:true schema
      ~query:query_rejecting view
  with
  | Error r -> Alcotest.failf "expected a match, got %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      ignore (Mv_engine.Exec.materialize db view);
      let direct = Mv_engine.Exec.execute db query_rejecting in
      let via = Mv_engine.Exec.execute_substitute db s in
      Alcotest.(check int) "three employees in depts >= 2" 3
        (Mv_engine.Relation.cardinality direct);
      Alcotest.(check bool) "rewrite equivalent on null data" true
        (Mv_engine.Relation.same_bag direct via)

let test_relaxed_hub_is_optimistic () =
  (* relaxed mode must shrink the hub so the filter tree cannot prune the
     view for queries that only mention employee *)
  let strict = Mv_core.View.create schema ~name:"h1" view_def in
  let relaxed =
    Mv_core.View.create ~relaxed_nulls:true schema ~name:"h2" view_def
  in
  Alcotest.(check (list string))
    "strict hub keeps both" [ "department"; "employee" ]
    (Mv_util.Sset.to_list strict.Mv_core.View.hub);
  Alcotest.(check (list string))
    "relaxed hub shrinks" [ "employee" ]
    (Mv_util.Sset.to_list relaxed.Mv_core.View.hub)

let test_registry_end_to_end_relaxed () =
  let r = Mv_core.Registry.create ~relaxed_nulls:true schema in
  ignore (Mv_core.Registry.add_view r ~name:"emp_dept5" view_def);
  Alcotest.(check int) "found through filter tree" 1
    (List.length (Mv_core.Registry.find_substitutes_spjg r query_rejecting))

let suite =
  [
    ( "relaxed-nulls",
      [
        Alcotest.test_case "strict mode rejects nullable FK" `Quick
          test_strict_mode_rejects;
        Alcotest.test_case "relaxed accepts with null-rejecting predicate"
          `Quick test_relaxed_accepts_with_rejecting_pred;
        Alcotest.test_case "relaxed still rejects without predicate" `Quick
          test_relaxed_still_rejects_without_pred;
        Alcotest.test_case "rewrite correct on NULL data" `Quick
          test_relaxed_rewrite_is_correct_on_nulls;
        Alcotest.test_case "relaxed hub is optimistic" `Quick
          test_relaxed_hub_is_optimistic;
        Alcotest.test_case "registry end to end" `Quick
          test_registry_end_to_end_relaxed;
      ] );
  ]
