(** Scalar function evaluation, parser support for function calls, and the
    matcher's shallow treatment of function expressions. *)

open Mv_base
open Helpers

let env_empty (_ : Col.t) = Value.Null

let v = Eval.func

let test_substring () =
  Alcotest.(check bool) "basic" true
    (Value.equal
       (v "substring" [ Value.Str "materialized"; Value.Int 1; Value.Int 8 ])
       (Value.Str "material"));
  Alcotest.(check bool) "offset" true
    (Value.equal
       (v "substring" [ Value.Str "abcdef"; Value.Int 3; Value.Int 2 ])
       (Value.Str "cd"));
  Alcotest.(check bool) "past end clamps" true
    (Value.equal
       (v "substring" [ Value.Str "abc"; Value.Int 2; Value.Int 99 ])
       (Value.Str "bc"));
  Alcotest.(check bool) "zero length" true
    (Value.equal
       (v "substring" [ Value.Str "abc"; Value.Int 1; Value.Int 0 ])
       (Value.Str ""))

let test_case_functions () =
  Alcotest.(check bool) "upper" true
    (Value.equal (v "upper" [ Value.Str "TpC-h" ]) (Value.Str "TPC-H"));
  Alcotest.(check bool) "lower" true
    (Value.equal (v "lower" [ Value.Str "TpC-h" ]) (Value.Str "tpc-h"));
  Alcotest.(check bool) "abs int" true
    (Value.equal (v "abs" [ Value.Int (-3) ]) (Value.Int 3));
  Alcotest.(check bool) "abs float" true
    (Value.equal (v "abs" [ Value.Float (-1.5) ]) (Value.Float 1.5))

let test_null_propagation_and_unknown () =
  Alcotest.(check bool) "null arg" true
    (Value.is_null (v "upper" [ Value.Null ]));
  Alcotest.(check bool) "unknown function raises" true
    (try
       ignore (v "frobnicate" [ Value.Int 1 ]);
       false
     with Eval.Eval_error _ -> true)

let test_parser_function_call () =
  let q = parse_q "select substring(p_name, 1, 3) as prefix from part" in
  match (List.hd q.Mv_relalg.Spjg.out).Mv_relalg.Spjg.def with
  | Mv_relalg.Spjg.Scalar (Expr.Func ("substring", [ _; _; _ ])) -> ()
  | _ -> Alcotest.fail "expected a parsed function call"

let test_function_in_view_matching () =
  (* function expressions match via templates, like any other expression *)
  let view_sql =
    {| create view fn_v with schemabinding as
       select l_orderkey, substring(l_comment, 1, 4) as tag
       from dbo.lineitem where l_quantity >= 5 |}
  in
  let query_sql =
    {| select substring(l_comment, 1, 4) as t from lineitem
       where l_quantity >= 5 and l_orderkey <= 50 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_function_argument_mismatch_no_match () =
  (* different constant arguments -> different templates -> and the source
     column is not exported either, so the view is rejected *)
  let view_sql =
    {| create view fn_v2 with schemabinding as
       select l_orderkey, substring(l_comment, 1, 4) as tag
       from dbo.lineitem |}
  in
  let query_sql =
    {| select substring(l_comment, 2, 4) as t from lineitem |}
  in
  match match_sql ~view_sql ~query_sql () with
  | Error (Mv_core.Reject.Output_not_computable _) -> ()
  | Error r -> Alcotest.failf "unexpected: %s" (Mv_core.Reject.to_string r)
  | Ok _ -> Alcotest.fail "templates with different constants must not match"

let test_function_computed_from_source_column () =
  (* when the view exports the source column, the expression is computed
     from scratch instead *)
  let view_sql =
    {| create view fn_v3 with schemabinding as
       select l_orderkey, l_comment from dbo.lineitem |}
  in
  let query_sql = {| select substring(l_comment, 2, 4) as t from lineitem |} in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let suite =
  [
    ( "eval-functions",
      [
        Alcotest.test_case "substring" `Quick test_substring;
        Alcotest.test_case "upper/lower/abs" `Quick test_case_functions;
        Alcotest.test_case "null propagation + unknown fn" `Quick
          test_null_propagation_and_unknown;
        Alcotest.test_case "parser function call" `Quick test_parser_function_call;
        Alcotest.test_case "function matched by template" `Quick
          test_function_in_view_matching;
        Alcotest.test_case "different constants do not match" `Quick
          test_function_argument_mismatch_no_match;
        Alcotest.test_case "function computed from source column" `Quick
          test_function_computed_from_source_column;
      ] );
  ]
