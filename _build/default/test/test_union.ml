(** Union substitutes (section 7): several views, none of which contains
    all the rows a query needs, combined with UNION ALL over disjoint
    slices of one range — with the exact duplication factor preserved. *)

open Helpers
module Spjg = Mv_relalg.Spjg
module A = Mv_relalg.Analysis

let low_view =
  {| create view un_low with schemabinding as
     select l_orderkey, l_quantity, l_extendedprice from dbo.lineitem
     where l_quantity <= 25 |}

let high_view =
  {| create view un_high with schemabinding as
     select l_orderkey, l_quantity, l_extendedprice from dbo.lineitem
     where l_quantity >= 20 |}

let spanning_query =
  {| select l_orderkey, l_quantity from lineitem
     where l_quantity between 5 and 45 |}

let make_registry view_sqls =
  let r = Mv_core.Registry.create schema in
  List.iter
    (fun sql ->
      let name, spjg = parse_v sql in
      ignore (Mv_core.Registry.add_view r ~name spjg))
    view_sqls;
  r

let find_union registry query_sql =
  Mv_core.Registry.find_union_substitutes registry
    (A.analyze schema (parse_q query_sql))

let test_two_view_union () =
  let r = make_registry [ low_view; high_view ] in
  (* no single view matches *)
  Alcotest.(check int) "no single-view substitute" 0
    (List.length (Mv_core.Registry.find_substitutes_spjg r (parse_q spanning_query)));
  match find_union r spanning_query with
  | None -> Alcotest.fail "expected a union substitute"
  | Some u ->
      Alcotest.(check int) "two parts" 2
        (List.length u.Mv_core.Union_substitute.parts);
      (* execution equivalence, with overlap rows (20..25) present in both
         views — the slicing must not duplicate them *)
      let db = Mv_tpch.Datagen.generate ~seed:83 ~scale:2 () in
      List.iter
        (fun v -> ignore (Mv_engine.Exec.materialize db v))
        (Mv_core.Union_substitute.views u);
      let direct = Mv_engine.Exec.execute db (parse_q spanning_query) in
      let via = Mv_engine.Exec.execute_union db u in
      Alcotest.(check bool) "nonempty" true
        (Mv_engine.Relation.cardinality direct > 0);
      Alcotest.(check bool) "union equivalent (no duplication)" true
        (Mv_engine.Relation.same_bag direct via)

let test_gap_rejected () =
  (* views covering <= 15 and >= 30 leave a hole for a 5..45 query *)
  let r =
    make_registry
      [
        {| create view un_l2 with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem
           where l_quantity <= 15 |};
        {| create view un_h2 with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem
           where l_quantity >= 30 |};
      ]
  in
  Alcotest.(check bool) "gap means no union" true
    (find_union r spanning_query = None)

let test_three_way_union () =
  let r =
    make_registry
      [
        {| create view un_a with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem
           where l_quantity <= 15 |};
        {| create view un_b with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem
           where l_quantity >= 14 and l_quantity <= 33 |};
        {| create view un_c with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem
           where l_quantity >= 30 |};
      ]
  in
  match find_union r spanning_query with
  | None -> Alcotest.fail "expected a three-way union"
  | Some u ->
      Alcotest.(check int) "three parts" 3
        (List.length u.Mv_core.Union_substitute.parts);
      let db = Mv_tpch.Datagen.generate ~seed:89 ~scale:2 () in
      List.iter
        (fun v -> ignore (Mv_engine.Exec.materialize db v))
        (Mv_core.Union_substitute.views u);
      let direct = Mv_engine.Exec.execute db (parse_q spanning_query) in
      let via = Mv_engine.Exec.execute_union db u in
      Alcotest.(check bool) "equivalent" true
        (Mv_engine.Relation.same_bag direct via)

let test_aggregation_not_unionable () =
  let r =
    make_registry
      [
        {| create view un_ag1 with schemabinding as
           select l_quantity, count_big(*) as cnt from dbo.lineitem
           where l_quantity <= 25 group by l_quantity |};
        {| create view un_ag2 with schemabinding as
           select l_quantity, count_big(*) as cnt from dbo.lineitem
           where l_quantity >= 20 group by l_quantity |};
      ]
  in
  let q =
    {| select l_quantity, count(*) as n from lineitem
       where l_quantity between 5 and 45 group by l_quantity |}
  in
  Alcotest.(check bool) "aggregation queries refuse unions" true
    (find_union r q = None)

let test_residual_mismatch_not_unionable () =
  (* the second view carries an extra residual: slicing cannot fix that *)
  let r =
    make_registry
      [
        low_view;
        {| create view un_h3 with schemabinding as
           select l_orderkey, l_quantity, l_extendedprice from dbo.lineitem
           where l_quantity >= 20 and l_comment like '%x%' |};
      ]
  in
  Alcotest.(check bool) "residual mismatch blocks the union" true
    (find_union r spanning_query = None)

let test_single_view_preferred_elsewhere () =
  (* when one view covers everything, the single-view path already works;
     the union finder is for the leftover case, and here it reports
     nothing because no view has a single range gap *)
  let r =
    make_registry
      [
        {| create view un_full with schemabinding as
           select l_orderkey, l_quantity from dbo.lineitem |};
      ]
  in
  Alcotest.(check int) "single view matches" 1
    (List.length (Mv_core.Registry.find_substitutes_spjg r (parse_q spanning_query)));
  Alcotest.(check bool) "no union needed" true
    (find_union r spanning_query = None)

let test_union_with_compensations () =
  (* parts still get their own compensating predicates (the query range is
     narrower than each slice's view) and projections *)
  let r =
    make_registry
      [
        {| create view un_w1 with schemabinding as
           select l_orderkey, l_quantity, l_tax from dbo.lineitem
           where l_quantity <= 30 and l_tax <= 6 |};
        {| create view un_w2 with schemabinding as
           select l_orderkey, l_quantity, l_tax from dbo.lineitem
           where l_quantity >= 28 and l_tax <= 6 |};
      ]
  in
  let q =
    {| select l_orderkey from lineitem
       where l_quantity between 5 and 45 and l_tax <= 4 |}
  in
  match find_union r q with
  | None -> Alcotest.fail "expected a union"
  | Some u ->
      let db = Mv_tpch.Datagen.generate ~seed:97 ~scale:2 () in
      List.iter
        (fun v -> ignore (Mv_engine.Exec.materialize db v))
        (Mv_core.Union_substitute.views u);
      let direct = Mv_engine.Exec.execute db (parse_q q) in
      let via = Mv_engine.Exec.execute_union db u in
      Alcotest.(check bool) "equivalent with compensations" true
        (Mv_engine.Relation.same_bag direct via)

(* property: any union substitute found over random slice layouts is
   equivalent *)
let union_equivalence_prop =
  let db = lazy (Mv_tpch.Datagen.generate ~seed:101 ~scale:2 ()) in
  let counter = ref 0 in
  QCheck.Test.make ~name:"union: random slicings compute the same bag"
    ~count:150 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 90001) in
      incr counter;
      (* random cut points over l_quantity in 1..50 with overlaps *)
      let cut1 = 5 + Mv_util.Prng.int rng 20 in
      let cut2 = cut1 + Mv_util.Prng.int rng 20 in
      let overlap = Mv_util.Prng.int rng 4 in
      let v1 =
        Printf.sprintf
          "create view upv%da with schemabinding as select l_orderkey, \
           l_quantity from dbo.lineitem where l_quantity <= %d"
          !counter cut1
      in
      let v2 =
        Printf.sprintf
          "create view upv%db with schemabinding as select l_orderkey, \
           l_quantity from dbo.lineitem where l_quantity >= %d and \
           l_quantity <= %d"
          !counter (cut1 - overlap) cut2
      in
      let v3 =
        Printf.sprintf
          "create view upv%dc with schemabinding as select l_orderkey, \
           l_quantity from dbo.lineitem where l_quantity >= %d"
          !counter (cut2 - overlap)
      in
      let r = make_registry [ v1; v2; v3 ] in
      let qlo = 1 + Mv_util.Prng.int rng 10 in
      let qhi = qlo + 10 + Mv_util.Prng.int rng 35 in
      let q =
        Printf.sprintf
          "select l_orderkey, l_quantity from lineitem where l_quantity \
           between %d and %d"
          qlo qhi
      in
      match find_union r q with
      | None -> true (* no cover found is always sound *)
      | Some u ->
          let db = Lazy.force db in
          List.iter
            (fun v ->
              if Mv_engine.Database.table db v.Mv_core.View.name = None then
                ignore (Mv_engine.Exec.materialize db v))
            (Mv_core.Union_substitute.views u);
          let direct = Mv_engine.Exec.execute db (parse_q q) in
          let via = Mv_engine.Exec.execute_union db u in
          if not (Mv_engine.Relation.same_bag direct via) then
            QCheck.Test.fail_reportf "union mismatch:\n%s\nquery: %s"
              (Mv_core.Union_substitute.to_sql u)
              q
          else true)

let suite =
  [
    ( "union",
      [
        Alcotest.test_case "two-view union with overlap" `Quick
          test_two_view_union;
        Alcotest.test_case "coverage gap rejected" `Quick test_gap_rejected;
        Alcotest.test_case "three-way union" `Quick test_three_way_union;
        Alcotest.test_case "aggregation not unionable" `Quick
          test_aggregation_not_unionable;
        Alcotest.test_case "residual mismatch blocks union" `Quick
          test_residual_mismatch_not_unionable;
        Alcotest.test_case "full view needs no union" `Quick
          test_single_view_preferred_elsewhere;
        Alcotest.test_case "union with compensations" `Quick
          test_union_with_compensations;
        Helpers.qtest union_equivalence_prop;
      ] );
  ]
