test/test_disjunction.ml: Alcotest Col Eval Expr Gen Helpers Lazy List Mv_base Mv_core Mv_engine Mv_relalg Mv_tpch Mv_util Printf QCheck Value
