test/test_prop_equivalence.ml: Alcotest Fun Helpers Lazy List Mv_base Mv_core Mv_relalg Mv_tpch Mv_util Mv_workload QCheck
