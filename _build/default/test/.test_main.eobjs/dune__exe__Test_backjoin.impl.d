test/test_backjoin.ml: Alcotest Helpers Lazy List Mv_core Mv_engine Mv_relalg Mv_tpch Mv_util Mv_workload Printf QCheck
