test/test_prop_filter.ml: Helpers List Mv_core Mv_relalg Mv_tpch Mv_util Mv_workload QCheck
