test/test_compensation_routing.ml: Alcotest Helpers List Mv_base Mv_core Mv_relalg
