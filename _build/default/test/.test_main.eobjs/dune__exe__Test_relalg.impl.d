test/test_relalg.ml: Alcotest Array Col Eval Expr Helpers List Mv_base Mv_relalg Mv_tpch Pred QCheck Result Value
