test/test_checks.ml: Alcotest Helpers List Mv_base Mv_catalog Mv_core Mv_engine Mv_relalg Mv_tpch
