test/test_base.ml: Alcotest Col Date Eval Expr Gen Helpers Like List Mv_base Option Pred Printf QCheck String Value
