test/test_workload.ml: Alcotest Lazy List Mv_base Mv_catalog Mv_core Mv_opt Mv_relalg Mv_sql Mv_tpch Mv_workload Printexc
