test/helpers.ml: Alcotest Col Mv_base Mv_core Mv_engine Mv_relalg Mv_sql Mv_tpch QCheck_alcotest String Sys
