test/test_optimizer.ml: Alcotest Helpers Lazy List Mv_core Mv_engine Mv_opt Mv_relalg Mv_sql Mv_tpch Mv_util Mv_workload QCheck
