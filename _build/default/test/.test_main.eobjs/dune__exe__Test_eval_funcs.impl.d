test/test_eval_funcs.ml: Alcotest Col Eval Expr Helpers List Mv_base Mv_core Mv_relalg Value
