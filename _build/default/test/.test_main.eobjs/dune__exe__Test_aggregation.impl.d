test/test_aggregation.ml: Alcotest Helpers Mv_base Mv_core Mv_relalg
