test/test_experiments.ml: Alcotest Lazy List Mv_experiments Printf
