test/test_lattice.ml: Alcotest Char Helpers List Mv_core Mv_util QCheck String
