test/test_filter_tree.ml: Alcotest Helpers List Mv_core Mv_relalg Mv_sql Mv_tpch Mv_util Mv_workload QCheck String
