test/test_index.ml: Alcotest Array Helpers Lazy List Mv_base Mv_core Mv_engine Mv_opt Mv_relalg Mv_tpch Printf QCheck Value
