test/test_sql.ml: Alcotest Helpers List Mv_base Mv_catalog Mv_relalg Mv_sql Mv_tpch Mv_util Mv_workload QCheck Result String
