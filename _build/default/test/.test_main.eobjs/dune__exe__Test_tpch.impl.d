test/test_tpch.ml: Alcotest Array Col Fmt Hashtbl List Mv_base Mv_catalog Mv_engine Mv_tpch String Value
