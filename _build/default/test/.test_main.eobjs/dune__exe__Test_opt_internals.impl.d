test/test_opt_internals.ml: Alcotest Col Expr Helpers List Mv_base Mv_catalog Mv_core Mv_opt Mv_relalg Mv_tpch Printf String
