test/test_equivalence.ml: Alcotest Helpers Lazy List Mv_base Mv_core Mv_engine Mv_relalg Mv_tpch Mv_util Mv_workload Printf QCheck
