test/test_engine.ml: Alcotest Array Dtype Expr Helpers List Mv_base Mv_catalog Mv_core Mv_engine Mv_relalg Mv_tpch Pred Value
