test/test_invariants.ml: Helpers List Mv_base Mv_core Mv_relalg Mv_sql Mv_tpch Mv_util Mv_workload Printf QCheck
