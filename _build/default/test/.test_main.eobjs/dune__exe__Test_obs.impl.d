test/test_obs.ml: Alcotest Helpers List Mv_core Mv_experiments Mv_obs Mv_sql Printf
