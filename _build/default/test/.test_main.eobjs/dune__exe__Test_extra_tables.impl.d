test/test_extra_tables.ml: Alcotest Helpers List Mv_core Mv_relalg Mv_util
