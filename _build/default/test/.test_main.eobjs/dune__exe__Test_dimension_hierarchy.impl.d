test/test_dimension_hierarchy.ml: Alcotest Dtype Mv_base Mv_catalog Mv_core Mv_engine Mv_opt Mv_sql Mv_util Printf Value
