test/test_filter_levels.ml: Alcotest Helpers List Mv_core Mv_relalg
