test/test_matching.ml: Alcotest Helpers List Mv_core Mv_relalg
