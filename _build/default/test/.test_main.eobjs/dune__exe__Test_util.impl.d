test/test_util.ml: Alcotest Array Fun Gen Helpers Int List Mv_util QCheck
