test/test_union.ml: Alcotest Helpers Lazy List Mv_core Mv_engine Mv_relalg Mv_tpch Mv_util Printf QCheck
