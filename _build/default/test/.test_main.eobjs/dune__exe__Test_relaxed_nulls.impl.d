test/test_relaxed_nulls.ml: Alcotest Col Dtype Expr List Mv_base Mv_catalog Mv_core Mv_engine Mv_relalg Mv_util Pred Value
