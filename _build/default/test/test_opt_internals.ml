(** Unit tests for optimizer internals: subexpression blocks,
    preaggregation block construction, the cost model, and plan
    utilities. *)

open Mv_base
open Helpers
module Spjg = Mv_relalg.Spjg
module Block = Mv_opt.Block
module Cost = Mv_opt.Cost

let stats = Mv_tpch.Datagen.synthetic_stats ()

let three_way =
  parse_q
    {| select l_orderkey, c_name from lineitem, orders, customer
       where l_orderkey = o_orderkey and o_custkey = c_custkey
         and l_quantity >= 30 and o_totalprice <= 100000 |}

let test_sub_block_single () =
  let b = Block.sub_block three_way [ "lineitem" ] in
  Alcotest.(check (list string)) "tables" [ "lineitem" ] b.Spjg.tables;
  (* local predicate restricted to lineitem *)
  Alcotest.(check int) "one local conjunct" 1 (List.length b.Spjg.where);
  (* outputs include the join column and the query output *)
  let outs = Spjg.out_names b in
  Alcotest.(check bool) "outputs l_orderkey" true (List.mem "l_orderkey" outs)

let test_sub_block_pair () =
  let b = Block.sub_block three_way [ "lineitem"; "orders" ] in
  Alcotest.(check int) "three local conjuncts" 3 (List.length b.Spjg.where);
  (* o_custkey crosses to customer, so it must be an output *)
  Alcotest.(check bool) "outputs o_custkey" true
    (List.mem "o_custkey" (Spjg.out_names b))

let test_sub_block_full_is_query () =
  let b = Block.sub_block three_way three_way.Spjg.tables in
  Alcotest.(check string) "identity on the full set" (Spjg.to_sql three_way)
    (Spjg.to_sql b)

let agg_query =
  parse_q
    {| select c_nationkey, sum(l_quantity * l_extendedprice) as rev,
              count(*) as n
       from lineitem, orders, customer
       where l_orderkey = o_orderkey and o_custkey = c_custkey
       group by c_nationkey |}

let test_preagg_block_shape () =
  match Block.preagg_block agg_query [ "lineitem"; "orders" ] with
  | None -> Alcotest.fail "expected a preagg block"
  | Some pa ->
      let b = pa.Block.block in
      Alcotest.(check bool) "aggregated" true (Spjg.is_aggregate b);
      (* grouped exactly on the crossing column *)
      (match b.Spjg.group_by with
      | Some [ Expr.Col c ] ->
          Alcotest.(check string) "grouped on o_custkey" "o_custkey" c.Col.col
      | _ -> Alcotest.fail "unexpected grouping");
      (* outputs: o_custkey, cnt, one sum *)
      Alcotest.(check int) "three outputs" 3 (List.length b.Spjg.out)

let test_preagg_rejected_when_args_cross () =
  (* aggregate argument needs lineitem: no preagg over orders alone *)
  Alcotest.(check bool) "no preagg without agg args" true
    (Block.preagg_block agg_query [ "orders" ] = None)

let test_preagg_none_for_spj () =
  Alcotest.(check bool) "SPJ query has no preagg" true
    (Block.preagg_block three_way [ "lineitem" ] = None)

let test_spj_part_strips_aggregation () =
  let b = Block.spj_part agg_query in
  Alcotest.(check bool) "no group by" false (Spjg.is_aggregate b);
  Alcotest.(check (list string)) "same tables" agg_query.Spjg.tables b.Spjg.tables

(* ---- cost model ---- *)

let test_selectivity_multiplies () =
  let one =
    Cost.spj_rows stats ~tables:[ "lineitem" ]
      ~where:(parse_q "select l_orderkey from lineitem where l_quantity <= 25").Spjg.where
  in
  let two =
    Cost.spj_rows stats ~tables:[ "lineitem" ]
      ~where:
        (parse_q
           "select l_orderkey from lineitem where l_quantity <= 25 and l_discount <= 5")
          .Spjg.where
  in
  Alcotest.(check bool) "more predicates, fewer rows" true (two < one)

let test_equijoin_cardinality () =
  (* lineitem join orders on the FK: about one row per lineitem *)
  let j =
    Cost.spj_rows stats ~tables:[ "lineitem"; "orders" ]
      ~where:
        (parse_q
           "select l_orderkey from lineitem, orders where l_orderkey = o_orderkey")
          .Spjg.where
  in
  let li = float_of_int (Mv_catalog.Stats.row_count stats "lineitem") in
  Alcotest.(check bool)
    (Printf.sprintf "join est %.0f within 2x of lineitem %.0f" j li)
    true
    (j > li /. 2.0 && j < li *. 2.0)

let test_group_rows_capped () =
  let g = Cost.group_rows stats ~input:100.0 [ Expr.Col (col "orders" "o_orderkey") ] in
  Alcotest.(check bool) "groups below input" true (g <= 100.0)

let test_block_rows_aggregation () =
  let spj = Cost.block_rows stats (Block.spj_part agg_query) in
  let agg = Cost.block_rows stats agg_query in
  Alcotest.(check bool) "aggregation reduces rows" true (agg < spj)

(* ---- plan utilities ---- *)

let test_plan_printing_and_views_used () =
  let registry = Mv_core.Registry.create schema in
  let _, vdef =
    parse_v
      {| create view pi_v with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem |}
  in
  ignore (Mv_core.Registry.add_view registry ~name:"pi_v" ~row_count:10 vdef);
  let r =
    Mv_opt.Optimizer.optimize registry stats
      (parse_q "select l_orderkey from lineitem where l_quantity >= 10")
  in
  let txt = Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan in
  Alcotest.(check bool) "plan prints a ViewScan" true
    (Mv_opt.Plan.uses_view r.Mv_opt.Optimizer.plan);
  Alcotest.(check (list string)) "views_used" [ "pi_v" ]
    (Mv_opt.Plan.views_used r.Mv_opt.Optimizer.plan);
  Alcotest.(check bool) "printer mentions the view" true
    (let rec contains i =
       i + 4 <= String.length txt
       && (String.sub txt i 4 = "pi_v" || contains (i + 1))
     in
     contains 0)

let test_costs_monotone_in_inputs () =
  (* a plan over a narrower query should not cost more *)
  let registry = Mv_core.Registry.create schema in
  let narrow =
    Mv_opt.Optimizer.optimize registry stats
      (parse_q "select l_orderkey from lineitem where l_quantity = 3")
  in
  let wide =
    Mv_opt.Optimizer.optimize registry stats
      (parse_q "select l_orderkey from lineitem")
  in
  Alcotest.(check bool) "narrow rows <= wide rows" true
    (narrow.Mv_opt.Optimizer.rows <= wide.Mv_opt.Optimizer.rows)

let suite =
  [
    ( "opt-internals",
      [
        Alcotest.test_case "sub_block single table" `Quick test_sub_block_single;
        Alcotest.test_case "sub_block pair" `Quick test_sub_block_pair;
        Alcotest.test_case "sub_block full = query" `Quick
          test_sub_block_full_is_query;
        Alcotest.test_case "preagg block shape" `Quick test_preagg_block_shape;
        Alcotest.test_case "preagg rejected when args cross" `Quick
          test_preagg_rejected_when_args_cross;
        Alcotest.test_case "no preagg for SPJ" `Quick test_preagg_none_for_spj;
        Alcotest.test_case "spj_part strips aggregation" `Quick
          test_spj_part_strips_aggregation;
        Alcotest.test_case "selectivity multiplies" `Quick
          test_selectivity_multiplies;
        Alcotest.test_case "equijoin cardinality" `Quick test_equijoin_cardinality;
        Alcotest.test_case "group rows capped" `Quick test_group_rows_capped;
        Alcotest.test_case "aggregation reduces rows" `Quick
          test_block_rows_aggregation;
        Alcotest.test_case "plan printing and views_used" `Quick
          test_plan_printing_and_views_used;
        Alcotest.test_case "cost monotone in inputs" `Quick
          test_costs_monotone_in_inputs;
      ] );
  ]
