(** TPC-H substrate tests: schema constraint validity, generator
    determinism, referential integrity, and the analytic statistics. *)

open Mv_base

let test_schema_validates () =
  Mv_catalog.Schema.validate Mv_tpch.Schema.schema

let test_determinism () =
  let a = Mv_tpch.Datagen.generate ~seed:99 ~scale:1 () in
  let b = Mv_tpch.Datagen.generate ~seed:99 ~scale:1 () in
  List.iter
    (fun t ->
      let ta = Mv_engine.Database.table_exn a t in
      let tb = Mv_engine.Database.table_exn b t in
      Alcotest.(check bool)
        (t ^ " identical") true
        (ta.Mv_engine.Table.rows = tb.Mv_engine.Table.rows))
    [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ];
  let c = Mv_tpch.Datagen.generate ~seed:100 ~scale:1 () in
  let la = Mv_engine.Database.table_exn a "lineitem" in
  let lc = Mv_engine.Database.table_exn c "lineitem" in
  Alcotest.(check bool) "different seeds differ" false
    (la.Mv_engine.Table.rows = lc.Mv_engine.Table.rows)

let test_no_null_violations () =
  let db = Mv_tpch.Datagen.generate ~seed:7 ~scale:1 () in
  List.iter
    (fun t ->
      let tbl = Mv_engine.Database.table_exn db t in
      Alcotest.(check (list string)) (t ^ " not-null ok") []
        (Mv_engine.Table.null_violations tbl))
    [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ]

(* every foreign key of the schema holds in the generated data *)
let test_fk_integrity () =
  let db = Mv_tpch.Datagen.generate ~seed:13 ~scale:2 () in
  List.iter
    (fun (fk : Mv_catalog.Foreign_key.t) ->
      let src = Mv_engine.Database.table_exn db fk.Mv_catalog.Foreign_key.from_tbl in
      let dst = Mv_engine.Database.table_exn db fk.Mv_catalog.Foreign_key.to_tbl in
      let src_idx =
        List.map (Mv_engine.Table.col_index_exn src) fk.Mv_catalog.Foreign_key.from_cols
      in
      let dst_idx =
        List.map (Mv_engine.Table.col_index_exn dst) fk.Mv_catalog.Foreign_key.to_cols
      in
      let keys = Hashtbl.create 256 in
      List.iter
        (fun row ->
          Hashtbl.replace keys
            (String.concat "|"
               (List.map (fun i -> Value.to_string row.(i)) dst_idx))
            ())
        dst.Mv_engine.Table.rows;
      let dangling =
        List.filter
          (fun row ->
            let k =
              String.concat "|"
                (List.map (fun i -> Value.to_string row.(i)) src_idx)
            in
            not (Hashtbl.mem keys k))
          src.Mv_engine.Table.rows
      in
      Alcotest.(check int)
        (Fmt.str "%a has no dangling rows" Mv_catalog.Foreign_key.pp fk)
        0 (List.length dangling))
    Mv_tpch.Schema.schema.Mv_catalog.Schema.foreign_keys

let test_pk_uniqueness () =
  let db = Mv_tpch.Datagen.generate ~seed:17 ~scale:2 () in
  List.iter
    (fun (td : Mv_catalog.Table_def.t) ->
      let tbl = Mv_engine.Database.table_exn db td.Mv_catalog.Table_def.name in
      let idx =
        List.map (Mv_engine.Table.col_index_exn tbl) td.Mv_catalog.Table_def.primary_key
      in
      let seen = Hashtbl.create 256 in
      let dups = ref 0 in
      List.iter
        (fun row ->
          let k =
            String.concat "|"
              (List.map (fun i -> Value.to_string row.(i)) idx)
          in
          if Hashtbl.mem seen k then incr dups else Hashtbl.add seen k ())
        tbl.Mv_engine.Table.rows;
      Alcotest.(check int) (td.Mv_catalog.Table_def.name ^ " pk unique") 0 !dups)
    Mv_tpch.Schema.schema.Mv_catalog.Schema.tables

let test_scale_grows () =
  let d1 = Mv_tpch.Datagen.generate ~seed:1 ~scale:1 () in
  let d3 = Mv_tpch.Datagen.generate ~seed:1 ~scale:3 () in
  Alcotest.(check bool) "scale grows lineitem" true
    (Mv_engine.Database.row_count d3 "lineitem"
    > Mv_engine.Database.row_count d1 "lineitem")

let test_synthetic_stats_shape () =
  let stats = Mv_tpch.Datagen.synthetic_stats ~sf:0.5 () in
  Alcotest.(check int) "lineitem rows at SF 0.5" 3_000_000
    (Mv_catalog.Stats.row_count stats "lineitem");
  Alcotest.(check int) "region rows" 5 (Mv_catalog.Stats.row_count stats "region");
  (* every column of every table has stats *)
  List.iter
    (fun (td : Mv_catalog.Table_def.t) ->
      List.iter
        (fun (c : Mv_catalog.Column.t) ->
          let col = Col.make td.Mv_catalog.Table_def.name c.Mv_catalog.Column.name in
          Alcotest.(check bool)
            (Col.to_string col ^ " has stats")
            true
            (Mv_catalog.Stats.col_stats stats col <> None))
        td.Mv_catalog.Table_def.columns)
    Mv_tpch.Schema.schema.Mv_catalog.Schema.tables

let test_db_stats_consistent () =
  let db = Mv_tpch.Datagen.generate ~seed:19 ~scale:1 () in
  let stats = Mv_engine.Database.stats db in
  Alcotest.(check int) "row counts agree"
    (Mv_engine.Database.row_count db "orders")
    (Mv_catalog.Stats.row_count stats "orders");
  match Mv_catalog.Stats.col_stats stats (Col.make "lineitem" "l_quantity") with
  | None -> Alcotest.fail "no stats for l_quantity"
  | Some cs ->
      Alcotest.(check bool) "min <= max" true
        (Value.order cs.Mv_catalog.Stats.min_v cs.Mv_catalog.Stats.max_v <= 0);
      Alcotest.(check bool) "ndv positive" true (cs.Mv_catalog.Stats.ndv > 0)

let test_selectivity_model () =
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let c = Col.make "lineitem" "l_quantity" in
  (* l_quantity uniform on 1..50 *)
  let sel_le_25 = Mv_catalog.Stats.range_selectivity stats c Mv_base.Pred.Le (Value.Int 25) in
  Alcotest.(check bool) "le mid is ~half" true (sel_le_25 > 0.3 && sel_le_25 < 0.7);
  let sel_eq = Mv_catalog.Stats.range_selectivity stats c Mv_base.Pred.Eq (Value.Int 10) in
  Alcotest.(check bool) "eq is ~1/ndv" true (sel_eq > 0.01 && sel_eq < 0.05)

let suite =
  [
    ( "tpch",
      [
        Alcotest.test_case "schema validates" `Quick test_schema_validates;
        Alcotest.test_case "generator determinism" `Quick test_determinism;
        Alcotest.test_case "not-null constraints hold" `Quick test_no_null_violations;
        Alcotest.test_case "foreign keys hold" `Quick test_fk_integrity;
        Alcotest.test_case "primary keys unique" `Quick test_pk_uniqueness;
        Alcotest.test_case "scale grows data" `Quick test_scale_grows;
        Alcotest.test_case "synthetic stats shape" `Quick test_synthetic_stats_shape;
        Alcotest.test_case "db stats consistent" `Quick test_db_stats_consistent;
        Alcotest.test_case "selectivity model" `Quick test_selectivity_model;
      ] );
  ]
