(** Filter-tree tests: the index must never prune a view the full matcher
    accepts (for the workload class: plain-column outputs, exactly like the
    paper's randomly generated views/queries), and filtered matching must
    return the same substitutes as a linear scan. *)

module Spjg = Mv_relalg.Spjg
module A = Mv_relalg.Analysis

let schema = Mv_tpch.Schema.schema
let stats = Mv_tpch.Datagen.synthetic_stats ()

(* one shared population of views, indexed and linear *)
let population = 300

let filtered, linear =
  let f = Mv_core.Registry.create ~use_filter:true schema in
  let l = Mv_core.Registry.create ~use_filter:false schema in
  List.iter
    (fun (name, spjg) ->
      let v = Mv_core.View.create schema ~name spjg in
      Mv_core.Registry.add_prebuilt f v;
      Mv_core.Registry.add_prebuilt l v)
    (Mv_workload.Generator.views ~seed:909 schema stats population);
  (f, l)

let names subs =
  List.sort compare
    (List.map
       (fun s -> s.Mv_core.Substitute.view.Mv_core.View.name)
       subs)

(* The central soundness property (section 4): filtering + matching finds
   exactly the same substitutes as matching every view linearly. *)
let soundness_prop =
  QCheck.Test.make
    ~name:"filter tree: same substitutes as linear scan (workload class)"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 31337) in
      let q = Mv_workload.Generator.generate_query schema stats rng in
      let qa = A.analyze schema q in
      let with_tree = names (Mv_core.Registry.find_substitutes filtered qa) in
      let without = names (Mv_core.Registry.find_substitutes linear qa) in
      if with_tree <> without then
        QCheck.Test.fail_reportf
          "filter tree diverges on:\n%s\nwith tree: %s\nlinear: %s"
          (Spjg.to_sql q)
          (String.concat "," with_tree)
          (String.concat "," without)
      else true)

(* candidates must always be a superset of the linearly matched views *)
let candidates_cover_matches_prop =
  QCheck.Test.make ~name:"filter tree: candidates cover all matches"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Mv_util.Prng.create (seed + 777) in
      let q = Mv_workload.Generator.generate_query schema stats rng in
      let qa = A.analyze schema q in
      let cands =
        List.map (fun v -> v.Mv_core.View.name)
          (Mv_core.Registry.candidates filtered qa)
      in
      List.for_all
        (fun n -> List.mem n cands)
        (names (Mv_core.Registry.find_substitutes linear qa)))

(* pruning must be real: on average candidates are a small fraction *)
let test_pruning_effective () =
  let rng = Mv_util.Prng.create 5150 in
  let total = ref 0 in
  let n = 50 in
  for _ = 1 to n do
    let q = Mv_workload.Generator.generate_query schema stats rng in
    let qa = A.analyze schema q in
    total := !total + List.length (Mv_core.Registry.candidates filtered qa)
  done;
  let avg = float_of_int !total /. float_of_int n in
  if avg > float_of_int population *. 0.2 then
    Alcotest.failf "filter tree barely prunes: %.1f candidates of %d views"
      avg population

let test_insert_remove () =
  let r = Mv_core.Registry.create schema in
  let _, spjg =
    Mv_sql.Parser.parse_view schema
      {| create view ft_v with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem where l_quantity >= 5 |}
  in
  let _view = Mv_core.Registry.add_view r ~name:"ft_v" spjg in
  let q =
    Mv_sql.Parser.parse_query schema
      "select l_orderkey from lineitem where l_quantity >= 10"
  in
  Alcotest.(check int) "found before removal" 1
    (List.length (Mv_core.Registry.find_substitutes_spjg r q));
  Mv_core.Registry.remove_view r "ft_v";
  Alcotest.(check int) "gone after removal" 0
    (List.length (Mv_core.Registry.find_substitutes_spjg r q));
  Alcotest.(check int) "view count" 0 (Mv_core.Registry.view_count r)

let test_agg_view_never_candidate_for_spj_query () =
  (* the split after level six: aggregation views live in a branch SPJ
     queries never visit *)
  let r = Mv_core.Registry.create schema in
  let _, spjg =
    Mv_sql.Parser.parse_view schema
      {| create view ft_agg with schemabinding as
         select o_custkey, count_big(*) as cnt from dbo.orders group by o_custkey |}
  in
  ignore (Mv_core.Registry.add_view r ~name:"ft_agg" spjg);
  let q = Mv_sql.Parser.parse_query schema "select o_custkey from orders" in
  let qa = A.analyze schema q in
  Alcotest.(check int) "not a candidate" 0
    (List.length (Mv_core.Registry.candidates r qa))

let test_duplicate_view_rejected () =
  let r = Mv_core.Registry.create schema in
  let _, spjg =
    Mv_sql.Parser.parse_view schema
      {| create view dup with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem |}
  in
  ignore (Mv_core.Registry.add_view r ~name:"dup" spjg);
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore (Mv_core.Registry.add_view r ~name:"dup" spjg);
       false
     with Mv_core.Registry.Duplicate_view _ -> true)

let test_stats_counters () =
  let r = Mv_core.Registry.create schema in
  let _, spjg =
    Mv_sql.Parser.parse_view schema
      {| create view sc_v with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem where l_quantity >= 5 |}
  in
  ignore (Mv_core.Registry.add_view r ~name:"sc_v" spjg);
  let q =
    Mv_sql.Parser.parse_query schema
      "select l_orderkey from lineitem where l_quantity >= 10"
  in
  ignore (Mv_core.Registry.find_substitutes_spjg r q);
  ignore (Mv_core.Registry.find_substitutes_spjg r q);
  let s = Mv_core.Registry.stats r in
  Alcotest.(check int) "invocations" 2 s.Mv_core.Registry.invocations;
  Alcotest.(check int) "substitutes" 2 s.Mv_core.Registry.substitutes;
  Mv_core.Registry.reset_stats r;
  Alcotest.(check int) "reset" 0 (Mv_core.Registry.stats r).Mv_core.Registry.invocations

let suite =
  [
    ( "filter-tree",
      [
        Helpers.qtest soundness_prop;
        Helpers.qtest candidates_cover_matches_prop;
        Alcotest.test_case "pruning is effective" `Quick test_pruning_effective;
        Alcotest.test_case "insert and remove" `Quick test_insert_remove;
        Alcotest.test_case "agg view hidden from SPJ query" `Quick
          test_agg_view_never_candidate_for_spj_query;
        Alcotest.test_case "duplicate view rejected" `Quick
          test_duplicate_view_rejected;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
      ] );
  ]
