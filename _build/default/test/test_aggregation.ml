(** Aggregation matching (section 3.3): grouping-subset tests, count/sum
    mapping, AVG conversion, and the paper's Example 4 inner block. *)

open Helpers

let base_view =
  {| create view v_agg with schemabinding as
     select o_custkey, count_big(*) as cnt,
            sum(l_quantity * l_extendedprice) as revenue
     from dbo.lineitem, dbo.orders
     where l_orderkey = o_orderkey
     group by o_custkey |}

let test_example4_inner_block () =
  (* the inner block of example 4's preaggregated query matches v4 *)
  let query_sql =
    {| select o_custkey, sum(l_quantity * l_extendedprice) as rev
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql:base_view ~query_sql () in
  (* identical grouping: no further aggregation in the substitute *)
  Alcotest.(check bool)
    "no regrouping" false
    (Mv_core.Substitute.uses_regrouping s);
  check_equivalent ~query:(parse_q query_sql) s

let test_rollup_to_coarser_grouping () =
  (* view grouped by (o_custkey, o_orderdate); query by o_custkey only *)
  let view_sql =
    {| create view v_daily with schemabinding as
       select o_custkey, o_orderdate, count_big(*) as cnt,
              sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey
       group by o_custkey, o_orderdate |}
  in
  let query_sql =
    {| select o_custkey, sum(l_quantity) as qty
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check bool) "regroups" true (Mv_core.Substitute.uses_regrouping s);
  check_equivalent ~query:(parse_q query_sql) s

let test_count_becomes_sum_of_counts () =
  let view_sql =
    {| create view v_daily2 with schemabinding as
       select o_custkey, o_orderdate, count_big(*) as cnt
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey
       group by o_custkey, o_orderdate |}
  in
  let query_sql =
    {| select o_custkey, count(*) as n
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_count_maps_to_count_column () =
  (* same grouping: count(star) is just the view's cnt column *)
  let query_sql =
    {| select o_custkey, count(*) as n
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql:base_view ~query_sql () in
  Alcotest.(check bool)
    "no regrouping" false
    (Mv_core.Substitute.uses_regrouping s);
  check_equivalent ~query:(parse_q query_sql) s

let test_avg_same_grouping () =
  let query_sql =
    {| select o_custkey, avg(l_quantity * l_extendedprice) as a
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql:base_view ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_avg_with_regrouping () =
  let view_sql =
    {| create view v_daily3 with schemabinding as
       select o_custkey, o_orderdate, count_big(*) as cnt,
              sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey
       group by o_custkey, o_orderdate |}
  in
  let query_sql =
    {| select o_custkey, avg(l_quantity) as a
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_agg_query_over_spj_view () =
  (* the view is not aggregated: the substitute groups the view *)
  let view_sql =
    {| create view v_spj with schemabinding as
       select o_custkey, l_quantity, l_extendedprice
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey |}
  in
  let query_sql =
    {| select o_custkey, sum(l_quantity) as qty, count(*) as n
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check bool) "regroups" true (Mv_core.Substitute.uses_regrouping s);
  check_equivalent ~query:(parse_q query_sql) s

let test_spj_query_over_agg_view_rejects () =
  let query_sql =
    {| select o_custkey from lineitem, orders where l_orderkey = o_orderkey |}
  in
  match check_rejects ~view_sql:base_view ~query_sql () with
  | Mv_core.Reject.View_more_aggregated -> ()
  | r -> Alcotest.failf "expected more-aggregated, got %s" (Mv_core.Reject.to_string r)

let test_grouping_not_subset_rejects () =
  (* query groups by a column the view does not group by *)
  let query_sql =
    {| select o_orderdate, sum(l_quantity * l_extendedprice) as rev
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_orderdate |}
  in
  match check_rejects ~view_sql:base_view ~query_sql () with
  | Mv_core.Reject.Grouping_incompatible _ -> ()
  | r -> Alcotest.failf "expected grouping failure, got %s" (Mv_core.Reject.to_string r)

let test_missing_sum_rejects () =
  (* the view has no sum(l_quantity) column *)
  let query_sql =
    {| select o_custkey, sum(l_quantity) as q
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  match check_rejects ~view_sql:base_view ~query_sql () with
  | Mv_core.Reject.Output_not_computable _ -> ()
  | r -> Alcotest.failf "expected output failure, got %s" (Mv_core.Reject.to_string r)

let test_scalar_aggregate_query () =
  (* empty grouping list: query aggregates everything; the view's groups
     are further aggregated into one *)
  let query_sql =
    {| select sum(l_quantity * l_extendedprice) as total
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by |}
  in
  (* "group by" with an empty list is not valid SQL; express the scalar
     aggregate as an SPJG block directly *)
  ignore query_sql;
  let query =
    Mv_relalg.Spjg.make ~tables:[ "lineitem"; "orders" ]
      ~where:
        [
          Mv_base.Pred.Cmp
            ( Mv_base.Pred.Eq,
              Mv_base.Expr.Col (col "lineitem" "l_orderkey"),
              Mv_base.Expr.Col (col "orders" "o_orderkey") );
        ]
      ~group_by:(Some [])
      ~out:
        [
          Mv_relalg.Spjg.aggregate "total"
            (Mv_relalg.Spjg.Sum
               (Mv_base.Expr.Binop
                  ( Mv_base.Expr.Mul,
                    Mv_base.Expr.Col (col "lineitem" "l_quantity"),
                    Mv_base.Expr.Col (col "lineitem" "l_extendedprice") )));
        ]
  in
  let view = view_of_sql base_view in
  match Mv_core.Matcher.match_spjg schema ~query view with
  | Error r -> Alcotest.failf "expected match, got %s" (Mv_core.Reject.to_string r)
  | Ok s ->
      Alcotest.(check bool) "regroups" true (Mv_core.Substitute.uses_regrouping s);
      check_equivalent ~query s

let test_compensating_pred_on_grouping_column () =
  (* the view has a wider range on the grouping column; compensation must
     land on the grouping output *)
  let view_sql =
    {| create view v_rng with schemabinding as
       select o_custkey, count_big(*) as cnt, sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey and o_custkey >= 2
       group by o_custkey |}
  in
  let query_sql =
    {| select o_custkey, sum(l_quantity) as qty
       from lineitem, orders
       where l_orderkey = o_orderkey and o_custkey between 5 and 20
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_compensating_pred_on_nongrouping_rejects () =
  (* compensation on l_quantity is impossible: not in the view output *)
  let view_sql =
    {| create view v_rng2 with schemabinding as
       select o_custkey, count_big(*) as cnt, sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let query_sql =
    {| select o_custkey, sum(l_quantity) as qty
       from lineitem, orders
       where l_orderkey = o_orderkey and l_quantity >= 10
       group by o_custkey |}
  in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Compensation_not_computable _ -> ()
  | r ->
      Alcotest.failf "expected compensation failure, got %s"
        (Mv_core.Reject.to_string r)

let test_grouping_by_expression () =
  (* group-by lists may contain expressions (section 3.3) *)
  let view_sql =
    {| create view v_gexpr with schemabinding as
       select l_quantity * l_extendedprice as bucket, count_big(*) as cnt,
              sum(l_discount) as disc
       from dbo.lineitem
       group by l_quantity * l_extendedprice |}
  in
  let query_sql =
    {| select l_quantity * l_extendedprice as bucket, sum(l_discount) as d
       from lineitem
       group by l_quantity * l_extendedprice |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_view_with_extra_tables_and_aggregation () =
  (* both mechanisms at once: extra table elimination + regrouping *)
  let view_sql =
    {| create view v_both with schemabinding as
       select o_custkey, o_orderdate, count_big(*) as cnt,
              sum(l_quantity) as qty
       from dbo.lineitem, dbo.orders, dbo.customer
       where l_orderkey = o_orderkey and o_custkey = c_custkey
       group by o_custkey, o_orderdate |}
  in
  let query_sql =
    {| select o_custkey, sum(l_quantity) as qty
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let suite =
  [
    ( "aggregation",
      [
        Alcotest.test_case "example 4 inner block" `Quick test_example4_inner_block;
        Alcotest.test_case "rollup to coarser grouping" `Quick
          test_rollup_to_coarser_grouping;
        Alcotest.test_case "count becomes sum of counts" `Quick
          test_count_becomes_sum_of_counts;
        Alcotest.test_case "count maps to count column" `Quick
          test_count_maps_to_count_column;
        Alcotest.test_case "avg with same grouping" `Quick test_avg_same_grouping;
        Alcotest.test_case "avg with regrouping" `Quick test_avg_with_regrouping;
        Alcotest.test_case "aggregation query over SPJ view" `Quick
          test_agg_query_over_spj_view;
        Alcotest.test_case "SPJ query rejects aggregated view" `Quick
          test_spj_query_over_agg_view_rejects;
        Alcotest.test_case "grouping not subset rejects" `Quick
          test_grouping_not_subset_rejects;
        Alcotest.test_case "missing sum column rejects" `Quick
          test_missing_sum_rejects;
        Alcotest.test_case "scalar aggregate query" `Quick test_scalar_aggregate_query;
        Alcotest.test_case "compensation on grouping column" `Quick
          test_compensating_pred_on_grouping_column;
        Alcotest.test_case "compensation on non-grouping column rejects" `Quick
          test_compensating_pred_on_nongrouping_rejects;
        Alcotest.test_case "grouping by expression" `Quick test_grouping_by_expression;
        Alcotest.test_case "extra tables + regrouping" `Quick
          test_view_with_extra_tables_and_aggregation;
      ] );
  ]
