(** Tests of the core SPJ view-matching pipeline: the paper's Example 2
    plus targeted accept/reject cases for each subsumption test. *)

open Helpers

(* The view/query pair of the paper's Example 2 (section 3.1.2). *)
let example2_view =
  {| create view v2 with schemabinding as
     select l_orderkey, o_custkey, l_partkey, l_quantity, l_extendedprice,
            o_orderdate, l_shipdate, p_name
     from dbo.lineitem, dbo.orders, dbo.part
     where l_orderkey = o_orderkey
       and l_partkey = p_partkey
       and p_partkey >= 150
       and o_custkey >= 50 and o_custkey <= 500
       and p_name like '%abc%' |}

let example2_query =
  {| select l_orderkey, o_custkey
     from lineitem, orders, part
     where l_orderkey = o_orderkey
       and l_partkey = p_partkey
       and o_orderdate = l_shipdate
       and l_partkey >= 150 and l_partkey <= 160
       and o_custkey = 123
       and p_name like '%abc%'
       and l_quantity * l_extendedprice > 100 |}

let test_example2 () =
  let s =
    check_matches ~view_sql:example2_view ~query_sql:example2_query ()
  in
  (* the worked example needs exactly four compensating predicates:
     o_orderdate = l_shipdate, partkey <= 160, o_custkey = 123, and the
     quantity*price residual *)
  Alcotest.(check int)
    "four compensating predicates" 4
    (List.length s.Mv_core.Substitute.block.Mv_relalg.Spjg.where);
  (* and the rewrite must be semantically equivalent *)
  check_equivalent ~query:(parse_q example2_query) s

let test_example2_rejects_without_upper_bound () =
  (* remove o_custkey's compensating column from the view output: the
     range compensation (o_custkey = 123) becomes inexpressible *)
  let view_sql =
    {| create view v2b with schemabinding as
       select l_orderkey, l_partkey, l_quantity, l_extendedprice,
              o_orderdate, l_shipdate, p_name
       from dbo.lineitem, dbo.orders, dbo.part
       where l_orderkey = o_orderkey
         and l_partkey = p_partkey
         and p_partkey >= 150
         and o_custkey >= 50 and o_custkey <= 500
         and p_name like '%abc%' |}
  in
  match check_rejects ~view_sql ~query_sql:example2_query () with
  | Mv_core.Reject.Compensation_not_computable _ -> ()
  | r ->
      Alcotest.failf "expected compensation failure, got %s"
        (Mv_core.Reject.to_string r)

let test_view_range_too_narrow () =
  (* view keeps p_partkey >= 150 but the query wants >= 100 *)
  let query_sql =
    {| select l_orderkey from lineitem, orders, part
       where l_orderkey = o_orderkey and l_partkey = p_partkey
         and l_partkey >= 100
         and o_custkey >= 50 and o_custkey <= 500
         and p_name like '%abc%' |}
  in
  match check_rejects ~view_sql:example2_view ~query_sql () with
  | Mv_core.Reject.Range_subsumption_failed _ -> ()
  | r -> Alcotest.failf "expected range failure, got %s" (Mv_core.Reject.to_string r)

let test_view_extra_residual () =
  (* view filters on p_name but the query does not: rows are missing *)
  let query_sql =
    {| select l_orderkey from lineitem, orders, part
       where l_orderkey = o_orderkey and l_partkey = p_partkey
         and l_partkey >= 150 and l_partkey <= 160
         and o_custkey >= 50 and o_custkey <= 500 |}
  in
  match check_rejects ~view_sql:example2_view ~query_sql () with
  | Mv_core.Reject.Residual_subsumption_failed _ -> ()
  | r ->
      Alcotest.failf "expected residual failure, got %s"
        (Mv_core.Reject.to_string r)

let test_view_extra_equijoin () =
  (* view equates l_shipdate with l_commitdate; query does not *)
  let view_sql =
    {| create view v_eq with schemabinding as
       select l_orderkey, l_partkey from dbo.lineitem
       where l_shipdate = l_commitdate |}
  in
  let query_sql = {| select l_orderkey from lineitem where l_partkey >= 5 |} in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Equijoin_subsumption_failed -> ()
  | r ->
      Alcotest.failf "expected equijoin failure, got %s"
        (Mv_core.Reject.to_string r)

let test_equijoin_transitivity () =
  (* view: A=B and B=C; query: A=C and C=B — logically equal classes
     (section 3.1.2's transitivity discussion) *)
  let view_sql =
    {| create view v_tr with schemabinding as
       select l_orderkey, l_partkey, l_suppkey, l_quantity
       from dbo.lineitem
       where l_orderkey = l_partkey and l_partkey = l_suppkey |}
  in
  let query_sql =
    {| select l_quantity from lineitem
       where l_orderkey = l_suppkey and l_suppkey = l_partkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_missing_output_column () =
  let view_sql =
    {| create view v_out with schemabinding as
       select l_orderkey from dbo.lineitem where l_quantity >= 10 |}
  in
  let query_sql =
    {| select l_partkey from lineitem where l_quantity >= 10 |}
  in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Output_not_computable _ -> ()
  | r -> Alcotest.failf "expected output failure, got %s" (Mv_core.Reject.to_string r)

let test_output_via_equivalence () =
  (* query output l_partkey is not a view output, but p_partkey is and the
     query equates them (section 3.1.4 / example 6) *)
  let view_sql =
    {| create view v_out2 with schemabinding as
       select p_partkey, l_quantity from dbo.lineitem, dbo.part
       where l_partkey = p_partkey |}
  in
  let query_sql =
    {| select l_partkey, l_quantity from lineitem, part
       where l_partkey = p_partkey |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_computed_output_expression () =
  (* exact match of a computed output expression via templates *)
  let view_sql =
    {| create view v_rev with schemabinding as
       select l_orderkey, l_quantity * l_extendedprice as gross
       from dbo.lineitem where l_quantity >= 5 |}
  in
  let query_sql =
    {| select l_quantity * l_extendedprice as rev from lineitem
       where l_quantity >= 5 and l_orderkey <= 40 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_compute_output_from_source_columns () =
  (* the view lacks the expression but outputs its source columns *)
  let view_sql =
    {| create view v_src with schemabinding as
       select l_orderkey, l_quantity, l_extendedprice
       from dbo.lineitem where l_quantity >= 5 |}
  in
  let query_sql =
    {| select l_quantity * l_extendedprice as rev from lineitem
       where l_quantity >= 5 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_range_point_compensation () =
  (* query equates a column to a constant inside the view's range *)
  let view_sql =
    {| create view v_pt with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 1 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem where l_quantity = 25 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  check_equivalent ~query:(parse_q query_sql) s

let test_same_predicates_no_compensation () =
  let view_sql =
    {| create view v_id with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 10 and l_quantity <= 20 |}
  in
  let query_sql =
    {| select l_orderkey, l_quantity from lineitem
       where l_quantity between 10 and 20 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check int)
    "no compensating predicates" 0
    (List.length s.Mv_core.Substitute.block.Mv_relalg.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let suite =
  [
    ( "matching-spj",
      [
        Alcotest.test_case "paper example 2 end-to-end" `Quick test_example2;
        Alcotest.test_case "reject when compensation inexpressible" `Quick
          test_example2_rejects_without_upper_bound;
        Alcotest.test_case "reject when view range too narrow" `Quick
          test_view_range_too_narrow;
        Alcotest.test_case "reject when view has extra residual" `Quick
          test_view_extra_residual;
        Alcotest.test_case "reject when view has extra equijoin" `Quick
          test_view_extra_equijoin;
        Alcotest.test_case "equijoin transitivity via classes" `Quick
          test_equijoin_transitivity;
        Alcotest.test_case "reject missing output column" `Quick
          test_missing_output_column;
        Alcotest.test_case "output routed via equivalence class" `Quick
          test_output_via_equivalence;
        Alcotest.test_case "computed output matched by template" `Quick
          test_computed_output_expression;
        Alcotest.test_case "output computed from source columns" `Quick
          test_compute_output_from_source_columns;
        Alcotest.test_case "point range compensation" `Quick
          test_range_point_compensation;
        Alcotest.test_case "identical predicates need no compensation" `Quick
          test_same_predicates_no_compensation;
      ] );
  ]
