(** CHECK-constraint exploitation (section 3.1.2): constraints on the
    query's tables join the antecedent of the implication tests, so a view
    whose predicate is implied by a constraint still qualifies — and the
    check-derived bounds are never (incorrectly) compensated. *)

open Helpers
module Spjg = Mv_relalg.Spjg

(* lineitem carries CHECK (l_quantity between 1 and 50) in the TPC-H
   catalog. *)

let test_view_range_implied_by_check () =
  (* the view keeps only l_quantity >= 1: implied by the check, so ANY
     query over lineitem finds all its rows in the view *)
  let view_sql =
    {| create view chk_v1 with schemabinding as
       select l_orderkey, l_partkey from dbo.lineitem
       where l_quantity >= 1 |}
  in
  let query_sql = {| select l_orderkey, l_partkey from lineitem |} in
  let s = check_matches ~view_sql ~query_sql () in
  (* no compensation: the check guarantees the rows are all there, and
     l_quantity is not even in the view output *)
  Alcotest.(check int) "no compensating predicates" 0
    (List.length s.Mv_core.Substitute.block.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let test_view_range_wider_than_check () =
  let view_sql =
    {| create view chk_v2 with schemabinding as
       select l_orderkey, l_partkey, l_quantity from dbo.lineitem
       where l_quantity >= 0 and l_quantity <= 100 |}
  in
  let query_sql = {| select l_orderkey from lineitem |} in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check int) "no compensating predicates" 0
    (List.length s.Mv_core.Substitute.block.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let test_check_does_not_mask_real_gap () =
  (* view requires l_quantity >= 10: NOT implied by the check; a query
     without that predicate must still be rejected *)
  let view_sql =
    {| create view chk_v3 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 10 |}
  in
  let query_sql = {| select l_orderkey from lineitem |} in
  match check_rejects ~view_sql ~query_sql () with
  | Mv_core.Reject.Range_subsumption_failed _ -> ()
  | r -> Alcotest.failf "expected range failure, got %s" (Mv_core.Reject.to_string r)

let test_own_predicate_still_compensated () =
  (* query's own stronger bound is enforced even when a check also exists *)
  let view_sql =
    {| create view chk_v4 with schemabinding as
       select l_orderkey, l_quantity from dbo.lineitem
       where l_quantity >= 1 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem where l_quantity >= 30 |}
  in
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check int) "one compensating predicate" 1
    (List.length s.Mv_core.Substitute.block.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let test_weaker_own_predicate_not_compensated () =
  (* the query writes l_quantity >= 0 (weaker than the check); the view
     filters l_quantity >= 1. The full query range (with the check) is
     within the view's, and the view's bound already covers the query's
     own bound, so no compensation — and critically, no rejection even
     though l_quantity is in the output. *)
  let view_sql =
    {| create view chk_v5 with schemabinding as
       select l_orderkey, l_partkey from dbo.lineitem
       where l_quantity >= 1 |}
  in
  let query_sql =
    {| select l_orderkey from lineitem where l_quantity >= 0 |}
  in
  (* note: l_quantity is NOT a view output; any needed compensation would
     be inexpressible, so this only matches because none is needed *)
  let s = check_matches ~view_sql ~query_sql () in
  Alcotest.(check int) "no compensating predicates" 0
    (List.length s.Mv_core.Substitute.block.Spjg.where);
  check_equivalent ~query:(parse_q query_sql) s

let test_datagen_respects_checks () =
  let db = Mv_tpch.Datagen.generate ~seed:21 ~scale:1 () in
  let tbl = Mv_engine.Database.table_exn db "lineitem" in
  Alcotest.(check int) "no check violations" 0
    (List.length (Mv_engine.Table.check_violations tbl))

let test_schema_rejects_bad_check () =
  let bad =
    Mv_catalog.Schema.make
      ~tables:
        [
          Mv_catalog.Table_def.make ~name:"t"
            ~columns:[ Mv_catalog.Column.make "a" Mv_base.Dtype.Int ]
            ~primary_key:[ "a" ]
            ~checks:
              [
                Mv_base.Pred.Cmp
                  ( Mv_base.Pred.Ge,
                    Mv_base.Expr.Col (Mv_base.Col.make "t" "nope"),
                    Mv_base.Expr.Const (Mv_base.Value.Int 0) );
              ]
            ();
        ]
      ~foreign_keys:[]
  in
  Alcotest.(check bool) "validation fails" true
    (try
       Mv_catalog.Schema.validate bad;
       false
     with Mv_catalog.Schema.Schema_error _ -> true)

let suite =
  [
    ( "check-constraints",
      [
        Alcotest.test_case "view range implied by check" `Quick
          test_view_range_implied_by_check;
        Alcotest.test_case "view range wider than check" `Quick
          test_view_range_wider_than_check;
        Alcotest.test_case "check does not mask a real gap" `Quick
          test_check_does_not_mask_real_gap;
        Alcotest.test_case "own predicate still compensated" `Quick
          test_own_predicate_still_compensated;
        Alcotest.test_case "weaker own predicate not compensated" `Quick
          test_weaker_own_predicate_not_compensated;
        Alcotest.test_case "datagen respects checks" `Quick
          test_datagen_respects_checks;
        Alcotest.test_case "schema rejects bad check" `Quick
          test_schema_rejects_bad_check;
      ] );
  ]
