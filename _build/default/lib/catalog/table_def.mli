(** A base-table definition: columns plus key and CHECK constraints. *)

type t = {
  name : string;
  columns : Column.t list;
  primary_key : string list;
  unique_keys : string list list;
      (** every uniqueness constraint, including the primary key *)
  checks : Mv_base.Pred.t list;
      (** CHECK constraints over this table's columns; the matcher adds
          them to the antecedent of its subsumption tests *)
}

val make :
  name:string ->
  columns:Column.t list ->
  primary_key:string list ->
  ?unique_keys:string list list ->
  ?checks:Mv_base.Pred.t list ->
  unit ->
  t

val find_column : t -> string -> Column.t option

val column_names : t -> string list

val has_column : t -> string -> bool

val is_unique_key : t -> string list -> bool
(** Order-insensitive: is this column list a declared unique key? *)

val pp : Format.formatter -> t -> unit
