(** The catalog: table definitions plus foreign keys, with the lookups the
    matching algorithm and name resolution need. *)

open Mv_base

type t = {
  tables : Table_def.t list;
  foreign_keys : Foreign_key.t list;
}

exception Schema_error of string

let schema_error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let make ~tables ~foreign_keys = { tables; foreign_keys }

let find_table t name =
  List.find_opt (fun td -> td.Table_def.name = name) t.tables

let table_exn t name =
  match find_table t name with
  | Some td -> td
  | None -> schema_error "unknown table %s" name

(* Resolve an unqualified column name against a set of in-scope tables.
   Fails when ambiguous or absent. *)
let resolve_column t ~tables name =
  let hits =
    List.filter
      (fun tbl -> Table_def.has_column (table_exn t tbl) name)
      tables
  in
  match hits with
  | [ tbl ] -> Some (Col.make tbl name)
  | [] -> None
  | _ :: _ :: _ -> schema_error "ambiguous column %s" name

let column_def t (c : Col.t) =
  match find_table t c.Col.tbl with
  | None -> None
  | Some td -> Table_def.find_column td c.Col.col

let column_def_exn t c =
  match column_def t c with
  | Some cd -> cd
  | None -> schema_error "unknown column %s" (Col.to_string c)

let column_nullable t c = (column_def_exn t c).Column.nullable

let column_dtype t c = (column_def_exn t c).Column.dtype

(* CHECK constraints (as CNF conjuncts) of all [tables]. *)
let checks_for t tables =
  List.concat_map
    (fun tbl -> (table_exn t tbl).Table_def.checks)
    tables

(* Foreign keys whose source table is [tbl]. *)
let fks_from t tbl =
  List.filter (fun fk -> fk.Foreign_key.from_tbl = tbl) t.foreign_keys

let fks_to t tbl =
  List.filter (fun fk -> fk.Foreign_key.to_tbl = tbl) t.foreign_keys

(* Sanity checks: FK targets exist and reference a unique key; PK columns
   exist and are not nullable. Raises [Schema_error] on violation. *)
let validate t =
  List.iter
    (fun td ->
      List.iter
        (fun k ->
          match Table_def.find_column td k with
          | None ->
              schema_error "pk column %s.%s does not exist" td.Table_def.name k
          | Some cd ->
              if cd.Column.nullable then
                schema_error "pk column %s.%s is nullable" td.Table_def.name k)
        td.Table_def.primary_key;
      List.iter
        (fun check ->
          List.iter
            (fun (c : Col.t) ->
              if c.Col.tbl <> td.Table_def.name then
                schema_error "check on %s references foreign table %s"
                  td.Table_def.name c.Col.tbl;
              if not (Table_def.has_column td c.Col.col) then
                schema_error "check on %s references unknown column %s"
                  td.Table_def.name c.Col.col)
            (Mv_base.Pred.columns check))
        td.Table_def.checks)
    t.tables;
  List.iter
    (fun fk ->
      let src = table_exn t fk.Foreign_key.from_tbl in
      let dst = table_exn t fk.Foreign_key.to_tbl in
      List.iter
        (fun c ->
          if not (Table_def.has_column src c) then
            schema_error "fk source column %s.%s missing" src.Table_def.name c)
        fk.Foreign_key.from_cols;
      List.iter
        (fun c ->
          if not (Table_def.has_column dst c) then
            schema_error "fk target column %s.%s missing" dst.Table_def.name c)
        fk.Foreign_key.to_cols;
      if not (Table_def.is_unique_key dst fk.Foreign_key.to_cols) then
        schema_error "fk target %s(%s) is not a unique key"
          dst.Table_def.name
          (String.concat "," fk.Foreign_key.to_cols))
    t.foreign_keys
