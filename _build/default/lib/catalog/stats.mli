(** Table and column statistics for the cost model and the workload
    generator's cardinality targeting. *)

open Mv_base

type col_stats = {
  min_v : Value.t;
  max_v : Value.t;
  ndv : int;  (** number of distinct values *)
}

type table_stats = {
  row_count : int;
  columns : (string * col_stats) list;
}

type t = (string * table_stats) list

val empty : t

val table : t -> string -> table_stats option

val row_count : t -> string -> int
(** Defaults to 1000 when unknown. *)

val col_stats : t -> Col.t -> col_stats option

val range_selectivity : t -> Col.t -> Pred.cmp -> Value.t -> float
(** Selectivity of [col op const] under uniformity, with textbook fallback
    guesses when statistics are missing. *)

val ndv : t -> Col.t -> int
