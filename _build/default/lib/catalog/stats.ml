(** Table and column statistics used by the cost model and by the workload
    generator's cardinality targeting (section 5: predicates are added until
    the estimated SPJ cardinality falls in a target band). *)

open Mv_base

type col_stats = {
  min_v : Value.t;
  max_v : Value.t;
  ndv : int;  (** number of distinct values *)
}

type table_stats = {
  row_count : int;
  columns : (string * col_stats) list;
}

type t = (string * table_stats) list

let empty : t = []

let table t name : table_stats option = List.assoc_opt name t

let row_count t name =
  match table t name with Some ts -> ts.row_count | None -> 1000

let col_stats t (c : Col.t) =
  match table t c.Col.tbl with
  | None -> None
  | Some ts -> List.assoc_opt c.Col.col ts.columns

(* Selectivity of [col op const] under a uniform-distribution assumption.
   Falls back to fixed guesses when statistics are missing, like textbook
   optimizers do. *)
let range_selectivity t c (op : Pred.cmp) (v : Value.t) =
  let default =
    match op with Pred.Eq -> 0.05 | Pred.Ne -> 0.95 | _ -> 0.33
  in
  match col_stats t c with
  | None -> default
  | Some cs -> (
      match (Value.as_float cs.min_v, Value.as_float cs.max_v, Value.as_float v) with
      | Some lo, Some hi, Some x when hi > lo ->
          let frac = (x -. lo) /. (hi -. lo) in
          let frac = Float.max 0.0 (Float.min 1.0 frac) in
          let sel =
            match op with
            | Pred.Eq -> 1.0 /. float_of_int (max 1 cs.ndv)
            | Pred.Ne -> 1.0 -. (1.0 /. float_of_int (max 1 cs.ndv))
            | Pred.Lt | Pred.Le -> frac
            | Pred.Gt | Pred.Ge -> 1.0 -. frac
          in
          Float.max 0.0001 (Float.min 1.0 sel)
      | _ -> (
          (* dates are Value.Date, not numeric through as_float *)
          match (cs.min_v, cs.max_v, v) with
          | Value.Date lo, Value.Date hi, Value.Date x when hi > lo ->
              let frac =
                float_of_int (x - lo) /. float_of_int (hi - lo)
              in
              let frac = Float.max 0.0 (Float.min 1.0 frac) in
              let sel =
                match op with
                | Pred.Eq -> 1.0 /. float_of_int (max 1 cs.ndv)
                | Pred.Ne -> 1.0 -. (1.0 /. float_of_int (max 1 cs.ndv))
                | Pred.Lt | Pred.Le -> frac
                | Pred.Gt | Pred.Ge -> 1.0 -. frac
              in
              Float.max 0.0001 (Float.min 1.0 sel)
          | _ -> default))

let ndv t c = match col_stats t c with Some cs -> max 1 cs.ndv | None -> 100
