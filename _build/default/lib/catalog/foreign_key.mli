(** A foreign-key constraint from [from_tbl].[from_cols] to
    [to_tbl].[to_cols] (which must form a unique key of [to_tbl]). *)

type t = {
  from_tbl : string;
  from_cols : string list;
  to_tbl : string;
  to_cols : string list;
}

val make :
  from_tbl:string ->
  from_cols:string list ->
  to_tbl:string ->
  to_cols:string list ->
  t
(** @raise Invalid_argument when the column lists differ in length. *)

val pp : Format.formatter -> t -> unit
