(** A foreign-key constraint from [from_tbl].[from_cols] to
    [to_tbl].[to_cols]. The referenced columns must form a unique key of
    [to_tbl]; [Schema.validate] checks this. *)

type t = {
  from_tbl : string;
  from_cols : string list;
  to_tbl : string;
  to_cols : string list;
}

let make ~from_tbl ~from_cols ~to_tbl ~to_cols =
  if List.length from_cols <> List.length to_cols then
    invalid_arg "Foreign_key.make: column list length mismatch";
  { from_tbl; from_cols; to_tbl; to_cols }

let pp ppf fk =
  Fmt.pf ppf "fk %s(%a) -> %s(%a)" fk.from_tbl
    Fmt.(list ~sep:(any ",") string)
    fk.from_cols fk.to_tbl
    Fmt.(list ~sep:(any ",") string)
    fk.to_cols
