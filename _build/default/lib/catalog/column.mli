(** A column definition: name, type and the not-null constraint. *)

type t = { name : string; dtype : Mv_base.Dtype.t; nullable : bool }

val make : ?nullable:bool -> string -> Mv_base.Dtype.t -> t
(** Columns are NOT NULL by default (like keys in practice); pass
    [~nullable:true] explicitly. *)

val pp : Format.formatter -> t -> unit
