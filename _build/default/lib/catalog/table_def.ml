(** A base-table definition: columns plus key constraints.

    [unique_keys] holds every declared uniqueness constraint including the
    primary key; the matching algorithm only needs to know whether a given
    column list is a unique key of the table. *)

type t = {
  name : string;
  columns : Column.t list;
  primary_key : string list;
  unique_keys : string list list;
  checks : Mv_base.Pred.t list;
      (** CHECK constraints over this table's columns; the matcher may add
          them to the antecedent of the subsumption tests (section 3.1.2) *)
}

let make ~name ~columns ~primary_key ?(unique_keys = []) ?(checks = []) () =
  let keys =
    if primary_key = [] then unique_keys else primary_key :: unique_keys
  in
  { name; columns; primary_key; unique_keys = keys; checks }

let find_column t name = List.find_opt (fun c -> c.Column.name = name) t.columns

let column_names t = List.map (fun c -> c.Column.name) t.columns

let has_column t name = List.exists (fun c -> c.Column.name = name) t.columns

(* Set equality on column lists: a unique key constraint is order-insensitive. *)
let same_cols a b =
  List.sort String.compare a = List.sort String.compare b

let is_unique_key t cols = List.exists (fun k -> same_cols k cols) t.unique_keys

let pp ppf t =
  Fmt.pf ppf "table %s(%a) pk(%a)" t.name
    Fmt.(list ~sep:(any ", ") Column.pp)
    t.columns
    Fmt.(list ~sep:(any ", ") string)
    t.primary_key
