(** The catalog: table definitions plus foreign keys, with the lookups the
    matching algorithm and name resolution need. *)

open Mv_base

type t = {
  tables : Table_def.t list;
  foreign_keys : Foreign_key.t list;
}

exception Schema_error of string

val make : tables:Table_def.t list -> foreign_keys:Foreign_key.t list -> t

val find_table : t -> string -> Table_def.t option

val table_exn : t -> string -> Table_def.t
(** @raise Schema_error on unknown tables. *)

val resolve_column : t -> tables:string list -> string -> Col.t option
(** Resolve an unqualified column name against in-scope tables.
    @raise Schema_error when ambiguous. *)

val column_def : t -> Col.t -> Column.t option

val column_def_exn : t -> Col.t -> Column.t

val column_nullable : t -> Col.t -> bool

val column_dtype : t -> Col.t -> Dtype.t

val checks_for : t -> string list -> Pred.t list
(** CHECK constraints of all the given tables. *)

val fks_from : t -> string -> Foreign_key.t list

val fks_to : t -> string -> Foreign_key.t list

val validate : t -> unit
(** Sanity-check the catalog: FK targets exist and reference unique keys,
    PK columns exist and are not nullable, checks reference own columns.
    @raise Schema_error on violation. *)
