lib/catalog/schema.ml: Col Column Fmt Foreign_key List Mv_base String Table_def
