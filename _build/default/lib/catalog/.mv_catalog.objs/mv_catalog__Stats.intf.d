lib/catalog/stats.mli: Col Mv_base Pred Value
