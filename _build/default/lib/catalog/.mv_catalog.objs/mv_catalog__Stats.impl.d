lib/catalog/stats.ml: Col Float List Mv_base Pred Value
