lib/catalog/foreign_key.ml: Fmt List
