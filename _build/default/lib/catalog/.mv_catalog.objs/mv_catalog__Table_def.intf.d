lib/catalog/table_def.mli: Column Format Mv_base
