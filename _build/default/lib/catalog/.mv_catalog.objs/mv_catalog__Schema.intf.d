lib/catalog/schema.mli: Col Column Dtype Foreign_key Mv_base Pred Table_def
