lib/catalog/table_def.ml: Column Fmt List Mv_base String
