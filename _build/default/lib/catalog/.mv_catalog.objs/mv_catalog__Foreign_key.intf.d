lib/catalog/foreign_key.mli: Format
