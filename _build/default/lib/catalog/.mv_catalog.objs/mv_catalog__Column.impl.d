lib/catalog/column.ml: Fmt Mv_base
