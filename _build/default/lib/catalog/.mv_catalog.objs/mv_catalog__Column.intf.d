lib/catalog/column.mli: Format Mv_base
