(** A column definition: name, type and the not-null constraint. *)

type t = { name : string; dtype : Mv_base.Dtype.t; nullable : bool }

let make ?(nullable = false) name dtype = { name; dtype; nullable }

let pp ppf c =
  Fmt.pf ppf "%s %a%s" c.name Mv_base.Dtype.pp c.dtype
    (if c.nullable then "" else " not null")
