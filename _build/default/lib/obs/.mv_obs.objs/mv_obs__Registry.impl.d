lib/obs/registry.ml: Buffer Float Hashtbl Instrument Json List Printf String Trace
