lib/obs/registry.mli: Instrument Json Trace
