lib/obs/instrument.mli:
