lib/obs/json.ml: Buffer Char Float List Option Printf String
