lib/obs/json.mli:
