lib/obs/instrument.ml: Array Float Sys Unix
