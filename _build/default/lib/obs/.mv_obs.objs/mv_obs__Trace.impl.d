lib/obs/trace.ml: Array Json List Option
