type event = { seq : int; name : string; fields : (string * Json.t) list }

type t = {
  cap : int;
  ring : event option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 256) () =
  { cap = capacity; ring = Array.make (max 1 capacity) None; next = 0 }

let capacity t = t.cap

let enabled t = t.cap > 0

let record t name fields =
  if t.cap > 0 then begin
    t.ring.(t.next mod t.cap) <- Some { seq = t.next; name; fields };
    t.next <- t.next + 1
  end

let length t = min t.next t.cap

let total t = t.next

let events t =
  if t.cap = 0 then []
  else
    let n = length t in
    List.init n (fun i ->
        Option.get (t.ring.((t.next - n + i) mod t.cap)))

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           (("seq", Json.Int e.seq) :: ("event", Json.String e.name)
           :: e.fields))
       (events t))

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0
