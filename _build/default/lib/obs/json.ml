type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest float form that still reads back as a float (never as an
   int), so snapshots round-trip to the identical tree. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(minify = false) t =
  let b = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            go (indent + 2) x)
          xs;
        nl indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            escape_string b k;
            Buffer.add_string b (if minify then ":" else ": ");
            go (indent + 2) v)
          fields;
        nl indent;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ---- parsing ---- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance st; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char b '\012'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char b (Option.get (peek st));
            advance st;
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* encode as UTF-8; surrogate pairs are not reassembled, which
               is fine for the ASCII metric names we emit *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---- accessors ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path ks t =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some t) ks

let equal = ( = )
