(** String sets with a few helpers used by filter-tree keys. *)

include Set.Make (String)

let of_list' = of_list

let to_list t = elements t

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) (elements t)

let to_string t = Fmt.str "%a" pp t
