(** Union-find (disjoint sets) over an arbitrary ordered key type.

    Used to compute the column equivalence classes of section 3.1.1: start
    with every column in its own class and merge classes for each
    column-equality predicate. The structure is persistent-friendly in usage
    (built once per query/view descriptor) but internally imperative with
    path compression and union by rank. *)

module Make (Ord : Map.OrderedType) = struct
  module M = Map.Make (Ord)

  type t = {
    mutable parent : Ord.t M.t;
    mutable rank : int M.t;
  }

  let create () = { parent = M.empty; rank = M.empty }

  (* Ensure [x] is present as a singleton class. *)
  let add t x =
    if not (M.mem x t.parent) then begin
      t.parent <- M.add x x t.parent;
      t.rank <- M.add x 0 t.rank
    end

  let rec find t x =
    add t x;
    let p = M.find x t.parent in
    if Ord.compare p x = 0 then x
    else begin
      let root = find t p in
      t.parent <- M.add x root t.parent;
      root
    end

  let union t x y =
    let rx = find t x and ry = find t y in
    if Ord.compare rx ry <> 0 then begin
      let kx = M.find rx t.rank and ky = M.find ry t.rank in
      if kx < ky then t.parent <- M.add rx ry t.parent
      else if kx > ky then t.parent <- M.add ry rx t.parent
      else begin
        t.parent <- M.add ry rx t.parent;
        t.rank <- M.add rx (kx + 1) t.rank
      end
    end

  let same t x y = Ord.compare (find t x) (find t y) = 0

  let members t = M.fold (fun k _ acc -> k :: acc) t.parent []

  (* All classes, each as a list of members; singletons included. *)
  let classes t =
    let by_root =
      List.fold_left
        (fun acc x ->
          let r = find t x in
          let cur = try M.find r acc with Not_found -> [] in
          M.add r (x :: cur) acc)
        M.empty (members t)
    in
    M.fold (fun _ xs acc -> List.rev xs :: acc) by_root []

  let copy t = { parent = t.parent; rank = t.rank }
end
