(** Union-find (disjoint sets) over an arbitrary ordered key type, with
    path compression and union by rank. *)

module Make (Ord : Map.OrderedType) : sig
  type t

  val create : unit -> t

  val add : t -> Ord.t -> unit
  (** Register as a singleton class (no-op if present). *)

  val find : t -> Ord.t -> Ord.t
  (** Class representative; registers unknown keys on the fly. *)

  val union : t -> Ord.t -> Ord.t -> unit

  val same : t -> Ord.t -> Ord.t -> bool

  val members : t -> Ord.t list

  val classes : t -> Ord.t list list
  (** The full partition, singletons included. *)

  val copy : t -> t
  (** An independent copy: later unions do not affect the original. *)
end
