lib/util/union_find.ml: List Map
