lib/util/prng.mli:
