lib/util/sset.mli: Format Set
