(** Deterministic splitmix64 PRNG.

    All data generation and workload generation in this repository is seeded
    explicitly so experiments are reproducible bit-for-bit. We avoid
    [Random] from the stdlib to keep the stream independent of OCaml
    versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). The land keeps the value non-negative after
   the 64->63 bit truncation of Int64.to_int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(* Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = int t 2 = 0

(* Bernoulli with probability [p]. *)
let chance t p = float t < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Prng.pick_weighted: non-positive total";
  let r = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.pick_weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if r < acc +. w then x else go (acc +. w) rest
  in
  go 0.0 weighted

(* Shuffle a list (Fisher-Yates over an array copy). *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Split off an independent stream, e.g. one per generated view. *)
let split t = { state = next_int64 t }
