(** Deterministic splitmix64 PRNG: all data and workload generation is
    seeded explicitly so experiments reproduce bit-for-bit. *)

type t

val create : int -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound <= 0. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** Bernoulli with the given probability. *)

val pick : t -> 'a list -> 'a

val pick_weighted : t -> (float * 'a) list -> 'a

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** An independent stream. *)
