(** String sets with printing helpers (filter-tree keys). *)

include Set.S with type elt = string

val of_list' : string list -> t

val to_list : t -> string list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
