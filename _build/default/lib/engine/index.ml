(** Secondary indexes over in-memory tables: a sorted array over a column
    list, supporting equality lookup on a key prefix and range scans on the
    first column. Materialized views get these exactly like base tables
    (the paper's Example 1 creates one on (gross_revenue, p_name)). *)

open Mv_base

type t = {
  cols : string list;  (** indexed columns, significant order *)
  positions : int array;  (** column positions in the table's rows *)
  entries : Value.t array array;  (** table rows sorted by the key *)
}

let key_order (positions : int array) (a : Value.t array) (b : Value.t array) =
  let rec go i =
    if i >= Array.length positions then 0
    else
      let c = Value.order a.(positions.(i)) b.(positions.(i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let build (tbl : Table.t) (cols : string list) : t =
  let positions =
    Array.of_list (List.map (Table.col_index_exn tbl) cols)
  in
  let entries = Array.of_list tbl.Table.rows in
  Array.sort (key_order positions) entries;
  { cols; positions; entries }

(* first index whose entry satisfies [pred] (entries are sorted so pred
   must be monotone: false... false true... true) *)
let lower_bound t pred =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred t.entries.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* Rows whose first indexed column lies within [interval]. *)
let range_scan (t : t) (interval : Mv_relalg.Interval.t) : Value.t array list =
  let p = t.positions.(0) in
  let lo_idx =
    match interval.Mv_relalg.Interval.lo with
    | Mv_relalg.Interval.Unbounded -> 0
    | Mv_relalg.Interval.Incl v ->
        lower_bound t (fun row -> Value.order row.(p) v >= 0)
    | Mv_relalg.Interval.Excl v ->
        lower_bound t (fun row -> Value.order row.(p) v > 0)
  in
  let hi_idx =
    match interval.Mv_relalg.Interval.hi with
    | Mv_relalg.Interval.Unbounded -> Array.length t.entries
    | Mv_relalg.Interval.Incl v ->
        lower_bound t (fun row -> Value.order row.(p) v > 0)
    | Mv_relalg.Interval.Excl v ->
        lower_bound t (fun row -> Value.order row.(p) v >= 0)
  in
  let acc = ref [] in
  for i = hi_idx - 1 downto lo_idx do
    (* NULLs sort first and never satisfy range predicates *)
    if not (Value.is_null t.entries.(i).(p)) then
      acc := t.entries.(i) :: !acc
  done;
  !acc

(* Rows matching equality on a prefix of the indexed columns. *)
let prefix_lookup (t : t) (key : Value.t list) : Value.t array list =
  let k = Array.of_list key in
  let nk = Array.length k in
  if nk = 0 || nk > Array.length t.positions then
    invalid_arg "Index.prefix_lookup: bad key length";
  let cmp_prefix row =
    let rec go i =
      if i >= nk then 0
      else
        let c = Value.order row.(t.positions.(i)) k.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let lo = lower_bound t (fun row -> cmp_prefix row >= 0) in
  let hi = lower_bound t (fun row -> cmp_prefix row > 0) in
  let acc = ref [] in
  for i = hi - 1 downto lo do
    acc := t.entries.(i) :: !acc
  done;
  !acc

(* Can this index serve a predicate set? [`Prefix n] = equality on the
   first n columns; [`Range] = a range on the first column. *)
let usable_for (t : t) ~(eq_cols : string list) ~(range_cols : string list) =
  let rec prefix n = function
    | [] -> n
    | c :: rest -> if List.mem c eq_cols then prefix (n + 1) rest else n
  in
  let n = prefix 0 t.cols in
  if n > 0 then Some (`Prefix n)
  else
    match t.cols with
    | c :: _ when List.mem c range_cols -> Some `Range
    | _ -> None
