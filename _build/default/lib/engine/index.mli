(** Secondary indexes over in-memory tables: a sorted array over a column
    list, supporting equality lookup on a key prefix and range scans on the
    first column. *)

open Mv_base

type t

val build : Table.t -> string list -> t
(** Sort the table's current rows by the column list. *)

val range_scan : t -> Mv_relalg.Interval.t -> Value.t array list
(** Rows whose first indexed column lies in the interval (NULLs never
    qualify). *)

val prefix_lookup : t -> Value.t list -> Value.t array list
(** Rows matching equality on a prefix of the indexed columns.
    @raise Invalid_argument on empty or over-long keys. *)

val usable_for :
  t ->
  eq_cols:string list ->
  range_cols:string list ->
  [ `Prefix of int | `Range ] option
(** Can this index serve the given predicate columns? [`Prefix n] =
    equality on the first n index columns; [`Range] = a range on the
    leading column. *)
