(** Direct execution of SPJG blocks with SQL bag semantics: greedy hash
    joins along column-equality predicates, each conjunct applied as soon
    as its columns are bound, then grouping and projection. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type bindings = Value.t Col.Map.t

val env_of : bindings -> Col.t -> Value.t
(** @raise Eval.Eval_error on unbound columns. *)

val eval_agg : bindings list -> Spjg.agg -> Value.t
(** Aggregate over one group's rows; NULLs are skipped, empty sums are
    NULL (except [Sum0], which coalesces to 0). *)

val spj_tuples : Database.t -> Spjg.t -> bindings list
(** The fully-joined, fully-filtered bag of tuples of the SPJ part. *)

val execute : Database.t -> Spjg.t -> Relation.t

val materialize : Database.t -> Mv_core.View.t -> Table.t
(** Compute the view's contents, register them as a table in the database,
    and record the row count on the view descriptor. *)

val execute_substitute : Database.t -> Mv_core.Substitute.t -> Relation.t
(** The substitute's view must have been materialized first. *)

val execute_union : Database.t -> Mv_core.Union_substitute.t -> Relation.t
(** UNION ALL of the parts; every part's view must be materialized. *)
