(** A query result: named columns and a bag of rows. Comparison is
    multiset-based, which is what SQL equivalence of rewrites means. *)

open Mv_base

type t = { cols : string list; rows : Value.t array list }

let empty cols = { cols; rows = [] }

let cardinality t = List.length t.rows

let row_order (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then compare (Array.length a) (Array.length b)
    else
      let c = Value.order a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Multiset equality of the row bags; column order must agree. *)
let same_bag a b =
  List.length a.rows = List.length b.rows
  && List.equal
       (fun x y -> row_order x y = 0)
       (List.sort row_order a.rows)
       (List.sort row_order b.rows)

let pp ppf t =
  Fmt.pf ppf "%a@." Fmt.(list ~sep:(any " | ") string) t.cols;
  List.iter
    (fun row ->
      Fmt.pf ppf "%a@."
        Fmt.(list ~sep:(any " | ") Value.pp)
        (Array.to_list row))
    t.rows

let to_string ?(max_rows = 20) t =
  let header = String.concat " | " t.cols in
  let sep = String.make (String.length header) '-' in
  let shown = List.filteri (fun i _ -> i < max_rows) t.rows in
  let body =
    List.map
      (fun row ->
        String.concat " | "
          (List.map Value.to_string (Array.to_list row)))
      shown
  in
  let extra =
    if List.length t.rows > max_rows then
      [ Printf.sprintf "... (%d rows total)" (List.length t.rows) ]
    else []
  in
  String.concat "\n" ((header :: sep :: body) @ extra)
