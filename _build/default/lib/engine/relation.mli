(** A query result: named columns and a bag of rows. *)

open Mv_base

type t = { cols : string list; rows : Value.t array list }

val empty : string list -> t

val cardinality : t -> int

val row_order : Value.t array -> Value.t array -> int

val same_bag : t -> t -> bool
(** Multiset equality of the row bags — what SQL equivalence of rewrites
    means. Column order must agree. *)

val pp : Format.formatter -> t -> unit

val to_string : ?max_rows:int -> t -> string
