lib/engine/database.ml: Array Hashtbl Index List Mv_base Mv_catalog Table Value
