lib/engine/index.mli: Mv_base Mv_relalg Table Value
