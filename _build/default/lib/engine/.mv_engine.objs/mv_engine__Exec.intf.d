lib/engine/exec.mli: Col Database Mv_base Mv_core Mv_relalg Relation Table Value
