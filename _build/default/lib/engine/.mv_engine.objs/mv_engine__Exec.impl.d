lib/engine/exec.ml: Array Col Database Eval Expr Hashtbl Index List Mv_base Mv_catalog Mv_core Mv_obs Mv_relalg Option Pred Relation String Table Value
