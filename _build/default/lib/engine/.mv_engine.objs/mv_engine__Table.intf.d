lib/engine/table.mli: Mv_base Mv_catalog Pred Value
