lib/engine/database.mli: Hashtbl Index Mv_base Mv_catalog Table
