lib/engine/table.ml: Array List Mv_base Mv_catalog Printf Value
