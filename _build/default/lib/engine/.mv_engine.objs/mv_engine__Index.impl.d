lib/engine/index.ml: Array List Mv_base Mv_relalg Table Value
