lib/engine/relation.mli: Format Mv_base Value
