lib/engine/relation.ml: Array Fmt List Mv_base Printf String Value
