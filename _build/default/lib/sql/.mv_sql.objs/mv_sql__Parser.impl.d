lib/sql/parser.ml: Col Date Expr Fmt Lexer List Mv_base Mv_catalog Mv_relalg Option Pred Token Value
