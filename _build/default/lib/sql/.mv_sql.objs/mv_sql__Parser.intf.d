lib/sql/parser.mli: Mv_catalog Mv_relalg
