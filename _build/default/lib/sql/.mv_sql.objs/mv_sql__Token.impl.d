lib/sql/token.ml:
