(** Recursive-descent parser for the SQL subset, lowering directly to
    normalized SPJG blocks with columns resolved against the catalog.

    Supported statements:
    - [SELECT outs FROM t1 [a1], ... [WHERE pred] [GROUP BY exprs]]
    - [CREATE VIEW name [WITH SCHEMABINDING] AS select]

    Table references may carry a "dbo." prefix (ignored) and an alias;
    each base table may appear at most once (self-joins are rejected).
    Aggregates without GROUP BY parse as a scalar aggregate. BETWEEN
    expands to two conjuncts; predicates are converted to CNF. *)

exception Parse_error of string

val parse_query : Mv_catalog.Schema.t -> string -> Mv_relalg.Spjg.t

val parse_view : Mv_catalog.Schema.t -> string -> string * Mv_relalg.Spjg.t
(** [(view name, definition)]. *)

val parse_statement :
  Mv_catalog.Schema.t ->
  string ->
  [ `Query of Mv_relalg.Spjg.t | `View of string * Mv_relalg.Spjg.t ]
