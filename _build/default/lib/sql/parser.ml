(** Recursive-descent parser for the SQL subset, lowering directly to
    [Mv_relalg.Spjg] blocks with columns resolved against the catalog.

    Supported statements:
    - SELECT out, ... FROM t1 [a1], t2 [a2], ... [WHERE pred] [GROUP BY es]
    - CREATE VIEW name [WITH SCHEMABINDING] AS select

    Table references may carry a "dbo." prefix (ignored) and an alias.
    Each base table may be referenced at most once (the matching algorithm
    operates on canonical table names); self-joins are rejected with a
    clear error. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type state = {
  schema : Mv_catalog.Schema.t;
  mutable toks : Token.t list;
  (* alias (or table name) -> canonical table name *)
  mutable scope : (string * string) list;
}

let peek st = match st.toks with [] -> Token.Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_kw st kw =
  match peek st with
  | Token.Kw k when k = kw -> advance st
  | t -> parse_error "expected %s, found %s" kw (Token.to_string t)

let expect_sym st s =
  match peek st with
  | Token.Sym x when x = s -> advance st
  | t -> parse_error "expected '%s', found %s" s (Token.to_string t)

let accept_kw st kw =
  match peek st with
  | Token.Kw k when k = kw ->
      advance st;
      true
  | _ -> false

let accept_sym st s =
  match peek st with
  | Token.Sym x when x = s ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Token.Ident s ->
      advance st;
      s
  | t -> parse_error "expected identifier, found %s" (Token.to_string t)

(* ---- column resolution ---- *)

let resolve_qualified st tbl col =
  match List.assoc_opt tbl st.scope with
  | Some canonical ->
      if
        Mv_catalog.Table_def.has_column
          (Mv_catalog.Schema.table_exn st.schema canonical)
          col
      then Col.make canonical col
      else parse_error "no column %s in table %s" col canonical
  | None -> parse_error "unknown table or alias %s" tbl

let resolve_bare st name =
  let tables = List.map snd st.scope in
  match Mv_catalog.Schema.resolve_column st.schema ~tables name with
  | Some c -> c
  | None -> parse_error "unknown column %s" name

(* ---- expressions ---- *)

let rec expr st : Expr.t =
  let rec add_chain acc =
    if accept_sym st "+" then add_chain (Expr.Binop (Expr.Add, acc, term st))
    else if accept_sym st "-" then
      add_chain (Expr.Binop (Expr.Sub, acc, term st))
    else acc
  in
  add_chain (term st)

and term st : Expr.t =
  let rec mul_chain acc =
    if accept_sym st "*" then mul_chain (Expr.Binop (Expr.Mul, acc, factor st))
    else if accept_sym st "/" then
      mul_chain (Expr.Binop (Expr.Div, acc, factor st))
    else acc
  in
  mul_chain (factor st)

and factor st : Expr.t =
  match peek st with
  | Token.Int_lit i ->
      advance st;
      Expr.Const (Value.Int i)
  | Token.Float_lit f ->
      advance st;
      Expr.Const (Value.Float f)
  | Token.Str_lit s ->
      advance st;
      Expr.Const (Value.Str s)
  | Token.Kw "NULL" ->
      advance st;
      Expr.Const Value.Null
  | Token.Kw "TRUE" ->
      advance st;
      Expr.Const (Value.Bool true)
  | Token.Kw "FALSE" ->
      advance st;
      Expr.Const (Value.Bool false)
  | Token.Kw "DATE" -> (
      advance st;
      match peek st with
      | Token.Str_lit s -> (
          advance st;
          match Date.of_string s with
          | Some d -> Expr.Const (Value.Date d)
          | None -> parse_error "invalid date literal '%s'" s)
      | t -> parse_error "expected date string, found %s" (Token.to_string t))
  | Token.Sym "-" -> (
      advance st;
      (* fold negated literals so "-5" is a constant (and classifies as a
         range bound), not a Neg node *)
      match factor st with
      | Expr.Const (Value.Int i) -> Expr.Const (Value.Int (-i))
      | Expr.Const (Value.Float f) -> Expr.Const (Value.Float (-.f))
      | e -> Expr.Neg e)
  | Token.Sym "(" ->
      advance st;
      let e = expr st in
      expect_sym st ")";
      e
  | Token.Ident name -> (
      advance st;
      match peek st with
      | Token.Sym "." ->
          advance st;
          let col = ident st in
          Expr.Col (resolve_qualified st name col)
      | Token.Sym "(" ->
          (* scalar function call *)
          advance st;
          let rec args acc =
            let a = expr st in
            if accept_sym st "," then args (a :: acc)
            else begin
              expect_sym st ")";
              List.rev (a :: acc)
            end
          in
          Expr.Func (name, args [])
      | _ -> Expr.Col (resolve_bare st name))
  | t -> parse_error "unexpected token %s in expression" (Token.to_string t)

(* ---- predicates ---- *)

let cmp_of_sym = function
  | "=" -> Some Pred.Eq
  | "<>" -> Some Pred.Ne
  | "<" -> Some Pred.Lt
  | "<=" -> Some Pred.Le
  | ">" -> Some Pred.Gt
  | ">=" -> Some Pred.Ge
  | _ -> None

let rec pred st : Pred.t =
  let rec or_chain acc =
    if accept_kw st "OR" then or_chain (Pred.Or (acc, and_pred st)) else acc
  in
  or_chain (and_pred st)

and and_pred st : Pred.t =
  let rec and_chain acc =
    if accept_kw st "AND" then and_chain (Pred.And (acc, not_pred st)) else acc
  in
  and_chain (not_pred st)

and not_pred st : Pred.t =
  if accept_kw st "NOT" then Pred.Not (not_pred st) else atom st

and atom st : Pred.t =
  (* a parenthesis can open either a nested predicate or a scalar
     expression; try the predicate first and fall back *)
  (match peek st with
  | Token.Sym "(" -> (
      let saved = st.toks in
      advance st;
      match
        try
          let p = pred st in
          expect_sym st ")";
          (* must be followed by a boolean context, not a comparison *)
          (match peek st with
          | Token.Sym ("=" | "<>" | "<" | "<=" | ">" | ">=" | "+" | "-" | "*" | "/")
            ->
              None
          | _ -> Some p)
        with Parse_error _ -> None
      with
      | Some p -> `Done p
      | None ->
          st.toks <- saved;
          `Fallthrough)
  | _ -> `Fallthrough)
  |> function
  | `Done p -> p
  | `Fallthrough -> (
      let lhs = expr st in
      match peek st with
      | Token.Sym s when cmp_of_sym s <> None ->
          advance st;
          let rhs = expr st in
          Pred.Cmp (Option.get (cmp_of_sym s), lhs, rhs)
      | Token.Kw "BETWEEN" ->
          advance st;
          let lo = expr st in
          expect_kw st "AND";
          let hi = expr st in
          Pred.And (Pred.Cmp (Pred.Ge, lhs, lo), Pred.Cmp (Pred.Le, lhs, hi))
      | Token.Kw "LIKE" -> (
          advance st;
          match peek st with
          | Token.Str_lit pat ->
              advance st;
              Pred.Like (lhs, pat)
          | t -> parse_error "expected pattern string, found %s" (Token.to_string t))
      | Token.Kw "IS" ->
          advance st;
          if accept_kw st "NOT" then begin
            expect_kw st "NULL";
            Pred.Not (Pred.Is_null lhs)
          end
          else begin
            expect_kw st "NULL";
            Pred.Is_null lhs
          end
      | t -> parse_error "expected comparison, found %s" (Token.to_string t))

(* ---- select statements ---- *)

type raw_out = { out_def : Spjg.out_def; alias : string option }

let aggregate st : Spjg.agg option =
  match peek st with
  | Token.Kw ("COUNT" | "COUNT_BIG") ->
      advance st;
      expect_sym st "(";
      expect_sym st "*";
      expect_sym st ")";
      Some Spjg.Count_star
  | Token.Kw "SUM" ->
      advance st;
      expect_sym st "(";
      let e = expr st in
      expect_sym st ")";
      Some (Spjg.Sum e)
  | Token.Kw "AVG" ->
      advance st;
      expect_sym st "(";
      let e = expr st in
      expect_sym st ")";
      Some (Spjg.Avg e)
  | _ -> None

let select_item st : raw_out =
  let def =
    match aggregate st with
    | Some a -> Spjg.Aggregate a
    | None -> Spjg.Scalar (expr st)
  in
  let alias =
    if accept_kw st "AS" then Some (ident st)
    else
      (* implicit alias: "expr name" — safe because in the output list an
         item is always followed by ',' or end of list otherwise *)
      match peek st with
      | Token.Ident a ->
          advance st;
          Some a
      | _ -> None
  in
  { out_def = def; alias }

(* FROM item: [dbo.]table [alias] *)
let from_item st =
  let first = ident st in
  let tbl =
    if first = "dbo" && accept_sym st "." then ident st else first
  in
  if Mv_catalog.Schema.find_table st.schema tbl = None then
    parse_error "unknown table %s" tbl;
  let alias =
    match peek st with
    | Token.Ident a ->
        advance st;
        Some a
    | _ -> None
  in
  (tbl, alias)

let name_outputs (items : raw_out list) : Spjg.out_item list =
  List.map
    (fun r ->
      match (r.alias, r.out_def) with
      | Some name, d -> { Spjg.name; def = d }
      | None, Spjg.Scalar (Expr.Col c) -> { Spjg.name = c.Col.col; def = r.out_def }
      | None, Spjg.Aggregate Spjg.Count_star ->
          parse_error "count(*) output must be named with AS"
      | None, _ -> parse_error "computed output columns must be named with AS")
    items

let select st : Spjg.t =
  expect_kw st "SELECT";
  (* parse output list AFTER the scope is known; collect raw tokens by
     scanning ahead to FROM, then re-parse. Simpler: parse FROM first by
     splitting the token list. *)
  let rec split_at_from depth acc = function
    | [] -> parse_error "missing FROM clause"
    | Token.Kw "FROM" :: rest when depth = 0 -> (List.rev acc, rest)
    | (Token.Sym "(" as t) :: rest -> split_at_from (depth + 1) (t :: acc) rest
    | (Token.Sym ")" as t) :: rest -> split_at_from (depth - 1) (t :: acc) rest
    | t :: rest -> split_at_from depth (t :: acc) rest
  in
  let out_toks, rest = split_at_from 0 [] st.toks in
  st.toks <- rest;
  (* FROM list *)
  let rec from_list acc =
    let tbl, alias = from_item st in
    let acc = (tbl, alias) :: acc in
    if accept_sym st "," then from_list acc else List.rev acc
  in
  let items = from_list [] in
  let tables = List.map fst items in
  let dup =
    List.filter
      (fun t -> List.length (List.filter (( = ) t) tables) > 1)
      tables
  in
  if dup <> [] then
    parse_error "table %s referenced twice: self-joins are not supported"
      (List.hd dup);
  st.scope <-
    List.concat_map
      (fun (tbl, alias) ->
        (tbl, tbl) :: (match alias with Some a -> [ (a, tbl) ] | None -> []))
      items;
  (* WHERE *)
  let where = if accept_kw st "WHERE" then Some (pred st) else None in
  (* GROUP BY *)
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec exprs acc =
        let e = expr st in
        if accept_sym st "," then exprs (e :: acc) else List.rev (e :: acc)
      in
      Some (exprs [])
    end
    else None
  in
  (* now parse the saved output tokens with the scope in place *)
  let tail = st.toks in
  st.toks <- out_toks @ [ Token.Eof ];
  let rec out_list acc =
    let item = select_item st in
    if accept_sym st "," then out_list (item :: acc) else List.rev (item :: acc)
  in
  let raw = out_list [] in
  (match peek st with
  | Token.Eof -> ()
  | t -> parse_error "unexpected %s in output list" (Token.to_string t));
  st.toks <- tail;
  let out = name_outputs raw in
  (* aggregates without a GROUP BY clause form a scalar aggregate (an
     empty grouping list) *)
  let group_by =
    match group_by with
    | Some _ -> group_by
    | None ->
        if
          List.exists
            (fun (o : Spjg.out_item) ->
              match o.Spjg.def with Spjg.Aggregate _ -> true | _ -> false)
            out
        then Some []
        else None
  in
  Spjg.of_pred_where ~tables
    ~pred:(match where with Some p -> p | None -> Pred.Bool true)
    ~group_by ~out

let finish st =
  match peek st with
  | Token.Eof -> ()
  | t -> parse_error "trailing input: %s" (Token.to_string t)

let parse_query schema (src : string) : Spjg.t =
  let st = { schema; toks = Lexer.tokenize src; scope = [] } in
  let q = select st in
  finish st;
  q

(* CREATE VIEW name [WITH SCHEMABINDING] AS select *)
let parse_view schema (src : string) : string * Spjg.t =
  let st = { schema; toks = Lexer.tokenize src; scope = [] } in
  expect_kw st "CREATE";
  expect_kw st "VIEW";
  let name = ident st in
  if accept_kw st "WITH" then expect_kw st "SCHEMABINDING";
  expect_kw st "AS";
  let q = select st in
  finish st;
  (name, q)

(* Either a query or a view definition. *)
let parse_statement schema (src : string) =
  let toks = Lexer.tokenize src in
  match toks with
  | Token.Kw "CREATE" :: _ -> `View (parse_view schema src)
  | _ -> `Query (parse_query schema src)
