(** Tokens of the SQL subset. Keywords are recognized case-insensitively by
    the lexer and carried as [Kw]. *)

type t =
  | Kw of string  (** uppercased keyword: SELECT, FROM, WHERE, ... *)
  | Ident of string  (** identifier, lowercased *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string  (** punctuation and operators: ( ) , . * + - / = <> <= >= < > *)
  | Eof

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AND"; "OR"; "NOT"; "AS";
    "LIKE"; "BETWEEN"; "IS"; "NULL"; "TRUE"; "FALSE"; "DATE"; "CREATE";
    "VIEW"; "WITH"; "SCHEMABINDING"; "SUM"; "AVG"; "COUNT"; "COUNT_BIG";
  ]

let to_string = function
  | Kw k -> k
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> "'" ^ s ^ "'"
  | Sym s -> s
  | Eof -> "<eof>"
