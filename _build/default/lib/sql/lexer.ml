(** Hand-written lexer for the SQL subset. *)

exception Lex_error of string

let lex_error fmt = Fmt.kstr (fun s -> raise (Lex_error s)) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : Token.t list =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev (Token.Eof :: acc)
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then
        (* line comment *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done;
          let s = String.sub src i (!j - i) in
          go !j (Token.Float_lit (float_of_string s) :: acc)
        end
        else
          let s = String.sub src i (!j - i) in
          go !j (Token.Int_lit (int_of_string s) :: acc)
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        let upper = String.uppercase_ascii word in
        let tok =
          if List.mem upper Token.keywords then Token.Kw upper
          else Token.Ident (String.lowercase_ascii word)
        in
        go !j (tok :: acc)
      end
      else if c = '\'' then begin
        (* string literal; '' escapes a quote *)
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then lex_error "unterminated string literal"
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let j = scan (i + 1) in
        go j (Token.Str_lit (Buffer.contents buf) :: acc)
      end
      else
        let two =
          if i + 1 < n then Some (String.sub src i 2) else None
        in
        match two with
        | Some (("<>" | "<=" | ">=" | "!=") as s) ->
            let s = if s = "!=" then "<>" else s in
            go (i + 2) (Token.Sym s :: acc)
        | _ -> (
            match c with
            | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | '<' | '>'
              ->
                go (i + 1) (Token.Sym (String.make 1 c) :: acc)
            | _ -> lex_error "unexpected character %c at offset %d" c i)
  in
  go 0 []
