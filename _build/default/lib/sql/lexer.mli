(** Hand-written lexer for the SQL subset: case-insensitive keywords,
    ['']-escaped string literals, [--] line comments. *)

exception Lex_error of string

val tokenize : string -> Token.t list
(** Ends with {!Token.Eof}. @raise Lex_error on invalid input. *)
