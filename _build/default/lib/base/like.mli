(** SQL LIKE pattern matching: ['%'] matches any (possibly empty)
    substring, ['_'] matches exactly one character. *)

val matches : pattern:string -> string -> bool
