(** Scalar expressions shared by the SQL front end, the view-matching
    algorithm and the execution engine. *)

type binop = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Col of Col.t
  | Binop of binop * t * t
  | Neg of t
  | Func of string * t list
      (** uninterpreted scalar functions (e.g. substring); matched only
          syntactically, as in the paper's shallow residual matching *)

val binop_to_string : binop -> string

val equal : t -> t -> bool
(** Structural equality. *)

val compare_t : t -> t -> int

val columns : t -> Col.t list
(** All column references, left-to-right, with duplicates — the order
    matters for the paper's shallow template matching. *)

val column_set : t -> Col.Set.t

val is_col : t -> bool

val as_col : t -> Col.t option

val map_cols : (Col.t -> Col.t) -> t -> t
(** Rewrite every column reference. *)

val map_cols_opt : (Col.t -> Col.t option) -> t -> t option
(** Rewrite column references where mapping may fail; [None] if any
    reference cannot be mapped. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
