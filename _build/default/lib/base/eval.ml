(** Evaluation of scalar expressions and predicates against an environment
    mapping column references to values. Shared by the execution engine and
    by property tests that compare predicate transformations by truth table. *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let arith op a b =
  let open Value in
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
      match op with
      | Expr.Add -> Int (x + y)
      | Expr.Sub -> Int (x - y)
      | Expr.Mul -> Int (x * y)
      | Expr.Div -> if y = 0 then Null else Int (x / y))
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (Value.as_float a, Value.as_float b) with
      | Some x, Some y -> (
          match op with
          | Expr.Add -> Float (x +. y)
          | Expr.Sub -> Float (x -. y)
          | Expr.Mul -> Float (x *. y)
          | Expr.Div -> if y = 0.0 then Null else Float (x /. y))
      | _ -> assert false)
  | Date d, Int i -> (
      (* date arithmetic: shifting by days *)
      match op with
      | Expr.Add -> Date (d + i)
      | Expr.Sub -> Date (d - i)
      | Expr.Mul | Expr.Div -> eval_error "invalid date arithmetic")
  | _ ->
      eval_error "type error in arithmetic: %s %s %s" (Value.to_string a)
        (Expr.binop_to_string op) (Value.to_string b)

let rec expr env : Expr.t -> Value.t = function
  | Expr.Const v -> v
  | Expr.Col c -> env c
  | Expr.Binop (op, l, r) -> arith op (expr env l) (expr env r)
  | Expr.Neg e -> (
      match expr env e with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> eval_error "cannot negate %s" (Value.to_string v))
  | Expr.Func (f, args) -> func f (List.map (expr env) args)

and func name args =
  match (name, args) with
  | "substring", [ Value.Str s; Value.Int start; Value.Int len ] ->
      let start = max 1 start in
      let avail = String.length s - (start - 1) in
      if avail <= 0 || len <= 0 then Value.Str ""
      else Value.Str (String.sub s (start - 1) (min len avail))
  | "upper", [ Value.Str s ] -> Value.Str (String.uppercase_ascii s)
  | "lower", [ Value.Str s ] -> Value.Str (String.lowercase_ascii s)
  | "abs", [ Value.Int i ] -> Value.Int (abs i)
  | "abs", [ Value.Float f ] -> Value.Float (Float.abs f)
  | _, args when List.exists Value.is_null args -> Value.Null
  | _ -> eval_error "unknown function %s/%d" name (List.length args)

let cmp3_truth op a b : Pred.truth =
  match Value.cmp3 a b with
  | None -> Pred.Unknown
  | Some c ->
      Pred.truth_of_bool
        (match op with
        | Pred.Eq -> c = 0
        | Pred.Ne -> c <> 0
        | Pred.Lt -> c < 0
        | Pred.Le -> c <= 0
        | Pred.Gt -> c > 0
        | Pred.Ge -> c >= 0)

let rec pred env : Pred.t -> Pred.truth = function
  | Pred.Cmp (op, l, r) -> cmp3_truth op (expr env l) (expr env r)
  | Pred.Like (e, pat) -> (
      match expr env e with
      | Value.Null -> Pred.Unknown
      | Value.Str s -> Pred.truth_of_bool (Like.matches ~pattern:pat s)
      | v -> eval_error "LIKE on non-string %s" (Value.to_string v))
  | Pred.Is_null e -> Pred.truth_of_bool (Value.is_null (expr env e))
  | Pred.Not p -> Pred.truth_not (pred env p)
  | Pred.And (l, r) -> Pred.truth_and (pred env l) (pred env r)
  | Pred.Or (l, r) -> Pred.truth_or (pred env l) (pred env r)
  | Pred.Bool b -> Pred.truth_of_bool b

(* WHERE-clause semantics: keep only rows where the predicate is True. *)
let pred_holds env p = pred env p = Pred.True
