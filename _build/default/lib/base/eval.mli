(** Evaluation of scalar expressions and predicates against an environment
    mapping column references to values. *)

exception Eval_error of string

val arith : Expr.binop -> Value.t -> Value.t -> Value.t
(** NULL-propagating arithmetic; integer division truncates; division by
    zero yields NULL; Date +/- Int shifts by days.
    @raise Eval_error on type errors. *)

val expr : (Col.t -> Value.t) -> Expr.t -> Value.t

val func : string -> Value.t list -> Value.t
(** Built-in scalar functions: substring, upper, lower, abs. *)

val cmp3_truth : Pred.cmp -> Value.t -> Value.t -> Pred.truth

val pred : (Col.t -> Value.t) -> Pred.t -> Pred.truth
(** Full three-valued evaluation. *)

val pred_holds : (Col.t -> Value.t) -> Pred.t -> bool
(** WHERE-clause semantics: [true] iff the predicate evaluates to True. *)
