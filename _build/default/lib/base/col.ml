(** A resolved column reference: table name + column name.

    After name resolution (see [Mv_sql.Parser]) every column reference is
    qualified by the canonical table name, which is what the matching
    algorithm keys its equivalence classes on. *)

type t = { tbl : string; col : string }

let make tbl col = { tbl; col }

let compare a b =
  match String.compare a.tbl b.tbl with
  | 0 -> String.compare a.col b.col
  | c -> c

let equal a b = compare a b = 0

(* A column with an empty table part renders bare; used for the "?"
   placeholders of the paper's textual template matching. *)
let to_string c = if c.tbl = "" then c.col else c.tbl ^ "." ^ c.col

let pp ppf c = Fmt.string ppf (to_string c)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
