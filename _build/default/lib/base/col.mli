(** A resolved column reference: canonical table name + column name. *)

type t = { tbl : string; col : string }

val make : string -> string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val to_string : t -> string
(** ["tbl.col"]; a column with an empty table part renders bare (used for
    the "?" placeholders of textual template matching). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
