(** Column data types of the SQL subset. *)

type t = Int | Float | Str | Bool | Date

let equal (a : t) b = a = b

let is_numeric = function Int | Float -> true | Str | Bool | Date -> false

let to_string = function
  | Int -> "integer"
  | Float -> "float"
  | Str -> "varchar"
  | Bool -> "boolean"
  | Date -> "date"

let pp ppf t = Fmt.string ppf (to_string t)
