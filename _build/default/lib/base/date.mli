(** Calendar dates as days since 1970-01-01 (proleptic Gregorian). *)

val days_of_ymd : year:int -> month:int -> day:int -> int

val ymd_of_days : int -> int * int * int
(** [(year, month, day)]. *)

val of_string : string -> int option
(** Parse ['YYYY-MM-DD']. *)

val to_string : int -> string
