(** Calendar dates represented as days since 1970-01-01 (civil).

    Uses Howard Hinnant's days-from-civil algorithm, which is exact for the
    proleptic Gregorian calendar. TPC-H dates span 1992-1998 so the range is
    tiny, but the conversion is exact for any year. *)

let days_of_ymd ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let ymd_of_days days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - (((153 * mp) + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

(* Parse 'YYYY-MM-DD'. *)
let of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some year, Some month, Some day
        when month >= 1 && month <= 12 && day >= 1 && day <= 31 ->
          Some (days_of_ymd ~year ~month ~day)
      | _ -> None)
  | _ -> None

let to_string days =
  let year, month, day = ymd_of_days days in
  Printf.sprintf "%04d-%02d-%02d" year month day
