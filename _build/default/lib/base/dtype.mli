(** Column data types of the SQL subset. *)

type t = Int | Float | Str | Bool | Date

val equal : t -> t -> bool

val is_numeric : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
