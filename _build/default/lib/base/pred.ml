(** Predicates (boolean expressions) with SQL three-valued logic. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of cmp * Expr.t * Expr.t
  | Like of Expr.t * string
  | Is_null of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Bool of bool

type truth = True | False | Unknown

let truth_of_bool b = if b then True else False

let truth_and a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let truth_or a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let truth_not = function True -> False | False -> True | Unknown -> Unknown

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* (a op b) = (b (flip op) a) *)
let flip_cmp = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

(* NOT (a op b) = (a (negate op) b) under 2VL; with NULLs both sides are
   Unknown so the identity also holds in 3VL. *)
let negate_cmp = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

let rec equal a b =
  match (a, b) with
  | Cmp (o1, l1, r1), Cmp (o2, l2, r2) ->
      o1 = o2 && Expr.equal l1 l2 && Expr.equal r1 r2
  | Like (e1, p1), Like (e2, p2) -> Expr.equal e1 e2 && String.equal p1 p2
  | Is_null e1, Is_null e2 -> Expr.equal e1 e2
  | Not p1, Not p2 -> equal p1 p2
  | And (l1, r1), And (l2, r2) | Or (l1, r1), Or (l2, r2) ->
      equal l1 l2 && equal r1 r2
  | Bool b1, Bool b2 -> b1 = b2
  | (Cmp _ | Like _ | Is_null _ | Not _ | And _ | Or _ | Bool _), _ -> false

let rec columns = function
  | Cmp (_, l, r) -> Expr.columns l @ Expr.columns r
  | Like (e, _) | Is_null e -> Expr.columns e
  | Not p -> columns p
  | And (l, r) | Or (l, r) -> columns l @ columns r
  | Bool _ -> []

let column_set p = Col.Set.of_list (columns p)

let conj = function
  | [] -> Bool true
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> Bool false
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

(* Rewrite all column references, failing when any cannot be mapped. *)
let rec map_cols_opt f p =
  let expr e = Expr.map_cols_opt f e in
  match p with
  | Cmp (o, l, r) -> (
      match (expr l, expr r) with
      | Some l', Some r' -> Some (Cmp (o, l', r'))
      | _ -> None)
  | Like (e, pat) -> Option.map (fun e' -> Like (e', pat)) (expr e)
  | Is_null e -> Option.map (fun e' -> Is_null e') (expr e)
  | Not p -> Option.map (fun p' -> Not p') (map_cols_opt f p)
  | And (l, r) -> (
      match (map_cols_opt f l, map_cols_opt f r) with
      | Some l', Some r' -> Some (And (l', r'))
      | _ -> None)
  | Or (l, r) -> (
      match (map_cols_opt f l, map_cols_opt f r) with
      | Some l', Some r' -> Some (Or (l', r'))
      | _ -> None)
  | Bool b -> Some (Bool b)

let rec map_exprs f = function
  | Cmp (o, l, r) -> Cmp (o, f l, f r)
  | Like (e, pat) -> Like (f e, pat)
  | Is_null e -> Is_null (f e)
  | Not p -> Not (map_exprs f p)
  | And (l, r) -> And (map_exprs f l, map_exprs f r)
  | Or (l, r) -> Or (map_exprs f l, map_exprs f r)
  | Bool b -> Bool b

let rec to_string = function
  | Cmp (o, l, r) ->
      Expr.to_string l ^ " " ^ cmp_to_string o ^ " " ^ Expr.to_string r
  | Like (e, p) -> Expr.to_string e ^ " LIKE '" ^ p ^ "'"
  | Is_null e -> Expr.to_string e ^ " IS NULL"
  | Not p -> "NOT (" ^ to_string p ^ ")"
  | And (l, r) -> "(" ^ to_string l ^ " AND " ^ to_string r ^ ")"
  | Or (l, r) -> "(" ^ to_string l ^ " OR " ^ to_string r ^ ")"
  | Bool b -> if b then "TRUE" else "FALSE"

let pp ppf p = Fmt.string ppf (to_string p)
