lib/base/col.mli: Format Map Set
