lib/base/dtype.mli: Format
