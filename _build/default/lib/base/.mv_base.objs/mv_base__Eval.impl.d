lib/base/eval.ml: Expr Float Fmt Like List Pred String Value
