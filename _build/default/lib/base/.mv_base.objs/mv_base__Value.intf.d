lib/base/value.mli: Dtype Format
