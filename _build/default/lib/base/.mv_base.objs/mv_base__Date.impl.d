lib/base/date.ml: Printf String
