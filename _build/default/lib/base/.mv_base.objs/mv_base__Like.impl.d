lib/base/like.ml: Hashtbl String
