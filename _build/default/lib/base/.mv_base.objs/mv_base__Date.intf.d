lib/base/date.mli:
