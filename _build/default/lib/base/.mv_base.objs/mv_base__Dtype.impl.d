lib/base/dtype.ml: Fmt
