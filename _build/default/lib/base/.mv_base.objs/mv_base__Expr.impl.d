lib/base/expr.ml: Col Fmt List Option String Value
