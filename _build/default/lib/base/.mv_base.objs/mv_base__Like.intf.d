lib/base/like.mli:
