lib/base/col.ml: Fmt Map Set String
