lib/base/expr.mli: Col Format Value
