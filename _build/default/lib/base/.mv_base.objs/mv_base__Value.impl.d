lib/base/value.ml: Date Dtype Fmt Printf
