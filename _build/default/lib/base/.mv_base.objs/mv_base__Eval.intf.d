lib/base/eval.mli: Col Expr Pred Value
