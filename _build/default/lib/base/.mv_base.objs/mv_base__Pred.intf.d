lib/base/pred.mli: Col Expr Format
