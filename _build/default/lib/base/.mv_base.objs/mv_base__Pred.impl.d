lib/base/pred.ml: Col Expr Fmt List Option String
