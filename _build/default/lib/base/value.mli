(** Runtime values with SQL NULL semantics. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

exception Type_error of string

val dtype_of : t -> Dtype.t option
(** [None] for NULL. *)

val is_null : t -> bool

val as_float : t -> float option
(** Numeric view of Int/Float; [None] otherwise. *)

val cmp3 : t -> t -> int option
(** SQL three-valued comparison: [None] when either side is NULL.
    Int and Float compare numerically. @raise Type_error on incomparable
    types. *)

val order : t -> t -> int
(** A total order used for grouping, sorting and multiset comparison:
    NULL sorts first; mixed numerics compare numerically; otherwise values
    order by type tag. *)

val equal : t -> t -> bool
(** Equality under {!order} (so [equal Null Null = true], unlike SQL [=]). *)

val to_string : t -> string
(** SQL literal syntax ([NULL], [42], ['text'], [DATE '1995-01-01'], ...). *)

val pp : Format.formatter -> t -> unit
