(** Scalar expressions shared by the SQL front end, the view-matching
    algorithm and the execution engine. *)

type binop = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Col of Col.t
  | Binop of binop * t * t
  | Neg of t
  | Func of string * t list
      (** uninterpreted scalar functions (e.g. substring); matched only
          syntactically, as in the paper's shallow residual matching *)

let binop_to_string = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Col x, Col y -> Col.equal x y
  | Binop (o1, l1, r1), Binop (o2, l2, r2) -> o1 = o2 && equal l1 l2 && equal r1 r2
  | Neg x, Neg y -> equal x y
  | Func (f, xs), Func (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | (Const _ | Col _ | Binop _ | Neg _ | Func _), _ -> false

let rec compare_t a b =
  let tag = function
    | Const _ -> 0
    | Col _ -> 1
    | Binop _ -> 2
    | Neg _ -> 3
    | Func _ -> 4
  in
  match (a, b) with
  | Const x, Const y -> Value.order x y
  | Col x, Col y -> Col.compare x y
  | Binop (o1, l1, r1), Binop (o2, l2, r2) ->
      let c = compare o1 o2 in
      if c <> 0 then c
      else
        let c = compare_t l1 l2 in
        if c <> 0 then c else compare_t r1 r2
  | Neg x, Neg y -> compare_t x y
  | Func (f, xs), Func (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c else List.compare compare_t xs ys
  | _ -> compare (tag a) (tag b)

(* All column references, left-to-right, with duplicates (order matters for
   the paper's shallow template matching). *)
let rec columns = function
  | Const _ -> []
  | Col c -> [ c ]
  | Binop (_, l, r) -> columns l @ columns r
  | Neg e -> columns e
  | Func (_, es) -> List.concat_map columns es

let column_set e = Col.Set.of_list (columns e)

let is_col = function Col _ -> true | _ -> false

let as_col = function Col c -> Some c | _ -> None

(* Rewrite every column reference through [f]; [f] must be total here
   (use [map_cols_opt] when mapping can fail). *)
let rec map_cols f = function
  | Const v -> Const v
  | Col c -> Col (f c)
  | Binop (o, l, r) -> Binop (o, map_cols f l, map_cols f r)
  | Neg e -> Neg (map_cols f e)
  | Func (g, es) -> Func (g, List.map (map_cols f) es)

(* Rewrite column references where [f] may fail; None if any reference
   cannot be mapped. *)
let rec map_cols_opt f = function
  | Const v -> Some (Const v)
  | Col c -> Option.map (fun c' -> Col c') (f c)
  | Binop (o, l, r) -> (
      match (map_cols_opt f l, map_cols_opt f r) with
      | Some l', Some r' -> Some (Binop (o, l', r'))
      | _ -> None)
  | Neg e -> Option.map (fun e' -> Neg e') (map_cols_opt f e)
  | Func (g, es) ->
      let es' = List.filter_map (map_cols_opt f) es in
      if List.length es' = List.length es then Some (Func (g, es')) else None

let rec to_string = function
  | Const v -> Value.to_string v
  | Col c -> Col.to_string c
  | Binop (o, l, r) ->
      "(" ^ to_string l ^ " " ^ binop_to_string o ^ " " ^ to_string r ^ ")"
  | Neg e -> "(-" ^ to_string e ^ ")"
  | Func (f, es) -> f ^ "(" ^ String.concat ", " (List.map to_string es) ^ ")"

let pp ppf e = Fmt.string ppf (to_string e)
