(** SQL LIKE pattern matching: '%' matches any (possibly empty) substring,
    '_' matches exactly one character. No escape character in this subset. *)

let matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized on (i, j): does pattern[i..] match s[j..]? *)
  let memo = Hashtbl.create 16 in
  let rec go i j =
    match Hashtbl.find_opt memo (i, j) with
    | Some r -> r
    | None ->
        let r =
          if i = np then j = ns
          else
            match pattern.[i] with
            | '%' ->
                (* skip runs of % *)
                let rec any k = k <= ns && (go (i + 1) k || any (k + 1)) in
                any j
            | '_' -> j < ns && go (i + 1) (j + 1)
            | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
        in
        Hashtbl.add memo (i, j) r;
        r
  in
  go 0 0
