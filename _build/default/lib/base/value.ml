(** Runtime values with SQL NULL.

    Comparisons come in two flavours:
    - [cmp3]: SQL semantics; any comparison involving NULL is Unknown.
    - [order]: an arbitrary but consistent total order (NULL first) used for
      grouping, sorting and multiset comparison in tests. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

let dtype_of = function
  | Null -> None
  | Int _ -> Some Dtype.Int
  | Float _ -> Some Dtype.Float
  | Str _ -> Some Dtype.Str
  | Bool _ -> Some Dtype.Bool
  | Date _ -> Some Dtype.Date

let is_null = function Null -> true | _ -> false

(* Numeric view used for cross-type Int/Float comparison and arithmetic. *)
let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ | Date _ -> None

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(* Three-valued comparison: None when either side is NULL; raises
   [Type_error] on incomparable types (a bug in callers, not data). *)
let cmp3 a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Float x, Float y -> Some (compare x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Some (compare x y)
      | _ -> assert false)
  | Str x, Str y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | Date x, Date y -> Some (compare x y)
  | _ ->
      type_error "cannot compare %s with %s"
        (match dtype_of a with Some d -> Dtype.to_string d | None -> "null")
        (match dtype_of b with Some d -> Dtype.to_string d | None -> "null")

(* Total order for grouping/sorting: NULL < everything; mixed numerics
   compare numerically; otherwise order by type tag. *)
let order a b =
  let tag = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ | Float _ -> 2
    | Date _ -> 3
    | Str _ -> 4
  in
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> compare x y
      | _ -> assert false)
  | Str x, Str y -> compare x y
  | Bool x, Bool y -> compare x y
  | Date x, Date y -> compare x y
  | _ -> compare (tag a) (tag b)

let equal a b = order a b = 0

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> "'" ^ s ^ "'"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date d -> "DATE '" ^ Date.to_string d ^ "'"

let pp ppf v = Fmt.string ppf (to_string v)
