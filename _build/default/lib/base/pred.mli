(** Predicates (boolean expressions) with SQL three-valued logic. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of cmp * Expr.t * Expr.t
  | Like of Expr.t * string
  | Is_null of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Bool of bool

type truth = True | False | Unknown

val truth_of_bool : bool -> truth

val truth_and : truth -> truth -> truth

val truth_or : truth -> truth -> truth

val truth_not : truth -> truth

val cmp_to_string : cmp -> string

val flip_cmp : cmp -> cmp
(** [(a op b)] = [(b (flip_cmp op) a)]. *)

val negate_cmp : cmp -> cmp
(** [NOT (a op b)] = [(a (negate_cmp op) b)], valid in 3VL because both
    sides are Unknown exactly when a NULL is involved. *)

val equal : t -> t -> bool
(** Structural equality. *)

val columns : t -> Col.t list

val column_set : t -> Col.Set.t

val conj : t list -> t
(** AND of the list; [Bool true] for []. *)

val disj : t list -> t
(** OR of the list; [Bool false] for []. *)

val map_cols_opt : (Col.t -> Col.t option) -> t -> t option
(** Rewrite all column references, failing if any cannot be mapped. *)

val map_exprs : (Expr.t -> Expr.t) -> t -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit
