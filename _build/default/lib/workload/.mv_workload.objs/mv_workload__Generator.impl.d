lib/workload/generator.ml: Col Expr List Mv_base Mv_catalog Mv_opt Mv_relalg Mv_util Option Pred Printf Value
