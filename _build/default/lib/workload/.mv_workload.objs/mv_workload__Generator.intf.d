lib/workload/generator.mli: Col Mv_base Mv_catalog Mv_relalg Mv_util Pred
