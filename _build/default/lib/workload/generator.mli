(** The randomized view/query generator of the paper's section 5: FK-walk
    table selection, range predicates added until the estimated SPJ
    cardinality hits a band (views 25-75%, queries 8-12% of the largest
    table), random output columns, ~75% aggregation blocks, and the
    paper's query table-count distribution (40/20/17/13/8/2% for 2..7). *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type config = {
  agg_fraction : float;
  card_band : float * float;
  out_col_prob : float;
  group_col_prob : float;
  join_continue_prob : float;
  max_tables : int;
  max_range_preds : int;
  table_count_dist : (float * int) list option;
  count_output_prob : float;
}

val view_config : config

val query_config : config

val rangeable_cols : Mv_catalog.Schema.t -> string list -> Col.t list
(** Int/Date columns of the tables — candidates for range predicates. *)

val range_pred :
  Mv_catalog.Stats.t -> Mv_util.Prng.t -> Col.t -> float -> Pred.t option
(** A predicate on the column with roughly the given selectivity, bounds
    interpolated from the column statistics. *)

val generate_block :
  Mv_catalog.Schema.t -> Mv_catalog.Stats.t -> Mv_util.Prng.t -> config -> Spjg.t

val generate_view :
  Mv_catalog.Schema.t -> Mv_catalog.Stats.t -> Mv_util.Prng.t -> Spjg.t

val generate_query :
  Mv_catalog.Schema.t -> Mv_catalog.Stats.t -> Mv_util.Prng.t -> Spjg.t

val views :
  ?seed:int ->
  Mv_catalog.Schema.t ->
  Mv_catalog.Stats.t ->
  int ->
  (string * Spjg.t) list
(** A reproducible batch of named views. *)

val queries :
  ?seed:int -> Mv_catalog.Schema.t -> Mv_catalog.Stats.t -> int -> Spjg.t list
