lib/experiments/harness.ml: List Mv_catalog Mv_core Mv_obs Mv_opt Mv_relalg Mv_tpch Mv_workload
