lib/experiments/harness.ml: List Mv_catalog Mv_core Mv_opt Mv_relalg Mv_tpch Mv_workload Sys
