lib/experiments/report.ml: Harness List Printf
