lib/experiments/report.ml: Harness List Mv_obs Printf
