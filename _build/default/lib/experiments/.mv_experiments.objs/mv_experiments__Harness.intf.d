lib/experiments/harness.mli: Mv_catalog Mv_core Mv_relalg
