(** Formatting of the paper's figures and in-text statistics from sweep
    measurements. Every printer states what the paper reported so the
    output reads as paper-vs-measured. *)

let pr fmt = Printf.printf fmt

let find ms ~nviews ~config =
  List.find_opt
    (fun (m : Harness.measurement) ->
      m.Harness.nviews = nviews && m.Harness.config = config)
    ms

let configs_ordered =
  [
    { Harness.alt = true; filter = true };
    { Harness.alt = false; filter = true };
    { Harness.alt = true; filter = false };
    { Harness.alt = false; filter = false };
  ]

(* Figure 2: total optimization time vs number of views, four curves. *)
let figure2 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 2: optimization time vs number of views ==\n";
  pr "paper: optimization time grows linearly; with the filter tree the\n";
  pr "increase at 1000 views is ~60%%, without it ~110%%.\n\n";
  pr "%8s" "views";
  List.iter
    (fun c -> pr " %14s" (Harness.config_name c))
    configs_ordered;
  pr "\n";
  List.iter
    (fun n ->
      pr "%8d" n;
      List.iter
        (fun c ->
          match find ms ~nviews:n ~config:c with
          | Some m -> pr " %13.3fs" m.Harness.total_time
          | None -> pr " %14s" "-")
        configs_ordered;
      pr "\n")
    nviews_list;
  (* headline ratios *)
  let base c = find ms ~nviews:0 ~config:c in
  let last c = find ms ~nviews:(List.fold_left max 0 nviews_list) ~config:c in
  let incr c =
    match (base c, last c) with
    | Some b, Some l when b.Harness.total_time > 0.0 ->
        Some
          ((l.Harness.total_time -. b.Harness.total_time)
           /. b.Harness.total_time *. 100.0)
    | _ -> None
  in
  (match incr { Harness.alt = true; filter = true } with
  | Some pct -> pr "\nincrease with filter tree: %+.0f%% (paper: ~+60%%)\n" pct
  | None -> ());
  match incr { Harness.alt = true; filter = false } with
  | Some pct -> pr "increase without filter tree: %+.0f%% (paper: ~+110%%)\n" pct
  | None -> ()

(* Figure 3: total increase in optimization time vs time spent inside the
   view-matching rule (filter tree enabled, substitutes produced). *)
let figure3 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 3: increase in optimization time vs view-matching time ==\n";
  pr "paper: at 1000 views about half of the increase is spent inside the\n";
  pr "view-matching rule; with few views almost all of it is.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  let base = find ms ~nviews:0 ~config:cfg in
  pr "%8s %16s %18s\n" "views" "total increase" "view-matching time";
  List.iter
    (fun n ->
      match (find ms ~nviews:n ~config:cfg, base) with
      | Some m, Some b ->
          pr "%8d %15.3fs %17.3fs\n" n
            (m.Harness.total_time -. b.Harness.total_time)
            m.Harness.rule_time
      | _ -> ())
    nviews_list

(* Figure 4: number of final plans using materialized views. *)
let figure4 (ms : Harness.measurement list) nviews_list =
  pr "\n== Figure 4: final plans using materialized views ==\n";
  pr "paper: ~60%% of queries use a view at 200 views, ~87%% at 1000.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  pr "%8s %12s %10s\n" "views" "plans w/view" "fraction";
  List.iter
    (fun n ->
      match find ms ~nviews:n ~config:cfg with
      | Some m ->
          pr "%8d %12d %9.0f%%\n" n m.Harness.plans_using_views
            (100.0 *. float_of_int m.Harness.plans_using_views
             /. float_of_int (max 1 m.Harness.queries))
      | None -> ())
    nviews_list

(* The in-text statistics of section 5 (T1-T5 in DESIGN.md). *)
let stats_table (ms : Harness.measurement list) nviews_list =
  pr "\n== In-text statistics (section 5) ==\n";
  pr "paper: candidate set < 0.4%% of views (0.29%% @100, 0.36%% @1000);\n";
  pr "15-20%% of candidates pass full matching; substitutes/invocation\n";
  pr "0.04 @100 -> 0.59 @1000; ~17.8 invocations/query; substitutes/query\n";
  pr "0.7 @100 -> 10.5 @1000.\n\n";
  let cfg = { Harness.alt = true; filter = true } in
  pr "%8s %10s %12s %10s %12s %12s\n" "views" "cand/view" "pass-rate"
    "subs/inv" "inv/query" "subs/query";
  List.iter
    (fun n ->
      if n > 0 then
        match find ms ~nviews:n ~config:cfg with
        | Some m ->
            let fi = float_of_int in
            pr "%8d %9.2f%% %11.1f%% %10.2f %12.1f %12.2f\n" n
              (100.0 *. fi m.Harness.candidates
               /. fi (max 1 m.Harness.invocations)
               /. fi n)
              (100.0 *. fi m.Harness.matched
               /. fi (max 1 m.Harness.candidates))
              (fi m.Harness.substitutes /. fi (max 1 m.Harness.invocations))
              (fi m.Harness.invocations /. fi (max 1 m.Harness.queries))
              (fi m.Harness.substitutes /. fi (max 1 m.Harness.queries))
        | None -> ())
    nviews_list
