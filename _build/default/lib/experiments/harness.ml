(** The measurement harness behind section 5's experiments: optimize a
    fixed query batch against the first N of a fixed view population, under
    the four configurations (substitutes on/off x filter tree on/off), and
    collect the counters the paper reports. *)

module Spjg = Mv_relalg.Spjg

type config = { alt : bool; filter : bool }

let config_name c =
  (if c.alt then "Alt" else "NoAlt")
  ^ "&" ^ if c.filter then "Filter" else "NoFilter"

let all_configs =
  [
    { alt = true; filter = true };
    { alt = false; filter = true };
    { alt = true; filter = false };
    { alt = false; filter = false };
  ]

type measurement = {
  nviews : int;
  config : config;
  queries : int;
  total_time : float;  (** CPU seconds for the whole query batch *)
  rule_time : float;  (** CPU seconds inside the view-matching rule *)
  invocations : int;
  candidates : int;
  matched : int;
  substitutes : int;
  plans_using_views : int;
}

type workload = {
  schema : Mv_catalog.Schema.t;
  stats : Mv_catalog.Stats.t;
  views : Mv_core.View.t list;  (** the full population, in order *)
  queries : Spjg.t list;
}

(* Build the fixed workload once; view descriptors are shared across all
   runs. *)
let make_workload ?(view_seed = 1001) ?(query_seed = 2002) ?(nviews = 1000)
    ?(nqueries = 200) () : workload =
  let schema = Mv_tpch.Schema.schema in
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  let views =
    List.map
      (fun (name, spjg) ->
        let row_count = Mv_opt.Cost.estimate_view_rows stats spjg in
        Mv_core.View.create ~row_count schema ~name spjg)
      (Mv_workload.Generator.views ~seed:view_seed schema stats nviews)
  in
  let queries = Mv_workload.Generator.queries ~seed:query_seed schema stats nqueries in
  { schema; stats; views; queries }

let take n xs = List.filteri (fun i _ -> i < n) xs

(* One measurement: first [nviews] views, one configuration. *)
let run (w : workload) ~nviews ~(config : config) : measurement =
  let registry = Mv_core.Registry.create ~use_filter:config.filter w.schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) (take nviews w.views);
  let opt_config =
    { Mv_opt.Optimizer.produce_substitutes = config.alt }
  in
  let plans_using_views = ref 0 in
  let t0 = Sys.time () in
  List.iter
    (fun q ->
      let r = Mv_opt.Optimizer.optimize ~config:opt_config registry w.stats q in
      if r.Mv_opt.Optimizer.used_views then incr plans_using_views)
    w.queries;
  let total_time = Sys.time () -. t0 in
  let s = registry.Mv_core.Registry.stats in
  {
    nviews;
    config;
    queries = List.length w.queries;
    total_time;
    rule_time = s.Mv_core.Registry.rule_time;
    invocations = s.Mv_core.Registry.invocations;
    candidates = s.Mv_core.Registry.candidates;
    matched = s.Mv_core.Registry.matched;
    substitutes = s.Mv_core.Registry.substitutes;
    plans_using_views = !plans_using_views;
  }

(* The full grid for the figures. A discarded warmup run first: the very
   first measurement otherwise pays one-time allocation/GC costs. *)
let sweep (w : workload) ~nviews_list ~configs : measurement list =
  (match configs with
  | c :: _ -> ignore (run w ~nviews:0 ~config:c)
  | [] -> ());
  List.concat_map
    (fun nviews ->
      List.map (fun config -> run w ~nviews ~config) configs)
    nviews_list
