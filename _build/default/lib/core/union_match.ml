(** Finding union substitutes: views that pass every test except range
    subsumption on exactly one equivalence class are sliced along that
    class and greedily composed into a cover of the query's range.

    Restricted to SPJ queries (unions of aggregated slices would have to
    merge groups that span a slice boundary, which single-pass UNION ALL
    cannot do). Each slice is matched by re-running the standard pipeline
    on the query narrowed to the slice, so all compensation machinery is
    reused and each part is individually sound. *)

open Mv_base
module A = Mv_relalg.Analysis
module Equiv = Mv_relalg.Equiv
module Interval = Mv_relalg.Interval
module Range = Mv_relalg.Range
module Spjg = Mv_relalg.Spjg

(* If [view] fails only the range test, and only on one class, return the
   representative column of that class (under the view-extended query
   equivalence) together with the extended equivalence itself. *)
let single_range_gap ~relaxed_nulls (query : A.t) (view : View.t) :
    (Col.t * Equiv.t) option =
  match Spj_match.align_tables ~relaxed_nulls query view with
  | Error _ -> None
  | Ok q_equiv -> (
      let checks = Spj_match.check_components query view in
      List.iter
        (fun (a, b) -> Equiv.merge q_equiv a b)
        checks.Mv_relalg.Classify.col_eqs;
      match Spj_match.equijoin_test q_equiv view with
      | Error _ -> None
      | Ok _ -> (
          (* residuals must also pass: slicing only fixes ranges *)
          match
            Spj_match.residual_test q_equiv
              ~check_residuals:checks.Mv_relalg.Classify.residuals query view
          with
          | Error _ -> None
          | Ok _ ->
              let q_full =
                Range.build q_equiv
                  (query.A.classified.Mv_relalg.Classify.ranges
                  @ checks.Mv_relalg.Classify.ranges)
                  (query.A.classified.Mv_relalg.Classify.disj_ranges
                  @ checks.Mv_relalg.Classify.disj_ranges)
              in
              let v_equiv = view.View.analysis.A.equiv in
              let v_ranges = view.View.analysis.A.ranges in
              let view_tables = (View.spjg view).Spjg.tables in
              let failing =
                List.filter_map
                  (fun qcls ->
                    let members = Col.Set.elements qcls in
                    let rep = List.hd members in
                    let q_set = Range.find q_equiv q_full rep in
                    let v_set =
                      List.fold_left
                        (fun acc c ->
                          if List.mem c.Col.tbl view_tables then
                            Mv_relalg.Rset.inter acc
                              (Range.find v_equiv v_ranges c)
                          else acc)
                        Mv_relalg.Rset.full members
                    in
                    if Mv_relalg.Rset.contains ~outer:v_set ~inner:q_set then
                      None
                    else Some rep)
                  (Equiv.classes q_equiv)
              in
              (match failing with
              | [ rep ] -> Some (rep, q_equiv)
              | _ -> None)))

(* The view's effective range on the class of [rep] — the convex hull of
   its set: slicing over the hull is conservative (a slice that includes a
   gap simply fails its per-slice match and the cover attempt aborts). *)
let view_range_on (q_equiv : Equiv.t) (view : View.t) (rep : Col.t) =
  let v_equiv = view.View.analysis.A.equiv in
  let v_ranges = view.View.analysis.A.ranges in
  let view_tables = (View.spjg view).Spjg.tables in
  Mv_relalg.Rset.hull
    (Col.Set.fold
       (fun c acc ->
         if List.mem c.Col.tbl view_tables then
           Mv_relalg.Rset.inter acc (Range.find v_equiv v_ranges c)
         else acc)
       (Equiv.class_of q_equiv rep)
       Mv_relalg.Rset.full)

(* A column of the class usable for the slice predicates: it must belong
   to the query's own tables. *)
let slice_col (query : A.t) (q_equiv : Equiv.t) (rep : Col.t) : Col.t option =
  Col.Set.fold
    (fun c acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if List.mem c.Col.tbl query.A.spjg.Spjg.tables then Some c else None)
    (Equiv.class_of q_equiv rep)
    None

(* NULL safety: slicing adds range predicates, which reject NULLs. That is
   only transparent when the original query cannot produce a row with NULL
   there: either the query's own range on the class is already constrained,
   or the class is non-trivial (the equijoin itself rejects NULLs), or the
   column is declared not-null. *)
let null_safe (query : A.t) (q_equiv : Equiv.t) (rep : Col.t) (c : Col.t) =
  let q_own =
    Range.build q_equiv query.A.classified.Mv_relalg.Classify.ranges
      query.A.classified.Mv_relalg.Classify.disj_ranges
  in
  (not (Mv_relalg.Rset.is_full (Range.find q_equiv q_own rep)))
  || Col.Set.cardinal (Equiv.class_of q_equiv rep) > 1
  || not (Mv_catalog.Schema.column_nullable query.A.schema c)

(* Flip a slice's upper bound into the next slice's lower bound so that
   consecutive slices are disjoint and jointly gap-free. *)
let next_lower = function
  | Interval.Unbounded -> None (* covered to +inf: done *)
  | Interval.Incl v -> Some (Interval.Excl v)
  | Interval.Excl v -> Some (Interval.Incl v)

(* The query narrowed to [slice] on [col]. *)
let narrowed (query : A.t) (col : Col.t) (slice : Interval.t) : Spjg.t =
  let q = query.A.spjg in
  Spjg.make ~tables:q.Spjg.tables
    ~where:(q.Spjg.where @ Interval.to_preds (Expr.Col col) slice)
    ~group_by:q.Spjg.group_by ~out:q.Spjg.out

(* Greedy interval cover: repeatedly take, among the views whose range
   starts at or below the uncovered point, the one reaching farthest. *)
let find ?(relaxed_nulls = false) ?(backjoins = false) ?(max_parts = 4)
    (query : A.t) (views : View.t list) : Union_substitute.t option =
  if Spjg.is_aggregate query.A.spjg then None
  else
    (* group the sliceable views by the representative of their failing
       class (under the query's own equivalence — representatives from
       differently-extended equivalences still coincide on query columns) *)
    let gaps =
      List.filter_map
        (fun v ->
          Option.map
            (fun (rep, q_equiv) -> (v, rep, q_equiv))
            (single_range_gap ~relaxed_nulls query v))
        views
    in
    let by_class =
      List.fold_left
        (fun acc (v, rep, q_equiv) ->
          let key = Equiv.repr query.A.equiv rep in
          let cur = try List.assoc key acc with Not_found -> [] in
          (key, (v, q_equiv) :: cur) :: List.remove_assoc key acc)
        []
        (List.filter_map
           (fun (v, rep, q_equiv) ->
             (* only classes visible in the query itself can be sliced *)
             if List.mem rep.Col.tbl query.A.spjg.Spjg.tables then
               Some (v, rep, q_equiv)
             else
               Option.map
                 (fun c -> (v, c, q_equiv))
                 (slice_col query q_equiv rep))
           gaps)
    in
    let attempt (rep, candidates) =
      match slice_col query query.A.equiv rep with
      | None -> None
      | Some col ->
          if not (null_safe query query.A.equiv rep col) then None
          else
            let q_target =
              Mv_relalg.Rset.hull
                (Range.find query.A.equiv
                   (Range.build query.A.equiv
                      query.A.classified.Mv_relalg.Classify.ranges
                      query.A.classified.Mv_relalg.Classify.disj_ranges)
                   rep)
            in
            let ranged =
              List.map
                (fun (v, q_equiv) -> (v, view_range_on q_equiv v rep))
                candidates
            in
            let rec cover lo parts slices n =
              if n > max_parts then None
              else
                let usable =
                  List.filter
                    (fun (_, r) -> Interval.cmp_lower r.Interval.lo lo <= 0)
                    ranged
                in
                match usable with
                | [] -> None
                | _ -> (
                    let v, r =
                      List.fold_left
                        (fun (bv, br) (v, r) ->
                          if
                            Interval.cmp_upper r.Interval.hi br.Interval.hi > 0
                          then (v, r)
                          else (bv, br))
                        (List.hd usable) (List.tl usable)
                    in
                    let hi =
                      if
                        Interval.cmp_upper r.Interval.hi
                          q_target.Interval.hi >= 0
                      then q_target.Interval.hi
                      else r.Interval.hi
                    in
                    let slice = { Interval.lo; hi } in
                    if Interval.is_empty slice then None
                    else
                      let narrowed_q =
                        A.analyze query.A.schema (narrowed query col slice)
                      in
                      match
                        Matcher.match_view ~relaxed_nulls ~backjoins
                          ~query:narrowed_q v
                      with
                      | Error _ -> None
                      | Ok part ->
                          let parts = part :: parts in
                          let slices = slice :: slices in
                          if
                            Interval.cmp_upper hi q_target.Interval.hi >= 0
                          then Some (List.rev parts, List.rev slices)
                          else (
                            match next_lower hi with
                            | None -> Some (List.rev parts, List.rev slices)
                            | Some lo' -> cover lo' parts slices (n + 1)))
            in
            (match cover q_target.Interval.lo [] [] 1 with
            | Some (parts, slices) when List.length parts >= 2 ->
                Some
                  {
                    Union_substitute.parts;
                    sliced_on = col;
                    slices;
                  }
            | _ -> None)
    in
    List.find_map attempt by_class
