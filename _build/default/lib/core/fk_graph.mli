(** The foreign-key join graph of section 3.2 and the hub computation of
    section 4.2.2. An edge Ti -> Tj exists when the block equates (via its
    equivalence classes) a non-null foreign key of Ti with a unique key of
    Tj: such a join is cardinality preserving. *)

open Mv_base
module Sset = Mv_util.Sset

type edge = {
  src : string;
  dst : string;
  fk : Mv_catalog.Foreign_key.t;
  join_cols : (Col.t * Col.t) list;  (** (fk column, key column) pairs *)
}

type mode = [ `Strict | `Optimistic | `Query of Mv_relalg.Analysis.t ]
(** Handling of nullable FK columns: [`Strict] requires not-null;
    [`Query q] accepts them when [q] carries a null-rejecting predicate on
    the column (section 3.2's relaxation); [`Optimistic] assumes such a
    predicate will exist — used for hub computation under the relaxation,
    keeping the hub a lower bound on what matching can eliminate. *)

val null_rejecting_on : Mv_relalg.Analysis.t -> Col.t -> bool

val edges : ?mode:mode -> Mv_relalg.Analysis.t -> edge list

val eliminate :
  eliminable:Sset.t ->
  edge list ->
  string list * edge list * edge list
(** Repeatedly delete any eliminable node with no outgoing edges and
    exactly one incoming edge. Returns (eliminated tables in order, edges
    used, surviving edges). *)

val eliminate_extras : extras:Sset.t -> edge list -> edge list option
(** [Some used_edges] iff every extra table can be eliminated. *)

val hub : ?mode:mode -> Mv_relalg.Analysis.t -> Sset.t
(** Tables remaining after maximal elimination — except that tables
    carrying a range/residual predicate on a trivial-class column are
    pinned (the refinement of section 4.2.2). *)
