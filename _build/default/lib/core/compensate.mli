(** Routing of compensating predicates to view output columns
    (section 3.1.3): equality compensations route through the view's own
    classes, range and residual compensations through the query's. *)

val all :
  Routing.t -> Spj_match.ok -> (Mv_base.Pred.t list, Reject.t) result
(** All compensating predicates, expressed over the view's output columns
    (or backjoined base columns); [Error] when any referenced column cannot
    be resolved. *)
