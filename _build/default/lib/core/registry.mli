(** The view registry: all materialized views, indexed by a filter tree,
    with the counters the paper's evaluation reports. This is the entry
    point the optimizer's view-matching rule calls. *)

type stats = {
  mutable invocations : int;
  mutable candidates : int;  (** views surviving the filter tree *)
  mutable matched : int;  (** candidates that produced a substitute *)
  mutable substitutes : int;
  mutable rule_time : float;
      (** cumulative CPU seconds spent inside the view-matching rule *)
}

type t = {
  schema : Mv_catalog.Schema.t;
  relaxed_nulls : bool;
  backjoins : bool;
      (** enable the section 7 base-table backjoin extension; also switches
          the filter tree to {!Filter_tree.backjoin_plan} *)
  mutable use_filter : bool;
      (** [false] = the paper's "No Filter" configuration: candidates are
          all views, tested linearly *)
  mutable views : View.t list;
  tree : Filter_tree.t;
  stats : stats;
}

exception Duplicate_view of string

val create :
  ?relaxed_nulls:bool ->
  ?backjoins:bool ->
  ?use_filter:bool ->
  Mv_catalog.Schema.t ->
  t

val view_count : t -> int

val find_view : t -> string -> View.t option

val add_view :
  t ->
  ?row_count:int ->
  ?indexes:string list list ->
  name:string ->
  Mv_relalg.Spjg.t ->
  View.t
(** Define and index a materialized view.
    @raise Duplicate_view on name collision.
    @raise View.Rejected when the definition is not indexable. *)

val add_prebuilt : t -> View.t -> unit
(** Register an already-created descriptor (shared across registries by
    the experiment sweeps). *)

val remove_view : t -> string -> unit

val candidates : t -> Mv_relalg.Analysis.t -> View.t list

val find_substitutes : t -> Mv_relalg.Analysis.t -> Substitute.t list
(** The view-matching rule body: filter, test every candidate, build one
    substitute per matching view. Updates {!stats}. *)

val find_substitutes_spjg : t -> Mv_relalg.Spjg.t -> Substitute.t list

val find_union_substitutes : t -> Mv_relalg.Analysis.t -> Union_substitute.t option
(** The section 7 union-substitute extension: views that individually fail
    only the range test, composed over disjoint slices of one class. Views
    are pre-filtered by the source-table condition only (the filter tree's
    range level would prune exactly the views a union needs). *)

val reset_stats : t -> unit
