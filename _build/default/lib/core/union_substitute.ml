(** Union substitutes (section 7): when no single view contains all the
    rows a query needs, several views can contribute disjoint slices of a
    range and be combined with UNION ALL.

    The duplication-factor pitfall the paper warns about ("if the same rows
    can be obtained from multiple views, we have to make sure that they
    appear in the result with the right duplication factor") is avoided by
    construction: the slices partition the query's range on one column
    equivalence class, and every row has exactly one value there, so each
    query row comes from exactly one slice. *)

open Mv_base

type t = {
  parts : Substitute.t list;  (** ≥ 2, disjoint slices in range order *)
  sliced_on : Col.t;  (** the column whose range was partitioned *)
  slices : Mv_relalg.Interval.t list;  (** the slice each part serves *)
}

let views t = List.map (fun (s : Substitute.t) -> s.Substitute.view) t.parts

let to_sql t =
  String.concat "\nUNION ALL\n" (List.map Substitute.to_sql t.parts)

let pp ppf t =
  Fmt.pf ppf "@[<v>-- union substitute sliced on %a@,%s@]" Col.pp t.sliced_on
    (to_sql t)
