(** The SPJ-part tests of section 3.1-3.2: does the view contain every row
    the query needs, and which compensating predicates reduce it to exactly
    the query's rows?

    CHECK constraints are exploited exactly as the paper prescribes: they
    hold on every base-table row, so they can be added to the query side
    (the antecedent of the implication Wq => Wv) for the subsumption tests
    — but they never need compensation, because the view's rows satisfy
    them anyway.

    On success this produces raw compensation data; [Compensate] then
    routes the column references to view output columns (and can still
    reject). *)

open Mv_base
module Sset = Mv_util.Sset
module A = Mv_relalg.Analysis
module Equiv = Mv_relalg.Equiv
module Interval = Mv_relalg.Interval
module Range = Mv_relalg.Range
module Residual = Mv_relalg.Residual
module Classify = Mv_relalg.Classify

type ok = {
  q_equiv : Equiv.t;
      (** query equivalence classes, extended with the view's extra tables,
          the FK join conditions used to eliminate them, and check-derived
          column equalities *)
  comp_equalities : (Col.t * Col.t) list;
  comp_ranges : (Col.t * Interval.t) list;
      (** (class member, bounds still to enforce) *)
  comp_range_sets : (Col.t * Mv_relalg.Rset.t) list;
      (** disjunctive compensations: enforce membership of the whole set *)
  comp_residuals : Pred.t list;
}

(* Step 1+2: table-set containment and extra-table elimination. On success,
   the returned equivalence structure is the query's, conceptually extended
   to the view's table set (section 3.2). *)
let align_tables ~relaxed_nulls (query : A.t) (view : View.t) :
    (Equiv.t, Reject.t) result =
  if not (Sset.subset query.A.table_set view.View.source_tables) then
    Error Reject.Missing_tables
  else
    let extras = Sset.diff view.View.source_tables query.A.table_set in
    if Sset.is_empty extras then Ok (Equiv.copy query.A.equiv)
    else
      let mode = if relaxed_nulls then `Query query else `Strict in
      let edges = Fk_graph.edges ~mode view.View.analysis in
      match Fk_graph.eliminate_extras ~extras edges with
      | None -> Error Reject.Extra_tables_not_eliminable
      | Some used ->
          let q_equiv = Equiv.copy query.A.equiv in
          Equiv.add_tables query.A.schema q_equiv (Sset.to_list extras);
          List.iter
            (fun (e : Fk_graph.edge) ->
              List.iter
                (fun (f, c) -> Equiv.merge q_equiv f c)
                e.Fk_graph.join_cols)
            used;
          Ok q_equiv

(* The classified CHECK constraints of the view's tables (queries
   conceptually include the extra tables after alignment, so all of the
   view's tables contribute). *)
let check_components (query : A.t) (view : View.t) : Classify.classified =
  let checks =
    Mv_catalog.Schema.checks_for query.A.schema
      (View.spjg view).Mv_relalg.Spjg.tables
  in
  Classify.classify (List.concat_map Mv_relalg.Cnf.conjuncts checks)

(* Step 3, equijoin subsumption: every nontrivial view class must lie
   within one (extended) query class. The compensating column-equality
   predicates link, within each query class, the view classes it is split
   into (section 3.1.2). *)
let equijoin_test (q_equiv : Equiv.t) (view : View.t) :
    ((Col.t * Col.t) list, Reject.t) result =
  let v_equiv = view.View.analysis.A.equiv in
  let subsumed =
    List.for_all (Equiv.class_within q_equiv) (Equiv.nontrivial_classes v_equiv)
  in
  if not subsumed then Error Reject.Equijoin_subsumption_failed
  else
    let comp =
      List.concat_map
        (fun qcls ->
          if Col.Set.cardinal qcls < 2 then []
          else
            (* partition the query class by view class *)
            let parts =
              Col.Set.fold
                (fun c acc ->
                  let r = Equiv.repr v_equiv c in
                  let cur =
                    match Col.Map.find_opt r acc with
                    | Some cs -> cs
                    | None -> []
                  in
                  Col.Map.add r (c :: cur) acc)
                qcls Col.Map.empty
            in
            let reps =
              Col.Map.fold (fun _ cs acc -> List.hd (List.rev cs) :: acc) parts []
              |> List.sort Col.compare
            in
            let rec pair = function
              | a :: (b :: _ as rest) -> (a, b) :: pair rest
              | [ _ ] | [] -> []
            in
            pair reps)
        (Equiv.classes q_equiv)
    in
    Ok comp

(* Step 4, range subsumption: per (extended) query class, the intersection
   of the view's ranges over the class must contain the query's range —
   with check-constraint ranges strengthening the query side. The
   compensation enforces the bounds of the query's OWN range that are
   strictly stronger than the view's effective bound; check-derived bounds
   hold on the view's rows already and are never enforced. *)
let range_test (q_equiv : Equiv.t)
    ~(check_ranges : (Col.t * Pred.cmp * Value.t) list)
    ~(check_disj : (Col.t * Interval.t list) list) (query : A.t)
    (view : View.t) :
    ((Col.t * Interval.t) list * (Col.t * Mv_relalg.Rset.t) list, Reject.t)
    result =
  let module Rset = Mv_relalg.Rset in
  let own = query.A.classified.Classify.ranges in
  let own_disj = query.A.classified.Classify.disj_ranges in
  let q_own = Range.build q_equiv own own_disj in
  let q_full =
    Range.build q_equiv (own @ check_ranges) (own_disj @ check_disj)
  in
  let v_equiv = view.View.analysis.A.equiv in
  let v_ranges = view.View.analysis.A.ranges in
  let view_tables = (View.spjg view).Mv_relalg.Spjg.tables in
  let exception Fail of string in
  try
    let comps =
      List.filter_map
        (fun qcls ->
          let members = Col.Set.elements qcls in
          let rep = List.hd members in
          let q_test = Range.find q_equiv q_full rep in
          let q_comp = Range.find q_equiv q_own rep in
          (* intersection of the view range sets of all view classes
             inside this query class *)
          let v_set =
            List.fold_left
              (fun acc c ->
                if List.mem c.Col.tbl view_tables then
                  Rset.inter acc (Range.find v_equiv v_ranges c)
                else acc)
              Rset.full members
          in
          if not (Rset.contains ~outer:v_set ~inner:q_test) then
            raise
              (Fail
                 (Fmt.str "%s: view %s does not contain query %s"
                    (Col.to_string rep) (Rset.to_string v_set)
                    (Rset.to_string q_test)));
          match (v_set, q_comp) with
          | [ v_int ], [ q_int ] ->
              (* the single-interval fast path of section 3.1.2: enforce
                 only the bounds that differ *)
              let delta =
                {
                  Interval.lo =
                    (if Interval.cmp_lower v_int.Interval.lo q_int.Interval.lo < 0
                     then q_int.Interval.lo
                     else Interval.Unbounded);
                  Interval.hi =
                    (if Interval.cmp_upper q_int.Interval.hi v_int.Interval.hi < 0
                     then q_int.Interval.hi
                     else Interval.Unbounded);
                }
              in
              if Interval.is_full delta then None else Some (rep, `Delta delta)
          | _ ->
              (* disjunctions involved: enforce the query's own set unless
                 the view already restricts to exactly it *)
              if Rset.is_full q_comp || Rset.equal v_set q_comp then None
              else Some (rep, `Set q_comp))
        (Equiv.classes q_equiv)
    in
    Ok
      ( List.filter_map
          (function c, `Delta d -> Some (c, d) | _, `Set _ -> None)
          comps,
        List.filter_map
          (function c, `Set s -> Some (c, s) | _, `Delta _ -> None)
          comps )
  with Fail msg -> Error (Reject.Range_subsumption_failed msg)

(* Step 5, residual subsumption: every view residual must match a distinct
   query residual — or a check-constraint residual, which holds on the
   view's rows by definition. Unmatched residuals of the query itself
   become compensations. *)
let residual_test (q_equiv : Equiv.t) ~(check_residuals : Pred.t list)
    (query : A.t) (view : View.t) : (Pred.t list, Reject.t) result =
  let pool =
    List.map (fun r -> (`Own, r)) query.A.residuals
    @ List.map
        (fun p -> (`Check, Residual.of_pred p))
        check_residuals
  in
  let rec consume pool = function
    | [] -> Ok pool
    | (vr : Residual.t) :: rest -> (
        let rec take seen = function
          | [] -> None
          | ((_, qr) as entry) :: qrest ->
              if Residual.matches q_equiv vr qr then
                Some (List.rev_append seen qrest)
              else take (entry :: seen) qrest
        in
        match take [] pool with
        | None ->
            Error
              (Reject.Residual_subsumption_failed
                 (Fmt.str "view predicate %s has no match" vr.Residual.template))
        | Some pool' -> consume pool' rest)
  in
  match consume pool view.View.analysis.A.residuals with
  | Error _ as e -> e
  | Ok remaining ->
      Ok
        (List.filter_map
           (fun (src, r) ->
             match src with
             | `Own -> Some r.Residual.pred
             | `Check -> None)
           remaining)

let run ?(relaxed_nulls = false) (query : A.t) (view : View.t) :
    (ok, Reject.t) result =
  let ( let* ) = Result.bind in
  let* q_equiv = align_tables ~relaxed_nulls query view in
  let checks = check_components query view in
  List.iter
    (fun (a, b) -> Equiv.merge q_equiv a b)
    checks.Classify.col_eqs;
  let* comp_equalities = equijoin_test q_equiv view in
  let* comp_ranges, comp_range_sets =
    range_test q_equiv ~check_ranges:checks.Classify.ranges
      ~check_disj:checks.Classify.disj_ranges query view
  in
  let* comp_residuals =
    residual_test q_equiv ~check_residuals:checks.Classify.residuals query view
  in
  Ok { q_equiv; comp_equalities; comp_ranges; comp_range_sets; comp_residuals }
