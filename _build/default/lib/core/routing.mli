(** Column routing for substitute construction: to view output columns
    (sections 3.1.3/3.1.4), with an optional fallback to backjoined base
    tables (section 7). Routers collect the columns they fail to resolve so
    the matcher can plan a backjoining second pass. *)

open Mv_base

type t = {
  view : View.t;
  backjoins : string list;
  missing : Col.t list ref;
}

val plain : View.t -> t

val with_backjoins : View.t -> string list -> t

val missing_tables : t -> string list
(** Tables owning the columns no routing could resolve, sorted. *)

val route : t -> Mv_relalg.Equiv.t -> Col.t -> Col.t option
(** Resolve through [equiv] to a view output column, else to a backjoined
    base column equivalent to it; records the miss otherwise. *)

val route_expr : t -> Mv_relalg.Equiv.t -> Col.t -> Expr.t option

val backjoin_preds : View.t -> string -> Pred.t list option
(** Join predicates tying the view back to the table on a unique key the
    view outputs (through the view's own classes); [None] when no key is
    fully available. *)
