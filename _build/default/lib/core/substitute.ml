(** A substitute: an SPJG block over a materialized view — plus, when the
    backjoin extension is active, the base tables joined back to the view
    on unique keys to restore missing columns. *)

module Spjg = Mv_relalg.Spjg

type t = {
  view : View.t;
  block : Spjg.t;
      (** references [view.name] and any backjoined base tables *)
  backjoins : string list;
}

let make ?(backjoins = []) ?(backjoin_preds = []) view ~preds ~group_by ~out =
  {
    view;
    block =
      Spjg.make
        ~tables:(view.View.name :: backjoins)
        ~where:(backjoin_preds @ preds) ~group_by ~out;
    backjoins;
  }

let to_sql t = Spjg.to_sql t.block

let uses_regrouping t = Spjg.is_aggregate t.block

let uses_backjoin t = t.backjoins <> []

let pp ppf t =
  Fmt.pf ppf "@[<v>-- substitute over view %s%s@,%s@]" t.view.View.name
    (if t.backjoins = [] then ""
     else " (backjoining " ^ String.concat ", " t.backjoins ^ ")")
    (to_sql t)
