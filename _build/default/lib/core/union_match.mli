(** Finding union substitutes: views whose only defect is range
    subsumption on a single class, sliced along that class and greedily
    composed into a cover of the query's range. SPJ queries only. *)

val find :
  ?relaxed_nulls:bool ->
  ?backjoins:bool ->
  ?max_parts:int ->
  Mv_relalg.Analysis.t ->
  View.t list ->
  Union_substitute.t option
