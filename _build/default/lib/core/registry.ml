(** The view registry: all materialized views, indexed by a filter tree,
    with the counters the paper's evaluation reports (candidate fraction,
    pass rate, substitutes per invocation). This is the entry point the
    optimizer's view-matching rule calls. *)

module A = Mv_relalg.Analysis

type stats = {
  mutable invocations : int;
  mutable candidates : int;  (** views surviving the filter tree *)
  mutable matched : int;  (** candidates that produced a substitute *)
  mutable substitutes : int;
  mutable rule_time : float;
      (** cumulative CPU seconds spent inside the view-matching rule
          (filtering + per-view tests + substitute construction) *)
}

let empty_stats () =
  {
    invocations = 0;
    candidates = 0;
    matched = 0;
    substitutes = 0;
    rule_time = 0.0;
  }

type t = {
  schema : Mv_catalog.Schema.t;
  relaxed_nulls : bool;
  backjoins : bool;
  mutable use_filter : bool;
  mutable views : View.t list;  (** insertion order *)
  tree : Filter_tree.t;
  stats : stats;
}

exception Duplicate_view of string

let create ?(relaxed_nulls = false) ?(backjoins = false) ?(use_filter = true)
    schema =
  {
    schema;
    relaxed_nulls;
    backjoins;
    use_filter;
    views = [];
    tree =
      Filter_tree.create
        ~plan:
          (if backjoins then Filter_tree.backjoin_plan
           else Filter_tree.default_plan)
        ();
    stats = empty_stats ();
  }

let view_count t = List.length t.views

let find_view t name = List.find_opt (fun v -> v.View.name = name) t.views

(* Define (and index) a materialized view. *)
let add_view t ?(row_count = 0) ?(indexes = []) ~name spjg : View.t =
  if find_view t name <> None then raise (Duplicate_view name);
  let view =
    View.create ~relaxed_nulls:t.relaxed_nulls ~row_count ~indexes t.schema
      ~name spjg
  in
  t.views <- t.views @ [ view ];
  Filter_tree.insert t.tree view;
  view

(* Register an already-created view descriptor (lets experiment sweeps
   share one descriptor across many registries instead of re-analyzing). *)
let add_prebuilt t (view : View.t) =
  if find_view t view.View.name <> None then
    raise (Duplicate_view view.View.name);
  t.views <- t.views @ [ view ];
  Filter_tree.insert t.tree view

let remove_view t name =
  match find_view t name with
  | None -> ()
  | Some v ->
      t.views <- List.filter (fun x -> x.View.name <> name) t.views;
      Filter_tree.remove t.tree v

(* Candidate views for a query expression: via the filter tree, or a
   linear scan when the tree is disabled (the paper's "No Filter"
   configuration). *)
let candidates t (q : A.t) =
  if t.use_filter then Filter_tree.candidates t.tree q else t.views

(* The view-matching rule body: find all views that can compute [q] and
   build one substitute per view. *)
let find_substitutes t (q : A.t) : Substitute.t list =
  let t0 = Sys.time () in
  t.stats.invocations <- t.stats.invocations + 1;
  let cands = candidates t q in
  t.stats.candidates <- t.stats.candidates + List.length cands;
  let subs =
    List.filter_map
      (fun v ->
        match
          Matcher.match_view ~relaxed_nulls:t.relaxed_nulls
            ~backjoins:t.backjoins ~query:q v
        with
        | Ok s -> Some s
        | Error _ -> None)
      cands
  in
  t.stats.matched <- t.stats.matched + List.length subs;
  t.stats.substitutes <- t.stats.substitutes + List.length subs;
  t.stats.rule_time <- t.stats.rule_time +. (Sys.time () -. t0);
  subs

let find_substitutes_spjg t (spjg : Mv_relalg.Spjg.t) =
  find_substitutes t (A.analyze t.schema spjg)

(* Union substitutes (section 7) over the filtered... no: views that fail
   the range test are pruned by the filter tree's range level, so the
   union finder scans the full population restricted by the cheap table
   condition. *)
let find_union_substitutes t (q : A.t) : Union_substitute.t option =
  let coarse =
    List.filter
      (fun v ->
        Mv_util.Sset.subset q.A.table_set v.View.source_tables)
      t.views
  in
  Union_match.find ~relaxed_nulls:t.relaxed_nulls ~backjoins:t.backjoins q
    coarse

let reset_stats t =
  t.stats.invocations <- 0;
  t.stats.candidates <- 0;
  t.stats.matched <- 0;
  t.stats.substitutes <- 0;
  t.stats.rule_time <- 0.0
