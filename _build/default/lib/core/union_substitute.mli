(** A union substitute (section 7): disjoint range slices of one column
    equivalence class, each served by a different view, combined with
    UNION ALL. Disjointness makes the duplication factor exact by
    construction. *)

open Mv_base

type t = {
  parts : Substitute.t list;  (** >= 2, disjoint slices in range order *)
  sliced_on : Col.t;
  slices : Mv_relalg.Interval.t list;
}

val views : t -> View.t list

val to_sql : t -> string

val pp : Format.formatter -> t -> unit
