(** The lattice index of section 4.1: keys are sets organized in a DAG by
    the subset partial order, supporting pruned subset/superset search and
    any monotone predicate traversal. *)

module Sset = Mv_util.Sset

type 'a node = {
  id : int;
  key : Sset.t;
  mutable payload : 'a option;
  mutable supers : 'a node list;  (** minimal strict supersets *)
  mutable subs : 'a node list;  (** maximal strict subsets *)
}

type 'a t = {
  mutable tops : 'a node list;  (** nodes without supersets *)
  mutable roots : 'a node list;  (** nodes without subsets *)
  index : (string, 'a node) Hashtbl.t;
  mutable next_id : int;
}

val create : unit -> 'a t

val size : 'a t -> int

val nodes : 'a t -> 'a node list

val find_exact : 'a t -> Sset.t -> 'a node option

val search : 'a t -> dir:[ `Down | `Up ] -> pred:(Sset.t -> bool) -> 'a node list
(** Pruned traversal. [`Down] starts at the tops and follows subset
    pointers — correct when [pred] failing on a key implies it fails on
    every subset. [`Up] starts at the roots and follows superset pointers —
    correct when failure propagates to supersets. *)

val supersets_of : 'a t -> Sset.t -> 'a node list

val subsets_of : 'a t -> Sset.t -> 'a node list

val insert : 'a t -> Sset.t -> 'a node
(** Insert (or return the existing node), relinking minimal-superset /
    maximal-subset edges and removing those made transitive. *)

val delete : 'a t -> Sset.t -> unit
(** Remove a key, reconnecting its subsets to its supersets where no other
    path exists. *)
