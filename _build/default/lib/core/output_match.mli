(** Computing the query's output expressions from the view's output
    (section 3.1.4) and the aggregation rewrites of section 3.3. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

val scalar : Routing.t -> Mv_relalg.Equiv.t -> Expr.t -> Expr.t option
(** A query scalar expression rewritten over the view's output: constants
    copy, bare columns route through the query classes, complex expressions
    first look for an identical view output (template match) then fall back
    to computing from routable source columns. *)

val count_col : View.t -> string option
(** The view's count_big( * ) output column. *)

val sum_col : View.t -> Mv_relalg.Equiv.t -> Expr.t -> string option
(** The view's SUM output matching the expression under query classes. *)

val out_item :
  Routing.t ->
  Mv_relalg.Equiv.t ->
  situation:[ `Plain | `Agg_over_spj | `Agg_same | `Agg_regroup ] ->
  Spjg.out_item ->
  (Spjg.out_item, Reject.t) result
(** Rewrite one output item for the four aggregation situations: plain SPJ;
    aggregation over an SPJ view (aggregates keep their shape); same
    grouping (aggregates map to the view's sum/count columns); regrouping
    (count becomes a coalesced sum of counts, SUM a sum of sums, AVG a
    SUM/SUM). *)

val out_items :
  Routing.t ->
  Mv_relalg.Equiv.t ->
  situation:[ `Plain | `Agg_over_spj | `Agg_same | `Agg_regroup ] ->
  Spjg.out_item list ->
  (Spjg.out_item list, Reject.t) result
