(** Column routing for substitute construction.

    Plain matching routes every column reference to a view output column
    (sections 3.1.3/3.1.4). With the base-table backjoin extension
    (section 7), a reference the view cannot provide may instead resolve to
    a base-table column, provided that table is joined back to the view on
    one of its unique keys — the join is then 1:1 from view rows (or
    groups) to base rows, so neither cardinality nor group contents change.

    A router collects the columns it failed to resolve; the matcher uses
    that to decide which tables a second, backjoining pass should add. *)

open Mv_base
module Equiv = Mv_relalg.Equiv

type t = {
  view : View.t;
  backjoins : string list;  (** base tables available in the substitute *)
  missing : Col.t list ref;  (** columns no routing could resolve *)
}

let plain view = { view; backjoins = []; missing = ref [] }

let with_backjoins view backjoins = { view; backjoins; missing = ref [] }

let record_missing t c =
  if not (List.exists (Col.equal c) !(t.missing)) then
    t.missing := c :: !(t.missing)

let missing_tables t =
  List.sort_uniq String.compare
    (List.map (fun (c : Col.t) -> c.Col.tbl) !(t.missing))

(* Route [c] through [equiv] to a view output column; fall back to a
   backjoined base table column equivalent to [c]. *)
let route t (equiv : Equiv.t) (c : Col.t) : Col.t option =
  match View.output_for_col t.view equiv c with
  | Some name -> Some (Col.make t.view.View.name name)
  | None -> (
      let fallback =
        Col.Set.fold
          (fun c' acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if List.mem c'.Col.tbl t.backjoins then Some c' else None)
          (Equiv.class_of equiv c)
          None
      in
      match fallback with
      | Some c' -> Some c'
      | None ->
          record_missing t c;
          None)

let route_expr t equiv (c : Col.t) : Expr.t option =
  Option.map (fun c' -> Expr.Col c') (route t equiv c)

(* Can [tbl] be backjoined? Some unique key of [tbl] must be fully
   available as view output columns, routed through the VIEW's own
   equivalence classes — every view row (or group) then carries the key of
   the exact base row it came from. Returns the join predicates. *)
let backjoin_preds (view : View.t) tbl : Pred.t list option =
  let schema = view.View.analysis.Mv_relalg.Analysis.schema in
  let v_equiv = view.View.analysis.Mv_relalg.Analysis.equiv in
  match Mv_catalog.Schema.find_table schema tbl with
  | None -> None
  | Some td ->
      let keys =
        (if td.Mv_catalog.Table_def.primary_key = [] then []
         else [ td.Mv_catalog.Table_def.primary_key ])
        @ td.Mv_catalog.Table_def.unique_keys
      in
      List.find_map
        (fun key ->
          if key = [] then None
          else
            let routed =
              List.filter_map
                (fun k ->
                  let kc = Col.make tbl k in
                  match View.output_for_col view v_equiv kc with
                  | Some name ->
                      Some
                        (Pred.Cmp
                           ( Pred.Eq,
                             Expr.Col (Col.make view.View.name name),
                             Expr.Col kc ))
                  | None -> None)
                key
            in
            if List.length routed = List.length key then Some routed else None)
        keys
