(** The SPJ-part tests of sections 3.1-3.2: table alignment (including
    extra-table elimination), the three subsumption tests, and the raw
    compensation data they produce. CHECK constraints strengthen the query
    side of every implication, as section 3.1.2 prescribes. *)

open Mv_base

type ok = {
  q_equiv : Mv_relalg.Equiv.t;
      (** query classes extended with the view's extra tables, the FK join
          conditions used to eliminate them, and check-derived equalities *)
  comp_equalities : (Col.t * Col.t) list;
  comp_ranges : (Col.t * Mv_relalg.Interval.t) list;
      (** (class member, bounds still to enforce) *)
  comp_range_sets : (Col.t * Mv_relalg.Rset.t) list;
      (** disjunctive compensations: enforce membership of the whole set *)
  comp_residuals : Pred.t list;
}

val align_tables :
  relaxed_nulls:bool ->
  Mv_relalg.Analysis.t ->
  View.t ->
  (Mv_relalg.Equiv.t, Reject.t) result
(** Steps 1-2: table-set containment and extra-table elimination; on
    success the query's equivalence classes extended to the view's table
    set. *)

val check_components :
  Mv_relalg.Analysis.t -> View.t -> Mv_relalg.Classify.classified
(** The classified CHECK constraints of the view's tables. *)

val equijoin_test :
  Mv_relalg.Equiv.t -> View.t -> ((Col.t * Col.t) list, Reject.t) result

val range_test :
  Mv_relalg.Equiv.t ->
  check_ranges:(Col.t * Pred.cmp * Mv_base.Value.t) list ->
  check_disj:(Col.t * Mv_relalg.Interval.t list) list ->
  Mv_relalg.Analysis.t ->
  View.t ->
  ( (Col.t * Mv_relalg.Interval.t) list
    * (Col.t * Mv_relalg.Rset.t) list,
    Reject.t )
  result

val residual_test :
  Mv_relalg.Equiv.t ->
  check_residuals:Pred.t list ->
  Mv_relalg.Analysis.t ->
  View.t ->
  (Pred.t list, Reject.t) result

val run :
  ?relaxed_nulls:bool ->
  Mv_relalg.Analysis.t ->
  View.t ->
  (ok, Reject.t) result
