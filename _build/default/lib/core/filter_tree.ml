(** The filter tree of section 4: a stack of lattice indexes, one per
    partitioning condition, that narrows the view population to a small
    candidate set before the expensive per-view tests run.

    Level order follows the paper's implementation: hubs, source tables,
    output expressions, output columns, residual constraints, range
    constraints; aggregation views then get two more levels (grouping
    expressions, grouping columns) while SPJ views terminate in their own
    bucket — an SPJ view can answer an aggregation query, but an
    aggregation view can never answer an SPJ query. *)

open Mv_base
module Sset = Mv_util.Sset
module A = Mv_relalg.Analysis

type level =
  | Hubs
  | Source_tables
  | Output_exprs
  | Output_cols
  | Residuals
  | Range_cols
  | Grouping_exprs
  | Grouping_cols

let level_name = function
  | Hubs -> "hubs"
  | Source_tables -> "source-tables"
  | Output_exprs -> "output-expressions"
  | Output_cols -> "output-columns"
  | Residuals -> "residual-predicates"
  | Range_cols -> "range-constrained-columns"
  | Grouping_exprs -> "grouping-expressions"
  | Grouping_cols -> "grouping-columns"

type plan = P_level of level * plan | P_split of plan * plan | P_bucket

(* Levels of a plan in navigation order (split branches concatenated). *)
let rec plan_levels = function
  | P_bucket -> []
  | P_level (l, rest) -> l :: plan_levels rest
  | P_split (a, b) -> plan_levels a @ plan_levels b

let default_plan =
  let agg = List.fold_right (fun l p -> P_level (l, p))
      [ Grouping_exprs; Grouping_cols ] P_bucket
  in
  List.fold_right (fun l p -> P_level (l, p))
    [ Hubs; Source_tables; Output_exprs; Output_cols; Residuals; Range_cols ]
    (P_split (P_bucket, agg))

(* With base-table backjoins enabled, a view missing output columns can
   still serve a query, so the two output conditions are no longer
   necessary conditions and their levels must be dropped (weaker filtering,
   still sound). *)
let backjoin_plan =
  let agg = List.fold_right (fun l p -> P_level (l, p))
      [ Grouping_exprs; Grouping_cols ] P_bucket
  in
  List.fold_right (fun l p -> P_level (l, p))
    [ Hubs; Source_tables; Residuals; Range_cols ]
    (P_split (P_bucket, agg))

type node =
  | Bucket of { mutable views : View.t list }
  | Agg_split of { spj : node; agg : node }
  | Level of {
      level : level;
      rest : plan;
      lattice : node Lattice.t;
      mutable nviews : int;
          (** views in this subtree — lets a search report how many
              candidates each level received and passed on without ever
              enumerating them *)
    }

let rec new_node = function
  | P_bucket -> Bucket { views = [] }
  | P_split (ps, pa) -> Agg_split { spj = new_node ps; agg = new_node pa }
  | P_level (level, rest) ->
      Level { level; rest; lattice = Lattice.create (); nviews = 0 }

(* Views under a node: O(1) at levels, O(bucket size) at the leaves. *)
let rec views_under = function
  | Bucket b -> List.length b.views
  | Agg_split s -> views_under s.spj + views_under s.agg
  | Level l -> l.nviews

type t = { root : node }

let create ?(plan = default_plan) () = { root = new_node plan }

(* ---- keys ---- *)

let view_key level (v : View.t) : Sset.t =
  match level with
  | Hubs -> v.View.hub
  | Source_tables -> v.View.source_tables
  | Output_exprs -> v.View.output_expr_templates
  | Output_cols -> View.cols_to_strings v.View.extended_output_cols
  | Residuals -> v.View.residual_templates
  | Range_cols -> v.View.reduced_range_cols
  | Grouping_exprs -> v.View.grouping_expr_templates
  | Grouping_cols -> View.cols_to_strings v.View.extended_grouping_cols

(* Query-side search keys, computed once per view-matching invocation. *)
type query_info = {
  source_tables : Sset.t;
  output_expr_templates : Sset.t;
  output_classes : Sset.t list;
      (** query equivalence class (as strings) of each bare-column output *)
  residual_templates : Sset.t;
  extended_range_cols : Sset.t;
      (** all columns of every range-constrained query class *)
  grouping_expr_templates : Sset.t;
  grouping_classes : Sset.t list;
  is_aggregate : bool;
}

let strings_of_colset s =
  Col.Set.fold (fun c acc -> Sset.add (Col.to_string c) acc) s Sset.empty

let query_info (q : A.t) : query_info =
  let classes_of_cols cols =
    List.map
      (fun c -> strings_of_colset (Mv_relalg.Equiv.class_of q.A.equiv c))
      cols
  in
  let output_cols =
    List.filter_map
      (fun (o : Mv_relalg.Spjg.out_item) ->
        match o.Mv_relalg.Spjg.def with
        | Mv_relalg.Spjg.Scalar (Expr.Col c) -> Some c
        | _ -> None)
      q.A.spjg.Mv_relalg.Spjg.out
  in
  let grouping_cols =
    match q.A.spjg.Mv_relalg.Spjg.group_by with
    | None -> []
    | Some gs ->
        List.filter_map (function Expr.Col c -> Some c | _ -> None) gs
  in
  let extended_range_cols =
    List.fold_left
      (fun acc cls -> Sset.union acc (strings_of_colset cls))
      Sset.empty
      (A.range_constrained_classes q)
  in
  {
    source_tables = q.A.table_set;
    output_expr_templates = A.output_expr_templates q;
    output_classes = classes_of_cols output_cols;
    residual_templates = A.residual_templates q;
    extended_range_cols;
    grouping_expr_templates = A.grouping_expr_templates q;
    grouping_classes = classes_of_cols grouping_cols;
    is_aggregate = Mv_relalg.Spjg.is_aggregate q.A.spjg;
  }

(* The search condition at each level, as (traversal direction, monotone
   predicate on node keys). *)
let level_search level (qi : query_info) =
  let covers_classes classes k =
    List.for_all (fun cls -> not (Sset.is_empty (Sset.inter k cls))) classes
  in
  match level with
  | Hubs -> (`Up, fun k -> Sset.subset k qi.source_tables)
  | Source_tables -> (`Down, fun k -> Sset.subset qi.source_tables k)
  | Output_exprs -> (`Down, fun k -> Sset.subset qi.output_expr_templates k)
  | Output_cols -> (`Down, covers_classes qi.output_classes)
  | Residuals -> (`Up, fun k -> Sset.subset k qi.residual_templates)
  | Range_cols -> (`Up, fun k -> Sset.subset k qi.extended_range_cols)
  | Grouping_exprs ->
      (`Down, fun k -> Sset.subset qi.grouping_expr_templates k)
  | Grouping_cols -> (`Down, covers_classes qi.grouping_classes)

(* The strong range-constraint condition (section 4.2.5) cannot be indexed
   directly (it involves the view's full, class-aware constraint list), so
   the tree navigates by the weak condition and this check runs once per
   surviving candidate. *)
let strong_range_ok (qi : query_info) (v : View.t) =
  List.for_all
    (fun cls ->
      Col.Set.exists
        (fun c -> Sset.mem (Col.to_string c) qi.extended_range_cols)
        cls)
    v.View.range_classes

(* ---- insertion ---- *)

let rec insert_node node (v : View.t) =
  match node with
  | Bucket b -> b.views <- v :: b.views
  | Agg_split s ->
      insert_node (if View.is_aggregate v then s.agg else s.spj) v
  | Level l ->
      l.nviews <- l.nviews + 1;
      let key = view_key l.level v in
      let ln = Lattice.insert l.lattice key in
      let child =
        match ln.Lattice.payload with
        | Some c -> c
        | None ->
            let c = new_node l.rest in
            ln.Lattice.payload <- Some c;
            c
      in
      insert_node child v

let insert t v = insert_node t.root v

let rec remove_node node (v : View.t) =
  match node with
  | Bucket b ->
      b.views <- List.filter (fun x -> x.View.name <> v.View.name) b.views
  | Agg_split s -> remove_node (if View.is_aggregate v then s.agg else s.spj) v
  | Level l -> (
      match Lattice.find_exact l.lattice (view_key l.level v) with
      | None -> ()
      | Some ln -> (
          match ln.Lattice.payload with
          | None -> ()
          | Some child ->
              let before = views_under child in
              remove_node child v;
              l.nviews <- l.nviews - (before - views_under child)))

let remove t v = remove_node t.root v

(* ---- search ---- *)

(* [record] is called once per visited level node with the number of views
   the node received and the number its surviving children still hold —
   summed per level by the caller, this is the paper's level-by-level
   pruning breakdown (Figures 6-7). *)
let rec search_node ?record node (qi : query_info) acc =
  match node with
  | Bucket b -> List.rev_append b.views acc
  | Agg_split s ->
      let acc = search_node ?record s.spj qi acc in
      if qi.is_aggregate then search_node ?record s.agg qi acc else acc
  | Level l ->
      let dir, pred = level_search l.level qi in
      let hits = Lattice.search l.lattice ~dir ~pred in
      (match record with
      | None -> ()
      | Some f ->
          let out =
            List.fold_left
              (fun n (ln : node Lattice.node) ->
                match ln.Lattice.payload with
                | Some child -> n + views_under child
                | None -> n)
              0 hits
          in
          f l.level ~in_:l.nviews ~out);
      List.fold_left
        (fun acc (ln : node Lattice.node) ->
          match ln.Lattice.payload with
          | Some child -> search_node ?record child qi acc
          | None -> acc)
        acc hits

let level_counter obs level suffix =
  Mv_obs.Registry.counter obs
    ("filter_tree.level." ^ level_name level ^ "." ^ suffix)

(* Candidate views for the analyzed query expression. With [obs], bump
   [filter_tree.searches], per-level [filter_tree.level.<name>.in/out]
   and the post-navigation [filter_tree.strong_range.in/out] counters. *)
let candidates ?obs t (q : A.t) : View.t list =
  let qi = query_info q in
  let record =
    match obs with
    | None -> None
    | Some obs ->
        Mv_obs.Instrument.incr
          (Mv_obs.Registry.counter obs "filter_tree.searches");
        Some
          (fun level ~in_ ~out ->
            Mv_obs.Instrument.add (level_counter obs level "in") in_;
            Mv_obs.Instrument.add (level_counter obs level "out") out)
  in
  let navigated = search_node ?record t.root qi [] in
  let survivors = List.filter (strong_range_ok qi) navigated in
  (match obs with
  | None -> ()
  | Some obs ->
      Mv_obs.Instrument.add
        (Mv_obs.Registry.counter obs "filter_tree.strong_range.in")
        (List.length navigated);
      Mv_obs.Instrument.add
        (Mv_obs.Registry.counter obs "filter_tree.strong_range.out")
        (List.length survivors));
  survivors

(* Number of lattice nodes across all levels, for diagnostics. *)
let rec node_count = function
  | Bucket _ -> 0
  | Agg_split s -> node_count s.spj + node_count s.agg
  | Level l ->
      List.fold_left
        (fun acc (ln : node Lattice.node) ->
          acc
          + match ln.Lattice.payload with Some c -> node_count c | None -> 0)
        (Lattice.size l.lattice)
        (Lattice.nodes l.lattice)

let stats t = node_count t.root
