(** Computing the query's output expressions from the view's output
    (section 3.1.4) and the aggregation rewrites of section 3.3. *)

open Mv_base
module A = Mv_relalg.Analysis
module Spjg = Mv_relalg.Spjg
module Residual = Mv_relalg.Residual

let view_col (view : View.t) name = Expr.Col (Col.make view.View.name name)

(* A scalar expression of the query, rewritten over the view's output:
   - constants are copied;
   - a bare column is routed (via query classes) to an output column;
   - a complex expression first looks for an identical view output
     expression (template + positional column equivalence), then falls back
     to computing it from routable source columns. *)
let scalar (router : Routing.t) (q_equiv : Mv_relalg.Equiv.t) (e : Expr.t) :
    Expr.t option =
  let view = router.Routing.view in
  let route c = Routing.route router q_equiv c in
  match e with
  | Expr.Const _ -> Some e
  | Expr.Col c -> Option.map (fun c' -> Expr.Col c') (route c)
  | _ -> (
      let exact =
        List.find_opt
          (fun (e', _) -> Residual.exprs_match q_equiv e e')
          (A.scalar_outputs view.View.analysis)
      in
      match exact with
      | Some (_, name) -> Some (view_col view name)
      | None -> Expr.map_cols_opt route e)

(* The view's count_big( * ) output column; aggregation views always have
   one (Spjg.check_indexable). *)
let count_col (view : View.t) : string option =
  List.find_map
    (fun (a, name) ->
      match a with Spjg.Count_star -> Some name | _ -> None)
    (A.agg_outputs view.View.analysis)

(* The view's SUM output matching expression [e] under the query classes. *)
let sum_col (view : View.t) (q_equiv : Mv_relalg.Equiv.t) (e : Expr.t) :
    string option =
  List.find_map
    (fun (a, name) ->
      match a with
      | Spjg.Sum e' when Residual.exprs_match q_equiv e e' -> Some name
      | _ -> None)
    (A.agg_outputs view.View.analysis)

(* Rewrite one query output item over the view for the three aggregation
   situations:
   [`Plain]            SPJ query over SPJ view (or the SPJ part mapping);
   [`Agg_over_spj]     aggregation query over an SPJ view: the substitute
                       carries the query's group-by, aggregates keep their
                       shape with rewritten arguments;
   [`Agg_same]         aggregation query over an aggregation view with the
                       same grouping: no further aggregation, aggregates map
                       to the view's sum/count columns;
   [`Agg_regroup]      aggregation query over a less aggregated view:
                       count -> SUM(cnt), SUM(E) -> SUM(sum_E),
                       AVG(E) -> SUM(sum_E)/SUM(cnt). *)
let out_item (router : Routing.t) (q_equiv : Mv_relalg.Equiv.t) ~situation
    (o : Spjg.out_item) : (Spjg.out_item, Reject.t) result =
  let view = router.Routing.view in
  let fail fmt =
    Fmt.kstr (fun s -> Error (Reject.Output_not_computable s)) fmt
  in
  let need_scalar e k =
    match scalar router q_equiv e with
    | Some e' -> k e'
    | None -> fail "expression %s" (Expr.to_string e)
  in
  let need_count k =
    match count_col view with
    | Some c -> k c
    | None -> fail "view has no count column"
  in
  let need_sum e k =
    match sum_col view q_equiv e with
    | Some c -> k c
    | None -> fail "no view column for sum(%s)" (Expr.to_string e)
  in
  let name = o.Spjg.name in
  match (o.Spjg.def, situation) with
  | Spjg.Scalar e, _ -> need_scalar e (fun e' -> Ok (Spjg.scalar name e'))
  | Spjg.Aggregate Spjg.Count_star, `Agg_over_spj ->
      Ok (Spjg.aggregate name Spjg.Count_star)
  | Spjg.Aggregate Spjg.Count_star, `Agg_same ->
      need_count (fun c -> Ok (Spjg.scalar name (view_col view c)))
  | Spjg.Aggregate Spjg.Count_star, `Agg_regroup ->
      (* COALESCE(SUM(cnt), 0): a scalar-aggregate count over an empty
         selection must be 0, which a plain SUM would turn into NULL *)
      need_count (fun c -> Ok (Spjg.aggregate name (Spjg.Sum0 (view_col view c))))
  | Spjg.Aggregate (Spjg.Sum e), `Agg_over_spj ->
      need_scalar e (fun e' -> Ok (Spjg.aggregate name (Spjg.Sum e')))
  | Spjg.Aggregate (Spjg.Sum e), `Agg_same ->
      need_sum e (fun c -> Ok (Spjg.scalar name (view_col view c)))
  | Spjg.Aggregate (Spjg.Sum e), `Agg_regroup ->
      need_sum e (fun c -> Ok (Spjg.aggregate name (Spjg.Sum (view_col view c))))
  | Spjg.Aggregate (Spjg.Avg e), `Agg_over_spj ->
      need_scalar e (fun e' -> Ok (Spjg.aggregate name (Spjg.Avg e')))
  | Spjg.Aggregate (Spjg.Avg e), `Agg_same ->
      need_sum e (fun s ->
          need_count (fun c ->
              Ok
                (Spjg.scalar name
                   (Expr.Binop (Expr.Div, view_col view s, view_col view c)))))
  | Spjg.Aggregate (Spjg.Avg e), `Agg_regroup ->
      need_sum e (fun s ->
          need_count (fun c ->
              Ok
                (Spjg.aggregate name
                   (Spjg.Sum_div_sum (view_col view s, view_col view c)))))
  | Spjg.Aggregate (Spjg.Sum_div_sum _ | Spjg.Sum0 _), _ ->
      fail "SUM/SUM and coalesced SUM are internal to substitutes"
  | Spjg.Aggregate _, `Plain ->
      (* Spjg.make forbids aggregates without GROUP BY *)
      assert false

let out_items router q_equiv ~situation (items : Spjg.out_item list) :
    (Spjg.out_item list, Reject.t) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | o :: rest -> (
        match out_item router q_equiv ~situation o with
        | Ok o' -> go (o' :: acc) rest
        | Error _ as e -> e)
  in
  go [] items
