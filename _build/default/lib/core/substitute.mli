(** A substitute: an SPJG block over a single materialized view, equivalent
    to the query expression it replaces — possibly joined back to base
    tables on unique keys when the backjoin extension restored missing
    columns (section 7). *)

type t = {
  view : View.t;
  block : Mv_relalg.Spjg.t;
      (** references [view.name] and any backjoined base tables *)
  backjoins : string list;
}

val make :
  ?backjoins:string list ->
  ?backjoin_preds:Mv_base.Pred.t list ->
  View.t ->
  preds:Mv_base.Pred.t list ->
  group_by:Mv_base.Expr.t list option ->
  out:Mv_relalg.Spjg.out_item list ->
  t

val to_sql : t -> string

val uses_regrouping : t -> bool
(** Does the substitute aggregate the view further? *)

val uses_backjoin : t -> bool

val pp : Format.formatter -> t -> unit
