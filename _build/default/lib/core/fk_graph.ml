(** The foreign-key join graph of section 3.2 and the hub computation of
    section 4.2.2.

    Nodes are the tables of an SPJG block. There is an edge Ti -> Tj when
    the block's predicates (directly or transitively, via equivalence
    classes) equate a foreign key of Ti with a unique key of Tj and all five
    requirements hold: equijoin, all key columns, non-null, foreign key,
    unique key. Such a join is cardinality preserving: every Ti row joins
    exactly one Tj row.

    The non-null requirement can be relaxed (last paragraph of 3.2): a
    nullable FK column is acceptable when the *query* contains a
    null-rejecting predicate on that column. [`Query q] edge mode performs
    that exact check; [`Optimistic] assumes a null-rejecting predicate will
    be present (used for hub computation when the relaxation is enabled, so
    the hub stays a lower bound on what matching can eliminate);
    [`Strict] requires the declared not-null constraint. *)

open Mv_base
module Sset = Mv_util.Sset

type edge = {
  src : string;
  dst : string;
  fk : Mv_catalog.Foreign_key.t;
  join_cols : (Col.t * Col.t) list;  (** (fk column, key column) pairs *)
}

type mode = [ `Strict | `Optimistic | `Query of Mv_relalg.Analysis.t ]

(* Does the analyzed block [q] contain a null-rejecting predicate on column
   [c] other than an equijoin? Range predicates, LIKE and comparisons reject
   NULL; IS NULL does not. Column-equality predicates with another column
   also reject NULL but the paper excludes the equijoin itself, so we only
   look at ranges and residual atoms. *)
let null_rejecting_on (q : Mv_relalg.Analysis.t) (c : Col.t) =
  let in_ranges =
    List.exists
      (fun (rc, _, _) -> Col.equal rc c)
      q.Mv_relalg.Analysis.classified.Mv_relalg.Classify.ranges
    || List.exists
         (fun (rc, _) -> Col.equal rc c)
         q.Mv_relalg.Analysis.classified.Mv_relalg.Classify.disj_ranges
  in
  let atom_rejects (p : Pred.t) =
    match p with
    | Pred.Cmp (_, l, r) ->
        List.exists (Col.equal c) (Expr.columns l @ Expr.columns r)
    | Pred.Like (e, _) -> List.exists (Col.equal c) (Expr.columns e)
    | Pred.Not (Pred.Like (e, _)) -> List.exists (Col.equal c) (Expr.columns e)
    | Pred.Not _ | Pred.Is_null _ | Pred.And _ | Pred.Or _ | Pred.Bool _ ->
        false
  in
  let in_residuals =
    List.exists
      (fun (r : Mv_relalg.Residual.t) -> atom_rejects r.Mv_relalg.Residual.pred)
      q.Mv_relalg.Analysis.residuals
  in
  in_ranges || in_residuals

(* All cardinality-preserving edges of the block [a]. *)
let edges ?(mode = `Strict) (a : Mv_relalg.Analysis.t) : edge list =
  let schema = a.Mv_relalg.Analysis.schema in
  let tables = a.Mv_relalg.Analysis.spjg.Mv_relalg.Spjg.tables in
  let equiv = a.Mv_relalg.Analysis.equiv in
  let edge_for src fk =
    let dst = fk.Mv_catalog.Foreign_key.to_tbl in
    if src = dst || not (List.mem dst tables) then None
    else
      let pairs =
        List.map2
          (fun f c -> (Col.make src f, Col.make dst c))
          fk.Mv_catalog.Foreign_key.from_cols fk.Mv_catalog.Foreign_key.to_cols
      in
      (* all FK/key column pairs equated by the block's predicates,
         transitively via equivalence classes *)
      let equated =
        List.for_all (fun (f, c) -> Mv_relalg.Equiv.same equiv f c) pairs
      in
      let non_null_ok (f, _) =
        if not (Mv_catalog.Schema.column_nullable schema f) then true
        else
          match mode with
          | `Strict -> false
          | `Optimistic -> true
          | `Query q -> null_rejecting_on q f
      in
      if equated && List.for_all non_null_ok pairs then
        Some { src; dst; fk; join_cols = pairs }
      else None
  in
  List.concat_map
    (fun src ->
      List.filter_map (edge_for src) (Mv_catalog.Schema.fks_from schema src))
    tables

(* Repeatedly delete any node in [eliminable] that has no outgoing edges
   and exactly one incoming edge (deleting the node deletes its incoming
   edge). Returns the eliminated tables (in deletion order) and the edges
   used, plus the surviving edges. *)
let eliminate ~(eliminable : Sset.t) (all_edges : edge list) =
  let rec go eliminated used remaining =
    let deletable t =
      Sset.mem t eliminable
      && (not (List.exists (fun e -> e.src = t) remaining))
      && List.length (List.filter (fun e -> e.dst = t) remaining) = 1
    in
    let nodes =
      List.sort_uniq String.compare
        (List.concat_map (fun e -> [ e.src; e.dst ]) remaining)
    in
    match List.find_opt deletable nodes with
    | None -> (List.rev eliminated, List.rev used, remaining)
    | Some t ->
        let incoming, rest = List.partition (fun e -> e.dst = t) remaining in
        go (t :: eliminated) (incoming @ used) rest
  in
  go [] [] all_edges

(* Can all tables in [extras] be removed through cardinality-preserving
   joins? Returns the used edges on success (section 3.2). *)
let eliminate_extras ~(extras : Sset.t) (all_edges : edge list) :
    edge list option =
  let eliminated, used, _ = eliminate ~eliminable:extras all_edges in
  if Sset.equal (Sset.of_list eliminated) extras then Some used else None

(* The hub (section 4.2.2): run elimination until no more tables can be
   removed, but keep any table carrying a range or residual predicate on a
   column in a trivial equivalence class — such a table must appear in any
   query the view can answer, so leaving it in the hub only sharpens the
   filter. *)
let hub ?(mode = `Strict) (a : Mv_relalg.Analysis.t) : Sset.t =
  let tables = Sset.of_list a.Mv_relalg.Analysis.spjg.Mv_relalg.Spjg.tables in
  let equiv = a.Mv_relalg.Analysis.equiv in
  let trivial c = Col.Set.cardinal (Mv_relalg.Equiv.class_of equiv c) = 1 in
  let predicate_cols =
    List.map
      (fun (c, _, _) -> c)
      a.Mv_relalg.Analysis.classified.Mv_relalg.Classify.ranges
    @ List.concat_map
        (fun (r : Mv_relalg.Residual.t) -> r.Mv_relalg.Residual.cols)
        a.Mv_relalg.Analysis.residuals
  in
  let pinned =
    List.fold_left
      (fun acc c ->
        if trivial c then Sset.add c.Col.tbl acc else acc)
      Sset.empty predicate_cols
  in
  let eliminable = Sset.diff tables pinned in
  let eliminated, _, _ = eliminate ~eliminable (edges ~mode a) in
  Sset.diff tables (Sset.of_list eliminated)
