lib/core/registry.ml: Filter_tree List Matcher Mv_catalog Mv_obs Mv_relalg Mv_util Substitute Union_match Union_substitute View
