lib/core/registry.ml: Filter_tree List Matcher Mv_catalog Mv_relalg Mv_util Substitute Sys Union_match Union_substitute View
