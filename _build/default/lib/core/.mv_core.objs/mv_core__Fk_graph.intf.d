lib/core/fk_graph.mli: Col Mv_base Mv_catalog Mv_relalg Mv_util
