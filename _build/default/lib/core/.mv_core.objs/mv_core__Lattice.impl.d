lib/core/lattice.ml: Hashtbl List Mv_util String
