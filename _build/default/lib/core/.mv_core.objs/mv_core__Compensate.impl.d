lib/core/compensate.ml: Col Fmt List Mv_base Mv_relalg Pred Reject Result Routing Spj_match View
