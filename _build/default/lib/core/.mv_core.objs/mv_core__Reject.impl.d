lib/core/reject.ml: Fmt
