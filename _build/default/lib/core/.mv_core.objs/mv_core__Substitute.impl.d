lib/core/substitute.ml: Fmt Mv_relalg String View
