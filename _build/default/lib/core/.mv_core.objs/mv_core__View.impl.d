lib/core/view.ml: Col Expr Fk_graph Fmt List Mv_base Mv_catalog Mv_relalg Mv_util
