lib/core/output_match.mli: Expr Mv_base Mv_relalg Reject Routing View
