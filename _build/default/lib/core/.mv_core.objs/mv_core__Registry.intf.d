lib/core/registry.mli: Filter_tree Mv_catalog Mv_obs Mv_relalg Substitute Union_substitute View
