lib/core/filter_tree.ml: Col Expr Lattice List Mv_base Mv_obs Mv_relalg Mv_util View
