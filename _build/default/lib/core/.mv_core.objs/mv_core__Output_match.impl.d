lib/core/output_match.ml: Col Expr Fmt List Mv_base Mv_relalg Option Reject Routing View
