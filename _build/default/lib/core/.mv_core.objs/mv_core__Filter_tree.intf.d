lib/core/filter_tree.mli: Mv_obs Mv_relalg Mv_util View
