lib/core/filter_tree.mli: Mv_relalg Mv_util View
