lib/core/union_match.mli: Mv_relalg Union_substitute View
