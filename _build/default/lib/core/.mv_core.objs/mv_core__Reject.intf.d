lib/core/reject.mli: Format
