lib/core/routing.mli: Col Expr Mv_base Mv_relalg Pred View
