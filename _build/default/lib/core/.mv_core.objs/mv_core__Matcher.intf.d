lib/core/matcher.mli: Mv_catalog Mv_relalg Reject Substitute View
