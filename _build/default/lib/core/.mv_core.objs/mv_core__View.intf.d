lib/core/view.mli: Col Format Mv_base Mv_catalog Mv_relalg Mv_util
