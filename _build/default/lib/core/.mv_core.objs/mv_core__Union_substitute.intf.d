lib/core/union_substitute.mli: Col Format Mv_base Mv_relalg Substitute View
