lib/core/matcher.ml: Compensate Fmt List Mv_base Mv_relalg Option Output_match Reject Result Routing Spj_match Substitute View
