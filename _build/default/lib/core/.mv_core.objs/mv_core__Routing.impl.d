lib/core/routing.ml: Col Expr List Mv_base Mv_catalog Mv_relalg Option Pred String View
