lib/core/union_match.ml: Col Expr List Matcher Mv_base Mv_catalog Mv_relalg Option Spj_match Union_substitute View
