lib/core/fk_graph.ml: Col Expr List Mv_base Mv_catalog Mv_relalg Mv_util Pred String
