lib/core/substitute.mli: Format Mv_base Mv_relalg View
