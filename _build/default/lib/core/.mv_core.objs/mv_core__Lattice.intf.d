lib/core/lattice.mli: Hashtbl Mv_util
