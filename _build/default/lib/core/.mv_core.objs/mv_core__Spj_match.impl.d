lib/core/spj_match.ml: Col Fk_graph Fmt List Mv_base Mv_catalog Mv_relalg Mv_util Pred Reject Result Value View
