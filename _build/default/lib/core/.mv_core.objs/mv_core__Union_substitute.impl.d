lib/core/union_substitute.ml: Col Fmt List Mv_base Mv_relalg String Substitute
