lib/core/compensate.mli: Mv_base Reject Routing Spj_match
