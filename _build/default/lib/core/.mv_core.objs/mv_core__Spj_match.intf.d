lib/core/spj_match.mli: Col Mv_base Mv_relalg Pred Reject View
