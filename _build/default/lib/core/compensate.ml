(** Routing of compensating predicates (section 3.1.3).

    Compensating column-equality predicates are routed through the VIEW's
    equivalence classes (they exist precisely to enforce equalities the view
    does not provide, so the query classes cannot be trusted yet); range and
    residual compensations are routed through the QUERY's (extended)
    classes. Routing normally targets view output columns; with backjoins
    enabled it may fall back to a backjoined base table (see [Routing]). If
    any referenced column cannot be resolved, the view is rejected. *)

open Mv_base
module Interval = Mv_relalg.Interval

(* Compensating equalities: route both sides via view classes. *)
let equalities (router : Routing.t) (pairs : (Col.t * Col.t) list) :
    (Pred.t list, Reject.t) result =
  let v_equiv = router.Routing.view.View.analysis.Mv_relalg.Analysis.equiv in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (a, b) :: rest -> (
        match
          (Routing.route_expr router v_equiv a, Routing.route_expr router v_equiv b)
        with
        | Some ea, Some eb -> go (Pred.Cmp (Pred.Eq, ea, eb) :: acc) rest
        | _ ->
            Error
              (Reject.Compensation_not_computable
                 (Fmt.str "equality %s = %s" (Col.to_string a) (Col.to_string b))))
  in
  go [] pairs

(* Compensating ranges: any column of the query class will do. *)
let ranges (router : Routing.t) (q_equiv : Mv_relalg.Equiv.t)
    (comps : (Col.t * Interval.t) list) : (Pred.t list, Reject.t) result =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | (c, delta) :: rest -> (
        match Routing.route_expr router q_equiv c with
        | Some e -> go (Interval.to_preds e delta :: acc) rest
        | None ->
            Error
              (Reject.Compensation_not_computable
                 (Fmt.str "range on %s" (Col.to_string c))))
  in
  go [] comps

(* Compensating residuals: rewrite every column reference through the query
   classes. *)
let residuals (router : Routing.t) (q_equiv : Mv_relalg.Equiv.t)
    (preds : Pred.t list) : (Pred.t list, Reject.t) result =
  let route c = Routing.route router q_equiv c in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match Pred.map_cols_opt route p with
        | Some p' -> go (p' :: acc) rest
        | None ->
            Error
              (Reject.Compensation_not_computable
                 (Fmt.str "residual %s" (Pred.to_string p))))
  in
  go [] preds

(* Disjunctive range compensations: one OR predicate per class. *)
let range_sets (router : Routing.t) (q_equiv : Mv_relalg.Equiv.t)
    (comps : (Col.t * Mv_relalg.Rset.t) list) : (Pred.t list, Reject.t) result
    =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (c, set) :: rest -> (
        match Routing.route_expr router q_equiv c with
        | Some e -> (
            match Mv_relalg.Rset.to_pred e set with
            | Some p -> go (p :: acc) rest
            | None -> go acc rest)
        | None ->
            Error
              (Reject.Compensation_not_computable
                 (Fmt.str "range set on %s" (Col.to_string c))))
  in
  go [] comps

let all (router : Routing.t) (tests : Spj_match.ok) :
    (Pred.t list, Reject.t) result =
  let ( let* ) = Result.bind in
  let* eqs = equalities router tests.Spj_match.comp_equalities in
  let* rgs = ranges router tests.Spj_match.q_equiv tests.Spj_match.comp_ranges in
  let* sets =
    range_sets router tests.Spj_match.q_equiv tests.Spj_match.comp_range_sets
  in
  let* res =
    residuals router tests.Spj_match.q_equiv tests.Spj_match.comp_residuals
  in
  Ok (eqs @ rgs @ sets @ res)
