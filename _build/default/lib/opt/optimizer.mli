(** Memo-based transformation optimizer: bottom-up exploration of
    connected table subsets, the view-matching rule invoked on every
    enumerated SPJG subexpression, substitutes competing on cost, plus the
    preaggregation alternative of section 3.3 (Example 4).

    [produce_substitutes] = the paper's "Alt" switch (the rule still runs
    when off, for the NoAlt measurement mode); the registry's [use_filter]
    is the "Filter" switch. *)

type config = { produce_substitutes : bool }

val default_config : config

type result = {
  plan : Plan.t;
  cost : float;
  rows : float;
  used_views : bool;
}

val optimize :
  ?config:config ->
  Mv_core.Registry.t ->
  Mv_catalog.Stats.t ->
  Mv_relalg.Spjg.t ->
  result
