(** Cardinality and cost estimation: a textbook uniformity/independence
    model, shared by the optimizer and the workload generator's
    cardinality targeting. *)

open Mv_base
module Spjg = Mv_relalg.Spjg
module Stats = Mv_catalog.Stats

val conjunct_selectivity : Stats.t -> Pred.t -> float

val spj_rows : Stats.t -> tables:string list -> where:Pred.t list -> float

val group_rows : Stats.t -> input:float -> Expr.t list -> float

val block_rows : Stats.t -> Spjg.t -> float

val estimate_view_rows : Stats.t -> Spjg.t -> int
