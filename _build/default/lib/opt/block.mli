(** Construction of the SPJG subexpression blocks the view-matching rule
    is invoked on: per-table-subset blocks and the preaggregated inner
    blocks of section 3.3 (Example 4). *)

open Mv_base
module Spjg = Mv_relalg.Spjg

val local_preds : Spjg.t -> string list -> Pred.t list
(** Conjuncts referencing only the subset's tables. *)

val needed_cols : Spjg.t -> string list -> Col.t list
(** Subset columns the rest of the query still needs. *)

val out_of_cols : Col.t list -> Spjg.out_item list

val sub_block : Spjg.t -> string list -> Spjg.t
(** The SPJ block of a table subset (the query itself on the full set). *)

val spj_part : Spjg.t -> Spjg.t
(** The query with its aggregation stripped, outputting every column the
    grouping and aggregates need. *)

type preagg = {
  block : Spjg.t;
  agg_binds : (string * Spjg.agg) list;
      (** inner output name -> the query aggregate it serves *)
}

val preagg_block : Spjg.t -> string list -> preagg option
(** Group the subset by local grouping expressions + crossing columns,
    producing count and partial sums; [None] when an aggregate argument
    crosses the boundary or the query is not aggregated. *)
