(** Execution of optimizer plans against an in-memory database — the test
    bridge proving every emitted plan computes the query's relation. *)

val prepare : Mv_engine.Database.t -> Plan.t -> unit
(** Materialize every view the plan reads (idempotent). *)

val execute :
  Mv_engine.Database.t -> Mv_relalg.Spjg.t -> Plan.t -> Mv_engine.Relation.t
(** Run the plan (materializing views first) and produce the final
    relation with the query's output names. *)
