(** Execution of optimizer plans against an in-memory database, for
    validating that every plan the optimizer emits (with or without views)
    computes the same relation as direct execution of the query. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

type bindings = Value.t Col.Map.t

let env_of (b : bindings) (c : Col.t) =
  match Col.Map.find_opt c b with
  | Some v -> v
  | None -> raise (Eval.Eval_error ("unbound column " ^ Col.to_string c))

(* Views used by the plan must be materialized in [db] beforehand. *)
let rec run db (plan : Plan.t) : bindings list =
  match plan with
  | Plan.Leaf { source; binds; _ } ->
      let rel =
        match source with
        | Plan.Computed b -> Mv_engine.Exec.execute db b
        | Plan.Via s -> Mv_engine.Exec.execute_substitute db s
      in
      let keys =
        List.map
          (fun name ->
            match List.assoc_opt name binds with
            | Some c -> c
            | None -> Col.make "#agg" name)
          rel.Mv_engine.Relation.cols
      in
      List.map
        (fun row ->
          List.fold_left2
            (fun acc c v -> Col.Map.add c v acc)
            Col.Map.empty keys (Array.to_list row))
        rel.Mv_engine.Relation.rows
  | Plan.Join { left; right; keys; post; _ } ->
      let ls = run db left and rs = run db right in
      let joined =
        if keys = [] then
          List.concat_map
            (fun l ->
              List.map (fun r -> Col.Map.union (fun _ x _ -> Some x) l r) rs)
            ls
        else begin
          let repr vs = String.concat "\x01" (List.map Value.to_string vs) in
          let build = Hashtbl.create 256 in
          List.iter
            (fun r ->
              let kv = List.map (fun (_, rc) -> env_of r rc) keys in
              if not (List.exists Value.is_null kv) then
                Hashtbl.add build (repr kv) r)
            rs;
          List.concat_map
            (fun l ->
              let kv = List.map (fun (lc, _) -> env_of l lc) keys in
              if List.exists Value.is_null kv then []
              else
                List.map
                  (fun r -> Col.Map.union (fun _ x _ -> Some x) l r)
                  (Hashtbl.find_all build (repr kv)))
            ls
        end
      in
      List.filter
        (fun b -> List.for_all (Eval.pred_holds (env_of b)) post)
        joined
  | Plan.Aggregate { input; group_by; out; _ } ->
      let rows = run db input in
      let repr vs = String.concat "\x01" (List.map Value.to_string vs) in
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun b ->
          let k = repr (List.map (fun g -> Eval.expr (env_of b) g) group_by) in
          match Hashtbl.find_opt groups k with
          | Some gr -> Hashtbl.replace groups k (b :: gr)
          | None ->
              order := k :: !order;
              Hashtbl.add groups k [ b ])
        rows;
      let keys =
        if rows = [] && group_by = [] then [ `Empty ]
        else List.rev_map (fun k -> `Group k) !order
      in
      List.map
        (fun key ->
          let grp =
            match key with `Empty -> [] | `Group k -> Hashtbl.find groups k
          in
          let witness = match grp with b :: _ -> Some b | [] -> None in
          List.fold_left
            (fun acc (o : Spjg.out_item) ->
              let v =
                match (o.Spjg.def, witness) with
                | Spjg.Scalar e, Some b -> Eval.expr (env_of b) e
                | Spjg.Scalar _, None -> Value.Null
                | Spjg.Aggregate a, _ -> Mv_engine.Exec.eval_agg grp a
              in
              Col.Map.add (Col.make "#out" o.Spjg.name) v acc)
            Col.Map.empty out)
        keys

(* Materialize every view the plan reads. *)
let prepare db (plan : Plan.t) =
  let rec views = function
    | Plan.Leaf { source = Plan.Via s; _ } -> [ s.Mv_core.Substitute.view ]
    | Plan.Leaf _ -> []
    | Plan.Join { left; right; _ } -> views left @ views right
    | Plan.Aggregate { input; _ } -> views input
  in
  List.iter
    (fun v ->
      if Mv_engine.Database.table db v.Mv_core.View.name = None then
        ignore (Mv_engine.Exec.materialize db v))
    (views plan)

(* Produce the final relation with the query's output names. *)
let execute db (query : Spjg.t) (plan : Plan.t) : Mv_engine.Relation.t =
  prepare db plan;
  let cols = Spjg.out_names query in
  let rows = run db plan in
  let final b (o : Spjg.out_item) : Value.t =
    (* aggregation plans bind final outputs to #out; leaf-only plans bind
       computed outputs to #agg; otherwise evaluate over base columns *)
    match Col.Map.find_opt (Col.make "#out" o.Spjg.name) b with
    | Some v -> v
    | None -> (
        match Col.Map.find_opt (Col.make "#agg" o.Spjg.name) b with
        | Some v -> v
        | None -> (
            match o.Spjg.def with
            | Spjg.Scalar e -> Eval.expr (env_of b) e
            | Spjg.Aggregate _ ->
                raise (Eval.Eval_error "unbound aggregate output")))
  in
  {
    Mv_engine.Relation.cols;
    rows = List.map (fun b -> Array.of_list (List.map (final b) query.Spjg.out)) rows;
  }
