(** Construction of the SPJG subexpression blocks on which the
    view-matching rule is invoked: the block of a table subset, and the
    preaggregated inner blocks of section 3.3's Example 4. *)

open Mv_base
module Spjg = Mv_relalg.Spjg

(* Conjuncts of [query] that only reference tables in [subset]. *)
let local_preds (query : Spjg.t) (subset : string list) =
  List.filter
    (fun p ->
      List.for_all (fun (c : Col.t) -> List.mem c.Col.tbl subset)
        (Pred.columns p))
    query.Spjg.where

(* Columns of [subset] tables the rest of the query still needs: referenced
   by crossing conjuncts, by the output list, or by the grouping list. *)
let needed_cols (query : Spjg.t) (subset : string list) : Col.t list =
  let local = local_preds query subset in
  let crossing =
    List.filter (fun p -> not (List.memq p local)) query.Spjg.where
  in
  let all =
    List.concat_map Pred.columns crossing
    @ Col.Set.elements (Spjg.referenced_columns query)
  in
  List.sort_uniq Col.compare
    (List.filter (fun (c : Col.t) -> List.mem c.Col.tbl subset) all)

let out_of_cols cols : Spjg.out_item list =
  (* TPC-H column names are globally unique; fall back to tbl_col when a
     name collides across tables *)
  let dup name cols =
    List.length (List.filter (fun (c : Col.t) -> c.Col.col = name) cols) > 1
  in
  List.map
    (fun (c : Col.t) ->
      let name = if dup c.Col.col cols then c.Col.tbl ^ "_" ^ c.Col.col else c.Col.col in
      Spjg.scalar name (Expr.Col c))
    cols

(* SPJ block for a subset of the query's tables. *)
let sub_block (query : Spjg.t) (subset : string list) : Spjg.t =
  if List.sort String.compare subset = query.Spjg.tables && query.Spjg.group_by = None
  then query
  else
    Spjg.make ~tables:subset ~where:(local_preds query subset) ~group_by:None
      ~out:(out_of_cols (needed_cols query subset))

(* The SPJ part of the whole query (aggregation stripped): outputs every
   column the grouping and aggregation still need. *)
let spj_part (query : Spjg.t) : Spjg.t =
  match query.Spjg.group_by with
  | None -> query
  | Some _ ->
      let cols = Col.Set.elements (Spjg.referenced_columns query) in
      Spjg.make ~tables:query.Spjg.tables ~where:query.Spjg.where
        ~group_by:None ~out:(out_of_cols cols)

(* A preaggregated inner block over [subset] (Example 4): group the subset
   by (query grouping expressions local to the subset) + (crossing join
   columns), output those plus count_big and the query's SUM/AVG inputs.
   Returns the block plus the binding spec of its aggregate outputs. *)
type preagg = {
  block : Spjg.t;
  agg_binds : (string * Spjg.agg) list;
      (** inner output name -> the query aggregate it serves *)
}

let preagg_block (query : Spjg.t) (subset : string list) : preagg option =
  match query.Spjg.group_by with
  | None -> None
  | Some gq ->
      let in_subset (c : Col.t) = List.mem c.Col.tbl subset in
      let agg_args =
        List.filter_map
          (fun (o : Spjg.out_item) ->
            match o.Spjg.def with
            | Spjg.Aggregate (Spjg.Sum e | Spjg.Avg e) -> Some e
            | Spjg.Aggregate (Spjg.Sum_div_sum _) -> Some (Expr.Const Value.Null)
            | _ -> None)
          query.Spjg.out
      in
      (* every aggregate argument must be computable inside the subset *)
      if
        not
          (List.for_all
             (fun e -> List.for_all in_subset (Expr.columns e))
             agg_args)
      then None
      else
        let local_group =
          List.filter (fun g -> List.for_all in_subset (Expr.columns g)) gq
        in
        (* subset columns the outside still needs: crossing conjuncts and
           scalar (non-aggregate) outputs — NOT aggregate arguments (the
           inner sums consume them) and NOT purely local predicates *)
        let local = local_preds query subset in
        let crossing_conjunct_cols =
          List.concat_map Pred.columns
            (List.filter (fun p -> not (List.memq p local)) query.Spjg.where)
        in
        let scalar_out_cols =
          List.concat_map
            (fun (o : Spjg.out_item) ->
              match o.Spjg.def with
              | Spjg.Scalar e -> Expr.columns e
              | Spjg.Aggregate _ -> [])
            query.Spjg.out
        in
        let crossing_cols =
          List.sort_uniq Col.compare
            (List.filter in_subset (crossing_conjunct_cols @ scalar_out_cols))
        in
        let grouping =
          (* grouping expressions, then any crossing column not already
             grouped (as bare columns) *)
          local_group
          @ List.filter_map
              (fun c ->
                let e = Expr.Col c in
                if List.exists (Expr.equal e) local_group then None
                else Some e)
              crossing_cols
        in
        let group_outs =
          List.mapi
            (fun i g ->
              match g with
              | Expr.Col c -> Spjg.scalar c.Col.col (Expr.Col c)
              | e -> Spjg.scalar (Printf.sprintf "g_%d" i) e)
            grouping
        in
        let sum_outs, agg_binds =
          List.fold_left
            (fun (outs, binds) (o : Spjg.out_item) ->
              match o.Spjg.def with
              | Spjg.Aggregate ((Spjg.Sum e | Spjg.Avg e) as a) ->
                  let name = "s_" ^ o.Spjg.name in
                  if List.mem_assoc name binds then (outs, binds)
                  else
                    ( outs @ [ Spjg.aggregate name (Spjg.Sum e) ],
                      binds @ [ (name, a) ] )
              | _ -> (outs, binds))
            ([], []) query.Spjg.out
        in
        let out = group_outs @ [ Spjg.aggregate "cnt" Spjg.Count_star ] @ sum_outs in
        match
          Spjg.make ~tables:subset
            ~where:(local_preds query subset)
            ~group_by:(Some grouping) ~out
        with
        | block -> Some { block; agg_binds }
        | exception Spjg.Invalid _ -> None
