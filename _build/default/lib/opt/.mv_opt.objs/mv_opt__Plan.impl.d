lib/opt/plan.ml: Col Expr Fmt List Mv_base Mv_core Mv_relalg Pred String
