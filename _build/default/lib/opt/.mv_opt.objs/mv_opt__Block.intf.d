lib/opt/block.mli: Col Mv_base Mv_relalg Pred
