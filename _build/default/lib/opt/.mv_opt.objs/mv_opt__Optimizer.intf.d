lib/opt/optimizer.mli: Mv_catalog Mv_core Mv_relalg Plan
