lib/opt/optimizer.ml: Array Block Col Cost Expr Float Hashtbl List Mv_base Mv_catalog Mv_core Mv_obs Mv_relalg Option Plan Pred
