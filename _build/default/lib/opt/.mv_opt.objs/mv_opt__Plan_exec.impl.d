lib/opt/plan_exec.ml: Array Col Eval Hashtbl List Mv_base Mv_core Mv_engine Mv_relalg Plan String Value
