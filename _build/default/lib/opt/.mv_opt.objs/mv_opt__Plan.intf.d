lib/opt/plan.mli: Col Expr Format Mv_base Mv_core Mv_relalg Pred
