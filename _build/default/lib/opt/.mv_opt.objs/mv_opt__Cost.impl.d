lib/opt/cost.ml: Expr Float List Mv_base Mv_catalog Mv_relalg Pred
