lib/opt/plan_exec.mli: Mv_engine Mv_relalg Plan
