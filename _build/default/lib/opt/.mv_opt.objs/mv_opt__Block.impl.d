lib/opt/block.ml: Col Expr List Mv_base Mv_relalg Pred Printf String Value
