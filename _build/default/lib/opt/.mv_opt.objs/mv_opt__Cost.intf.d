lib/opt/cost.mli: Expr Mv_base Mv_catalog Mv_relalg Pred
