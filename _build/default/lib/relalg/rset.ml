(** Range sets: unions of disjoint intervals, normalized (sorted, merged).

    These generalize the single interval per equivalence class of
    section 3.1.2 to disjunctions of range predicates — the extension the
    paper describes but its prototype omits ("This range coverage algorithm
    can be extended to support disjunctions (OR) of range predicates"). *)

open Mv_base

type t = Interval.t list
(** invariant: non-empty intervals, sorted by lower bound, pairwise
    non-adjacent (no two can be merged) *)

let full : t = [ Interval.full ]

let empty : t = []

let is_full = function [ i ] -> Interval.is_full i | _ -> false

let is_empty (t : t) = t = []

(* Do two intervals overlap or touch (so that their union is one
   interval)? Adjacent closed/open bounds like (..5] and (5..) merge. *)
let joinable (a : Interval.t) (b : Interval.t) =
  (* order so a's lower bound is first *)
  let a, b =
    if Interval.cmp_lower a.Interval.lo b.Interval.lo <= 0 then (a, b)
    else (b, a)
  in
  match (a.Interval.hi, b.Interval.lo) with
  | Interval.Unbounded, _ | _, Interval.Unbounded -> true
  | (Interval.Incl x | Interval.Excl x), (Interval.Incl y | Interval.Excl y)
    -> (
      let c = Value.order x y in
      if c > 0 then true
      else if c < 0 then false
      else
        (* touching at a point: at least one side must include it *)
        match (a.Interval.hi, b.Interval.lo) with
        | Interval.Excl _, Interval.Excl _ -> false
        | _ -> true)

let join (a : Interval.t) (b : Interval.t) : Interval.t =
  {
    Interval.lo =
      (if Interval.cmp_lower a.Interval.lo b.Interval.lo <= 0 then a.Interval.lo
       else b.Interval.lo);
    Interval.hi =
      (if Interval.cmp_upper a.Interval.hi b.Interval.hi >= 0 then a.Interval.hi
       else b.Interval.hi);
  }

(* Normalize an arbitrary interval list. *)
let normalize (is : Interval.t list) : t =
  let live = List.filter (fun i -> not (Interval.is_empty i)) is in
  let sorted =
    List.sort (fun a b -> Interval.cmp_lower a.Interval.lo b.Interval.lo) live
  in
  let rec merge = function
    | a :: b :: rest ->
        if joinable a b then merge (join a b :: rest) else a :: merge (b :: rest)
    | l -> l
  in
  merge sorted

let of_interval i = normalize [ i ]

let of_intervals = normalize

let union (a : t) (b : t) : t = normalize (a @ b)

let inter (a : t) (b : t) : t =
  normalize
    (List.concat_map (fun x -> List.map (Interval.intersect x) b) a)

let mem v (t : t) = List.exists (Interval.mem v) t

(* a contains b: every interval of b lies within some interval of a (valid
   because both are normalized, so a b-interval cannot straddle a gap of a
   without escaping every a-interval). *)
let contains ~outer ~inner =
  List.for_all
    (fun i -> List.exists (fun o -> Interval.contains ~outer:o ~inner:i) outer
    )
    inner

let equal (a : t) (b : t) =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         Interval.bound_equal x.Interval.lo y.Interval.lo
         && Interval.bound_equal x.Interval.hi y.Interval.hi)
       a b

(* Predicate enforcing membership of [e] in the set: the OR of the
   intervals' bound predicates. *)
let to_pred (e : Expr.t) (t : t) : Pred.t option =
  match t with
  | [] -> Some (Pred.Bool false)
  | [ i ] when Interval.is_full i -> None
  | is ->
      let of_interval i =
        match Interval.to_preds e i with
        | [] -> Pred.Bool true
        | ps -> Pred.conj ps
      in
      Some (Pred.disj (List.map of_interval is))

(* Convex hull, for conservative consumers (e.g. union-substitute
   slicing). *)
let hull (t : t) : Interval.t =
  match t with
  | [] -> { Interval.lo = Interval.Excl (Value.Int 0); hi = Interval.Excl (Value.Int 0) }
  | first :: _ ->
      let last = List.nth t (List.length t - 1) in
      { Interval.lo = first.Interval.lo; hi = last.Interval.hi }

let to_string (t : t) =
  match t with
  | [] -> "{}"
  | is -> String.concat " u " (List.map Interval.to_string is)

let pp ppf t = Fmt.string ppf (to_string t)
