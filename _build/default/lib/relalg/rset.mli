(** Range sets: normalized unions of disjoint intervals — the paper's
    disjunctive-range extension of section 3.1.2. *)

open Mv_base

type t = Interval.t list
(** invariant: non-empty, sorted, pairwise non-mergeable *)

val full : t

val empty : t

val is_full : t -> bool

val is_empty : t -> bool

val normalize : Interval.t list -> t

val of_interval : Interval.t -> t

val of_intervals : Interval.t list -> t

val union : t -> t -> t

val inter : t -> t -> t

val mem : Value.t -> t -> bool

val contains : outer:t -> inner:t -> bool

val equal : t -> t -> bool

val to_pred : Expr.t -> t -> Pred.t option
(** A predicate enforcing membership (OR over the intervals); [None] for
    the full set, [Bool false] for the empty one. *)

val hull : t -> Interval.t
(** Convex hull; an empty interval for the empty set. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
