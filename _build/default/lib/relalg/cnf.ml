(** Conversion of predicates to conjunctive normal form.

    The matching algorithm assumes selection predicates are conjunct lists
    (section 3). We first push negations to the atoms (flipping comparison
    operators), then distribute OR over AND. Predicates in this subset are
    small, so the potential exponential blowup of distribution is a
    non-issue; a safety valve caps the conjunct count anyway. *)

open Mv_base

exception Too_large

let max_conjuncts = 4096

(* Negation-normal form: negations pushed to atoms. NOT over a comparison
   becomes the complementary comparison (sound in 3VL for WHERE-clause
   filtering only when the original query already had the negation, which is
   the only way we produce one). NOT LIKE / NOT IS NULL stay as negated
   atoms. *)
let rec nnf = function
  | Pred.Not p -> nnf_neg p
  | Pred.And (l, r) -> Pred.And (nnf l, nnf r)
  | Pred.Or (l, r) -> Pred.Or (nnf l, nnf r)
  | (Pred.Cmp _ | Pred.Like _ | Pred.Is_null _ | Pred.Bool _) as p -> p

and nnf_neg = function
  | Pred.Not p -> nnf p
  | Pred.And (l, r) -> Pred.Or (nnf_neg l, nnf_neg r)
  | Pred.Or (l, r) -> Pred.And (nnf_neg l, nnf_neg r)
  | Pred.Cmp (op, l, r) -> Pred.Cmp (Pred.negate_cmp op, l, r)
  | Pred.Bool b -> Pred.Bool (not b)
  | (Pred.Like _ | Pred.Is_null _) as p -> Pred.Not p

(* Cartesian distribution of OR over AND on conjunct lists of disjunct
   lists. *)
let rec to_clauses p : Pred.t list list =
  match p with
  | Pred.And (l, r) ->
      let cs = to_clauses l @ to_clauses r in
      if List.length cs > max_conjuncts then raise Too_large else cs
  | Pred.Or (l, r) ->
      let ls = to_clauses l and rs = to_clauses r in
      if List.length ls * List.length rs > max_conjuncts then raise Too_large;
      List.concat_map (fun c1 -> List.map (fun c2 -> c1 @ c2) rs) ls
  | Pred.Bool true -> []
  | Pred.Bool false -> [ [] ]
  | (Pred.Cmp _ | Pred.Like _ | Pred.Is_null _ | Pred.Not _) as atom ->
      [ [ atom ] ]

let clause_to_pred = function
  | [] -> Pred.Bool false
  | [ a ] -> a
  | atoms -> Pred.disj atoms

(* CNF as a list of conjuncts. Single-atom clauses come out as bare atoms;
   multi-atom clauses as OR chains. Duplicate conjuncts are removed
   (structural equality), matching the paper's assumption that predicates
   contain no redundant repeated conjuncts. *)
let conjuncts p =
  let clauses = to_clauses (nnf p) in
  let preds = List.map clause_to_pred clauses in
  List.fold_left
    (fun acc c -> if List.exists (Pred.equal c) acc then acc else acc @ [ c ])
    [] preds

let of_conjuncts = Pred.conj
