(** Column equivalence classes (section 3.1.1): every column of every
    referenced table starts in its own class; each column-equality
    predicate merges two classes. *)

open Mv_base

type t

val build :
  Mv_catalog.Schema.t ->
  tables:string list ->
  col_eqs:(Col.t * Col.t) list ->
  t

val copy : t -> t
(** An independent copy: merges on the copy do not affect the original. *)

val add_tables : Mv_catalog.Schema.t -> t -> string list -> unit
(** Register every column of the tables as trivial classes (used when the
    matcher conceptually adds a view's extra tables to the query). *)

val merge : t -> Col.t -> Col.t -> unit

val same : t -> Col.t -> Col.t -> bool

val repr : t -> Col.t -> Col.t
(** Canonical representative of the class containing the column. *)

val class_of : t -> Col.t -> Col.Set.t

val classes : t -> Col.Set.t list
(** The full partition, including trivial singleton classes. *)

val nontrivial_classes : t -> Col.Set.t list

val class_within : t -> Col.Set.t -> bool
(** Is every member of the given set in one class of [t]? (The equijoin
    subsumption test applies this to each view class.) *)

val pp : Format.formatter -> t -> unit
