(** Classification of CNF conjuncts into the paper's groups
    (section 3.1.2): column equalities (PE), ranges (PR) — including
    disjunctions of ranges on a single column, the paper's extension — and
    residuals (PU). *)

open Mv_base

type classified = {
  col_eqs : (Col.t * Col.t) list;
  ranges : (Col.t * Pred.cmp * Value.t) list;
      (** normalized to column-op-constant; flipped comparisons are
          reoriented *)
  disj_ranges : (Col.t * Interval.t list) list;
      (** one entry per OR-of-ranges conjunct *)
  residuals : Pred.t list;
}

val classify_one :
  Pred.t ->
  [ `Col_eq of Col.t * Col.t
  | `Range of Col.t * Pred.cmp * Value.t
  | `Disj_range of Col.t * Interval.t list
  | `Residual of Pred.t ]

val classify : Pred.t list -> classified
