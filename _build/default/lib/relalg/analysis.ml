(** Derived information about an SPJG block: the classified predicate
    components, column equivalence classes, per-class ranges and residual
    templates. This is computed once per query subexpression and once per
    view (the paper's in-memory "view description"). *)

open Mv_base
module Sset = Mv_util.Sset

type t = {
  spjg : Spjg.t;
  schema : Mv_catalog.Schema.t;
  table_set : Sset.t;
  classified : Classify.classified;
  equiv : Equiv.t;
  ranges : Range.map;
  residuals : Residual.t list;
}

let analyze (schema : Mv_catalog.Schema.t) (spjg : Spjg.t) : t =
  let classified = Classify.classify spjg.Spjg.where in
  let equiv =
    Equiv.build schema ~tables:spjg.Spjg.tables
      ~col_eqs:classified.Classify.col_eqs
  in
  let ranges =
    Range.build equiv classified.Classify.ranges
      classified.Classify.disj_ranges
  in
  let residuals = List.map Residual.of_pred classified.Classify.residuals in
  {
    spjg;
    schema;
    table_set = Sset.of_list spjg.Spjg.tables;
    classified;
    equiv;
    ranges;
    residuals;
  }

(* Outputs that are bare column references: column -> output name. *)
let col_outputs (t : t) : (Col.t * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Scalar (Expr.Col c) -> Some (c, o.Spjg.name)
      | _ -> None)
    t.spjg.Spjg.out

(* All scalar outputs: expression -> output name (includes bare columns). *)
let scalar_outputs (t : t) : (Expr.t * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Scalar e -> Some (e, o.Spjg.name)
      | Spjg.Aggregate _ -> None)
    t.spjg.Spjg.out

let agg_outputs (t : t) : (Spjg.agg * string) list =
  List.filter_map
    (fun (o : Spjg.out_item) ->
      match o.Spjg.def with
      | Spjg.Aggregate a -> Some (a, o.Spjg.name)
      | Spjg.Scalar _ -> None)
    t.spjg.Spjg.out

(* Find a view output column for column [c], looking through the given
   equivalence structure: any column equivalent to [c] that the block
   outputs as a bare column qualifies (section 3.1.3). *)
let output_for_col (t : t) (equiv : Equiv.t) (c : Col.t) : string option =
  let outs = col_outputs t in
  let rec go = function
    | [] -> None
    | (c', name) :: rest -> if Equiv.same equiv c c' then Some name else go rest
  in
  (* prefer an exact match for stable, readable substitutes *)
  match List.assoc_opt c (List.map (fun (a, b) -> (a, b)) outs) with
  | Some name -> Some name
  | None -> go outs

(* Extended output column list (section 4.2.3): every column equivalent to
   some bare-column output of the block, under the block's own classes. *)
let extended_output_cols (t : t) : Col.Set.t =
  List.fold_left
    (fun acc (c, _) -> Col.Set.union acc (Equiv.class_of t.equiv c))
    Col.Set.empty (col_outputs t)

(* Grouping expressions that are bare columns, extended by equivalence
   (section 4.2.4). *)
let extended_grouping_cols (t : t) : Col.Set.t =
  match t.spjg.Spjg.group_by with
  | None -> Col.Set.empty
  | Some gs ->
      List.fold_left
        (fun acc g ->
          match g with
          | Expr.Col c -> Col.Set.union acc (Equiv.class_of t.equiv c)
          | _ -> acc)
        Col.Set.empty gs

(* Textual templates of non-column output expressions / grouping
   expressions / residual predicates, for the filter-tree set conditions
   (sections 4.2.6-4.2.8). *)
let output_expr_templates (t : t) : Sset.t =
  List.fold_left
    (fun acc (e, _) ->
      match e with
      | Expr.Col _ | Expr.Const _ -> acc
      | _ -> Sset.add (fst (Residual.expr_template e)) acc)
    Sset.empty (scalar_outputs t)

let grouping_expr_templates (t : t) : Sset.t =
  match t.spjg.Spjg.group_by with
  | None -> Sset.empty
  | Some gs ->
      List.fold_left
        (fun acc g ->
          match g with
          | Expr.Col _ | Expr.Const _ -> acc
          | _ -> Sset.add (fst (Residual.expr_template g)) acc)
        Sset.empty gs

let residual_templates (t : t) : Sset.t =
  List.fold_left
    (fun acc (r : Residual.t) -> Sset.add r.Residual.template acc)
    Sset.empty t.residuals

(* Equivalence-class representatives with a constrained range, rendered as
   column sets (section 4.2.5). *)
let range_constrained_classes (t : t) : Col.Set.t list =
  List.map (Equiv.class_of t.equiv) (Range.constrained_reprs t.ranges)
