(** The paper's shallow expression-matching representation: a text template
    with column references hollowed out plus the ordered column list; two
    conjuncts match when templates are equal and columns in matching
    positions fall in the same (query) equivalence class. *)

open Mv_base

type t = { template : string; cols : Col.t list; pred : Pred.t }

val of_pred : Pred.t -> t

val expr_template : Expr.t -> string * Col.t list

val matches : Equiv.t -> t -> t -> bool

val exprs_match : Equiv.t -> Expr.t -> Expr.t -> bool

val pp : Format.formatter -> t -> unit
