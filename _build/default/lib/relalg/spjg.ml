(** The SPJG block: the class of expressions (and views) the paper's
    algorithm handles — selections, inner joins, and an optional final
    group-by with SUM/COUNT aggregates. *)

open Mv_base

type agg =
  | Count_star  (** covers both count( * ) and count_big( * ) *)
  | Sum of Expr.t
  | Avg of Expr.t  (** queries only; rewritten to SUM/COUNT by the matcher *)
  | Sum_div_sum of Expr.t * Expr.t
      (** SUM(a)/SUM(b): produced only by the matcher when re-aggregating a
          query AVG over a view's sum and count columns (section 3.3) *)
  | Sum0 of Expr.t
      (** SUM coalesced to 0 on empty input — what COALESCE(SUM(x),0) is in
          SQL. Produced only by the matcher when rolling a count( * ) up as
          the sum of the view's count column: a scalar-aggregate count over
          zero rows is 0, not NULL. *)

type out_def = Scalar of Expr.t | Aggregate of agg

type out_item = { name : string; def : out_def }

type t = {
  tables : string list;  (** canonical table names, sorted, no duplicates *)
  where : Pred.t list;  (** CNF conjuncts *)
  group_by : Expr.t list option;
      (** [None] = SPJ block; [Some []] = scalar aggregate (empty grouping) *)
  out : out_item list;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let scalar name e = { name; def = Scalar e }

let aggregate name a = { name; def = Aggregate a }

let agg_equal a b =
  match (a, b) with
  | Count_star, Count_star -> true
  | Sum x, Sum y | Avg x, Avg y -> Expr.equal x y
  | Sum_div_sum (a1, b1), Sum_div_sum (a2, b2) ->
      Expr.equal a1 a2 && Expr.equal b1 b2
  | Sum0 x, Sum0 y -> Expr.equal x y
  | (Count_star | Sum _ | Avg _ | Sum_div_sum _ | Sum0 _), _ -> false

let make ~tables ~where ~group_by ~out =
  let tables = List.sort_uniq String.compare tables in
  if tables = [] then invalid "SPJG block must reference at least one table";
  let names = List.map (fun o -> o.name) out in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid "duplicate output column names";
  (match group_by with
  | None ->
      List.iter
        (fun o ->
          match o.def with
          | Aggregate _ -> invalid "aggregate output without GROUP BY"
          | Scalar _ -> ())
        out
  | Some gexprs ->
      (* Scalar outputs of an aggregated block must be grouping
         expressions; this is the SQL validity rule and it is what lets
         compensating predicates routed to view outputs commute with
         aggregation. *)
      List.iter
        (fun o ->
          match o.def with
          | Scalar e ->
              if not (List.exists (Expr.equal e) gexprs) then
                invalid "scalar output %s is not a grouping expression"
                  (Expr.to_string e)
          | Aggregate _ -> ())
        out);
  { tables; where; group_by; out }

let of_pred_where ~tables ~pred ~group_by ~out =
  make ~tables ~where:(Cnf.conjuncts pred) ~group_by ~out

let is_aggregate t = t.group_by <> None

let out_names t = List.map (fun o -> o.name) t.out

let find_out t name = List.find_opt (fun o -> o.name = name) t.out

(* Validity conditions for a materializable ("indexable") view,
   section 2: aggregation views must output every grouping expression and a
   count_big( * ) column; AVG is not allowed in views. *)
let check_indexable t =
  match t.group_by with
  | None -> Ok ()
  | Some gexprs ->
      let has_count =
        List.exists
          (fun o -> match o.def with Aggregate Count_star -> true | _ -> false)
          t.out
      in
      if not has_count then Error "aggregation view lacks a count_big(*) column"
      else if
        List.exists
          (fun o ->
            match o.def with
            | Aggregate (Avg _ | Sum_div_sum _ | Sum0 _) -> true
            | _ -> false)
          t.out
      then Error "AVG is not allowed in a materialized view"
      else
        let missing =
          List.filter
            (fun g ->
              not
                (List.exists
                   (fun o ->
                     match o.def with
                     | Scalar e -> Expr.equal e g
                     | Aggregate _ -> false)
                   t.out))
            gexprs
        in
        if missing = [] then Ok ()
        else
          Error
            (Fmt.str "grouping expression %s missing from view output"
               (Expr.to_string (List.hd missing)))

let agg_to_string = function
  | Count_star -> "count_big(*)"
  | Sum e -> "sum(" ^ Expr.to_string e ^ ")"
  | Avg e -> "avg(" ^ Expr.to_string e ^ ")"
  | Sum_div_sum (a, b) ->
      "sum(" ^ Expr.to_string a ^ ") / sum(" ^ Expr.to_string b ^ ")"
  | Sum0 e -> "coalesce(sum(" ^ Expr.to_string e ^ "), 0)"

let out_def_to_string = function
  | Scalar e -> Expr.to_string e
  | Aggregate a -> agg_to_string a

(* Render as SQL text (used by examples, the CLI and error messages). *)
let to_sql t =
  let out =
    String.concat ", "
      (List.map
         (fun o ->
           let d = out_def_to_string o.def in
           (* avoid "x AS x" noise for plain column outputs *)
           match o.def with
           | Scalar (Expr.Col c) when c.Col.col = o.name -> d
           | _ -> d ^ " AS " ^ o.name)
         t.out)
  in
  let base =
    "SELECT " ^ out ^ "\nFROM " ^ String.concat ", " t.tables
  in
  let base =
    match t.where with
    | [] -> base
    | ps ->
        base ^ "\nWHERE "
        ^ String.concat "\n  AND " (List.map Pred.to_string ps)
  in
  match t.group_by with
  | None -> base
  | Some [] -> base (* scalar aggregate: no GROUP BY clause *)
  | Some gs ->
      base ^ "\nGROUP BY " ^ String.concat ", " (List.map Expr.to_string gs)

let pp ppf t = Fmt.string ppf (to_sql t)

(* Every column referenced anywhere in the block. *)
let referenced_columns t =
  let out_cols =
    List.concat_map
      (fun o ->
        match o.def with
        | Scalar e -> Expr.columns e
        | Aggregate Count_star -> []
        | Aggregate (Sum e) | Aggregate (Avg e) | Aggregate (Sum0 e) ->
            Expr.columns e
        | Aggregate (Sum_div_sum (a, b)) -> Expr.columns a @ Expr.columns b)
      t.out
  in
  let where_cols = List.concat_map Pred.columns t.where in
  let group_cols =
    match t.group_by with
    | None -> []
    | Some gs -> List.concat_map Expr.columns gs
  in
  Col.Set.of_list (out_cols @ where_cols @ group_cols)
