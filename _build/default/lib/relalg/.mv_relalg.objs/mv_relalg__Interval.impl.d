lib/relalg/interval.ml: Expr Fmt Mv_base Pred Value
