lib/relalg/residual.ml: Col Equiv Expr Fmt List Mv_base Pred String
