lib/relalg/cnf.mli: Mv_base Pred
