lib/relalg/cnf.ml: List Mv_base Pred
