lib/relalg/interval.mli: Expr Format Mv_base Pred Value
