lib/relalg/spjg.mli: Col Expr Format Mv_base Pred
