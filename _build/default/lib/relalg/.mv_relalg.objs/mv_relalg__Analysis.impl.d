lib/relalg/analysis.ml: Classify Col Equiv Expr List Mv_base Mv_catalog Mv_util Range Residual Spjg
