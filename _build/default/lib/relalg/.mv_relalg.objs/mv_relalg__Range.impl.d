lib/relalg/range.ml: Col Equiv Fmt Interval List Mv_base Pred Rset Value
