lib/relalg/residual.mli: Col Equiv Expr Format Mv_base Pred
