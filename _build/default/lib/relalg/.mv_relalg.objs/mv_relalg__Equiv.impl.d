lib/relalg/equiv.ml: Col Fmt List Mv_base Mv_catalog Mv_util
