lib/relalg/analysis.mli: Classify Col Equiv Expr Mv_base Mv_catalog Mv_util Range Residual Spjg
