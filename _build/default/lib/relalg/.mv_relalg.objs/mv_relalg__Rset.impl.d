lib/relalg/rset.ml: Expr Fmt Interval List Mv_base Pred String Value
