lib/relalg/spjg.ml: Cnf Col Expr Fmt List Mv_base Pred String
