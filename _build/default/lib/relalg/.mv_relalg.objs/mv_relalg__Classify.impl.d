lib/relalg/classify.ml: Col Expr Interval List Mv_base Option Pred Value
