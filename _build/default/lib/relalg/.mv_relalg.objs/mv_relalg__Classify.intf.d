lib/relalg/classify.mli: Col Interval Mv_base Pred Value
