lib/relalg/equiv.mli: Col Format Mv_base Mv_catalog
