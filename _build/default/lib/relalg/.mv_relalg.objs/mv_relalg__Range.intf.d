lib/relalg/range.mli: Col Equiv Format Interval Mv_base Pred Rset Value
