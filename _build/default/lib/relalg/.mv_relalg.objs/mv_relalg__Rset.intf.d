lib/relalg/rset.mli: Expr Format Interval Mv_base Pred Value
