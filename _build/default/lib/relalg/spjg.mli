(** The SPJG block: selections, inner joins, and an optional final group-by
    with SUM/COUNT aggregates — the class of expressions and views the
    paper's algorithm handles (section 2). *)

open Mv_base

type agg =
  | Count_star  (** both count( * ) and count_big( * ) *)
  | Sum of Expr.t
  | Avg of Expr.t  (** queries only; rewritten to SUM/COUNT by the matcher *)
  | Sum_div_sum of Expr.t * Expr.t
      (** SUM(a)/SUM(b); produced only by the matcher when re-aggregating
          an AVG over a view's sum and count columns *)
  | Sum0 of Expr.t
      (** SUM coalesced to 0 on empty input (COALESCE(SUM(x),0)); produced
          only by the matcher when rolling a count up as a sum of counts *)

type out_def = Scalar of Expr.t | Aggregate of agg

type out_item = { name : string; def : out_def }

type t = private {
  tables : string list;  (** canonical table names, sorted, no duplicates *)
  where : Pred.t list;  (** CNF conjuncts *)
  group_by : Expr.t list option;
      (** [None] = SPJ block; [Some []] = scalar aggregate *)
  out : out_item list;
}

exception Invalid of string

val scalar : string -> Expr.t -> out_item

val aggregate : string -> agg -> out_item

val agg_equal : agg -> agg -> bool

val make :
  tables:string list ->
  where:Pred.t list ->
  group_by:Expr.t list option ->
  out:out_item list ->
  t
(** Validates: at least one table, unique output names, aggregates only
    under a group-by, scalar outputs of aggregated blocks must be grouping
    expressions. @raise Invalid otherwise. *)

val of_pred_where :
  tables:string list ->
  pred:Pred.t ->
  group_by:Expr.t list option ->
  out:out_item list ->
  t
(** Like {!make} but converts a single predicate to CNF first. *)

val is_aggregate : t -> bool

val out_names : t -> string list

val find_out : t -> string -> out_item option

val check_indexable : t -> (unit, string) result
(** Can this block be materialized as an indexed view (section 2)?
    Aggregation views must output every grouping expression and a
    count_big( * ) column; AVG is not allowed. *)

val agg_to_string : agg -> string

val out_def_to_string : out_def -> string

val to_sql : t -> string

val pp : Format.formatter -> t -> unit

val referenced_columns : t -> Col.Set.t
