(** Derived information about an SPJG block: classified predicate
    components, column equivalence classes, per-class ranges and residual
    templates — computed once per query subexpression and once per view
    (the paper's in-memory "view description"). *)

open Mv_base
module Sset = Mv_util.Sset

type t = {
  spjg : Spjg.t;
  schema : Mv_catalog.Schema.t;
  table_set : Sset.t;
  classified : Classify.classified;
  equiv : Equiv.t;
  ranges : Range.map;
  residuals : Residual.t list;
}

val analyze : Mv_catalog.Schema.t -> Spjg.t -> t

val col_outputs : t -> (Col.t * string) list
(** Outputs that are bare column references: column -> output name. *)

val scalar_outputs : t -> (Expr.t * string) list

val agg_outputs : t -> (Spjg.agg * string) list

val output_for_col : t -> Equiv.t -> Col.t -> string option
(** An output column for [c], looked up through the given equivalence
    structure (section 3.1.3's routing). *)

val extended_output_cols : t -> Col.Set.t
(** Every column equivalent to some bare-column output, under the block's
    own classes (section 4.2.3). *)

val extended_grouping_cols : t -> Col.Set.t

val output_expr_templates : t -> Sset.t
(** Textual templates of non-column output expressions (section 4.2.7). *)

val grouping_expr_templates : t -> Sset.t

val residual_templates : t -> Sset.t

val range_constrained_classes : t -> Col.Set.t list
(** One class (as a column set) per constrained range (section 4.2.5). *)
