(** Range extraction: one range set per column equivalence class, keyed by
    class representative. Handles both conjunctive range predicates and
    the disjunction extension (OR of ranges on one column). *)

open Mv_base

type map = Rset.t Col.Map.t

val build :
  Equiv.t ->
  (Col.t * Pred.cmp * Value.t) list ->
  (Col.t * Interval.t list) list ->
  map

val find : Equiv.t -> map -> Col.t -> Rset.t
(** Range set for the class containing the column; [Rset.full] when
    unconstrained. *)

val constrained_reprs : map -> Col.t list

val pp : Equiv.t -> Format.formatter -> map -> unit
