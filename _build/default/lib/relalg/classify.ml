(** Classification of CNF conjuncts into the paper's groups
    (section 3.1.2):

    - PE: column-equality predicates [Ti.Cp = Tj.Cq]
    - PR: range predicates [Ti.Cp op c] with op in <, <=, =, >=, >
    - PR-disjunctive: OR-of-range-atoms on a single column (the paper's
      disjunction extension; e.g. a CNF clause from "x BETWEEN 1 AND 5 OR
      x = 7")
    - PU: residual predicates (everything else) *)

open Mv_base

type classified = {
  col_eqs : (Col.t * Col.t) list;
  ranges : (Col.t * Pred.cmp * Value.t) list;
  disj_ranges : (Col.t * Interval.t list) list;
  residuals : Pred.t list;
}

let range_op = function
  | Pred.Eq | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge -> true
  | Pred.Ne -> false

(* An atomic range predicate, normalized to column-op-constant. *)
let range_atom (p : Pred.t) =
  match p with
  | Pred.Cmp (op, Expr.Col c, Expr.Const v)
    when range_op op && not (Value.is_null v) ->
      Some (c, op, v)
  | Pred.Cmp (op, Expr.Const v, Expr.Col c)
    when range_op op && not (Value.is_null v) ->
      Some (c, Pred.flip_cmp op, v)
  | _ -> None

let rec flatten_or = function
  | Pred.Or (a, b) -> flatten_or a @ flatten_or b
  | p -> [ p ]

let classify_one (p : Pred.t) =
  match p with
  | Pred.Cmp (Pred.Eq, Expr.Col a, Expr.Col b) -> `Col_eq (a, b)
  | Pred.Or _ -> (
      (* a disjunction whose atoms are all ranges on one column *)
      let atoms = List.map range_atom (flatten_or p) in
      match atoms with
      | Some (c0, op0, v0) :: rest
        when List.for_all
               (function
                 | Some (c, _, _) -> Col.equal c c0
                 | None -> false)
               rest ->
          let intervals =
            Interval.of_cmp op0 v0
            :: List.filter_map
                 (Option.map (fun (_, op, v) -> Interval.of_cmp op v))
                 rest
          in
          `Disj_range (c0, intervals)
      | _ -> `Residual p)
  | _ -> (
      match range_atom p with
      | Some (c, op, v) -> `Range (c, op, v)
      | None -> `Residual p)

let classify (conjuncts : Pred.t list) : classified =
  let col_eqs, ranges, disj, residuals =
    List.fold_left
      (fun (es, rs, ds, us) p ->
        match classify_one p with
        | `Col_eq (a, b) -> ((a, b) :: es, rs, ds, us)
        | `Range (c, op, v) -> (es, (c, op, v) :: rs, ds, us)
        | `Disj_range (c, is) -> (es, rs, (c, is) :: ds, us)
        | `Residual p -> (es, rs, ds, p :: us))
      ([], [], [], []) conjuncts
  in
  {
    col_eqs = List.rev col_eqs;
    ranges = List.rev ranges;
    disj_ranges = List.rev disj;
    residuals = List.rev residuals;
  }
