(** Range extraction (section 3.1.2, plus the paper's disjunction
    extension): one range *set* per column equivalence class, keyed by the
    class representative. Conjunctive range predicates intersect as single
    intervals; each OR-of-ranges conjunct contributes its interval union,
    and conjuncts intersect — so e.g. (a BETWEEN 1 AND 5 OR a = 7), after
    CNF, reassembles into exactly [1,5] u [7,7]. *)

open Mv_base

type map = Rset.t Col.Map.t

let add_constraint equiv (m : map) c (set : Rset.t) : map =
  let r = Equiv.repr equiv c in
  let cur = match Col.Map.find_opt r m with Some x -> x | None -> Rset.full in
  Col.Map.add r (Rset.inter cur set) m

let build (equiv : Equiv.t) (ranges : (Col.t * Pred.cmp * Value.t) list)
    (disj : (Col.t * Interval.t list) list) : map =
  let m =
    List.fold_left
      (fun m (c, op, v) ->
        add_constraint equiv m c (Rset.of_interval (Interval.of_cmp op v)))
      Col.Map.empty ranges
  in
  List.fold_left
    (fun m (c, intervals) ->
      add_constraint equiv m c (Rset.of_intervals intervals))
    m disj

(* Range set for the class containing [c] (full when unconstrained). *)
let find (equiv : Equiv.t) (m : map) c : Rset.t =
  match Col.Map.find_opt (Equiv.repr equiv c) m with
  | Some s -> s
  | None -> Rset.full

let constrained_reprs (m : map) =
  Col.Map.fold
    (fun r s acc -> if Rset.is_full s then acc else r :: acc)
    m []

let pp equiv ppf (m : map) =
  Col.Map.iter
    (fun r s ->
      if not (Rset.is_full s) then
        Fmt.pf ppf "{%a} in %a; "
          Fmt.(list ~sep:(any ", ") Col.pp)
          (Col.Set.elements (Equiv.class_of equiv r))
          Rset.pp s)
    m
