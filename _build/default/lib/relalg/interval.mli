(** Typed value intervals with open/closed/unbounded endpoints — the
    per-class ranges of section 3.1.2. *)

open Mv_base

type bound = Unbounded | Incl of Value.t | Excl of Value.t

type t = { lo : bound; hi : bound }

val full : t

val is_full : t -> bool

val point : Value.t -> t

val of_cmp : Pred.cmp -> Value.t -> t
(** @raise Invalid_argument on [Ne]. *)

val cmp_lower : bound -> bound -> int
(** Compare in the role of lower bounds: smaller admits more values. *)

val cmp_upper : bound -> bound -> int
(** Compare in the role of upper bounds: larger admits more values. *)

val intersect : t -> t -> t

val contains : outer:t -> inner:t -> bool

val bound_equal : bound -> bound -> bool

val is_empty : t -> bool

val mem : Value.t -> t -> bool

val to_preds : Expr.t -> t -> Pred.t list
(** Predicates enforcing the interval's bounds on an expression; a point
    interval renders as a single equality. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
