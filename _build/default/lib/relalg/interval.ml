(** Typed value intervals with open/closed/unbounded endpoints.

    Section 3.1.2 associates a range with each equivalence class:
    [col < c] contributes an open upper bound, [col <= c] a closed one,
    [col = c] the point interval, and conjuncts intersect. *)

open Mv_base

type bound = Unbounded | Incl of Value.t | Excl of Value.t

type t = { lo : bound; hi : bound }

let full = { lo = Unbounded; hi = Unbounded }

let is_full i = i.lo = Unbounded && i.hi = Unbounded

let point v = { lo = Incl v; hi = Incl v }

let of_cmp (op : Pred.cmp) v =
  match op with
  | Pred.Eq -> point v
  | Pred.Lt -> { lo = Unbounded; hi = Excl v }
  | Pred.Le -> { lo = Unbounded; hi = Incl v }
  | Pred.Gt -> { lo = Excl v; hi = Unbounded }
  | Pred.Ge -> { lo = Incl v; hi = Unbounded }
  | Pred.Ne -> invalid_arg "Interval.of_cmp: <> is not a range operator"

(* Compare two bounds in their role as LOWER bounds: smaller = weaker
   (admits more values). Unbounded < Incl v < Excl v for equal v. *)
let cmp_lower a b =
  match (a, b) with
  | Unbounded, Unbounded -> 0
  | Unbounded, _ -> -1
  | _, Unbounded -> 1
  | Incl x, Incl y | Excl x, Excl y -> Value.order x y
  | Incl x, Excl y ->
      let c = Value.order x y in
      if c = 0 then -1 else c
  | Excl x, Incl y ->
      let c = Value.order x y in
      if c = 0 then 1 else c

(* Compare two bounds as UPPER bounds: larger = weaker.
   Excl v < Incl v for equal v < Unbounded. *)
let cmp_upper a b =
  match (a, b) with
  | Unbounded, Unbounded -> 0
  | Unbounded, _ -> 1
  | _, Unbounded -> -1
  | Incl x, Incl y | Excl x, Excl y -> Value.order x y
  | Incl x, Excl y ->
      let c = Value.order x y in
      if c = 0 then 1 else c
  | Excl x, Incl y ->
      let c = Value.order x y in
      if c = 0 then -1 else c

(* Conjunction of two range constraints on the same class. *)
let intersect a b =
  {
    lo = (if cmp_lower a.lo b.lo >= 0 then a.lo else b.lo);
    hi = (if cmp_upper a.hi b.hi <= 0 then a.hi else b.hi);
  }

(* inner subseteq outer: the containment check of the range subsumption
   test. *)
let contains ~outer ~inner =
  cmp_lower outer.lo inner.lo <= 0 && cmp_upper inner.hi outer.hi <= 0

let bound_equal a b =
  match (a, b) with
  | Unbounded, Unbounded -> true
  | Incl x, Incl y | Excl x, Excl y -> Value.order x y = 0
  | _ -> false

(* Is the interval definitely empty? (lo > hi, or lo = hi with an open
   end.) Used only for sanity checks; the matcher treats empty query ranges
   like any other. *)
let is_empty i =
  match (i.lo, i.hi) with
  | Unbounded, _ | _, Unbounded -> false
  | (Incl x | Excl x), (Incl y | Excl y) -> (
      let c = Value.order x y in
      if c > 0 then true
      else if c < 0 then false
      else match (i.lo, i.hi) with Incl _, Incl _ -> false | _ -> true)

(* Membership, for property tests. *)
let mem v i =
  (match i.lo with
  | Unbounded -> true
  | Incl x -> Value.order v x >= 0
  | Excl x -> Value.order v x > 0)
  && match i.hi with
     | Unbounded -> true
     | Incl x -> Value.order v x <= 0
     | Excl x -> Value.order v x < 0

(* Predicates enforcing the bounds of [i] on expression [e]. *)
let to_preds e i =
  let lo =
    match i.lo with
    | Unbounded -> []
    | Incl v -> [ Pred.Cmp (Pred.Ge, e, Expr.Const v) ]
    | Excl v -> [ Pred.Cmp (Pred.Gt, e, Expr.Const v) ]
  in
  let hi =
    match i.hi with
    | Unbounded -> []
    | Incl v -> [ Pred.Cmp (Pred.Le, e, Expr.Const v) ]
    | Excl v -> [ Pred.Cmp (Pred.Lt, e, Expr.Const v) ]
  in
  (* a point interval renders as equality *)
  match (i.lo, i.hi) with
  | Incl a, Incl b when Value.order a b = 0 ->
      [ Pred.Cmp (Pred.Eq, e, Expr.Const a) ]
  | _ -> lo @ hi

let bound_to_string side = function
  | Unbounded -> (match side with `Lo -> "-inf" | `Hi -> "+inf")
  | Incl v -> "[" ^ Value.to_string v ^ "]"
  | Excl v -> "(" ^ Value.to_string v ^ ")"

let to_string i =
  bound_to_string `Lo i.lo ^ " .. " ^ bound_to_string `Hi i.hi

let pp ppf i = Fmt.string ppf (to_string i)
