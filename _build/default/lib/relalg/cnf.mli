(** Conversion of predicates to conjunctive normal form. *)

open Mv_base

exception Too_large
(** Raised when distribution would exceed {!max_conjuncts} clauses. *)

val max_conjuncts : int

val nnf : Pred.t -> Pred.t
(** Negation-normal form: negations pushed onto atoms, comparisons
    complemented. *)

val conjuncts : Pred.t -> Pred.t list
(** CNF as a duplicate-free list of conjuncts; single-atom clauses come out
    as bare atoms, multi-atom clauses as OR chains. [Bool true] yields [],
    [Bool false] yields [[Bool false]]. *)

val of_conjuncts : Pred.t list -> Pred.t
