(** Column equivalence classes (section 3.1.1).

    Every column of every referenced table starts in its own (trivial)
    class; each column-equality predicate merges two classes. The matcher
    asks for class membership, class-of-column, and the full partition. *)

open Mv_base

module UF = Mv_util.Union_find.Make (struct
  type t = Col.t

  let compare = Col.compare
end)

type t = UF.t

(* Register all columns of [tables] as trivial classes, then merge by the
   column-equality predicates. *)
let build (schema : Mv_catalog.Schema.t) ~tables
    ~(col_eqs : (Col.t * Col.t) list) : t =
  let uf = UF.create () in
  List.iter
    (fun tbl ->
      let td = Mv_catalog.Schema.table_exn schema tbl in
      List.iter
        (fun cname -> UF.add uf (Col.make tbl cname))
        (Mv_catalog.Table_def.column_names td))
    tables;
  List.iter (fun (a, b) -> UF.union uf a b) col_eqs;
  uf

let copy = UF.copy

(* Register every column of [tables] as a trivial class (used when the
   matcher conceptually adds a view's extra tables to the query,
   section 3.2). *)
let add_tables (schema : Mv_catalog.Schema.t) t tables =
  List.iter
    (fun tbl ->
      let td = Mv_catalog.Schema.table_exn schema tbl in
      List.iter
        (fun cname -> UF.add t (Col.make tbl cname))
        (Mv_catalog.Table_def.column_names td))
    tables

let merge t a b = UF.union t a b

let same t a b = UF.same t a b

let repr t c = UF.find t c

(* The class containing [c], as a set. *)
let class_of t c =
  let r = UF.find t c in
  List.fold_left
    (fun acc x -> if Col.compare (UF.find t x) r = 0 then Col.Set.add x acc else acc)
    Col.Set.empty (UF.members t)

let classes t = List.map Col.Set.of_list (UF.classes t)

let nontrivial_classes t =
  List.filter (fun s -> Col.Set.cardinal s > 1) (classes t)

(* Is every member of [cls] in the same class of [t]? (Used for the
   equijoin subsumption test: view class subset of a query class.) *)
let class_within t (cls : Col.Set.t) =
  match Col.Set.elements cls with
  | [] -> true
  | c :: rest -> List.for_all (fun x -> same t c x) rest

let pp ppf t =
  let pp_class ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Col.pp) (Col.Set.elements s)
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " ") pp_class) (nontrivial_classes t)
