(** The paper's shallow expression-matching representation (section 3.1.2,
    residual subsumption): an expression or predicate is rendered as a text
    template with every column reference replaced by "?", plus the ordered
    list of the column references themselves. Two residual conjuncts match
    when the templates are equal and the columns in matching positions fall
    in the same (query) equivalence class. *)

open Mv_base

let placeholder = Col.make "" "?"

type t = { template : string; cols : Col.t list; pred : Pred.t }

let of_pred (p : Pred.t) : t =
  let cols = Pred.columns p in
  let hollow = Pred.map_exprs (Expr.map_cols (fun _ -> placeholder)) p in
  { template = Pred.to_string hollow; cols; pred = p }

let expr_template (e : Expr.t) : string * Col.t list =
  let cols = Expr.columns e in
  (Expr.to_string (Expr.map_cols (fun _ -> placeholder) e), cols)

(* Template equality + positional column equivalence under [equiv]. *)
let matches (equiv : Equiv.t) (a : t) (b : t) =
  String.equal a.template b.template
  && List.length a.cols = List.length b.cols
  && List.for_all2 (fun c1 c2 -> Equiv.same equiv c1 c2) a.cols b.cols

let exprs_match (equiv : Equiv.t) (e1 : Expr.t) (e2 : Expr.t) =
  let t1, c1 = expr_template e1 and t2, c2 = expr_template e2 in
  String.equal t1 t2
  && List.length c1 = List.length c2
  && List.for_all2 (fun a b -> Equiv.same equiv a b) c1 c2

let pp ppf t = Fmt.pf ppf "%s" t.template
