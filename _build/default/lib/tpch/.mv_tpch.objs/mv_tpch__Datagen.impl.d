lib/tpch/datagen.ml: Array Date List Mv_base Mv_catalog Mv_engine Mv_util Option Printf Schema Value
