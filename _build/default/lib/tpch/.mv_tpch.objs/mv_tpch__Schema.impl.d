lib/tpch/schema.ml: Column Foreign_key List Mv_base Mv_catalog Schema Table_def
