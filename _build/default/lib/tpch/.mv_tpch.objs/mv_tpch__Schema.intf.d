lib/tpch/schema.mli: Mv_catalog
