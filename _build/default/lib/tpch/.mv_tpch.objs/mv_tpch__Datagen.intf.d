lib/tpch/datagen.mli: Mv_catalog Mv_engine
