(** The TPC-H schema (all eight tables) with primary keys, not-null
    constraints and every foreign key of the specification — including the
    composite (l_partkey, l_suppkey) -> partsupp key, which exercises
    multi-column cardinality-preserving joins.

    Monetary columns are integers (cents): exact arithmetic keeps bag
    comparison of rewrites deterministic regardless of evaluation order. *)

open Mv_catalog

let col = Column.make
let coln = Column.make ~nullable:true

let _ = coln (* nullable columns appear only in test schemas *)

let region =
  Table_def.make ~name:"region"
    ~columns:
      [
        col "r_regionkey" Mv_base.Dtype.Int;
        col "r_name" Mv_base.Dtype.Str;
        col "r_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "r_regionkey" ] ()

let nation =
  Table_def.make ~name:"nation"
    ~columns:
      [
        col "n_nationkey" Mv_base.Dtype.Int;
        col "n_name" Mv_base.Dtype.Str;
        col "n_regionkey" Mv_base.Dtype.Int;
        col "n_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "n_nationkey" ] ()

let supplier =
  Table_def.make ~name:"supplier"
    ~columns:
      [
        col "s_suppkey" Mv_base.Dtype.Int;
        col "s_name" Mv_base.Dtype.Str;
        col "s_address" Mv_base.Dtype.Str;
        col "s_nationkey" Mv_base.Dtype.Int;
        col "s_phone" Mv_base.Dtype.Str;
        col "s_acctbal" Mv_base.Dtype.Int;
        col "s_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "s_suppkey" ] ()

let customer =
  Table_def.make ~name:"customer"
    ~columns:
      [
        col "c_custkey" Mv_base.Dtype.Int;
        col "c_name" Mv_base.Dtype.Str;
        col "c_address" Mv_base.Dtype.Str;
        col "c_nationkey" Mv_base.Dtype.Int;
        col "c_phone" Mv_base.Dtype.Str;
        col "c_acctbal" Mv_base.Dtype.Int;
        col "c_mktsegment" Mv_base.Dtype.Str;
        col "c_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "c_custkey" ] ()

let part =
  Table_def.make ~name:"part"
    ~columns:
      [
        col "p_partkey" Mv_base.Dtype.Int;
        col "p_name" Mv_base.Dtype.Str;
        col "p_mfgr" Mv_base.Dtype.Str;
        col "p_brand" Mv_base.Dtype.Str;
        col "p_type" Mv_base.Dtype.Str;
        col "p_size" Mv_base.Dtype.Int;
        col "p_container" Mv_base.Dtype.Str;
        col "p_retailprice" Mv_base.Dtype.Int;
        col "p_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "p_partkey" ] ()

let partsupp =
  Table_def.make ~name:"partsupp"
    ~columns:
      [
        col "ps_partkey" Mv_base.Dtype.Int;
        col "ps_suppkey" Mv_base.Dtype.Int;
        col "ps_availqty" Mv_base.Dtype.Int;
        col "ps_supplycost" Mv_base.Dtype.Int;
        col "ps_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "ps_partkey"; "ps_suppkey" ] ()

let orders =
  Table_def.make ~name:"orders"
    ~columns:
      [
        col "o_orderkey" Mv_base.Dtype.Int;
        col "o_custkey" Mv_base.Dtype.Int;
        col "o_orderstatus" Mv_base.Dtype.Str;
        col "o_totalprice" Mv_base.Dtype.Int;
        col "o_orderdate" Mv_base.Dtype.Date;
        col "o_orderpriority" Mv_base.Dtype.Str;
        col "o_clerk" Mv_base.Dtype.Str;
        col "o_shippriority" Mv_base.Dtype.Int;
        col "o_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "o_orderkey" ] ()

(* CHECK constraints mirroring the TPC-H data characteristics the
   generator guarantees; the matcher exploits them in its subsumption
   tests (section 3.1.2). *)
let check col_name op v =
  Mv_base.Pred.Cmp
    ( op,
      Mv_base.Expr.Col (Mv_base.Col.make "" col_name),
      Mv_base.Expr.Const (Mv_base.Value.Int v) )

let on_table tbl p =
  Mv_base.Pred.map_exprs
    (Mv_base.Expr.map_cols (fun c -> Mv_base.Col.make tbl c.Mv_base.Col.col))
    p

let lineitem_checks =
  List.map (on_table "lineitem")
    [
      check "l_quantity" Mv_base.Pred.Ge 1;
      check "l_quantity" Mv_base.Pred.Le 50;
      check "l_discount" Mv_base.Pred.Ge 0;
      check "l_discount" Mv_base.Pred.Le 10;
      check "l_tax" Mv_base.Pred.Ge 0;
      check "l_tax" Mv_base.Pred.Le 8;
      check "l_extendedprice" Mv_base.Pred.Ge 0;
    ]

let lineitem =
  Table_def.make ~name:"lineitem" ~checks:lineitem_checks
    ~columns:
      [
        col "l_orderkey" Mv_base.Dtype.Int;
        col "l_partkey" Mv_base.Dtype.Int;
        col "l_suppkey" Mv_base.Dtype.Int;
        col "l_linenumber" Mv_base.Dtype.Int;
        col "l_quantity" Mv_base.Dtype.Int;
        col "l_extendedprice" Mv_base.Dtype.Int;
        col "l_discount" Mv_base.Dtype.Int;
        col "l_tax" Mv_base.Dtype.Int;
        col "l_returnflag" Mv_base.Dtype.Str;
        col "l_linestatus" Mv_base.Dtype.Str;
        col "l_shipdate" Mv_base.Dtype.Date;
        col "l_commitdate" Mv_base.Dtype.Date;
        col "l_receiptdate" Mv_base.Dtype.Date;
        col "l_shipinstruct" Mv_base.Dtype.Str;
        col "l_shipmode" Mv_base.Dtype.Str;
        col "l_comment" Mv_base.Dtype.Str;
      ]
    ~primary_key:[ "l_orderkey"; "l_linenumber" ] ()

let fk = Foreign_key.make

let schema =
  Schema.make
    ~tables:
      [ region; nation; supplier; customer; part; partsupp; orders; lineitem ]
    ~foreign_keys:
      [
        fk ~from_tbl:"nation" ~from_cols:[ "n_regionkey" ] ~to_tbl:"region"
          ~to_cols:[ "r_regionkey" ];
        fk ~from_tbl:"supplier" ~from_cols:[ "s_nationkey" ] ~to_tbl:"nation"
          ~to_cols:[ "n_nationkey" ];
        fk ~from_tbl:"customer" ~from_cols:[ "c_nationkey" ] ~to_tbl:"nation"
          ~to_cols:[ "n_nationkey" ];
        fk ~from_tbl:"partsupp" ~from_cols:[ "ps_partkey" ] ~to_tbl:"part"
          ~to_cols:[ "p_partkey" ];
        fk ~from_tbl:"partsupp" ~from_cols:[ "ps_suppkey" ] ~to_tbl:"supplier"
          ~to_cols:[ "s_suppkey" ];
        fk ~from_tbl:"orders" ~from_cols:[ "o_custkey" ] ~to_tbl:"customer"
          ~to_cols:[ "c_custkey" ];
        fk ~from_tbl:"lineitem" ~from_cols:[ "l_orderkey" ] ~to_tbl:"orders"
          ~to_cols:[ "o_orderkey" ];
        fk ~from_tbl:"lineitem" ~from_cols:[ "l_partkey" ] ~to_tbl:"part"
          ~to_cols:[ "p_partkey" ];
        fk ~from_tbl:"lineitem" ~from_cols:[ "l_suppkey" ] ~to_tbl:"supplier"
          ~to_cols:[ "s_suppkey" ];
        fk ~from_tbl:"lineitem"
          ~from_cols:[ "l_partkey"; "l_suppkey" ]
          ~to_tbl:"partsupp"
          ~to_cols:[ "ps_partkey"; "ps_suppkey" ];
      ]

let () = Schema.validate schema
