(** The TPC-H schema: all eight tables with primary keys, not-null
    columns, every foreign key of the specification (including the
    composite lineitem -> partsupp key), and CHECK constraints mirroring
    the data characteristics the generator guarantees. *)

val region : Mv_catalog.Table_def.t
val nation : Mv_catalog.Table_def.t
val supplier : Mv_catalog.Table_def.t
val customer : Mv_catalog.Table_def.t
val part : Mv_catalog.Table_def.t
val partsupp : Mv_catalog.Table_def.t
val orders : Mv_catalog.Table_def.t
val lineitem : Mv_catalog.Table_def.t

val schema : Mv_catalog.Schema.t
(** Validated at module initialization. *)
