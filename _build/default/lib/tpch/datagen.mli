(** Deterministic TPC-H-style data generator and the analytic statistics
    used by statistics-only experiments. *)

type counts = {
  suppliers : int;
  parts : int;
  customers : int;
  orders : int;
}

val counts_of_scale : int -> counts

val generate : ?seed:int -> ?scale:int -> unit -> Mv_engine.Database.t
(** A fully populated database; all foreign keys hold by construction,
    comments embed searchable substrings, monetary columns are integer
    cents. Scale 1 is a few hundred lineitem rows. *)

val synthetic_stats : ?sf:float -> unit -> Mv_catalog.Stats.t
(** TPC-H cardinalities and column distributions at scale factor [sf]
    (default 0.5, the paper's setting) without materializing any data. *)
