bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Mv_base Mv_core Mv_relalg Mv_sql Mv_tpch Mv_workload Printf Staged Test Time Toolkit
