bench/filtertree.ml: List Mv_core Mv_experiments Mv_obs Mv_relalg Printf
