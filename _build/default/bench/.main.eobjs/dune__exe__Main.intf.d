bench/main.mli:
