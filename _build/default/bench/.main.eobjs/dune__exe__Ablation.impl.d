bench/ablation.ml: List Mv_core Mv_experiments Mv_relalg Mv_util Printf Sys
