bench/main.ml: Ablation Array Filtertree List Micro Mv_experiments Mv_obs Option Printf String Sys
