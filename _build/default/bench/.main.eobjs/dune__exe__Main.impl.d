bench/main.ml: Ablation Array List Micro Mv_experiments Printf String Sys
