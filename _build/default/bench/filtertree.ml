(** Filter-tree bench: the level-by-level pruning breakdown of section 4,
    per index plan ([default_plan] vs [backjoin_plan]), over the section-5
    workload. This is the machine-readable counterpart of the paper's
    Figures 6-7 discussion: how many candidate views enter each level and
    how many survive it. *)

module H = Mv_experiments.Harness
module J = Mv_obs.Json

type plan_result = {
  plan_name : string;
  searches : int;
  candidates : int;  (** final candidates summed over all queries *)
  wall_time_s : float;
  levels : H.level_flow list;
}

let run_plan ~backjoins (w : H.workload) : plan_result =
  let registry =
    Mv_core.Registry.create ~use_filter:true ~backjoins w.H.schema
  in
  List.iter (Mv_core.Registry.add_prebuilt registry) w.H.views;
  let queries = List.map (Mv_relalg.Analysis.analyze w.H.schema) w.H.queries in
  let span = Mv_obs.Instrument.enter () in
  let candidates =
    List.fold_left
      (fun acc q -> acc + List.length (Mv_core.Registry.candidates registry q))
      0 queries
  in
  let wall, _ = Mv_obs.Instrument.elapsed span in
  {
    plan_name = (if backjoins then "backjoin_plan" else "default_plan");
    searches =
      Mv_obs.Registry.counter_value registry.Mv_core.Registry.obs
        "filter_tree.searches";
    candidates;
    wall_time_s = wall;
    levels = H.level_flow_of registry;
  }

let print_result (r : plan_result) =
  Printf.printf "\n%s: %d searches, %d candidates total, %.4fs\n" r.plan_name
    r.searches r.candidates r.wall_time_s;
  Printf.printf "  %-28s %12s %12s %9s\n" "level" "entered" "passed" "kept";
  List.iter
    (fun (f : H.level_flow) ->
      Printf.printf "  %-28s %12d %12d %8.1f%%\n" f.H.level f.H.entered
        f.H.passed
        (100.0 *. float_of_int f.H.passed
         /. float_of_int (max 1 f.H.entered)))
    r.levels

let to_json (r : plan_result) =
  J.Obj
    [
      ("searches", J.Int r.searches);
      ("candidates", J.Int r.candidates);
      ("wall_time_s", J.Float r.wall_time_s);
      ("levels", Mv_experiments.Report.level_flow_json r.levels);
    ]

(* Both plans over the same workload; returns the JSON section for the
   bench trajectory file. *)
let run (w : H.workload) : J.t =
  print_endline
    "\n== Filter tree: per-level candidate flow (default vs backjoin plan) ==";
  Printf.printf "%d views, %d queries.\n" (List.length w.H.views)
    (List.length w.H.queries);
  let results =
    [ run_plan ~backjoins:false w; run_plan ~backjoins:true w ]
  in
  List.iter print_result results;
  J.Obj
    [
      ("nviews", J.Int (List.length w.H.views));
      ("queries", J.Int (List.length w.H.queries));
      ("plans", J.Obj (List.map (fun r -> (r.plan_name, to_json r)) results));
    ]
