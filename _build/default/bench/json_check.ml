(** Tiny CI validator for the bench trajectory and CLI output.

      json_check.exe FILE path.to.key ...       # JSON parses, keys present
      json_check.exe --contains FILE STRING ... # raw substring checks

    Path segments are object fields; a numeric segment indexes a list.
    Exit 0 when every check passes, 1 with a message otherwise — so a dune
    rule can gate @runtest-quick on the emitted metrics. *)

module J = Mv_obs.Json

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let lookup json path =
  let segs = String.split_on_char '.' path in
  List.fold_left
    (fun acc seg ->
      match acc with
      | None -> None
      | Some j -> (
          match int_of_string_opt seg with
          | Some i -> (
              match j with
              | J.List xs -> List.nth_opt xs i
              | _ -> None)
          | None -> J.member seg j))
    (Some json) segs

let () =
  match Array.to_list Sys.argv |> List.tl with
  | "--contains" :: file :: needles ->
      let body = read_file file in
      let contains needle =
        let nl = String.length needle and bl = String.length body in
        let rec go i =
          if i + nl > bl then false
          else String.sub body i nl = needle || go (i + 1)
        in
        go 0
      in
      List.iter
        (fun needle ->
          if not (contains needle) then
            fail "%s: missing expected output %S" file needle)
        needles;
      Printf.printf "%s: %d substring check(s) ok\n" file (List.length needles)
  | file :: paths when file <> "" && file.[0] <> '-' ->
      let json =
        match J.of_string (read_file file) with
        | j -> j
        | exception J.Parse_error e -> fail "%s: invalid JSON: %s" file e
      in
      List.iter
        (fun p ->
          match lookup json p with
          | Some _ -> ()
          | None -> fail "%s: missing key %s" file p)
        paths;
      Printf.printf "%s: JSON ok, %d key(s) present\n" file (List.length paths)
  | _ ->
      prerr_endline
        "usage: json_check.exe FILE key... | json_check.exe --contains FILE \
         str...";
      exit 1
