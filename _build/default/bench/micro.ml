(** Bechamel micro-benchmarks: one [Test.make] per core operation of the
    paper's system, so regressions in the hot path (the view-matching rule
    and the filter tree) are visible in isolation. *)

open Bechamel
open Toolkit

let schema = Mv_tpch.Schema.schema
let stats = Mv_tpch.Datagen.synthetic_stats ()

let accept_view_sql =
  {| create view mb_v with schemabinding as
     select l_orderkey, o_custkey, l_partkey, l_quantity, l_extendedprice,
            o_orderdate, l_shipdate, p_name
     from dbo.lineitem, dbo.orders, dbo.part
     where l_orderkey = o_orderkey and l_partkey = p_partkey
       and p_partkey >= 150 and o_custkey >= 50 and o_custkey <= 500
       and p_name like '%abc%' |}

let accept_query_sql =
  {| select l_orderkey, o_custkey
     from lineitem, orders, part
     where l_orderkey = o_orderkey and l_partkey = p_partkey
       and o_orderdate = l_shipdate
       and l_partkey >= 150 and l_partkey <= 160 and o_custkey = 123
       and p_name like '%abc%'
       and l_quantity * l_extendedprice > 100 |}

let reject_query_sql =
  {| select s_name from supplier, nation
     where s_nationkey = n_nationkey and s_acctbal >= 1000 |}

let view =
  let name, spjg = Mv_sql.Parser.parse_view schema accept_view_sql in
  Mv_core.View.create schema ~name spjg

let accept_query =
  Mv_relalg.Analysis.analyze schema
    (Mv_sql.Parser.parse_query schema accept_query_sql)

let reject_query =
  Mv_relalg.Analysis.analyze schema
    (Mv_sql.Parser.parse_query schema reject_query_sql)

(* a registry with 1000 workload views, filter tree enabled *)
let registry_1000 =
  let r = Mv_core.Registry.create ~use_filter:true schema in
  List.iter
    (fun (name, spjg) ->
      Mv_core.Registry.add_prebuilt r (Mv_core.View.create schema ~name spjg))
    (Mv_workload.Generator.views schema stats 1000);
  r

let registry_1000_nofilter =
  let r = Mv_core.Registry.create ~use_filter:false schema in
  List.iter (Mv_core.Registry.add_prebuilt r) registry_1000.Mv_core.Registry.views;
  r

let query_pred =
  match
    (Mv_sql.Parser.parse_query schema accept_query_sql).Mv_relalg.Spjg.where
  with
  | ps -> Mv_base.Pred.conj ps

let tests =
  [
    Test.make ~name:"match_view accept"
      (Staged.stage (fun () ->
           Mv_core.Matcher.match_view ~query:accept_query view));
    Test.make ~name:"match_view reject"
      (Staged.stage (fun () ->
           Mv_core.Matcher.match_view ~query:reject_query view));
    Test.make ~name:"analyze query block"
      (Staged.stage (fun () ->
           Mv_relalg.Analysis.analyze schema accept_query.Mv_relalg.Analysis.spjg));
    Test.make ~name:"filter-tree probe @1000 views"
      (Staged.stage (fun () ->
           Mv_core.Registry.candidates registry_1000 accept_query));
    Test.make ~name:"rule: filter+match @1000 views"
      (Staged.stage (fun () ->
           Mv_core.Registry.find_substitutes registry_1000 accept_query));
    Test.make ~name:"rule: linear scan @1000 views"
      (Staged.stage (fun () ->
           Mv_core.Registry.find_substitutes registry_1000_nofilter
             accept_query));
    Test.make ~name:"cnf conversion"
      (Staged.stage (fun () -> Mv_relalg.Cnf.conjuncts query_pred));
    Test.make ~name:"view descriptor creation"
      (Staged.stage (fun () ->
           Mv_core.View.create schema ~name:"tmp"
             (Mv_core.View.spjg view)));
  ]

let run () =
  Printf.printf "\n== Microbenchmarks (bechamel, monotonic clock) ==\n";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let test = Test.make_grouped ~name:"micro" tests in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.merge ols instances
      (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  Hashtbl.iter
    (fun meas tbl ->
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      List.iter
        (fun (name, ols_res) ->
          let est =
            match Analyze.OLS.estimates ols_res with
            | Some (e :: _) -> e
            | _ -> nan
          in
          Printf.printf "%-40s %12.0f ns/run (%s)\n" name est meas)
        (List.sort compare rows))
    results
