(** The extensions beyond the paper's prototype, end to end:

    1. Example 1's indexed view, with a secondary index the cost model
       picks up automatically;
    2. a base-table backjoin restoring a column the view lacks (section 7);
    3. a UNION ALL over two views, neither of which covers the query alone
       (section 7), with exact duplicate handling.

    Run with: dune exec examples/advanced_rewrites.exe *)

let schema = Mv_tpch.Schema.schema

let () =
  let db = Mv_tpch.Datagen.generate ~seed:29 ~scale:2 () in
  let stats = Mv_engine.Database.stats db in

  (* ---- 1. Example 1: an indexed view ---- *)
  print_endline "== 1. Example 1's indexed view ==";
  let registry = Mv_core.Registry.create schema in
  let name, v1 =
    Mv_sql.Parser.parse_view schema
      {| create view v1 with schemabinding as
         select p_partkey, p_name, p_retailprice, count_big(*) as cnt,
                sum(l_extendedprice * l_quantity) as gross_revenue
         from dbo.lineitem, dbo.part
         where p_partkey <= 70 and p_name like '%a%'
           and p_partkey = l_partkey
         group by p_partkey, p_name, p_retailprice |}
  in
  let view =
    Mv_core.Registry.add_view registry ~name
      ~row_count:(Mv_opt.Cost.estimate_view_rows stats v1)
      ~indexes:[ [ "gross_revenue"; "p_name" ]; [ "p_partkey" ] ]
      v1
  in
  ignore (Mv_engine.Exec.materialize db view);
  Printf.printf
    "view v1 materialized with %d rows and indexes on (gross_revenue, \
     p_name) and (p_partkey)\n"
    view.Mv_core.View.row_count;
  let q1 =
    Mv_sql.Parser.parse_query schema
      {| select p_name, sum(l_extendedprice * l_quantity) as rev
         from lineitem, part
         where p_partkey = l_partkey and p_partkey = 42 and p_name like '%a%'
         group by p_name |}
  in
  let r = Mv_opt.Optimizer.optimize registry stats q1 in
  Printf.printf "point query on p_partkey -> plan (cost %.0f):\n%s"
    r.Mv_opt.Optimizer.cost
    (Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan);
  let direct = Mv_engine.Exec.execute db q1 in
  let via = Mv_opt.Plan_exec.execute db q1 r.Mv_opt.Optimizer.plan in
  Printf.printf "matches direct execution: %b\n\n"
    (Mv_engine.Relation.same_bag direct via);

  (* ---- 2. backjoin ---- *)
  print_endline "== 2. Base-table backjoin (section 7) ==";
  let bj_registry = Mv_core.Registry.create ~backjoins:true schema in
  let name, v2 =
    Mv_sql.Parser.parse_view schema
      {| create view keyed with schemabinding as
         select l_orderkey, l_linenumber, l_quantity from dbo.lineitem
         where l_quantity >= 5 |}
  in
  let view2 = Mv_core.Registry.add_view bj_registry ~name v2 in
  ignore (Mv_engine.Exec.materialize db view2);
  let q2 =
    Mv_sql.Parser.parse_query schema
      {| select l_orderkey, l_tax from lineitem
         where l_quantity >= 10 |}
  in
  print_endline "the view lacks l_tax, but outputs lineitem's key:";
  (match Mv_core.Registry.find_substitutes_spjg bj_registry q2 with
  | [] -> print_endline "no substitute (unexpected)"
  | s :: _ ->
      print_endline (Mv_core.Substitute.to_sql s);
      let direct = Mv_engine.Exec.execute db q2 in
      let via = Mv_engine.Exec.execute_substitute db s in
      Printf.printf "equivalent: %b\n\n" (Mv_engine.Relation.same_bag direct via));

  (* ---- 3. union substitute ---- *)
  print_endline "== 3. UNION of sliced views (section 7) ==";
  let u_registry = Mv_core.Registry.create schema in
  List.iter
    (fun sql ->
      let name, def = Mv_sql.Parser.parse_view schema sql in
      let v = Mv_core.Registry.add_view u_registry ~name def in
      ignore (Mv_engine.Exec.materialize db v))
    [
      {| create view cheap with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem
         where l_quantity <= 25 |};
      {| create view pricey with schemabinding as
         select l_orderkey, l_quantity from dbo.lineitem
         where l_quantity >= 20 |};
    ];
  let q3 =
    Mv_sql.Parser.parse_query schema
      {| select l_orderkey, l_quantity from lineitem
         where l_quantity between 5 and 45 |}
  in
  Printf.printf "single-view substitutes: %d (no view covers 5..45)\n"
    (List.length (Mv_core.Registry.find_substitutes_spjg u_registry q3));
  (match
     Mv_core.Registry.find_union_substitutes u_registry
       (Mv_relalg.Analysis.analyze schema q3)
   with
  | None -> print_endline "no union found (unexpected)"
  | Some u ->
      print_endline "union substitute (note the disjoint slices):";
      print_endline (Mv_core.Union_substitute.to_sql u);
      let direct = Mv_engine.Exec.execute db q3 in
      let via = Mv_engine.Exec.execute_union db u in
      Printf.printf
        "equivalent (overlap rows 20..25 exist in both views, counted \
         once): %b\n"
        (Mv_engine.Relation.same_bag direct via));
  print_endline "\nDone."
