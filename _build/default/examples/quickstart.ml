(** Quickstart: define a materialized view, let the matcher rewrite a query
    to use it, and check both give the same answer.

    Run with: dune exec examples/quickstart.exe *)

let schema = Mv_tpch.Schema.schema

let () =
  (* 1. a small TPC-H style database *)
  let db = Mv_tpch.Datagen.generate ~seed:11 ~scale:2 () in
  Printf.printf "Generated TPC-H data: %d lineitem rows, %d orders\n\n"
    (Mv_engine.Database.row_count db "lineitem")
    (Mv_engine.Database.row_count db "orders");

  (* 2. a materialized view: revenue of cheap parts, SQL Server style *)
  let view_sql =
    {| create view cheap_part_revenue with schemabinding as
       select p_partkey, p_name, p_retailprice,
              count_big(*) as cnt,
              sum(l_extendedprice * l_quantity) as gross_revenue
       from dbo.lineitem, dbo.part
       where p_partkey <= 60 and p_partkey = l_partkey
       group by p_partkey, p_name, p_retailprice |}
  in
  let name, vdef = Mv_sql.Parser.parse_view schema view_sql in
  let registry = Mv_core.Registry.create schema in
  let view = Mv_core.Registry.add_view registry ~name vdef in
  let vtable = Mv_engine.Exec.materialize db view in
  Printf.printf "Materialized view %s: %d rows\n\n" name
    (Mv_engine.Table.row_count vtable);

  (* 3. a query the optimizer has never seen; note the narrower range and
     the coarser grouping *)
  let query_sql =
    {| select p_name, sum(l_extendedprice * l_quantity) as revenue
       from lineitem, part
       where p_partkey = l_partkey and p_partkey <= 40
       group by p_name |}
  in
  let query = Mv_sql.Parser.parse_query schema query_sql in
  Printf.printf "Query:\n%s\n\n" (Mv_relalg.Spjg.to_sql query);

  (* 4. view matching *)
  (match Mv_core.Registry.find_substitutes_spjg registry query with
  | [] -> print_endline "No substitute found (unexpected!)"
  | s :: _ ->
      Printf.printf "The view-matching algorithm found a substitute:\n%s\n\n"
        (Mv_core.Substitute.to_sql s);
      let direct = Mv_engine.Exec.execute db query in
      let via = Mv_engine.Exec.execute_substitute db s in
      Printf.printf "Direct execution:    %d rows\n"
        (Mv_engine.Relation.cardinality direct);
      Printf.printf "Via the view:        %d rows\n"
        (Mv_engine.Relation.cardinality via);
      Printf.printf "Same bag of rows:    %b\n\n"
        (Mv_engine.Relation.same_bag direct via);
      print_endline (Mv_engine.Relation.to_string ~max_rows:8 via));
  print_endline "\nDone."
