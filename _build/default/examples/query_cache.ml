(** Query-result caching: treat previously computed query results as
    temporary materialized views, exactly as the paper's introduction
    suggests ("a smart system might also cache and reuse results of
    previously computed queries"). Later, narrower queries are answered
    from the cache without touching the base tables.

    Run with: dune exec examples/query_cache.exe *)

let schema = Mv_tpch.Schema.schema

let () =
  let db = Mv_tpch.Datagen.generate ~seed:5 ~scale:3 () in
  let registry = Mv_core.Registry.create schema in
  let cache_counter = ref 0 in

  (* run a query; first try the cache (view matching), otherwise compute
     from base tables and register the result as a temporary view *)
  let run sql =
    Printf.printf "query: %s\n"
      (String.concat " " (String.split_on_char '\n' sql));
    let query = Mv_sql.Parser.parse_query schema sql in
    match Mv_core.Registry.find_substitutes_spjg registry query with
    | s :: _ ->
        let r = Mv_engine.Exec.execute_substitute db s in
        Printf.printf "  -> answered FROM CACHE (%s), %d rows\n\n"
          s.Mv_core.Substitute.view.Mv_core.View.name
          (Mv_engine.Relation.cardinality r);
        r
    | [] ->
        let r = Mv_engine.Exec.execute db query in
        (* only SPJ / valid indexable results can be cached *)
        (match Mv_relalg.Spjg.check_indexable query with
        | Ok () ->
            incr cache_counter;
            let name = Printf.sprintf "cache_%d" !cache_counter in
            let view = Mv_core.Registry.add_view registry ~name query in
            ignore (Mv_engine.Exec.materialize db view);
            Printf.printf "  -> computed from base tables (%d rows); cached as %s\n\n"
              (Mv_engine.Relation.cardinality r)
              name
        | Error why ->
            Printf.printf "  -> computed from base tables (%d rows); not cacheable (%s)\n\n"
              (Mv_engine.Relation.cardinality r)
              why);
        r
  in

  (* the broad query populates the cache *)
  let broad =
    run
      {| select o_custkey, o_orderdate, count_big(*) as cnt,
                sum(l_quantity) as qty
         from lineitem, orders
         where l_orderkey = o_orderkey
         group by o_custkey, o_orderdate |}
  in
  ignore broad;

  (* a narrower slice: answered from the cache *)
  ignore
    (run
       {| select o_custkey, sum(l_quantity) as qty
          from lineitem, orders
          where l_orderkey = o_orderkey and o_custkey between 1 and 40
          group by o_custkey |});

  (* an even coarser rollup: also from the cache *)
  ignore
    (run
       {| select count(*) as groups_total
          from lineitem, orders
          where l_orderkey = o_orderkey and o_custkey between 1 and 40
          group by o_custkey |});

  (* a query the cache cannot answer (needs a column the cache lacks) *)
  ignore
    (run
       {| select o_custkey, sum(l_extendedprice) as spend
          from lineitem, orders
          where l_orderkey = o_orderkey
          group by o_custkey |});

  Printf.printf "cache entries: %d\n" (Mv_core.Registry.view_count registry);
  print_endline "Done."
