examples/advanced_rewrites.ml: List Mv_core Mv_engine Mv_opt Mv_relalg Mv_sql Mv_tpch Printf
