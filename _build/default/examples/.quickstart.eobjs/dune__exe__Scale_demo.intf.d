examples/scale_demo.mli:
