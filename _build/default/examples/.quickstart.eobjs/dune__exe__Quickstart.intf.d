examples/quickstart.mli:
