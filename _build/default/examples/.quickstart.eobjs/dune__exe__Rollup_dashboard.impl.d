examples/rollup_dashboard.ml: Mv_core Mv_engine Mv_opt Mv_sql Mv_tpch Printf
