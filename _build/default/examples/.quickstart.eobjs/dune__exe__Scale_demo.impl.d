examples/scale_demo.ml: List Mv_core Mv_opt Mv_relalg Mv_tpch Mv_workload Printf Sys
