examples/advanced_rewrites.mli:
