examples/query_cache.mli:
