examples/rollup_dashboard.mli:
