examples/quickstart.ml: Mv_core Mv_engine Mv_relalg Mv_sql Mv_tpch Printf
