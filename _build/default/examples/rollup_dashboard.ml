(** OLAP rollup dashboard (the paper's Example 4): one daily per-customer
    revenue view serves several coarser dashboard queries — including one
    that joins a table the view does not even contain, found through the
    optimizer's preaggregation alternative.

    Run with: dune exec examples/rollup_dashboard.exe *)

let schema = Mv_tpch.Schema.schema

let () =
  let db = Mv_tpch.Datagen.generate ~seed:23 ~scale:2 () in
  let stats = Mv_engine.Database.stats db in
  let registry = Mv_core.Registry.create schema in

  (* the single view behind the dashboard: per-customer revenue *)
  let _, vdef =
    Mv_sql.Parser.parse_view schema
      {| create view v4 with schemabinding as
         select o_custkey, count_big(*) as cnt,
                sum(l_quantity * l_extendedprice) as revenue
         from dbo.lineitem, dbo.orders
         where l_orderkey = o_orderkey
         group by o_custkey |}
  in
  let view =
    Mv_core.Registry.add_view registry ~name:"v4"
      ~row_count:(Mv_opt.Cost.estimate_view_rows stats vdef)
      vdef
  in
  ignore (Mv_engine.Exec.materialize db view);
  Printf.printf "Dashboard view v4 materialized: %d rows\n\n"
    view.Mv_core.View.row_count;

  let run title sql =
    Printf.printf "--- %s ---\n%s\n" title sql;
    let query = Mv_sql.Parser.parse_query schema sql in
    let r = Mv_opt.Optimizer.optimize registry stats query in
    Printf.printf "\noptimizer plan (cost %.0f):\n%s" r.Mv_opt.Optimizer.cost
      (Mv_opt.Plan.to_string r.Mv_opt.Optimizer.plan);
    Printf.printf "plan uses materialized view: %b\n"
      r.Mv_opt.Optimizer.used_views;
    (* prove the plan is right: execute it and compare with direct
       execution *)
    let direct = Mv_engine.Exec.execute db query in
    let via = Mv_opt.Plan_exec.execute db query r.Mv_opt.Optimizer.plan in
    Printf.printf "plan result matches direct execution: %b\n\n"
      (Mv_engine.Relation.same_bag direct via)
  in

  run "Q1: revenue per customer (exactly the view)"
    {| select o_custkey, sum(l_quantity * l_extendedprice) as revenue
       from lineitem, orders
       where l_orderkey = o_orderkey
       group by o_custkey |};

  run "Q2: total revenue of one customer segment (narrower + coarser)"
    {| select sum(l_quantity * l_extendedprice) as revenue, count(*) as n
       from lineitem, orders
       where l_orderkey = o_orderkey and o_custkey between 1 and 30
       group by o_custkey |};

  run
    "Q3: revenue per nation — joins customer, which v4 does not contain \
     (Example 4: found via the preaggregation alternative)"
    {| select c_nationkey, sum(l_quantity * l_extendedprice) as revenue
       from lineitem, orders, customer
       where l_orderkey = o_orderkey and o_custkey = c_custkey
       group by c_nationkey |};

  print_endline "Done."
