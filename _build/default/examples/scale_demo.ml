(** Scalability demo: 1000 randomly generated views in one registry, the
    filter tree pruning each view-matching invocation to a handful of
    candidates (section 4 / section 5 of the paper).

    Run with: dune exec examples/scale_demo.exe *)

let schema = Mv_tpch.Schema.schema

let () =
  let stats = Mv_tpch.Datagen.synthetic_stats () in
  Printf.printf "Generating 1000 random views (section 5 recipe)...\n%!";
  let registry = Mv_core.Registry.create schema in
  List.iter
    (fun (name, spjg) ->
      ignore
        (Mv_core.Registry.add_view registry ~name
           ~row_count:(Mv_opt.Cost.estimate_view_rows stats spjg)
           spjg))
    (Mv_workload.Generator.views schema stats 1000);
  Printf.printf "Registry: %d views, %d lattice nodes across the filter tree\n\n"
    (Mv_core.Registry.view_count registry)
    (Mv_core.Filter_tree.stats registry.Mv_core.Registry.tree);

  let queries = Mv_workload.Generator.queries schema stats 100 in
  let t0 = Sys.time () in
  let totals = ref (0, 0, 0) in
  List.iter
    (fun q ->
      let qa = Mv_relalg.Analysis.analyze schema q in
      let cands = Mv_core.Registry.candidates registry qa in
      let subs = Mv_core.Registry.find_substitutes registry qa in
      let c, s, n = !totals in
      totals := (c + List.length cands, s + List.length subs, n + 1))
    queries;
  let dt = Sys.time () -. t0 in
  let c, s, n = !totals in
  Printf.printf
    "100 queries against 1000 views:\n\
    \  %.2f candidate views per invocation (%.3f%% of the population)\n\
    \  %.2f substitutes per invocation\n\
    \  %.2f ms per invocation (filtering + full matching)\n"
    (float_of_int c /. float_of_int n)
    (float_of_int c /. float_of_int n /. 10.0)
    (float_of_int s /. float_of_int n)
    (dt *. 1000.0 /. float_of_int n);

  (* show one concrete match *)
  print_endline "\nA sample rewrite found among the 1000 views:";
  let found =
    List.find_map
      (fun q ->
        match Mv_core.Registry.find_substitutes_spjg registry q with
        | s :: _ -> Some (q, s)
        | [] -> None)
      queries
  in
  (match found with
  | Some (q, s) ->
      Printf.printf "query:\n%s\n\nsubstitute:\n%s\n"
        (Mv_relalg.Spjg.to_sql q)
        (Mv_core.Substitute.to_sql s)
  | None -> print_endline "(none in this sample)");
  print_endline "\nDone."
