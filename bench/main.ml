(** Benchmark driver: regenerates every figure and in-text statistic of the
    paper's evaluation (section 5) plus micro/ablation/filter-tree benches.

      dune exec bench/main.exe                 # everything, default sizes
      dune exec bench/main.exe -- --full       # paper-size (1000 queries)
      dune exec bench/main.exe -- --figure 2   # a single figure
      dune exec bench/main.exe -- --micro      # bechamel micro suite only
      dune exec bench/main.exe -- --filtertree # per-level pruning breakdown
      dune exec bench/main.exe -- --exec       # end-to-end execution bench
      dune exec bench/main.exe -- --quick --json BENCH_optimize.json

    [--json FILE] additionally dumps every measurement (per-config wall and
    CPU timings, rule counters, per-filter-tree-level candidate flow) as a
    JSON document — the BENCH_*.json perf trajectory. With [--json] and no
    explicit selection the slow micro/ablation benches are skipped.

    See EXPERIMENTS.md for paper-vs-measured discussion and the schema. *)

let usage () =
  print_endline
    "usage: main.exe [--full|--quick] [--figure N] [--stats] [--micro]\n\
    \       [--ablation] [--filtertree] [--levels] [--serving] [--serve]\n\
    \       [--whynot] [--exec] [--maintain] [--advise] [--json FILE]\n\
    \       [--domains N] [--passes N] [--queries N] [--max-views N] [--step N]\n\
    \       [--rate QPS] [--duration S] [--serve-trace FILE]\n\
    \       [--serve-advise N]\n\
    \       [--scales S1,S2,...] [--reps N] [--batches N]\n\
    \       [--maintain-views S1,S2,...] [--batch-rows S1,S2,...]\n\
    \       [--advise-candidates S1,S2,...] [--advise-trials N]\n\
    \       [--advise-budget FRAC]";
  exit 1

type what = {
  figures : int list;
  stats : bool;
  micro : bool;
  ablation : bool;
  filtertree : bool;
  levels : bool;
  scaling : bool;
  serving : bool;
  serve : bool;
  whynot : bool;
  exec : bool;
  maintain : bool;
  advise : bool;
}

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let queries = ref 200 in
  let max_views = ref 1000 in
  let step = ref 200 in
  let domains = ref 1 in
  let passes = ref 3 in
  let json_file = ref None in
  let sel = ref None in
  let add_sel w =
    let cur =
      match !sel with
      | Some s -> s
      | None ->
          {
            figures = [];
            stats = false;
            micro = false;
            ablation = false;
            filtertree = false;
            levels = false;
            scaling = false;
            serving = false;
            serve = false;
            whynot = false;
            exec = false;
            maintain = false;
            advise = false;
          }
    in
    sel := Some (w cur)
  in
  let exec_scales = ref [ 1; 2; 4 ] in
  let exec_reps = ref 5 in
  let batches = ref 10 in
  let maintain_views = ref [ 10; 50; 100 ] in
  let batch_rows = ref [ 4; 32 ] in
  let advise_candidates = ref [ 100; 1000 ] in
  let advise_trials = ref 5 in
  let advise_budget = ref 0.05 in
  let rate = ref Mv_experiments.Serve.default_cfg.Mv_experiments.Serve.rate in
  let duration =
    ref Mv_experiments.Serve.default_cfg.Mv_experiments.Serve.duration
  in
  let serve_trace = ref None in
  let serve_advise = ref 4 in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        queries := 1000;
        max_views := 1000;
        step := 100;
        parse rest
    | "--quick" :: rest ->
        queries := 50;
        max_views := 400;
        step := 200;
        parse rest
    | "--figure" :: n :: rest ->
        add_sel (fun s -> { s with figures = int_of_string n :: s.figures });
        parse rest
    | "--stats" :: rest ->
        add_sel (fun s -> { s with stats = true });
        parse rest
    | "--micro" :: rest ->
        add_sel (fun s -> { s with micro = true });
        parse rest
    | "--ablation" :: rest ->
        add_sel (fun s -> { s with ablation = true });
        parse rest
    | "--filtertree" :: rest ->
        add_sel (fun s -> { s with filtertree = true });
        parse rest
    | "--levels" :: rest ->
        add_sel (fun s -> { s with levels = true });
        parse rest
    | "--scaling" :: rest ->
        add_sel (fun s -> { s with scaling = true });
        parse rest
    | "--serving" :: rest ->
        add_sel (fun s -> { s with serving = true });
        parse rest
    | "--serve" :: rest ->
        add_sel (fun s -> { s with serve = true });
        parse rest
    | "--rate" :: r :: rest ->
        rate := float_of_string r;
        parse rest
    | "--duration" :: s :: rest ->
        duration := max 0.05 (float_of_string s);
        parse rest
    | "--serve-trace" :: f :: rest ->
        serve_trace := Some f;
        parse rest
    | "--serve-advise" :: n :: rest ->
        serve_advise := max 0 (int_of_string n);
        parse rest
    | "--whynot" :: rest ->
        add_sel (fun s -> { s with whynot = true });
        parse rest
    | "--exec" :: rest ->
        add_sel (fun s -> { s with exec = true });
        parse rest
    | "--maintain" :: rest ->
        add_sel (fun s -> { s with maintain = true });
        parse rest
    | "--advise" :: rest ->
        add_sel (fun s -> { s with advise = true });
        parse rest
    | "--advise-candidates" :: s :: rest ->
        advise_candidates :=
          List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--advise-trials" :: n :: rest ->
        advise_trials := max 1 (int_of_string n);
        parse rest
    | "--advise-budget" :: f :: rest ->
        advise_budget := float_of_string f;
        parse rest
    | "--batches" :: n :: rest ->
        batches := max 1 (int_of_string n);
        parse rest
    | "--maintain-views" :: s :: rest ->
        maintain_views :=
          List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--batch-rows" :: s :: rest ->
        batch_rows := List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--scales" :: s :: rest ->
        exec_scales :=
          List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--reps" :: n :: rest ->
        exec_reps := max 1 (int_of_string n);
        parse rest
    | "--passes" :: n :: rest ->
        passes := max 1 (int_of_string n);
        parse rest
    | "--domains" :: n :: rest ->
        domains := max 1 (int_of_string n);
        parse rest
    | "--json" :: f :: rest ->
        json_file := Some f;
        parse rest
    | "--queries" :: n :: rest ->
        queries := int_of_string n;
        parse rest
    | "--max-views" :: n :: rest ->
        max_views := int_of_string n;
        parse rest
    | "--step" :: n :: rest ->
        step := int_of_string n;
        parse rest
    | _ -> usage ()
  in
  parse args;
  let what =
    match !sel with
    | Some s -> s
    | None ->
        if !json_file <> None then
          (* machine-readable run: everything measurable, nothing slow *)
          {
            figures = [ 2; 3; 4 ];
            stats = true;
            micro = false;
            ablation = false;
            filtertree = true;
            levels = true;
            scaling = true;
            serving = true;
            serve = true;
            whynot = true;
            exec = true;
            maintain = true;
            advise = true;
          }
        else
          {
            figures = [ 2; 3; 4 ];
            stats = true;
            micro = true;
            ablation = true;
            filtertree = true;
            levels = true;
            scaling = false;
            serving = true;
            serve = true;
            whynot = true;
            exec = true;
            maintain = true;
            advise = true;
          }
  in
  let nviews_list =
    let rec go n acc = if n > !max_views then List.rev acc else go (n + !step) (n :: acc) in
    go 0 []
  in
  let module J = Mv_obs.Json in
  let json_sections = ref [] in
  let add_section name j = json_sections := (name, j) :: !json_sections in
  let need_sweep = what.figures <> [] || what.stats || what.ablation || what.levels in
  let need_workload =
    need_sweep || what.filtertree || what.scaling || what.serving
    || what.serve || what.whynot
  in
  let w =
    if need_workload then begin
      Printf.printf
        "Workload: %d randomly generated views, %d queries (section 5 recipe),\n\
         TPC-H statistics at SF 0.5; view counts %s.\n"
        !max_views !queries
        (String.concat "," (List.map string_of_int nviews_list));
      Some
        (Mv_experiments.Harness.make_workload ~nviews:!max_views
           ~nqueries:!queries ())
    end
    else None
  in
  if need_sweep then begin
    let w = Option.get w in
    let needed_configs =
      if what.figures = [ 3 ] || what.figures = [ 4 ] then
        [ { Mv_experiments.Harness.alt = true; filter = true } ]
      else Mv_experiments.Harness.all_configs
    in
    let ms =
      Mv_experiments.Harness.sweep ~domains:!domains w ~nviews_list
        ~configs:needed_configs
    in
    if List.mem 2 what.figures then Mv_experiments.Report.figure2 ms nviews_list;
    if List.mem 3 what.figures then Mv_experiments.Report.figure3 ms nviews_list;
    if List.mem 4 what.figures then Mv_experiments.Report.figure4 ms nviews_list;
    if what.stats then Mv_experiments.Report.stats_table ms nviews_list;
    if what.levels then Mv_experiments.Report.level_table ms nviews_list;
    if what.ablation then Ablation.run w nviews_list;
    add_section "measurements" (Mv_experiments.Report.measurements_json ms)
  end;
  if what.scaling then begin
    (* the multicore sweep: 1/2/4 domains (plus --domains N if beyond),
       full population, one shared registry *)
    let domains_list =
      List.sort_uniq compare (!domains :: [ 1; 2; 4 ])
    in
    let ms =
      Mv_experiments.Harness.scaling (Option.get w) ~nviews:!max_views
        ~domains_list
    in
    Mv_experiments.Report.scaling_table ms;
    add_section "scaling" (Mv_experiments.Report.scaling_json ms)
  end;
  if what.serving then begin
    (* repeated-query serving through the match/plan cache: cold pass,
       --passes warm passes, then a drop and a re-add (epoch churn) *)
    let m =
      Mv_experiments.Harness.serving ~domains:!domains ~passes:!passes
        (Option.get w) ~nviews:!max_views
    in
    Mv_experiments.Report.serving_table m;
    add_section "serving" (Mv_experiments.Report.serving_json m);
    if
      not
        (m.Mv_experiments.Harness.warm_identical
        && m.Mv_experiments.Harness.churn_consistent
        && m.Mv_experiments.Harness.churn_no_stale)
    then begin
      prerr_endline "serving benchmark: cache served a wrong or stale plan";
      exit 3
    end
  end;
  if what.serve then begin
    (* the serving front end: an open-loop query stream over OCaml 5
       domains against RCU registry snapshots, with add/drop churn; the
       sampled observations are replayed sequentially (exit 3 on any
       unexplainable observation) *)
    let module S = Mv_experiments.Serve in
    let cfg =
      {
        S.default_cfg with
        S.nviews = !max_views;
        domains = !domains;
        rate = !rate;
        duration = !duration;
        advise = !serve_advise;
      }
    in
    let m = S.run ~cfg (Option.get w) in
    Mv_experiments.Report.serve_table m;
    add_section "serving_throughput" (Mv_experiments.Report.serve_json m);
    (match !serve_trace with
    | None -> ()
    | Some file ->
        (* one traced cold submission through a fresh front: the Perfetto
           serve-phase artifact CI uploads *)
        let w = Option.get w in
        let registry = Mv_core.Registry.create w.Mv_experiments.Harness.schema in
        List.iter
          (Mv_core.Registry.add_prebuilt registry)
          (Mv_experiments.Harness.take (min 50 !max_views)
             w.Mv_experiments.Harness.views);
        let f =
          Mv_experiments.Serve.front registry w.Mv_experiments.Harness.stats
        in
        let col = Mv_obs.Span.create () in
        ignore
          (Mv_experiments.Serve.submit_traced f ~spans:(Mv_obs.Span.root col)
             (List.hd w.Mv_experiments.Harness.queries));
        Mv_experiments.Report.write_json file
          (Mv_obs.Span.to_trace_event_json col);
        Printf.printf "wrote %s\n" file);
    if not m.S.sv_consistent then begin
      prerr_endline
        "serving throughput: an observation is not explainable by any \
         registry state";
      exit 3
    end;
    if m.S.sv_dead <> [] then begin
      Printf.eprintf
        "serving throughput: advised view(s) never matched during the run \
         (dead-view gate): %s\n"
        (String.concat ", " m.S.sv_dead);
      exit 3
    end
  end;
  if what.whynot then begin
    (* aggregate rejection provenance: every (query, view) pair of the
       workload attributed to matched / a filter-tree stage / a matcher
       rejection label, via Registry.explain *)
    let w = Option.get w in
    let nq = List.length w.Mv_experiments.Harness.queries in
    let causes = Mv_experiments.Harness.whynot w ~nviews:!max_views in
    Mv_experiments.Report.whynot_table ~nviews:!max_views ~nqueries:nq causes;
    add_section "whynot"
      (Mv_experiments.Report.whynot_json ~nviews:!max_views ~nqueries:nq
         causes)
  end;
  if what.exec then begin
    (* the end-to-end execution benchmark: TPC-H-style data at growing
       scales, hand-written views, the four (rewrite x adaptive) cells;
       exits 3 if any cell's result is not bag-equal to direct legacy
       execution *)
    let ms =
      List.map
        (fun scale ->
          Mv_experiments.Harness.exec_bench ~reps:!exec_reps ~scale ())
        !exec_scales
    in
    Mv_experiments.Report.exec_table ms;
    add_section "exec" (Mv_experiments.Report.exec_json ms);
    if
      not
        (List.for_all
           (fun m -> m.Mv_experiments.Harness.x_equivalent)
           ms)
    then begin
      prerr_endline
        "execution benchmark: a plan's result is not bag-equal to direct \
         execution";
      exit 3
    end
  end;
  if what.maintain then begin
    (* incremental view maintenance vs rematerialize-on-write: identical
       random batches through both arms per (view count, batch size) cell;
       exits 3 unless the maintained contents stay bag-equal and the
       refreshed view statistics track the actual cardinalities *)
    let m =
      Mv_experiments.Harness.maintain ~batches:!batches
        ~nviews_list:!maintain_views ~batch_sizes:!batch_rows ()
    in
    Mv_experiments.Report.maintenance_table m;
    add_section "maintenance" (Mv_experiments.Report.maintenance_json m);
    (* the per-window obs timeline the sampler domain collected over the
       maintenance grid, surfaced top-level so json_check --require can pin
       it without reading into the maintenance section *)
    add_section "timeline" m.Mv_experiments.Harness.mm_timeline;
    if
      not
        (m.Mv_experiments.Harness.mm_equivalent
        && m.Mv_experiments.Harness.mm_stats_fresh)
    then begin
      prerr_endline
        "maintenance benchmark: delta-maintained contents or statistics \
         diverged from rematerialization";
      exit 3
    end
  end;
  if what.advise then begin
    (* the view advisor: mine candidates from a generated workload, select
       under a storage budget, compare against random-equal-budget sets on
       real optimizer cost; exits 3 if the advised set ever loses or blows
       the budget — the comparison is purely model-cost-driven, so the
       verdict is deterministic for fixed arguments *)
    let ms =
      List.map
        (fun candidates ->
          let nqueries = max 16 (candidates / 8) in
          Mv_experiments.Harness.advise ~trials:!advise_trials
            ~budget_frac:!advise_budget ~candidates ~nqueries ())
        !advise_candidates
    in
    Mv_experiments.Report.advise_table ms;
    add_section "advise" (Mv_experiments.Report.advise_json ms);
    if
      not
        (List.for_all
           (fun m ->
             m.Mv_experiments.Harness.a_beats_random
             && m.Mv_experiments.Harness.a_within_budget)
           ms)
    then begin
      prerr_endline
        "advisor benchmark: an advised view set lost to a random \
         equal-budget set or exceeded the budget";
      exit 3
    end
  end;
  if what.filtertree then
    add_section "filter_tree"
      (Filtertree.run ~domains:!domains (Option.get w) nviews_list);
  if what.micro then Micro.run ();
  match !json_file with
  | None -> ()
  | Some file ->
      let doc =
        J.Obj
          (("benchmark", J.String "mview")
          :: ("args", J.List (List.map (fun a -> J.String a) args))
          :: ( "params",
               J.Obj
                 [
                   ("queries", J.Int !queries);
                   ("max_views", J.Int !max_views);
                   ("step", J.Int !step);
                   ( "nviews_list",
                     J.List (List.map (fun n -> J.Int n) nviews_list) );
                 ] )
          :: List.rev !json_sections)
      in
      Mv_experiments.Report.write_json file doc;
      Printf.printf "\nwrote %s\n" file
