(** Ablation benches for the design choices DESIGN.md calls out:

    - lattice-index search vs a linear scan over node keys (section 4.1's
      motivation for the lattice structure);
    - hub refinement on/off: how much the predicate-pinning refinement of
      section 4.2.2 sharpens the hub level;
    - filter-tree pruning power per query (candidates vs population). *)

module H = Mv_experiments.Harness

let pr = Printf.printf

(* Linear "filter": test every view's source-table condition directly. *)
let linear_candidates (views : Mv_core.View.t list) q =
  let qi = Mv_core.Filter_tree.query_info q in
  List.filter
    (fun v ->
      Mv_util.Bitset.subset qi.Mv_core.Filter_tree.source_tables
        v.Mv_core.View.keys.Mv_core.View.source_tables)
    views

let run (w : H.workload) _nviews_list =
  pr "\n== Ablation: lattice filter tree vs linear scan ==\n";
  let registry = Mv_core.Registry.create ~use_filter:true w.H.schema in
  List.iter (Mv_core.Registry.add_prebuilt registry) w.H.views;
  let queries =
    List.map (Mv_relalg.Analysis.analyze w.H.schema) w.H.queries
  in
  let time f =
    let t0 = Sys.time () in
    let acc = ref 0 in
    List.iter (fun q -> acc := !acc + List.length (f q)) queries;
    (Sys.time () -. t0, !acc)
  in
  let t_tree, c_tree =
    time (fun q -> Mv_core.Filter_tree.candidates registry.Mv_core.Registry.tree q)
  in
  let t_lin, c_lin = time (linear_candidates w.H.views) in
  let nq = List.length queries in
  pr "filter tree : %8.4fs, %7.2f candidates/query\n" t_tree
    (float_of_int c_tree /. float_of_int (max 1 nq));
  pr "linear scan : %8.4fs, %7.2f candidates/query (table condition only)\n"
    t_lin
    (float_of_int c_lin /. float_of_int (max 1 nq));
  pr "\n== Ablation: hub refinement (section 4.2.2) ==\n";
  let refined_sizes =
    List.map (fun v -> Mv_util.Sset.cardinal v.Mv_core.View.hub) w.H.views
  in
  let unrefined_sizes =
    List.map
      (fun v ->
        (* recompute the hub without predicate pinning: eliminate along all
           strict FK edges *)
        let a = v.Mv_core.View.analysis in
        let tables =
          Mv_util.Sset.of_list a.Mv_relalg.Analysis.spjg.Mv_relalg.Spjg.tables
        in
        let eliminated, _, _ =
          Mv_core.Fk_graph.eliminate ~eliminable:tables
            (Mv_core.Fk_graph.edges a)
        in
        Mv_util.Sset.cardinal
          (Mv_util.Sset.diff tables (Mv_util.Sset.of_list eliminated)))
      w.H.views
  in
  let avg xs =
    float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  pr "average hub size with refinement    : %.2f tables\n" (avg refined_sizes);
  pr "average hub size without refinement : %.2f tables\n" (avg unrefined_sizes);
  pr "(larger refined hubs prune more views at the hub level)\n";
  pr "\n== Ablation: section 7 extensions (backjoins, unions) ==\n";
  (* how many additional queries gain a whole-query rewrite when the
     extensions are enabled *)
  let count_covered reg =
    List.length
      (List.filter
         (fun q -> Mv_core.Registry.find_substitutes reg q <> [])
         queries)
  in
  let plain = count_covered registry in
  let bj = Mv_core.Registry.create ~backjoins:true w.H.schema in
  List.iter
    (fun v ->
      Mv_core.Registry.add_prebuilt bj
        (Mv_core.View.create ~row_count:v.Mv_core.View.row_count w.H.schema
           ~name:v.Mv_core.View.name
           (Mv_core.View.spjg v)))
    w.H.views;
  let with_bj = count_covered bj in
  let unions =
    List.length
      (List.filter
         (fun q ->
           Mv_core.Registry.find_substitutes registry q = []
           && Mv_core.Registry.find_union_substitutes registry q <> None)
         queries)
  in
  pr "queries with a whole-query substitute        : %4d/%d\n" plain nq;
  pr "... with base-table backjoins enabled        : %4d/%d\n" with_bj nq;
  pr "... UNION-of-views rescues (no single view)  : %4d/%d\n" unions nq
