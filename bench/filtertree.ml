(** Filter-tree bench: the level-by-level pruning breakdown of section 4,
    per index plan ([default_plan] vs [backjoin_plan]), over the section-5
    workload — now swept over the view-population sizes of the paper's
    Figure 6 (0..1000 views), not just the full population. This is the
    machine-readable counterpart of the paper's Figures 6-7 discussion: how
    many candidate views enter each level, how many survive it, and how
    long pure candidate selection takes as the population grows.

    Timing protocol: one untimed pass records the per-level counters, then
    [timed_passes] passes over the whole query batch are timed and the
    reported wall time is the per-pass average — candidate selection at
    1000 views is a ~10ms-per-batch affair, so single-shot timings are
    dominated by warmup noise. *)

module H = Mv_experiments.Harness
module J = Mv_obs.Json

let timed_passes = 5

type plan_result = {
  plan_name : string;
  searches : int;
  candidates : int;  (** final candidates summed over all queries *)
  wall_time_s : float;  (** per-pass average over [timed_passes] *)
  levels : H.level_flow list;
}

let run_plan ?(domains = 1) ~backjoins ~nviews (w : H.workload)
    (queries : Mv_relalg.Analysis.t list) : plan_result =
  let registry =
    Mv_core.Registry.create ~use_filter:true ~backjoins w.H.schema
  in
  List.iter (Mv_core.Registry.add_prebuilt registry) (H.take nviews w.H.views);
  Mv_relalg.Intern.freeze ();
  (* counter pass: per-level flow and the candidate totals. Sharded over
     [domains] like the timed passes (chunked, so each pre-analyzed query —
     and its lazily built key memo — is touched by exactly one domain per
     pass; passes are separated by Domain.join). *)
  let candidates =
    List.fold_left ( + ) 0
      (Mv_experiments.Pool.map_list ~domains
         (fun q -> List.length (Mv_core.Registry.candidates registry q))
         queries)
  in
  let searches =
    Mv_obs.Registry.counter_value registry.Mv_core.Registry.obs
      "filter_tree.searches"
  in
  let levels = H.level_flow_of registry in
  (* timed passes *)
  let span = Mv_obs.Instrument.enter () in
  for _ = 1 to timed_passes do
    ignore
      (Mv_experiments.Pool.map_list ~domains
         (fun q -> ignore (Mv_core.Registry.candidates registry q))
         queries)
  done;
  let wall, _ = Mv_obs.Instrument.elapsed span in
  {
    plan_name = (if backjoins then "backjoin_plan" else "default_plan");
    searches;
    candidates;
    wall_time_s = wall /. float_of_int timed_passes;
    levels;
  }

let print_result ~nviews (r : plan_result) =
  Printf.printf "\n%4d views, %s: %d searches, %d candidates total, %.5fs\n"
    nviews r.plan_name r.searches r.candidates r.wall_time_s;
  Printf.printf "  %-28s %12s %12s %9s\n" "level" "entered" "passed" "kept";
  List.iter
    (fun (f : H.level_flow) ->
      Printf.printf "  %-28s %12d %12d %8.1f%%\n" f.H.level f.H.entered
        f.H.passed
        (100.0 *. float_of_int f.H.passed
         /. float_of_int (max 1 f.H.entered)))
    r.levels

let to_json (r : plan_result) =
  J.Obj
    [
      ("searches", J.Int r.searches);
      ("candidates", J.Int r.candidates);
      ("wall_time_s", J.Float r.wall_time_s);
      ("levels", Mv_experiments.Report.level_flow_json r.levels);
    ]

let plans_json results =
  J.Obj (List.map (fun r -> (r.plan_name, to_json r)) results)

(* Both plans at every population size in [nviews_list]; returns the JSON
   section for the bench trajectory file. [plans] carries the full
   population (backward-compatible with earlier trajectories), [sweep] one
   entry per size. *)
let run ?(domains = 1) (w : H.workload) (nviews_list : int list) : J.t =
  print_endline
    "\n== Filter tree: per-level candidate flow (default vs backjoin plan) ==";
  let total = List.length w.H.views in
  Printf.printf "%d views, %d queries, populations %s%s.\n" total
    (List.length w.H.queries)
    (String.concat "," (List.map string_of_int nviews_list))
    (if domains > 1 then Printf.sprintf ", %d domains" domains else "");
  let queries = List.map (Mv_relalg.Analysis.analyze w.H.schema) w.H.queries in
  (* discarded warmup so the first sweep point doesn't pay one-time costs *)
  ignore (run_plan ~domains ~backjoins:false ~nviews:(min 100 total) w queries);
  let sweep =
    List.map
      (fun nviews ->
        let results =
          [
            run_plan ~domains ~backjoins:false ~nviews w queries;
            run_plan ~domains ~backjoins:true ~nviews w queries;
          ]
        in
        List.iter (print_result ~nviews) results;
        (nviews, results))
      nviews_list
  in
  let full =
    match List.rev sweep with
    | (_, results) :: _ -> results
    | [] -> []
  in
  J.Obj
    [
      ("nviews", J.Int total);
      ("queries", J.Int (List.length w.H.queries));
      ("timed_passes", J.Int timed_passes);
      ("plans", plans_json full);
      ( "sweep",
        J.List
          (List.map
             (fun (nviews, results) ->
               J.Obj
                 [ ("nviews", J.Int nviews); ("plans", plans_json results) ])
             sweep) );
    ]
