(** Tiny CI validator for the bench trajectory and CLI output.

      json_check.exe FILE path.to.key ...       # JSON parses, keys present
      json_check.exe --contains FILE STRING ... # raw substring checks
      json_check.exe --compare FRESH BASELINE \
        [--tolerance F] [--structure-only] \
        [--percentile-tolerance F] \
        [--ignore KEY]... \
        [--require PATH]...                     # fresh run vs committed

    Path segments are object fields; a numeric segment indexes a list.

    [--require PATH] (repeatable, [--compare] mode) asserts the dotted
    path is present in FRESH regardless of the baseline's contents — how
    CI pins sections newer than the committed baseline (the [timeline] /
    [health] observability exports) without regenerating it.

    [--compare] walks every key path of BASELINE and requires it in FRESH
    with the same JSON kind (lists are sampled by their first element, so a
    shorter sweep still type-checks against a full baseline). Unless
    [--structure-only], numeric [wall_time_s] leaves are also compared:
    fresh must not exceed baseline by more than the relative tolerance
    (default 0.5, i.e. +50%), with a 1ms absolute slack so micro-timings
    don't flap. With [--percentile-tolerance F] the [p50_s]/[p90_s]/[p99_s]
    percentile leaves are compared the same way against their own relative
    tolerance F (plus a 0.5ms absolute slack) — this check is independent
    of [--structure-only], so CI can gate percentiles while skipping the
    host-dependent batch wall times.
    Object fields named by [--ignore] (repeatable) are skipped
    entirely — neither required nor compared — so machine-dependent
    additions (the [domains]/[scaling]/[speedup] fields of the multicore
    sweep) don't destabilize baseline gating on differently sized hosts.
    Exit 0 when every check passes, 1 with a message otherwise — so a dune
    rule can gate @runtest-quick on the emitted metrics. *)

module J = Mv_obs.Json

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let lookup json path =
  let segs = String.split_on_char '.' path in
  List.fold_left
    (fun acc seg ->
      match acc with
      | None -> None
      | Some j -> (
          match int_of_string_opt seg with
          | Some i -> (
              match j with
              | J.List xs -> List.nth_opt xs i
              | _ -> None)
          | None -> J.member seg j))
    (Some json) segs

let kind = function
  | J.Null -> "null"
  | J.Bool _ -> "bool"
  | J.Int _ | J.Float _ -> "number"
  | J.String _ -> "string"
  | J.List _ -> "list"
  | J.Obj _ -> "object"

let num = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

(* Walk baseline, requiring each of its key paths in fresh with the same
   kind. Lists are compared through their first element: the baseline's
   element shape must be producible by the fresh run, but the sweeps may
   differ in length. Numeric [wall_time_s] leaves are timing-checked unless
   [structure_only]. Returns failure messages (empty = pass) and the number
   of paths visited. *)
let compare_trees ~structure_only ~tolerance ~percentile_tolerance ~ignored
    fresh baseline =
  let errors = ref [] in
  let checked = ref 0 in
  let err path fmt =
    Printf.ksprintf (fun m -> errors := (path ^ ": " ^ m) :: !errors) fmt
  in
  let percentile_key k = k = "p50_s" || k = "p90_s" || k = "p99_s" in
  let rec go path b f =
    incr checked;
    match (b, f) with
    | J.Obj bfields, J.Obj _ ->
        List.iter
          (fun (k, bv) ->
            if List.mem k ignored then ()
            else
            let p = if path = "" then k else path ^ "." ^ k in
            match J.member k f with
            | None -> err p "missing in fresh run"
            | Some fv ->
                if
                  (not structure_only)
                  && k = "wall_time_s"
                  && num bv <> None
                  && num fv <> None
                then begin
                  let bt = Option.get (num bv) and ft = Option.get (num fv) in
                  if ft > (bt *. (1.0 +. tolerance)) +. 0.001 then
                    err p "wall-time regression: %.6fs vs baseline %.6fs (>%+.0f%%)"
                      ft bt (tolerance *. 100.)
                end;
                (match percentile_tolerance with
                | Some ptol
                  when percentile_key k && num bv <> None && num fv <> None ->
                    let bt = Option.get (num bv)
                    and ft = Option.get (num fv) in
                    if ft > (bt *. (1.0 +. ptol)) +. 0.0005 then
                      err p
                        "percentile regression: %.6fs vs baseline %.6fs \
                         (>%+.0f%%)"
                        ft bt (ptol *. 100.)
                | _ -> ());
                go p bv fv)
          bfields
    | J.List (b0 :: _), J.List (f0 :: _) -> go (path ^ ".0") b0 f0
    | J.List (_ :: _), J.List [] -> err path "list is empty in fresh run"
    | J.List _, J.List _ | J.Null, _ -> ()
    | _ ->
        if kind b <> kind f then
          err path "kind mismatch: fresh %s vs baseline %s" (kind f) (kind b)
  in
  go "" baseline fresh;
  (List.rev !errors, !checked)

let () =
  match Array.to_list Sys.argv |> List.tl with
  | "--compare" :: fresh_file :: baseline_file :: opts ->
      let structure_only = List.mem "--structure-only" opts in
      let tolerance =
        let rec find = function
          | "--tolerance" :: v :: _ -> (
              match float_of_string_opt v with
              | Some f when f >= 0.0 -> f
              | _ -> fail "--tolerance: bad value %S" v)
          | _ :: rest -> find rest
          | [] -> 0.5
        in
        find opts
      in
      let percentile_tolerance =
        let rec find = function
          | "--percentile-tolerance" :: v :: _ -> (
              match float_of_string_opt v with
              | Some f when f >= 0.0 -> Some f
              | _ -> fail "--percentile-tolerance: bad value %S" v)
          | _ :: rest -> find rest
          | [] -> None
        in
        find opts
      in
      let ignored =
        let rec collect = function
          | "--ignore" :: k :: rest -> k :: collect rest
          | _ :: rest -> collect rest
          | [] -> []
        in
        collect opts
      in
      let required =
        let rec collect = function
          | "--require" :: p :: rest -> p :: collect rest
          | _ :: rest -> collect rest
          | [] -> []
        in
        collect opts
      in
      let parse file =
        match J.of_string (read_file file) with
        | j -> j
        | exception J.Parse_error e -> fail "%s: invalid JSON: %s" file e
      in
      let fresh = parse fresh_file and baseline = parse baseline_file in
      let errors, checked =
        compare_trees ~structure_only ~tolerance ~percentile_tolerance ~ignored
          fresh baseline
      in
      let errors =
        errors
        @ List.filter_map
            (fun p ->
              match lookup fresh p with
              | Some _ -> None
              | None ->
                  Some
                    (Printf.sprintf "%s: required key missing in fresh run" p))
            required
      in
      if errors <> [] then begin
        List.iter prerr_endline errors;
        fail "%s vs %s: %d check(s) failed" fresh_file baseline_file
          (List.length errors)
      end;
      Printf.printf "%s vs %s: %d path(s) agree%s%s\n" fresh_file baseline_file
        checked
        (if structure_only then " (structure only)" else "")
        (match List.length required with
        | 0 -> ""
        | n -> Printf.sprintf ", %d required key(s) present" n)
  | "--contains" :: file :: needles ->
      let body = read_file file in
      let contains needle =
        let nl = String.length needle and bl = String.length body in
        let rec go i =
          if i + nl > bl then false
          else String.sub body i nl = needle || go (i + 1)
        in
        go 0
      in
      List.iter
        (fun needle ->
          if not (contains needle) then
            fail "%s: missing expected output %S" file needle)
        needles;
      Printf.printf "%s: %d substring check(s) ok\n" file (List.length needles)
  | file :: paths when file <> "" && file.[0] <> '-' ->
      let json =
        match J.of_string (read_file file) with
        | j -> j
        | exception J.Parse_error e -> fail "%s: invalid JSON: %s" file e
      in
      List.iter
        (fun p ->
          match lookup json p with
          | Some _ -> ()
          | None -> fail "%s: missing key %s" file p)
        paths;
      Printf.printf "%s: JSON ok, %d key(s) present\n" file (List.length paths)
  | _ ->
      prerr_endline
        "usage: json_check.exe FILE key... | json_check.exe --contains FILE \
         str... | json_check.exe --compare FRESH BASELINE [--tolerance F] \
         [--percentile-tolerance F] [--structure-only] [--ignore KEY]... \
         [--require PATH]...";
      exit 1
